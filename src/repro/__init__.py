"""repro — Optimal Oblivious Path Selection on the Mesh.

A full reproduction of Busch, Magdon-Ismail and Xi (IPPS 2005): an
oblivious path-selection algorithm for the ``d``-dimensional mesh whose
congestion is ``O(d^2 C* log n)`` with high probability *and* whose stretch
is ``O(d^2)`` (at most 64 in two dimensions) — the first oblivious scheme
to control both simultaneously.

Quick start
-----------
>>> import repro
>>> mesh = repro.Mesh((16, 16))
>>> problem = repro.transpose(mesh)
>>> router = repro.HierarchicalRouter()
>>> result = router.route(problem, seed=0)
>>> result.stretch <= 64
True

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every theorem and figure.
"""

from repro import cache
from repro.mesh import Mesh, Submesh, TorusBox, torus_bounding
from repro.obs import Profiler
from repro.mesh.mesh import pad_to_power_of_two
from repro.mesh.paths import (
    concatenate_paths,
    dimension_order_path,
    is_valid_path,
    path_length,
    remove_cycles,
)
from repro.core import (
    AccessGraph,
    BitCounter,
    Decomposition,
    HierarchicalRouter,
    PathSet,
    RectDecomposition,
    RectHierarchicalRouter,
    RecycledBits,
    RegularSubmesh,
    common_ancestor_2d,
    find_bridge,
)
from repro.routing import (
    AccessTreeRouter,
    DimensionOrderRouter,
    GreedyMinCongestionRouter,
    KChoiceRouter,
    RandomDimOrderRouter,
    Router,
    RoutingProblem,
    RoutingResult,
    ShortestPathRouter,
    ValiantRouter,
    available_routers,
    make_router,
)
from repro.metrics import (
    average_load_lower_bound,
    boundary_congestion,
    boundary_congestion_exact,
    congestion,
    congestion_lower_bound,
    dilation,
    edge_loads,
    lp_congestion_lower_bound,
    stretch,
    stretches,
)
from repro.io import load_result, rows_to_csv, save_result
from repro.simulation import (
    OnlineStats,
    SimulationResult,
    latency_vs_load,
    simulate,
    simulate_online,
)
from repro.workloads import (
    adversarial_for_router,
    r_relation,
    scheme_separating_pairs,
    all_to_one,
    bit_complement,
    bit_reversal,
    block_exchange,
    local_traffic,
    nearest_neighbor,
    random_pairs,
    random_permutation,
    tornado,
    transpose,
)
from repro.analysis import (
    aggregate,
    certify_stretch,
    congestion_distribution,
    congestion_bound_2d,
    evaluate,
    expected_edge_loads,
    format_table,
    random_bits_lower_curve,
    random_bits_upper_curve,
    stretch_bound_2d,
    stretch_bound_general,
    sweep,
)

__version__ = "1.0.0"

__all__ = [
    # engine infrastructure
    "cache",
    "Profiler",
    # mesh substrate
    "Mesh",
    "Submesh",
    "TorusBox",
    "torus_bounding",
    "pad_to_power_of_two",
    "dimension_order_path",
    "concatenate_paths",
    "is_valid_path",
    "path_length",
    "remove_cycles",
    # core contribution
    "Decomposition",
    "RegularSubmesh",
    "AccessGraph",
    "common_ancestor_2d",
    "find_bridge",
    "HierarchicalRouter",
    "RectDecomposition",
    "RectHierarchicalRouter",
    "BitCounter",
    "RecycledBits",
    # routing
    "Router",
    "RoutingProblem",
    "RoutingResult",
    "PathSet",
    "AccessTreeRouter",
    "DimensionOrderRouter",
    "RandomDimOrderRouter",
    "ValiantRouter",
    "ShortestPathRouter",
    "GreedyMinCongestionRouter",
    "KChoiceRouter",
    "available_routers",
    "make_router",
    # metrics
    "congestion",
    "edge_loads",
    "dilation",
    "stretch",
    "stretches",
    "boundary_congestion",
    "boundary_congestion_exact",
    "average_load_lower_bound",
    "lp_congestion_lower_bound",
    "congestion_lower_bound",
    # simulation
    "simulate",
    "SimulationResult",
    "simulate_online",
    "latency_vs_load",
    "OnlineStats",
    # io
    "save_result",
    "load_result",
    "rows_to_csv",
    # workloads
    "transpose",
    "bit_reversal",
    "bit_complement",
    "tornado",
    "random_permutation",
    "random_pairs",
    "all_to_one",
    "nearest_neighbor",
    "local_traffic",
    "r_relation",
    "block_exchange",
    "adversarial_for_router",
    "scheme_separating_pairs",
    # analysis
    "expected_edge_loads",
    "congestion_distribution",
    "certify_stretch",
    "evaluate",
    "sweep",
    "aggregate",
    "format_table",
    "stretch_bound_2d",
    "stretch_bound_general",
    "congestion_bound_2d",
    "random_bits_upper_curve",
    "random_bits_lower_curve",
]
