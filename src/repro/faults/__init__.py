"""Fault injection and fault-aware routing.

* :class:`FaultModel` — deterministic, seedable link/node failure sets
  (static random, spatially-correlated blocks, dynamic fail/repair),
  exposed as boolean edge masks.
* :class:`FaultAwareRouter` — wraps any oblivious router: resample on a
  blocked edge, greedy detour as a last resort.
* Both simulators (:func:`repro.simulation.simulate` and
  :func:`repro.simulation.simulate_online`) accept a ``faults=`` model.
"""

from repro.faults.model import FaultModel
from repro.faults.router import FaultAwareRouter, FaultRoutingError, shortest_alive_path

__all__ = [
    "FaultAwareRouter",
    "FaultModel",
    "FaultRoutingError",
    "shortest_alive_path",
]
