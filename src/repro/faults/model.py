"""Deterministic, seedable fault models for mesh links and nodes.

The paper's analysis assumes a pristine mesh; real interconnects lose
links and nodes.  A :class:`FaultModel` describes *which* edges are dead
at each time step, as a boolean mask over the mesh's dense edge ids
(``True`` = alive) — the single surface the routers and simulators
consume.  Three failure regimes:

* ``static``  — every link fails independently with probability ``p``
  (and optionally every node with probability ``node_p``; a dead node
  kills all incident links).  The set is drawn once and never changes.
* ``blocks``  — spatially correlated faults: ``num_blocks`` random
  axis-aligned sub-boxes of side ``block_side`` fail wholesale (every
  node inside, hence every incident link).  Models the clustered damage
  of a failed board/rack rather than independent link loss.
* ``dynamic`` — a fail/repair process: each step every alive link fails
  with probability ``p``, and a failed link comes back after
  ``repair_delay`` steps.  The per-step masks are a deterministic
  function of the seed alone (uniforms are drawn for *all* edges every
  step, whatever their state), so a run can be replayed exactly.

``FaultModel(..., p=0)`` with no explicit fault set is *trivial*
(:attr:`is_trivial`); every consumer checks that flag and takes the
fault-free fast path, making a trivial model a strict no-op — byte-
identical outputs under a fixed seed.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh

__all__ = ["FaultModel"]

_MODES = ("static", "blocks", "dynamic")


class FaultModel:
    """Seeded link/node failure process exposed as per-step edge masks.

    Use the classmethod constructors (:meth:`static`, :meth:`blocks`,
    :meth:`dynamic`, :meth:`from_failed_edges`) rather than ``__init__``.

    Examples
    --------
    >>> from repro.mesh.mesh import Mesh
    >>> fm = FaultModel.static(Mesh((8, 8)), p=0.05, seed=0)
    >>> alive = fm.edge_alive()
    >>> bool(alive.all()), alive.shape == (fm.mesh.num_edges,)
    (False, True)
    >>> FaultModel.static(Mesh((8, 8)), p=0.0, seed=0).is_trivial
    True
    """

    def __init__(
        self,
        mesh: Mesh,
        mode: str = "static",
        *,
        p: float = 0.0,
        node_p: float = 0.0,
        num_blocks: int = 0,
        block_side: int = 2,
        repair_delay: int = 8,
        seed: int | None = 0,
        failed_edges: np.ndarray | None = None,
    ):
        if mode not in _MODES:
            raise ValueError(f"unknown fault mode {mode!r}; use one of {_MODES}")
        if not (0.0 <= p <= 1.0 and 0.0 <= node_p <= 1.0):
            raise ValueError("failure probabilities must be in [0, 1]")
        if repair_delay < 1:
            raise ValueError("repair_delay must be >= 1")
        self.mesh = mesh
        self.mode = mode
        self.p = float(p)
        self.node_p = float(node_p)
        self.num_blocks = int(num_blocks)
        self.block_side = int(block_side)
        self.repair_delay = int(repair_delay)
        self.seed = seed
        E = mesh.num_edges
        if failed_edges is not None:
            explicit = np.zeros(E, dtype=bool)
            explicit[np.asarray(failed_edges, dtype=np.int64)] = True
        else:
            explicit = None
        self._explicit = explicit
        if mode == "dynamic":
            self._static_mask = None
        else:
            self._static_mask = self._draw_static()
        # dynamic state: advanced lazily, replayable from the seed
        self._dyn_step = -1
        self._dyn_mask: np.ndarray | None = None
        self._down_until: np.ndarray | None = None
        self._dyn_rng: np.random.Generator | None = None

    # -- constructors --------------------------------------------------
    @classmethod
    def static(cls, mesh: Mesh, *, p: float, node_p: float = 0.0, seed: int | None = 0) -> "FaultModel":
        """Independent link (and optional node) failures, drawn once."""
        return cls(mesh, "static", p=p, node_p=node_p, seed=seed)

    @classmethod
    def blocks(
        cls, mesh: Mesh, *, num_blocks: int, block_side: int = 2, seed: int | None = 0
    ) -> "FaultModel":
        """Spatially correlated failures: whole sub-boxes go dark."""
        return cls(mesh, "blocks", num_blocks=num_blocks, block_side=block_side, seed=seed)

    @classmethod
    def dynamic(
        cls, mesh: Mesh, *, p: float, repair_delay: int = 8, seed: int | None = 0
    ) -> "FaultModel":
        """Per-step fail/repair: alive links fail w.p. ``p`` each step and
        recover after ``repair_delay`` steps."""
        return cls(mesh, "dynamic", p=p, repair_delay=repair_delay, seed=seed)

    @classmethod
    def from_failed_edges(cls, mesh: Mesh, failed_edges: np.ndarray) -> "FaultModel":
        """An explicit static fault set (edge ids), for tests and replays."""
        return cls(mesh, "static", failed_edges=failed_edges)

    # -- the mask ------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        """True when no edge can ever fail — consumers take the fault-free
        fast path, making the model a strict no-op."""
        if self._explicit is not None and self._explicit.any():
            return False
        if self.mode == "dynamic":
            return self.p == 0.0
        if self.mode == "blocks":
            return self.num_blocks == 0
        return self.p == 0.0 and self.node_p == 0.0

    @property
    def repairs(self) -> bool:
        """Whether a currently dead edge can come back later."""
        return self.mode == "dynamic"

    def edge_alive(self, step: int = 0) -> np.ndarray:
        """Boolean ``(num_edges,)`` mask at ``step``: ``True`` = alive.

        Static/blocks models ignore ``step``.  The dynamic model advances
        its fail/repair process; asking for an earlier step than the last
        one replays deterministically from the seed.
        """
        if self.mode != "dynamic":
            return self._static_mask
        if step < self._dyn_step:
            self._dyn_step = -1  # rewind: replay from scratch
        if self._dyn_step < 0:
            E = self.mesh.num_edges
            self._dyn_rng = np.random.default_rng(self.seed)
            self._down_until = np.zeros(E, dtype=np.int64)
            if self._explicit is not None:
                self._down_until[self._explicit] = self.repair_delay
            self._dyn_step = 0
            self._dyn_mask = self._down_until <= 0
        while self._dyn_step < step:
            self._dyn_step += 1
            # Draw for every edge regardless of state: the stream consumed
            # is a function of (seed, step) alone, so runs replay exactly.
            u = self._dyn_rng.random(self.mesh.num_edges)
            alive = self._down_until <= self._dyn_step
            newly_dead = alive & (u < self.p)
            self._down_until[newly_dead] = self._dyn_step + self.repair_delay
            self._dyn_mask = self._down_until <= self._dyn_step
        return self._dyn_mask

    def num_failed(self, step: int = 0) -> int:
        """Number of dead edges at ``step``."""
        return int((~self.edge_alive(step)).sum())

    def describe(self) -> str:
        alive0 = self.edge_alive(0)
        base = f"{self.mode} faults on {self.mesh!r}: {int((~alive0).sum())}/{alive0.size} edges down"
        if self.mode == "dynamic":
            base += f" at t=0 (p={self.p}, repair={self.repair_delay})"
        return base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.mode == "blocks":
            params = f"num_blocks={self.num_blocks}, block_side={self.block_side}"
        else:
            params = f"p={self.p}"
        return f"FaultModel({self.mode}, {params}, seed={self.seed})"

    # -- drawing -------------------------------------------------------
    def _draw_static(self) -> np.ndarray:
        mesh, E = self.mesh, self.mesh.num_edges
        rng = np.random.default_rng(self.seed)
        dead = np.zeros(E, dtype=bool)
        if self._explicit is not None:
            dead |= self._explicit
        if self.mode == "static":
            if self.p > 0.0:
                dead |= rng.random(E) < self.p
            if self.node_p > 0.0:
                dead_nodes = rng.random(mesh.n) < self.node_p
                ep = mesh.edge_endpoints
                dead |= dead_nodes[ep[:, 0]] | dead_nodes[ep[:, 1]]
        elif self.mode == "blocks" and self.num_blocks > 0:
            side = np.minimum(
                np.full(mesh.d, self.block_side, dtype=np.int64), mesh._sides_arr
            )
            ep_lo = mesh.flat_to_coords(mesh.edge_endpoints[:, 0])
            ep_hi = mesh.flat_to_coords(mesh.edge_endpoints[:, 1])
            for _ in range(self.num_blocks):
                lo = np.array(
                    [int(rng.integers(0, m - s + 1)) for m, s in zip(mesh.sides, side)],
                    dtype=np.int64,
                )
                hi = lo + side  # exclusive
                inside_lo = np.all((ep_lo >= lo) & (ep_lo < hi), axis=1)
                inside_hi = np.all((ep_hi >= lo) & (ep_hi < hi), axis=1)
                # a dead node kills every incident link
                dead |= inside_lo | inside_hi
        mask = ~dead
        mask.setflags(write=False)
        return mask
