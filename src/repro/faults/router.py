"""Fault-aware path selection: resample, then detour.

:class:`FaultAwareRouter` wraps any oblivious router and makes its paths
avoid currently-failed edges.  The selection discipline stays oblivious:
on a path that crosses a dead edge the wrapper simply *resamples* the
inner router with fresh bits from the same per-packet stream — each
packet still sees only its own ``(s, t)`` and its own randomness, never
another packet's state.  After ``max_resamples`` failed draws it falls
back to a greedy detour (:func:`shortest_alive_path`, a BFS over the
alive subgraph), and raises :class:`FaultRoutingError` only when the
destination is genuinely unreachable.

When the fault model is trivial (``p = 0``) the wrapper delegates
``batch_spec`` and skips every check, so it is a strict no-op: byte-
identical paths to the bare inner router under the same seed.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.core.budget import BudgetParams, degradation_plan, note_budget
from repro.core.randomness import packet_streams, resolve_entropy
from repro.faults.model import FaultModel
from repro.mesh.mesh import Mesh
from repro.mesh.paths import dimension_order_path
from repro.routing.base import Router, RoutingProblem, RoutingResult

__all__ = ["FaultAwareRouter", "FaultRoutingError", "shortest_alive_path"]


class FaultRoutingError(RuntimeError):
    """No alive path exists from the packet's position to its destination."""


def shortest_alive_path(
    mesh: Mesh, s: int, t: int, alive: np.ndarray, *, profiler=None
) -> np.ndarray | None:
    """A shortest path from ``s`` to ``t`` using only alive edges.

    BFS over the alive subgraph's CSR adjacency (all edges have unit
    length, so BFS is Dijkstra here), dispatched through
    :func:`repro.kernels.bfs_parents`.  Returns the node array, or
    ``None`` when ``t`` is unreachable.  Deterministic: within a level the
    first writer in (ascending frontier node, CSR neighbor order) wins, so
    equal-length ties always break the same way on either backend.
    """
    if s == t:
        return np.asarray([s], dtype=np.int64)
    indptr, heads, _eids = mesh.adjacency_csr(alive)
    parent = kernels.bfs_parents(indptr, heads, s, t, mesh.n, profiler=profiler)
    if parent[t] == -1:
        return None
    path = [t]
    while path[-1] != s:
        path.append(int(parent[path[-1]]))
    return np.asarray(path[::-1], dtype=np.int64)


class FaultAwareRouter(Router):
    """Wrap an oblivious router so its paths avoid failed edges.

    Parameters
    ----------
    inner:
        Any oblivious :class:`Router`.
    faults:
        The :class:`FaultModel` whose mask paths must respect.
    max_resamples:
        Fresh oblivious draws to attempt before the greedy detour.
    at_step:
        The fault-model time step selections are checked against; the
        online simulator advances this as packets are injected.

    Counters (``resamples`` / ``detours`` / ``unroutable``) accumulate on
    the instance and mirror into the attached profiler as ``faults.*``.
    """

    def __init__(
        self,
        inner: Router,
        faults: FaultModel,
        *,
        max_resamples: int = 8,
        at_step: int = 0,
    ):
        if not inner.is_oblivious:
            raise ValueError("FaultAwareRouter requires an oblivious inner router")
        self.inner = inner
        self.faults = faults
        self.max_resamples = int(max_resamples)
        self.at_step = int(at_step)
        self.name = f"fault-aware({inner.name})"
        self.is_oblivious = inner.is_oblivious
        self.resamples = 0
        self.detours = 0
        self.unroutable = 0

    def _count(self, key: str, n: int = 1) -> None:
        if self.profiler is not None:
            self.profiler.count(f"faults.{key}", n)

    def batch_spec(self, problem: RoutingProblem):
        # Trivial faults: delegate wholesale — the batched engine then
        # produces byte-identical paths to the bare inner router.
        if self.faults.is_trivial:
            return self.inner.batch_spec(problem)
        return None

    def warmup_keys(self, problem: RoutingProblem) -> tuple:
        return self.inner.warmup_keys(problem)

    def planned_bits(self, problem: RoutingProblem, mode: str | None = None):
        # Budget costs are the inner router's: resampling re-pays the same
        # planned cost per extra selection (accounted in :meth:`route`).
        return self.inner.planned_bits(problem, mode)

    def budget_fallback_router(self):
        return self.inner.budget_fallback_router()

    def select_path(
        self, mesh: Mesh, s: int, t: int, rng: np.random.Generator
    ) -> np.ndarray:
        if self.faults.is_trivial:
            return self.inner.select_path(mesh, s, t, rng)
        path, _ = self._guarded(self.inner.select_path, mesh, s, t, rng)
        return path

    def _guarded(
        self,
        select,
        mesh: Mesh,
        s: int,
        t: int,
        rng: np.random.Generator,
        *,
        deterministic: bool = False,
    ) -> tuple[np.ndarray, int]:
        """Resample-then-detour around dead edges; returns ``(path, draws)``.

        ``draws`` counts the randomness-consuming selections made (budget
        accounting multiplies it by the packet's planned per-selection
        cost).  ``deterministic`` skips the resample loop — redrawing a
        deterministic path would yield the same dead edge — and goes
        straight from a blocked path to the BFS detour, consuming no bits.
        """
        alive = self.faults.edge_alive(self.at_step)
        path = select(mesh, s, t, rng)
        draws = 0 if deterministic else 1
        if not deterministic:
            for _ in range(self.max_resamples):
                if path.size < 2 or bool(
                    alive[mesh.edge_ids(path[:-1], path[1:])].all()
                ):
                    return path, draws
                # fresh bits from the same per-packet stream:
                # obliviousness holds
                self.resamples += 1
                self._count("resamples")
                path = select(mesh, s, t, rng)
                draws += 1
        if path.size < 2 or bool(alive[mesh.edge_ids(path[:-1], path[1:])].all()):
            return path, draws
        detour = shortest_alive_path(mesh, s, t, alive, profiler=self.profiler)
        if detour is None:
            self.unroutable += 1
            self._count("unroutable")
            err = FaultRoutingError(
                f"no alive path from {s} to {t} at step {self.at_step}"
            )
            err.draws = draws
            raise err
        self.detours += 1
        self._count("detours")
        return detour, draws

    def route(
        self,
        problem: RoutingProblem,
        seed: int | None = None,
        *,
        batch: bool | str = True,
        workers: int | None = 1,
        packet_offset: int = 0,
        budget=None,
    ) -> RoutingResult:
        """Route, dropping packets whose destinations are unreachable.

        With non-trivial faults, unreachable packets are excluded and the
        result is built on the routable subproblem; the number excluded
        accumulates in :attr:`unroutable`.  Whether a packet is kept
        depends only on its own stream and the static fault state, so
        sharded execution (``workers > 1``) keeps and routes exactly the
        serial packet set.

        Budget semantics under faults: degradation decisions are made
        *once* from the inner router's planned costs; every selection —
        including resamples — re-pays the packet's planned per-selection
        cost in ``bits_drawn``, while ``max_bits`` (what ``enforce``
        bounds) tracks the per-selection maximum.  Dimension-order-degraded
        packets are deterministic, so a blocked one goes straight to the
        zero-bit BFS detour instead of resampling.
        """
        params = BudgetParams.resolve(budget)
        if self.faults.is_trivial:
            return super().route(
                problem,
                seed=seed,
                batch=batch,
                workers=workers,
                packet_offset=packet_offset,
                budget=params,
            )
        if workers is not None and workers != 1:
            from repro.parallel import route_sharded

            return route_sharded(
                self,
                problem,
                seed,
                workers=workers,
                batch=batch,
                packet_offset=packet_offset,
                budget=params,
            )
        entropy = resolve_entropy(seed)
        n = problem.num_packets
        ledger = None
        plan = rec = None
        use_rec = use_dim = None
        fallback = None
        if params.active:
            ledger = params.make_ledger(problem.mesh, n)
            plan = self.inner.planned_bits(problem)
            if plan is None:
                ledger.unmetered = n
            else:
                plan = np.asarray(plan)
                ledger.metered = n
                if params.enforcing:
                    limit = params.limit_for(problem.mesh)
                    if bool((plan > limit).any()):
                        fallback = self.inner.budget_fallback_router()
                        rec = (
                            self.inner.planned_bits(problem, mode="recycled")
                            if fallback is not None
                            else None
                        )
                        _, use_rec, use_dim = degradation_plan(plan, rec, limit)
                        ledger.fallbacks_recycled = int(use_rec.sum())
                        ledger.fallbacks_dimorder = int(use_dim.sum())
        streams = packet_streams(
            entropy, packet_offset, packet_offset + problem.num_packets
        )
        mesh = problem.mesh
        order0 = tuple(range(mesh.d))

        def dim_select(m, a, b, _rng):
            return dimension_order_path(m, a, b, order0)

        paths, kept = [], []
        for i, ((s, t), stream) in enumerate(zip(problem.pairs(), streams)):
            if use_dim is not None and use_dim[i]:
                select, cost, det = dim_select, 0, True
            elif use_rec is not None and use_rec[i]:
                select, cost, det = fallback.select_path, int(rec[i]), False
            else:
                select = self.inner.select_path
                cost = int(plan[i]) if plan is not None and ledger.metered else 0
                det = False
            try:
                path, draws = self._guarded(
                    select, mesh, int(s), int(t), stream, deterministic=det
                )
            except FaultRoutingError as err:
                draws = getattr(err, "draws", 0)
                if ledger is not None and ledger.metered:
                    ledger.bits_drawn += cost * draws
                    if cost and draws:
                        ledger.max_bits = max(ledger.max_bits, cost)
                continue
            if ledger is not None and ledger.metered:
                ledger.bits_drawn += cost * draws
                if cost and draws:
                    ledger.max_bits = max(ledger.max_bits, cost)
            paths.append(path)
            kept.append(i)
        note_budget(self.profiler, ledger)
        if len(kept) == problem.num_packets:
            result = RoutingResult(problem, paths, self.name, entropy)
        else:
            kept_idx = np.asarray(kept, dtype=np.int64)
            sub = problem.subproblem(kept_idx)
            result = RoutingResult(
                sub, paths, self.name, entropy, kept_indices=kept_idx
            )
        result.budget = ledger
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultAwareRouter({self.inner!r}, {self.faults!r})"
