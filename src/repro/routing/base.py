"""Routing problems, results and the router protocol.

The *path selection problem* (Section 2): the input is the mesh ``M`` and a
set of ``N`` source/destination pairs ``Π = {(s_i, t_i)}``; the output is a
set of paths ``P = {p_i}`` with ``p_i`` from ``s_i`` to ``t_i``.  A routing
algorithm is **oblivious** when every path is chosen independently of every
other path — each packet's selection may see only its own (s, t) and its
own random bits.

:class:`Router.route` enforces that discipline for oblivious routers by
handing each packet an independent random stream; non-oblivious routers
(``is_oblivious = False``) override :meth:`Router.route` wholesale.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Sequence

import numpy as np

from repro.core.budget import (
    BitBudget,
    BudgetParams,
    degradation_plan,
    note_budget,
)
from repro.core.pathset import PathSet
from repro.core.randomness import packet_streams, resolve_entropy
from repro.mesh.mesh import Mesh
from repro.metrics.congestion import congestion as _congestion
from repro.metrics.congestion import edge_loads as _edge_loads
from repro.metrics.stretch import dilation as _dilation
from repro.metrics.stretch import stretch as _stretch
from repro.metrics.stretch import stretches as _stretches

__all__ = ["RoutingProblem", "RoutingResult", "Router"]


@dataclass(frozen=True)
class RoutingProblem:
    """A set of packet transfer requests ``Π`` on a mesh.

    ``sources[i]`` / ``dests[i]`` are flat node ids.  Problems are
    immutable; workload generators in :mod:`repro.workloads` build them.
    """

    mesh: Mesh
    sources: np.ndarray
    dests: np.ndarray
    name: str = "custom"

    def __post_init__(self):
        object.__setattr__(
            self, "sources", np.ascontiguousarray(self.sources, dtype=np.int64)
        )
        object.__setattr__(
            self, "dests", np.ascontiguousarray(self.dests, dtype=np.int64)
        )
        if self.sources.ndim != 1 or self.sources.shape != self.dests.shape:
            raise ValueError("sources and dests must be 1-D arrays of equal length")
        for arr, label in ((self.sources, "source"), (self.dests, "dest")):
            if arr.size and (arr.min() < 0 or arr.max() >= self.mesh.n):
                raise ValueError(f"{label} node id out of range")

    @property
    def num_packets(self) -> int:
        return int(self.sources.size)

    def __len__(self) -> int:
        return self.num_packets

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate (source, dest) pairs."""
        return zip(self.sources.tolist(), self.dests.tolist())

    @cached_property
    def distances(self) -> np.ndarray:
        """Per-packet shortest-path distances ``dist(s_i, t_i)``."""
        if self.num_packets == 0:
            return np.empty(0, dtype=np.int64)
        return np.asarray(self.mesh.distance(self.sources, self.dests))

    @property
    def max_distance(self) -> int:
        """``D`` of Section 2: the maximum shortest distance of any packet."""
        return int(self.distances.max()) if self.num_packets else 0

    def subproblem(self, indices: Sequence[int] | np.ndarray, name: str | None = None) -> "RoutingProblem":
        """Restriction of the problem to the selected packets."""
        idx = np.asarray(indices, dtype=np.int64)
        return RoutingProblem(
            self.mesh,
            self.sources[idx],
            self.dests[idx],
            name or f"{self.name}[{idx.size}]",
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_packets} packets on {self.mesh!r}, "
            f"D = {self.max_distance}"
        )


@dataclass
class RoutingResult:
    """Selected paths plus lazily computed quality metrics.

    ``paths`` is stored as a columnar :class:`~repro.core.pathset.PathSet`
    (any ``list[np.ndarray]`` passed in is converted); the ``Sequence``
    protocol keeps ``result.paths[i]`` / iteration working as before while
    metrics run as array passes over the shared CSR views.
    """

    problem: RoutingProblem
    paths: PathSet
    router_name: str
    seed: int | None = None
    #: when a router dropped packets (fault-aware routing), the indices of
    #: the kept packets in the *original* problem; ``None`` = all kept.
    #: Shard merging needs this to reassemble the global kept set.
    kept_indices: np.ndarray | None = field(default=None, repr=False)
    #: randomness-budget ledger (:class:`~repro.core.budget.BitBudget`)
    #: when the run was metered; ``None`` under budget mode ``off``
    budget: BitBudget | None = field(default=None, repr=False)
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        self.paths = PathSet.from_paths(self.paths)
        if len(self.paths) != self.problem.num_packets:
            raise ValueError("one path per packet required")

    # -- metrics -------------------------------------------------------
    @property
    def edge_loads(self) -> np.ndarray:
        if "edge_loads" not in self._cache:
            self._cache["edge_loads"] = _edge_loads(self.problem.mesh, self.paths)
        return self._cache["edge_loads"]

    @property
    def congestion(self) -> int:
        """``C``: the maximum number of paths over any edge."""
        if "congestion" not in self._cache:
            loads = self.edge_loads
            self._cache["congestion"] = int(loads.max()) if loads.size else 0
        return self._cache["congestion"]

    @property
    def dilation(self) -> int:
        """``D``: the maximum path length."""
        if "dilation" not in self._cache:
            self._cache["dilation"] = _dilation(self.paths)
        return self._cache["dilation"]

    @property
    def stretches(self) -> np.ndarray:
        if "stretches" not in self._cache:
            self._cache["stretches"] = _stretches(
                self.problem.mesh, self.problem.sources, self.problem.dests, self.paths
            )
        return self._cache["stretches"]

    @property
    def stretch(self) -> float:
        """``stretch(P)``: the maximum per-packet stretch."""
        if "stretch" not in self._cache:
            self._cache["stretch"] = _stretch(
                self.problem.mesh, self.problem.sources, self.problem.dests, self.paths
            )
        return self._cache["stretch"]

    @property
    def total_path_length(self) -> int:
        return int(self.paths.lengths.sum())

    def validate(self) -> bool:
        """Every path is a mesh walk from its source to its destination.

        One array pass over the CSR views: endpoint checks by gather, link
        checks by a single vectorised ``Mesh.edge_ids`` call on the flat
        edge streams.
        """
        mesh = self.problem.mesh
        ps = self.paths
        if np.any(ps.nodes_per_path == 0):
            return False
        if ps.total_nodes and (
            int(ps.nodes.min()) < 0 or int(ps.nodes.max()) >= mesh.n
        ):
            return False
        firsts = ps.nodes[ps.offsets[:-1]]
        lasts = ps.nodes[ps.offsets[1:] - 1]
        if not (
            np.array_equal(firsts, self.problem.sources)
            and np.array_equal(lasts, self.problem.dests)
        ):
            return False
        try:
            ps.edge_ids(mesh)
        except ValueError:
            return False
        return True

    def summary(self) -> str:
        return (
            f"{self.router_name} on {self.problem.name}: C={self.congestion} "
            f"D={self.dilation} stretch={self.stretch:.2f}"
        )


class Router(ABC):
    """Base class for path-selection algorithms.

    Oblivious routers implement :meth:`select_path`; the per-packet half of
    :meth:`route` calls it once per packet with an independently seeded
    generator, making the "each path chosen independently" property
    structural rather than a convention.

    Routers whose path distribution fits the batched engine
    (:mod:`repro.routing.engine`) additionally implement
    :meth:`batch_spec`; :meth:`route` then assembles all paths array-wise.
    The batched protocol draws fixed, mesh-determined shapes per packet, so
    packet ``i``'s path still depends only on ``(seed, i, s_i, t_i)`` —
    obliviousness is preserved, but the random *stream* differs from the
    per-packet spawn protocol (pass ``batch=False`` for the legacy one).
    """

    #: human-readable identifier used in tables and the registry
    name: str = "router"
    #: whether paths are chosen independently per packet
    is_oblivious: bool = True
    #: optional :class:`repro.obs.Profiler`; attach to time route() stages
    profiler = None

    @abstractmethod
    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        """Select a path from ``s`` to ``t`` using only ``rng``'s bits."""

    def batch_spec(self, problem: RoutingProblem):
        """A :class:`repro.routing.engine.BatchSpec` when this router can be
        routed by the batched engine on this problem, else ``None``.

        The default is ``None``: exotic routers keep the per-packet loop.
        """
        return None

    def planned_bits(self, problem: RoutingProblem, mode: str | None = None):
        """Deterministic planned random-bit cost per packet, or ``None``.

        ``mode=None`` asks for the cost of this router's *own* randomness
        scheme; ``mode="recycled"`` for the cost it would pay degraded to
        the Section 5.3 recycled scheme.  The default ``None`` marks the
        router *unmetered*: budget accounting records its packets in the
        ``unmetered`` column and never enforces against them (the
        documented fallback mode).
        """
        return None

    def budget_fallback_router(self):
        """A recycled-bit clone for budget degradation, or ``None``.

        Routers with no recycled scheme return ``None``; over-budget
        packets then degrade straight to dimension-order.
        """
        return None

    def warmup_keys(self, problem: RoutingProblem) -> tuple:
        """Picklable cache keys a shard worker should warm before routing.

        The sharded executor (:mod:`repro.parallel`) ships these to each
        worker process, which rebuilds the named decompositions once via
        :func:`repro.cache.warm` instead of racing to build them mid-route.
        Routers that consume no shared decomposition return ``()``.
        """
        return ()

    def route(
        self,
        problem: RoutingProblem,
        seed: int | None = None,
        *,
        batch: bool | str = True,
        workers: int | None = 1,
        packet_offset: int = 0,
        budget=None,
    ) -> RoutingResult:
        """Route every packet of ``problem`` independently.

        ``batch=True`` uses the vectorised engine when :meth:`batch_spec`
        offers one; ``batch="loop"`` runs the engine's scalar reference
        assembly (byte-identical paths, for testing); ``batch=False``
        forces the legacy per-packet stream loop.

        ``workers`` selects sharded execution (:mod:`repro.parallel`):
        ``1`` routes in-process, ``N > 1`` splits the problem over ``N``
        worker processes, ``None``/``0`` uses one worker per CPU.  Every
        per-packet stream is keyed by the packet's *global* index
        (``packet_offset`` plus its row), so the merged result is
        byte-identical to the serial one for every worker count.
        ``packet_offset`` is that global base index — shard workers set it;
        top-level callers leave it at 0.

        ``budget`` makes the per-packet randomness budget first class
        (:mod:`repro.core.budget`): ``None`` reads ``REPRO_BUDGET`` from
        the environment, a mode string or int bit ceiling or
        :class:`~repro.core.budget.BudgetParams` configures it directly.
        Metered runs attach a :class:`~repro.core.budget.BitBudget` ledger
        to the result; ``enforce`` degrades over-budget packets down the
        deterministic recycled/dimension-order ladder.
        """
        if not isinstance(batch, bool) and batch != "loop":
            raise ValueError(f"unknown batch mode {batch!r}; use True, False or 'loop'")
        params = BudgetParams.resolve(budget)
        if workers is not None and workers != 1:
            from repro.parallel import route_sharded

            return route_sharded(
                self,
                problem,
                seed,
                workers=workers,
                batch=batch,
                packet_offset=packet_offset,
                budget=params,
            )
        entropy = resolve_entropy(seed)
        profiler = self.profiler
        if batch:
            with profiler.stage("engine.sequence") if profiler else _nullcontext():
                spec = self.batch_spec(problem)
            if spec is not None:
                from repro.routing.engine import run_batch

                spec.packet_offset = packet_offset
                mode = "loop" if batch == "loop" else "array"
                return run_batch(
                    self, spec, problem, entropy, assemble=mode, budget=params
                )

        # Per-packet scalar branch, with the same metering/enforcement the
        # engine applies array-wise.
        ledger = None
        decisions = None
        fallback = None
        if params.active:
            n = problem.num_packets
            ledger = params.make_ledger(problem.mesh, n)
            plan = self.planned_bits(problem)
            if plan is None:
                ledger.unmetered = n
            else:
                plan = np.asarray(plan)
                ledger.metered = n
                paid = plan
                if params.enforcing:
                    limit = params.limit_for(problem.mesh)
                    ledger.limit = limit
                    if bool((plan > limit).any()):
                        fallback = self.budget_fallback_router()
                        recycled = (
                            self.planned_bits(problem, mode="recycled")
                            if fallback is not None
                            else None
                        )
                        decisions = degradation_plan(plan, recycled, limit)
                        ok, use_rec, use_dim = decisions
                        paid = np.where(
                            ok,
                            plan,
                            np.where(use_rec, recycled, 0)
                            if recycled is not None
                            else 0,
                        )
                        ledger.fallbacks_recycled = int(use_rec.sum())
                        ledger.fallbacks_dimorder = int(use_dim.sum())
                ledger.bits_drawn = int(np.sum(paid))
                ledger.max_bits = int(np.max(paid)) if n else 0
            note_budget(profiler, ledger)
        streams = packet_streams(
            entropy, packet_offset, packet_offset + problem.num_packets
        )
        with profiler.stage("route.select_loop") if profiler else _nullcontext():
            if decisions is None:
                paths = [
                    self.select_path(problem.mesh, int(s), int(t), stream)
                    for (s, t), stream in zip(problem.pairs(), streams)
                ]
            else:
                from repro.mesh.paths import dimension_order_path

                ok, use_rec, use_dim = decisions
                order0 = tuple(range(problem.mesh.d))
                paths = []
                for i, ((s, t), stream) in enumerate(
                    zip(problem.pairs(), streams)
                ):
                    if use_rec[i]:
                        paths.append(
                            fallback.select_path(problem.mesh, int(s), int(t), stream)
                        )
                    elif use_dim[i]:
                        paths.append(
                            dimension_order_path(problem.mesh, int(s), int(t), order0)
                        )
                    else:
                        paths.append(
                            self.select_path(problem.mesh, int(s), int(t), stream)
                        )
        if profiler is not None:
            profiler.count("route.packets", problem.num_packets)
        result = RoutingResult(problem, paths, self.name, entropy)
        result.budget = ledger
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
