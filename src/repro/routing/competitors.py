"""Competitor oblivious routers on general weighted graphs.

The paper's hierarchical scheme is optimal on the mesh; this module
implements the two successor schemes ROADMAP item 3 benchmarks it
against, both behind the standard :class:`~repro.routing.base.Router`
interface and both topology-generic (they run on any
:class:`~repro.mesh.graph.GeneralGraph` as well as on ``Mesh``/torus):

* :class:`SemiObliviousRouter` — the "few random paths suffice" regime
  (Zuzic et al.): per packet, sample ``candidates`` perturbed-weight
  shortest paths from the packet's seeded stream and keep the one with
  the smallest shortest-path load potential.  Every sampled candidate is
  a shortest path under weights inflated by at most ``1 + eps``, so the
  *weighted* stretch is bounded by ``1 + eps`` by construction.
* :class:`RackeTreeRouter` — Räcke–Schmid-style compact tree routing: a
  recursive balanced bipartition of the node set is built once per graph
  (cached through :mod:`repro.cache`), every node stores only its
  root-to-leaf chain of cluster centers (:class:`RackeNodeTable`,
  serialized in the :mod:`repro.core.compact` style), and ``s -> t``
  routes along the tree-induced waypoint sequence.  Fully deterministic:
  zero random bits per packet.

Both routers key every random draw off the per-packet stream handed in by
``Router.route`` (global-index spawn protocol), so results are
byte-identical across worker counts and replayable by the differential
oracles in :mod:`repro.verify.oracles`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.randomness import bits_for_range
from repro.mesh.paths import remove_cycles
from repro.routing.base import Router, RoutingProblem

__all__ = [
    "SemiObliviousRouter",
    "RackeTreeRouter",
    "RackeNodeTable",
    "node_table",
    "state_bits_per_node",
    "graph_weights",
]

#: splitmix64-style mixing constants for the per-salt weight perturbation
_GOLD = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def graph_weights(mesh) -> np.ndarray:
    """Edge length vector of any topology: ``weights`` if present (a
    ``GeneralGraph``), else all-ones (a unit-weight ``Mesh``)."""
    w = getattr(mesh, "weights", None)
    if w is None:
        return np.ones(mesh.num_edges, dtype=np.float64)
    return np.asarray(w, dtype=np.float64)


def _salt_uniforms(eids: np.ndarray, salt: int) -> np.ndarray:
    """Deterministic uniforms in ``[0, 1)`` per (edge id, salt).

    A splitmix64-style finalizer over the pair — *not* a stream from the
    packet rng, so two packets drawing the same salt perturb the weights
    identically (the obliviousness contract: the path depends only on the
    drawn salt, never on hidden per-packet state).  The scalar oracle in
    :mod:`repro.verify.oracles` reimplements this with plain ints.
    """
    e = eids.astype(np.uint64)
    r = np.uint64((salt + 1) & _MASK64)
    with np.errstate(over="ignore"):
        x = (e + np.uint64(1)) * np.uint64(_GOLD)
        x = x ^ (r * np.uint64(_MIX1))
        x = x ^ (x >> np.uint64(30))
        x = x * np.uint64(_MIX1)
        x = x ^ (x >> np.uint64(27))
        x = x * np.uint64(_MIX2)
        x = x ^ (x >> np.uint64(31))
    return (x >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


class _GraphTables:
    """Per-topology derived state shared by both competitor routers.

    Built lazily and memoised per graph object via :func:`_tables`; holds
    the weighted sparse matrix, the base all-pairs Dijkstra distances, the
    deterministic shortest-path load potential, and per-salt perturbation
    caches.  Everything here is a pure function of ``(graph, weights)``.
    """

    def __init__(self, mesh):
        self.mesh = mesh
        self.weights = graph_weights(mesh)
        self.indptr, self.heads, self.eids = mesh.adjacency_csr()
        ep = mesh.edge_endpoints
        self._rows = np.concatenate((ep[:, 0], ep[:, 1]))
        self._cols = np.concatenate((ep[:, 1], ep[:, 0]))
        self._salt_weights: dict[int, np.ndarray] = {}
        self._dist_rows: dict[tuple[int, int], np.ndarray] = {}
        self._leg_cache: dict[tuple[int, int], list[int]] = {}
        self._dist = None
        self._potential = None
        self._chains = None

    def _sparse(self, undirected_weights: np.ndarray):
        from scipy.sparse import csr_matrix

        data = np.concatenate((undirected_weights, undirected_weights))
        return csr_matrix(
            (data, (self._rows, self._cols)), shape=(self.mesh.n, self.mesh.n)
        )

    @property
    def dist(self) -> np.ndarray:
        """Base-weight all-pairs shortest-path distances (float64)."""
        if self._dist is None:
            from scipy.sparse.csgraph import dijkstra

            self._dist = dijkstra(self._sparse(self.weights))
        return self._dist

    def salt_weights(self, salt: int) -> np.ndarray:
        """Undirected edge weights perturbed by ``salt``:
        ``w' = w * (1 + eps_max * u(e, salt))`` with ``eps_max = 0.25``."""
        w = self._salt_weights.get(salt)
        if w is None:
            u = _salt_uniforms(np.arange(self.mesh.num_edges), salt)
            w = self.weights * (1.0 + 0.25 * u)
            self._salt_weights[salt] = w
        return w

    def dist_row(self, salt: int, s: int) -> np.ndarray:
        """Single-source Dijkstra distances under the salted weights."""
        key = (salt, s)
        row = self._dist_rows.get(key)
        if row is None:
            from scipy.sparse.csgraph import dijkstra

            row = dijkstra(self._sparse(self.salt_weights(salt)), indices=s)
            self._dist_rows[key] = row
        return row

    def walk_back(
        self, dist: np.ndarray, edge_w: np.ndarray, s: int, t: int
    ) -> list[int]:
        """Min-id shortest path ``s -> t`` from a distance row.

        At every step pick the smallest-id neighbor ``u`` of the current
        node with ``dist[u] < dist[cur]`` and ``dist[u] + w(u, cur) ==
        dist[cur]``; ``dist`` strictly decreases, so the walk terminates.
        The float comparison is exact: each candidate is the very
        ``fl(dist[u] + w)`` the Dijkstra relaxation computed.
        """
        rev = [t]
        cur = t
        while cur != s:
            lo, hi = self.indptr[cur], self.indptr[cur + 1]
            nbrs = self.heads[lo:hi]
            ws = edge_w[self.eids[lo:hi]]
            ok = (dist[nbrs] < dist[cur]) & (dist[nbrs] + ws == dist[cur])
            if not ok.any():  # pragma: no cover - guarded by connectivity
                raise RuntimeError("no shortest-path predecessor found")
            cur = int(nbrs[ok].min())
            rev.append(cur)
        return rev[::-1]

    @property
    def potential(self) -> np.ndarray:
        """Shortest-path load potential: ``pot[e]`` counts ordered pairs
        ``(s, t)`` whose canonical min-id shortest path crosses ``e``.

        A deterministic, integer-valued stand-in for edge betweenness —
        no float accumulation and no dependence on library internals, so
        golden hashes over it are stable everywhere.  Computed per source
        by min-id predecessor trees plus subtree-count accumulation.
        """
        if self._potential is not None:
            return self._potential
        mesh = self.mesh
        n = mesh.n
        tails = self._rows
        heads = self._cols
        dw = np.concatenate((self.weights, self.weights))
        pot = np.zeros(mesh.num_edges, dtype=np.int64)
        nodes = np.arange(n, dtype=np.int64)
        for s in range(n):
            d = self.dist[s]
            ok = (d[tails] < d[heads]) & (d[tails] + dw == d[heads])
            parent = np.full(n, n, dtype=np.int64)
            np.minimum.at(parent, heads[ok], tails[ok])
            parent[s] = -1
            if int(parent.max()) >= n:  # pragma: no cover
                raise RuntimeError("disconnected shortest-path tree")
            count = np.ones(n, dtype=np.int64)
            count[s] = 0
            for v in np.argsort(-d, kind="stable").tolist():
                p = parent[v]
                if p >= 0:
                    count[p] += count[v]
            nonroot = nodes != s
            pe = mesh.edge_ids(parent[nonroot], nodes[nonroot])
            np.add.at(pot, pe, count[nonroot])
        self._potential = pot
        return pot

    @property
    def chains(self) -> list[tuple[int, ...]]:
        """Root-to-leaf center chains of the balanced decomposition tree.

        Each cluster's *center* is its member minimizing the maximum
        base-weight distance to the cluster (ties: smallest id).  Clusters
        split in half around the member farthest from the center, members
        sorted by (distance-to-pivot, id) — a deterministic balanced-cut
        recursion with depth ``O(log n)``.  ``chains[v][-1] == v``.
        """
        if self._chains is not None:
            return self._chains
        dist = self.dist
        chains: list[tuple[int, ...]] = [()] * self.mesh.n

        def recurse(cluster: list[int], ancestors: tuple[int, ...]) -> None:
            sub = dist[np.ix_(cluster, cluster)]
            center = cluster[
                int(np.lexsort((cluster, sub.max(axis=1)))[0])
            ]
            chain = ancestors + (center,)
            if len(cluster) == 1:
                chains[cluster[0]] = chain
                return
            ci = cluster.index(center)
            pivot = cluster[int(np.lexsort((cluster, -sub[ci]))[0])]
            pi = cluster.index(pivot)
            order = np.lexsort((cluster, sub[pi]))
            half = (len(cluster) + 1) // 2
            left = [cluster[i] for i in order[:half].tolist()]
            right = [cluster[i] for i in order[half:].tolist()]
            recurse(left, chain)
            recurse(right, chain)

        recurse(list(range(self.mesh.n)), ())
        self._chains = chains
        return chains

    def tree_leg(self, a: int, b: int) -> list[int]:
        """Canonical min-id base-weight shortest path ``a -> b`` (cached)."""
        leg = self._leg_cache.get((a, b))
        if leg is None:
            leg = self.walk_back(self.dist[a], self.weights, a, b)
            self._leg_cache[(a, b)] = leg
        return leg


def _tables(mesh) -> _GraphTables:
    from repro import cache

    return cache.memo("competitor-tables", mesh, lambda: _GraphTables(mesh))


def tree_waypoints(mesh, s: int, t: int) -> list[int]:
    """The decomposition-tree waypoint sequence ``s -> ... -> t``:
    cluster centers up from ``s``'s leaf to the lowest common cluster,
    then down to ``t``'s leaf, consecutive duplicates removed."""
    tbl = _tables(mesh)
    cs, ct = tbl.chains[s], tbl.chains[t]
    pre = 0
    for a, b in zip(cs, ct):
        if a != b:
            break
        pre += 1
    raw = list(cs[pre - 1 :][::-1]) + list(ct[pre:])
    way = [raw[0]]
    for w in raw[1:]:
        if w != way[-1]:
            way.append(w)
    return way


class SemiObliviousRouter(Router):
    """Sparse semi-oblivious routing: few random paths suffice.

    Per packet, draw ``candidates`` salts from the packet stream; each
    salt deterministically perturbs every edge weight by a factor in
    ``[1, 1 + eps)``, and the candidate is the canonical min-id shortest
    path under the salted weights.  The router keeps the candidate whose
    edges carry the smallest precomputed shortest-path load potential
    (max, then sum, then draw order) — the congestion-aware *selection*
    is offline state, the randomness is purely in the sampling, so packet
    ``i``'s path still depends only on ``(seed, i, s_i, t_i)``.
    """

    name = "semi-oblivious"
    is_oblivious = True

    def __init__(self, *, candidates: int = 4, eps: float = 0.25):
        if candidates < 1:
            raise ValueError("need at least one candidate")
        self.candidates = int(candidates)
        self.eps = float(eps)

    def select_path(self, mesh, s: int, t: int, rng: np.random.Generator):
        if s == t:
            return np.asarray([s], dtype=np.int64)
        tbl = _tables(mesh)
        salts = rng.integers(0, mesh.n, size=self.candidates)
        pot = tbl.potential
        best = None
        best_path = None
        for j, salt in enumerate(salts.tolist()):
            salt = int(salt)
            path = tbl.walk_back(
                tbl.dist_row(salt, s), tbl.salt_weights(salt), s, t
            )
            arr = np.asarray(path, dtype=np.int64)
            loads = pot[mesh.edge_ids(arr[:-1], arr[1:])]
            score = (int(loads.max()), int(loads.sum()), j)
            if best is None or score < best:
                best = score
                best_path = arr
        return best_path

    def planned_bits(self, problem: RoutingProblem, mode: str | None = None):
        if mode == "recycled":
            # The degradation ladder re-routes over-budget packets through
            # the zero-bit tree router, so the recycled cost is 0.
            return np.zeros(problem.num_packets, dtype=np.int64)
        cost = self.candidates * bits_for_range(problem.mesh.n)
        return np.where(
            problem.sources != problem.dests, cost, 0
        ).astype(np.int64)

    def budget_fallback_router(self):
        return RackeTreeRouter()


class RackeTreeRouter(Router):
    """Räcke-style compact tree routing: deterministic, zero random bits.

    ``s -> t`` walks the decomposition tree's waypoint sequence
    (:func:`tree_waypoints`); each consecutive waypoint pair is joined by
    the canonical min-id shortest path under the base weights, and any
    revisits are shortcut out.  The per-node routing state is just the
    root-to-leaf center chain — ``O(log n)`` node ids, serialized by
    :class:`RackeNodeTable`.
    """

    name = "racke-tree"
    is_oblivious = True

    def select_path(self, mesh, s: int, t: int, rng=None):
        if s == t:
            return np.asarray([s], dtype=np.int64)
        tbl = _tables(mesh)
        path: list[int] = [s]
        way = tree_waypoints(mesh, s, t)
        for a, b in zip(way, way[1:]):
            path.extend(tbl.tree_leg(a, b)[1:])
        return remove_cycles(np.asarray(path, dtype=np.int64))

    def planned_bits(self, problem: RoutingProblem, mode: str | None = None):
        return np.zeros(problem.num_packets, dtype=np.int64)


# ----------------------------------------------------------------------
# Compact per-node state (mirrors repro.core.compact)
# ----------------------------------------------------------------------
_MAGIC = b"RKT1"


@dataclass(frozen=True)
class RackeNodeTable:
    """The complete per-node routing state of :class:`RackeTreeRouter`.

    A node stores only its root-to-leaf chain of cluster centers; two
    tables suffice to reconstruct the waypoint sequence between their
    nodes (longest common prefix = lowest common cluster).

    >>> t = RackeNodeTable(n=8, node=3, centers=(0, 2, 3))
    >>> RackeNodeTable.from_bytes(t.to_bytes()) == t
    True
    """

    n: int
    node: int
    centers: tuple[int, ...]

    def __post_init__(self):
        if not self.centers or self.centers[-1] != self.node:
            raise ValueError("chain must end at the node itself")

    def to_bytes(self) -> bytes:
        depth = len(self.centers)
        out = [struct.pack("<4sIIH", _MAGIC, self.n, self.node, depth)]
        out.append(struct.pack(f"<{depth}I", *self.centers))
        return b"".join(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RackeNodeTable":
        head = struct.calcsize("<4sIIH")
        magic, n, node, depth = struct.unpack_from("<4sIIH", blob, 0)
        if magic != _MAGIC:
            raise ValueError("bad magic: not a RackeNodeTable blob")
        centers = struct.unpack_from(f"<{depth}I", blob, head)
        if len(blob) != head + struct.calcsize(f"<{depth}I"):
            raise ValueError("trailing bytes after RackeNodeTable blob")
        return cls(n=n, node=node, centers=tuple(int(c) for c in centers))


def node_table(mesh, node: int) -> RackeNodeTable:
    """The serialized routing state :class:`RackeTreeRouter` keeps at
    ``node`` on this topology."""
    if not (0 <= node < mesh.n):
        raise ValueError("node id out of range")
    return RackeNodeTable(
        n=mesh.n, node=node, centers=_tables(mesh).chains[node]
    )


def state_bits_per_node(mesh) -> int:
    """Worst-case serialized size (in bits) of any node's routing state."""
    return 8 * max(
        len(node_table(mesh, v).to_bytes()) for v in range(mesh.n)
    )
