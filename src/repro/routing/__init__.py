"""Routers and routing problems.

:class:`~repro.routing.base.RoutingProblem` bundles a mesh with the packet
(source, destination) pairs; a :class:`~repro.routing.base.Router` turns a
problem into a :class:`~repro.routing.base.RoutingResult` holding the
selected paths and lazily computed quality metrics.

The paper's algorithm lives in :mod:`repro.core.path_selection`
(:class:`~repro.core.path_selection.HierarchicalRouter`); this package
provides the protocol plus every comparison baseline:

* :class:`DimensionOrderRouter` — deterministic XY / e-cube routing;
* :class:`RandomDimOrderRouter` — a random dimension order per packet;
* :class:`ValiantRouter` — routing through a uniformly random intermediate
  node (Valiant & Brebner [14]);
* :class:`AccessTreeRouter` — the hierarchy *without* bridge submeshes,
  i.e. the access tree of Maggs et al. [9] (the paper's key ablation);
* :class:`ShortestPathRouter` — deterministic shortest paths (networkx);
* :class:`GreedyMinCongestionRouter` — offline, non-oblivious greedy that
  routes each packet on a minimum-load path given all previous choices;
* :class:`KChoiceRouter` — restrict any oblivious router to κ path choices
  per pair (the Section 5.1 randomization-measuring formalism).

Baseline classes are imported lazily (PEP 562) because
:class:`AccessTreeRouter` builds on the core router, which itself depends
on :mod:`repro.routing.base`.
"""

from repro.routing.base import Router, RoutingProblem, RoutingResult

__all__ = [
    "Router",
    "RoutingProblem",
    "RoutingResult",
    "DimensionOrderRouter",
    "RandomDimOrderRouter",
    "ValiantRouter",
    "AccessTreeRouter",
    "ShortestPathRouter",
    "GreedyMinCongestionRouter",
    "KChoiceRouter",
    "available_routers",
    "make_router",
]

_BASELINE_NAMES = {
    "DimensionOrderRouter",
    "RandomDimOrderRouter",
    "ValiantRouter",
    "AccessTreeRouter",
    "ShortestPathRouter",
    "GreedyMinCongestionRouter",
}
_REGISTRY_NAMES = {"available_routers", "make_router"}


def __getattr__(name: str):
    if name == "KChoiceRouter":
        from repro.routing.kchoice import KChoiceRouter

        return KChoiceRouter
    if name in _BASELINE_NAMES:
        from repro.routing import baselines

        return getattr(baselines, name)
    if name in _REGISTRY_NAMES:
        from repro.routing import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
