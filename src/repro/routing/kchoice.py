"""κ-choice routers (Section 5.1).

The paper measures randomization in *path choices*: "a path selection
algorithm A is a κ-choice algorithm if for every source-destination pair
(s, t), A chooses the resulting path from κ possible different paths",
i.e. ``log2 κ`` random bits per packet.  κ = 1 is deterministic; the
hierarchical router is effectively κ-choice for a large κ.

:class:`KChoiceRouter` turns any oblivious router into a κ-choice one: the
menu of κ paths for a pair is generated *deterministically from (s, t)* by
running the base router with derived seeds, and each packet picks uniformly
from its menu.  This makes Lemma 5.1 empirically sweepable: on the
adversarial instance ``Π_A``, expected congestion is at least
``l / (d κ)`` — interpolating between the forced congestion of
deterministic routing (κ = 1) and the ``O(B log n)`` of full randomization.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh
from repro.routing.base import Router

__all__ = ["KChoiceRouter"]


class KChoiceRouter(Router):
    """Restrict an oblivious router to κ path choices per pair.

    Parameters
    ----------
    base:
        The oblivious router whose paths populate the menus.
    k:
        Number of choices per (s, t) pair (κ >= 1).
    menu_seed:
        Seed of the deterministic menu construction.  Menus depend only on
        (s, t, menu_seed) — crucially *not* on the per-packet stream — so
        an adversary who knows the algorithm can enumerate them, exactly
        the Section 5.1 threat model.
    """

    is_oblivious = True

    def __init__(self, base: Router, k: int, *, menu_seed: int = 0):
        if k < 1:
            raise ValueError("k must be >= 1")
        if not base.is_oblivious:
            raise ValueError("the base router must be oblivious")
        self.base = base
        self.k = int(k)
        self.menu_seed = int(menu_seed)
        self.name = f"{base.name}[k={k}]"
        self._menus: dict[tuple[Mesh, int, int], list[np.ndarray]] = {}

    def menu(self, mesh: Mesh, s: int, t: int) -> list[np.ndarray]:
        """The κ candidate paths for pair (s, t), deterministic in (s, t)."""
        key = (mesh, s, t)
        cached = self._menus.get(key)
        if cached is not None:
            return cached
        paths = []
        for i in range(self.k):
            rng = np.random.default_rng(
                (self.menu_seed, s, t, i)  # SeedSequence-style entropy tuple
            )
            paths.append(self.base.select_path(mesh, s, t, rng))
        self._menus[key] = paths
        return paths

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        choices = self.menu(mesh, s, t)
        return choices[int(rng.integers(self.k))]

    def random_bits_per_packet(self) -> float:
        """``log2 κ`` — the randomness budget of Section 5."""
        return float(np.log2(self.k))
