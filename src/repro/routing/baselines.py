"""Baseline routers the paper compares against (explicitly or implicitly).

* :class:`DimensionOrderRouter` — deterministic dimension-by-dimension
  (XY / e-cube) shortest paths.  Stretch 1, but deterministic oblivious
  routing has unavoidable ``Ω(sqrt(n)/d)``-type congestion on worst-case
  permutations (Section 5.1; Borodin-Hopcroft / Kaklamanis et al.).
* :class:`RandomDimOrderRouter` — same, with a random dimension order per
  packet.  Still stretch 1; the randomization spreads load across the
  ``d!`` staircase paths (the ingredient the paper says improves Maggs et
  al. by a factor of ``d``).
* :class:`ValiantRouter` — route to a uniformly random intermediate node,
  then to the destination (Valiant & Brebner [14]).  Good congestion on
  permutations, but stretch ``Θ(m)`` for nearby pairs — the unbounded
  stretch the paper criticises.
* :class:`AccessTreeRouter` — the hierarchical scheme *without* bridges:
  exactly the access tree of Maggs et al. [9].  Near-optimal congestion but
  unbounded stretch (adjacent nodes straddling the top-level cut travel
  ``Θ(m)``).
* :class:`ShortestPathRouter` — one fixed shortest path per pair (networkx
  bidirectional search on the mesh graph); deterministic, minimal stretch.
* :class:`GreedyMinCongestionRouter` — an *offline, non-oblivious*
  sequential heuristic: each packet takes a path minimising the current
  maximum load (Dijkstra over congestion-aware weights).  Stands in for the
  offline algorithms of [1, 2, 12, 13] when we report "oblivious is within
  a log factor of offline".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.mesh.paths import concatenate_paths, dimension_order_path, remove_cycles
from repro.routing.base import Router, RoutingProblem, RoutingResult

__all__ = [
    "DimensionOrderRouter",
    "RandomDimOrderRouter",
    "ValiantRouter",
    "AccessTreeRouter",
    "ShortestPathRouter",
    "GreedyMinCongestionRouter",
]


def _stageless_spec(problem: RoutingProblem, dim_order: str, fixed_order=None):
    """A :class:`BatchSpec` with zero inner boxes: a single dimension-order
    subpath from source to destination (the dim-order router family)."""
    from repro.routing.engine import BatchSpec

    mesh = problem.mesh
    N = problem.num_packets
    return BatchSpec(
        mesh=mesh,
        coords_s=np.atleast_2d(mesh.flat_to_coords(problem.sources)),
        coords_t=np.atleast_2d(mesh.flat_to_coords(problem.dests)),
        box_lo=np.empty((N, 0, mesh.d), dtype=np.int64),
        box_len=np.empty((N, 0, mesh.d), dtype=np.int64),
        dim_order=dim_order,
        fixed_order=tuple(fixed_order) if fixed_order is not None else None,
        drop_cycles=False,  # a single dimension-order subpath never cycles
    )


class DimensionOrderRouter(Router):
    """Deterministic dimension-order (XY / e-cube) routing."""

    is_oblivious = True

    def __init__(self, order: Sequence[int] | None = None):
        self.order = tuple(order) if order is not None else None
        suffix = "" if order is None else "-" + "".join(map(str, self.order))
        self.name = f"dim-order{suffix}"

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        return dimension_order_path(mesh, s, t, self.order)

    def batch_spec(self, problem: RoutingProblem):
        if problem.mesh.torus:
            return None
        return _stageless_spec(problem, "fixed", fixed_order=self.order)

    def planned_bits(self, problem: RoutingProblem, mode: str | None = None):
        # Deterministic: zero random bits in every mode.
        return np.zeros(problem.num_packets, dtype=np.int64)


class RandomDimOrderRouter(Router):
    """Dimension-order routing with a random permutation per packet."""

    is_oblivious = True
    name = "random-dim-order"

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        order = tuple(int(x) for x in rng.permutation(mesh.d))
        return dimension_order_path(mesh, s, t, order)

    def batch_spec(self, problem: RoutingProblem):
        if problem.mesh.torus:
            return None
        # "shared" = one random ordering per packet; with a single subpath
        # that is exactly "a random permutation per packet".
        return _stageless_spec(problem, "shared")

    def planned_bits(self, problem: RoutingProblem, mode: str | None = None):
        from repro.core.budget import perm_bits

        pb = perm_bits(problem.mesh.d)
        return np.where(problem.sources != problem.dests, pb, 0).astype(np.int64)


class ValiantRouter(Router):
    """Valiant-Brebner two-phase routing via a random intermediate node.

    Both phases use (independently) random dimension orders, matching the
    randomized-dimension-routing convention of the other routers.
    """

    is_oblivious = True
    name = "valiant"
    #: the analyzer contract: every subpath uses a fresh random dim order
    dim_order = "random"

    def __init__(self, *, drop_cycles: bool = True):
        self.drop_cycles = drop_cycles

    def submesh_sequence(self, mesh: Mesh, s: int, t: int):
        """Valiant as a (degenerate) bitonic sequence: leaf -> mesh -> leaf.

        The random intermediate node is exactly a uniform waypoint in the
        whole mesh, so the exact expected-load analyzer
        (:mod:`repro.analysis.expected_congestion`) applies verbatim.
        """
        from repro.mesh.submesh import Submesh

        if s == t:
            return [Submesh.single(mesh, s)], 0
        return (
            [Submesh.single(mesh, s), Submesh.whole(mesh), Submesh.single(mesh, t)],
            1,
        )

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        if s == t:
            return np.asarray([s], dtype=np.int64)
        w = int(rng.integers(mesh.n))
        first = dimension_order_path(
            mesh, s, w, tuple(int(x) for x in rng.permutation(mesh.d))
        )
        second = dimension_order_path(
            mesh, w, t, tuple(int(x) for x in rng.permutation(mesh.d))
        )
        path = concatenate_paths([first, second])
        return remove_cycles(path) if self.drop_cycles else path

    def batch_spec(self, problem: RoutingProblem):
        mesh = problem.mesh
        if mesh.torus:
            return None
        from repro.routing.engine import BatchSpec

        cs = np.atleast_2d(mesh.flat_to_coords(problem.sources))
        ct = np.atleast_2d(mesh.flat_to_coords(problem.dests))
        alive = (cs != ct).any(axis=1, keepdims=True)
        sides = np.asarray(mesh.sides, dtype=np.int64)
        # One inner box per packet: the whole mesh (a uniform waypoint),
        # padded to the destination's single-node box for s == t packets.
        box_lo = np.where(alive, 0, ct)[:, None, :]
        box_len = np.where(alive, sides, 1)[:, None, :]
        return BatchSpec(
            mesh=mesh,
            coords_s=cs,
            coords_t=ct,
            box_lo=box_lo,
            box_len=box_len,
            dim_order="random",
            drop_cycles=self.drop_cycles,
        )

    def planned_bits(self, problem: RoutingProblem, mode: str | None = None):
        from repro.core.budget import perm_bits
        from repro.core.randomness import bits_for_range

        mesh = problem.mesh
        # One uniform waypoint in the whole mesh + two fresh orderings.
        cost = sum(bits_for_range(side) for side in mesh.sides) + 2 * perm_bits(
            mesh.d
        )
        return np.where(problem.sources != problem.dests, cost, 0).astype(np.int64)


class AccessTreeRouter(HierarchicalRouter):
    """The access-tree algorithm of Maggs et al. [9]: no bridge submeshes.

    Identical machinery to :class:`HierarchicalRouter` with bridges
    switched off, so the comparison isolates exactly the paper's new idea.
    """

    def __init__(self, *, dim_order: str = "random", **kwargs):
        kwargs.setdefault("name", "access-tree")
        super().__init__(use_bridges=False, dim_order=dim_order, **kwargs)


class ShortestPathRouter(Router):
    """A fixed shortest path per pair, via networkx bidirectional search.

    Deterministic (networkx tie-breaking), so congestion concentrates on
    median lines for structured permutations — the cautionary baseline for
    "just take shortest paths".  Small meshes only (builds the graph).
    """

    is_oblivious = True
    name = "shortest-path"

    def __init__(self):
        self._graph_cache: dict[Mesh, object] = {}

    def _graph(self, mesh: Mesh):
        g = self._graph_cache.get(mesh)
        if g is None:
            g = mesh.to_networkx()
            self._graph_cache[mesh] = g
        return g

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        import networkx as nx

        path = nx.bidirectional_shortest_path(self._graph(mesh), s, t)
        return np.asarray(path, dtype=np.int64)

    def planned_bits(self, problem: RoutingProblem, mode: str | None = None):
        # Deterministic tie-breaking: zero random bits.
        return np.zeros(problem.num_packets, dtype=np.int64)


class GreedyMinCongestionRouter(Router):
    """Offline sequential greedy: route each packet to minimise current load.

    Not oblivious — the path of packet ``i`` depends on packets ``< i``.
    Edge weights are ``(1 + load)^alpha`` so heavily used edges repel new
    paths; with ``alpha`` large this approximates min-max-load routing
    (cf. the exponential-weights schemes of Aspnes et al. [1]).
    """

    is_oblivious = False
    name = "greedy-offline"

    def __init__(self, alpha: float = 8.0, shuffle: bool = True):
        self.alpha = float(alpha)
        self.shuffle = bool(shuffle)

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError("greedy routing is not per-packet oblivious")

    @staticmethod
    def _csr_structure(mesh: Mesh):
        """Fixed CSR sparsity of the directed mesh graph (cached per shape):
        ``(indptr, indices, eid)`` where ``eid`` maps each directed entry to
        its undirected edge id, in CSR data order.  Only the data vector
        (the congestion-aware weights) changes between Dijkstra calls."""
        from repro import cache

        def build():
            edges = mesh.all_edges()
            eid = np.arange(mesh.num_edges, dtype=np.int64)
            tails = np.concatenate([edges[:, 0], edges[:, 1]])
            heads = np.concatenate([edges[:, 1], edges[:, 0]])
            eid2 = np.concatenate([eid, eid])
            perm = np.lexsort((heads, tails))
            tails, heads, eid2 = tails[perm], heads[perm], eid2[perm]
            indptr = np.zeros(mesh.n + 1, dtype=np.int64)
            np.cumsum(np.bincount(tails, minlength=mesh.n), out=indptr[1:])
            return indptr, heads, eid2

        return cache.memo("greedy-csr", mesh, build)

    def route(
        self,
        problem: RoutingProblem,
        seed: int | None = None,
        *,
        workers: int | None = 1,
        budget=None,
    ) -> RoutingResult:
        # Greedy routing is sequential by construction (each path sees the
        # loads of every earlier one), so it cannot shard; ``workers`` is
        # accepted for interface parity and always routes in-process.
        # ``budget`` likewise: the router draws no per-packet oblivious
        # randomness, so an active budget records every packet as unmetered
        # (the documented fallback mode) and never degrades anything.
        from repro.core.budget import BudgetParams, note_budget

        params = BudgetParams.resolve(budget)
        ledger = None
        if params.active:
            ledger = params.make_ledger(problem.mesh, problem.num_packets)
            ledger.unmetered = problem.num_packets
            note_budget(self.profiler, ledger)
        result = self._route_greedy(problem, seed)
        result.budget = ledger
        return result

    def _route_greedy(
        self, problem: RoutingProblem, seed: int | None
    ) -> RoutingResult:
        mesh = problem.mesh
        loads = np.zeros(mesh.num_edges, dtype=np.int64)
        rng = np.random.default_rng(seed)
        order = np.arange(problem.num_packets)
        if self.shuffle:
            rng.shuffle(order)
        try:
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import dijkstra
        except ImportError:  # pragma: no cover - scipy is a hard dependency
            return self._route_networkx(problem, loads, order)

        indptr, indices, eid = self._csr_structure(mesh)
        # One CSR whose sparsity never changes; only .data (the weights) is
        # rewritten between Dijkstra calls, skipping per-packet validation.
        graph = csr_matrix(
            (np.ones(indices.size, dtype=np.float64), indices, indptr),
            shape=(mesh.n, mesh.n),
        )
        paths: list[np.ndarray | None] = [None] * problem.num_packets
        for i in order.tolist():
            s = int(problem.sources[i])
            t = int(problem.dests[i])
            if s == t:
                paths[i] = np.asarray([s], dtype=np.int64)
                continue
            np.power(1.0 + loads[eid], self.alpha, out=graph.data)
            _, pred = dijkstra(graph, indices=s, return_predecessors=True)
            node_path = [t]
            while node_path[-1] != s:
                node_path.append(int(pred[node_path[-1]]))
            p = np.asarray(node_path[::-1], dtype=np.int64)
            loads[mesh.edge_ids(p[:-1], p[1:])] += 1
            paths[i] = p
        return RoutingResult(problem, paths, self.name, seed)  # type: ignore[arg-type]

    def _route_networkx(
        self, problem: RoutingProblem, loads: np.ndarray, order: np.ndarray
    ) -> RoutingResult:
        """Pure-networkx fallback (same greedy, Python-speed Dijkstra)."""
        import networkx as nx

        mesh = problem.mesh
        g = mesh.to_networkx()

        def weight(u, v, data):
            return float((1.0 + loads[data["edge_id"]]) ** self.alpha)

        paths: list[np.ndarray | None] = [None] * problem.num_packets
        for i in order.tolist():
            s = int(problem.sources[i])
            t = int(problem.dests[i])
            if s == t:
                paths[i] = np.asarray([s], dtype=np.int64)
                continue
            node_path = nx.dijkstra_path(g, s, t, weight=weight)
            p = np.asarray(node_path, dtype=np.int64)
            loads[mesh.edge_ids(p[:-1], p[1:])] += 1
            paths[i] = p
        return RoutingResult(problem, paths, self.name, seed=None)  # type: ignore[arg-type]
