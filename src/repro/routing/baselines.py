"""Baseline routers the paper compares against (explicitly or implicitly).

* :class:`DimensionOrderRouter` — deterministic dimension-by-dimension
  (XY / e-cube) shortest paths.  Stretch 1, but deterministic oblivious
  routing has unavoidable ``Ω(sqrt(n)/d)``-type congestion on worst-case
  permutations (Section 5.1; Borodin-Hopcroft / Kaklamanis et al.).
* :class:`RandomDimOrderRouter` — same, with a random dimension order per
  packet.  Still stretch 1; the randomization spreads load across the
  ``d!`` staircase paths (the ingredient the paper says improves Maggs et
  al. by a factor of ``d``).
* :class:`ValiantRouter` — route to a uniformly random intermediate node,
  then to the destination (Valiant & Brebner [14]).  Good congestion on
  permutations, but stretch ``Θ(m)`` for nearby pairs — the unbounded
  stretch the paper criticises.
* :class:`AccessTreeRouter` — the hierarchical scheme *without* bridges:
  exactly the access tree of Maggs et al. [9].  Near-optimal congestion but
  unbounded stretch (adjacent nodes straddling the top-level cut travel
  ``Θ(m)``).
* :class:`ShortestPathRouter` — one fixed shortest path per pair (networkx
  bidirectional search on the mesh graph); deterministic, minimal stretch.
* :class:`GreedyMinCongestionRouter` — an *offline, non-oblivious*
  sequential heuristic: each packet takes a path minimising the current
  maximum load (Dijkstra over congestion-aware weights).  Stands in for the
  offline algorithms of [1, 2, 12, 13] when we report "oblivious is within
  a log factor of offline".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.mesh.paths import concatenate_paths, dimension_order_path, remove_cycles
from repro.routing.base import Router, RoutingProblem, RoutingResult

__all__ = [
    "DimensionOrderRouter",
    "RandomDimOrderRouter",
    "ValiantRouter",
    "AccessTreeRouter",
    "ShortestPathRouter",
    "GreedyMinCongestionRouter",
]


class DimensionOrderRouter(Router):
    """Deterministic dimension-order (XY / e-cube) routing."""

    is_oblivious = True

    def __init__(self, order: Sequence[int] | None = None):
        self.order = tuple(order) if order is not None else None
        suffix = "" if order is None else "-" + "".join(map(str, self.order))
        self.name = f"dim-order{suffix}"

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        return dimension_order_path(mesh, s, t, self.order)


class RandomDimOrderRouter(Router):
    """Dimension-order routing with a random permutation per packet."""

    is_oblivious = True
    name = "random-dim-order"

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        order = tuple(int(x) for x in rng.permutation(mesh.d))
        return dimension_order_path(mesh, s, t, order)


class ValiantRouter(Router):
    """Valiant-Brebner two-phase routing via a random intermediate node.

    Both phases use (independently) random dimension orders, matching the
    randomized-dimension-routing convention of the other routers.
    """

    is_oblivious = True
    name = "valiant"
    #: the analyzer contract: every subpath uses a fresh random dim order
    dim_order = "random"

    def __init__(self, *, drop_cycles: bool = True):
        self.drop_cycles = drop_cycles

    def submesh_sequence(self, mesh: Mesh, s: int, t: int):
        """Valiant as a (degenerate) bitonic sequence: leaf -> mesh -> leaf.

        The random intermediate node is exactly a uniform waypoint in the
        whole mesh, so the exact expected-load analyzer
        (:mod:`repro.analysis.expected_congestion`) applies verbatim.
        """
        from repro.mesh.submesh import Submesh

        if s == t:
            return [Submesh.single(mesh, s)], 0
        return (
            [Submesh.single(mesh, s), Submesh.whole(mesh), Submesh.single(mesh, t)],
            1,
        )

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        if s == t:
            return np.asarray([s], dtype=np.int64)
        w = int(rng.integers(mesh.n))
        first = dimension_order_path(
            mesh, s, w, tuple(int(x) for x in rng.permutation(mesh.d))
        )
        second = dimension_order_path(
            mesh, w, t, tuple(int(x) for x in rng.permutation(mesh.d))
        )
        path = concatenate_paths([first, second])
        return remove_cycles(path) if self.drop_cycles else path


class AccessTreeRouter(HierarchicalRouter):
    """The access-tree algorithm of Maggs et al. [9]: no bridge submeshes.

    Identical machinery to :class:`HierarchicalRouter` with bridges
    switched off, so the comparison isolates exactly the paper's new idea.
    """

    def __init__(self, *, dim_order: str = "random", **kwargs):
        kwargs.setdefault("name", "access-tree")
        super().__init__(use_bridges=False, dim_order=dim_order, **kwargs)


class ShortestPathRouter(Router):
    """A fixed shortest path per pair, via networkx bidirectional search.

    Deterministic (networkx tie-breaking), so congestion concentrates on
    median lines for structured permutations — the cautionary baseline for
    "just take shortest paths".  Small meshes only (builds the graph).
    """

    is_oblivious = True
    name = "shortest-path"

    def __init__(self):
        self._graph_cache: dict[Mesh, object] = {}

    def _graph(self, mesh: Mesh):
        g = self._graph_cache.get(mesh)
        if g is None:
            g = mesh.to_networkx()
            self._graph_cache[mesh] = g
        return g

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        import networkx as nx

        path = nx.bidirectional_shortest_path(self._graph(mesh), s, t)
        return np.asarray(path, dtype=np.int64)


class GreedyMinCongestionRouter(Router):
    """Offline sequential greedy: route each packet to minimise current load.

    Not oblivious — the path of packet ``i`` depends on packets ``< i``.
    Edge weights are ``(1 + load)^alpha`` so heavily used edges repel new
    paths; with ``alpha`` large this approximates min-max-load routing
    (cf. the exponential-weights schemes of Aspnes et al. [1]).
    """

    is_oblivious = False
    name = "greedy-offline"

    def __init__(self, alpha: float = 8.0, shuffle: bool = True):
        self.alpha = float(alpha)
        self.shuffle = bool(shuffle)

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError("greedy routing is not per-packet oblivious")

    def route(self, problem: RoutingProblem, seed: int | None = None) -> RoutingResult:
        import networkx as nx

        mesh = problem.mesh
        g = mesh.to_networkx()
        loads = np.zeros(mesh.num_edges, dtype=np.int64)
        rng = np.random.default_rng(seed)
        order = np.arange(problem.num_packets)
        if self.shuffle:
            rng.shuffle(order)

        def weight(u, v, data):
            return float((1.0 + loads[data["edge_id"]]) ** self.alpha)

        paths: list[np.ndarray | None] = [None] * problem.num_packets
        for i in order.tolist():
            s = int(problem.sources[i])
            t = int(problem.dests[i])
            if s == t:
                paths[i] = np.asarray([s], dtype=np.int64)
                continue
            node_path = nx.dijkstra_path(g, s, t, weight=weight)
            p = np.asarray(node_path, dtype=np.int64)
            loads[mesh.edge_ids(p[:-1], p[1:])] += 1
            paths[i] = p
        return RoutingResult(problem, paths, self.name, seed)  # type: ignore[arg-type]
