"""Router registry: build routers by name for benches, examples and CLIs."""

from __future__ import annotations

from typing import Callable

from repro.routing.base import Router

__all__ = ["available_routers", "make_router"]


def _factories() -> dict[str, Callable[..., Router]]:
    from repro.core.compact import CompactHierarchicalRouter
    from repro.core.path_selection import HierarchicalRouter
    from repro.core.rect import RectHierarchicalRouter
    from repro.routing.baselines import (
        AccessTreeRouter,
        DimensionOrderRouter,
        GreedyMinCongestionRouter,
        RandomDimOrderRouter,
        ShortestPathRouter,
        ValiantRouter,
    )
    from repro.routing.competitors import RackeTreeRouter, SemiObliviousRouter

    return {
        "hierarchical": HierarchicalRouter,
        "hierarchical-general": lambda **kw: HierarchicalRouter(
            variant="general", name="hierarchical-general", **kw
        ),
        "compact-hierarchical": CompactHierarchicalRouter,
        "access-tree": AccessTreeRouter,
        "dim-order": DimensionOrderRouter,
        "random-dim-order": RandomDimOrderRouter,
        "valiant": ValiantRouter,
        "shortest-path": ShortestPathRouter,
        "greedy-offline": GreedyMinCongestionRouter,
        "rect-hierarchical": RectHierarchicalRouter,
        "semi-oblivious": SemiObliviousRouter,
        "racke-tree": RackeTreeRouter,
    }


def available_routers() -> list[str]:
    """Names accepted by :func:`make_router`."""
    return sorted(_factories())


def make_router(name: str, **kwargs) -> Router:
    """Instantiate a router by registry name.

    Keyword arguments are forwarded to the router's constructor, e.g.
    ``make_router("hierarchical", bit_mode="recycled")``.
    """
    factories = _factories()
    if name not in factories:
        raise KeyError(f"unknown router {name!r}; choose from {sorted(factories)}")
    return factories[name](**kwargs)
