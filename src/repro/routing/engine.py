"""The batched path-assembly engine.

Vectorised replacement for the per-packet ``select_path`` loop of
:class:`~repro.routing.base.Router.route`.  A router that can express its
path distribution as

    *draw one uniform node per inner box, then connect consecutive
    waypoints by dimension-order subpaths under per-subpath /
    per-packet / fixed dimension orderings*

returns a :class:`BatchSpec` from :meth:`Router.batch_spec` and the engine
does the rest with a handful of numpy passes over *all* packets at once:

1. **draw** — vectorised per-packet streams: packet ``i`` (its *global*
   index, ``spec.packet_offset`` plus its row) takes its uniforms from
   ``SeedSequence(entropy, spawn_key=(i,))`` via
   :func:`repro.core.randomness.packet_uniforms` — waypoint uniforms
   first, dimension-order uniforms after, in one fixed mesh-determined
   shape per packet (padded to ``S_max``).  Packet ``i``'s path is a
   function of ``(seed, i, s_i, t_i)`` alone — the obliviousness
   discipline of Section 2 is structural, and because the stream is keyed
   by global index (never batch-local order) any shard split of the batch
   reproduces the serial bytes exactly (see :mod:`repro.parallel`).
2. **assemble** — signed per-dimension deltas between waypoints, ordered
   by ``argsort`` of the order uniforms, expanded to unit steps with one
   ``np.repeat``, and integrated per packet with a segmented cumulative
   sum.  No Python-level per-packet work.
3. **cycles** — duplicate nodes are detected array-wise (sorted
   ``segment * n + node`` keys); only the few offending paths go through
   :func:`~repro.mesh.paths.remove_cycles`.

``assemble="loop"`` builds the same waypoints/orders but connects them
with the scalar :func:`~repro.mesh.paths.dimension_order_path` — the
byte-identical reference that ``tests/test_engine.py`` compares against.

Torus meshes are *not* supported (wrap-around steps break the
constant-stride expansion); ``batch_spec`` implementations return ``None``
there and ``route`` falls back to the per-packet loop.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.core.budget import (
    BitBudget,
    degradation_plan,
    note_budget,
    planned_fresh_bits,
    planned_recycled_bits,
)
from repro.core.pathset import PathSet
from repro.core.randomness import packet_stream, packet_uniforms, resolve_entropy
from repro.mesh.mesh import Mesh
from repro.mesh.paths import concatenate_paths, dimension_order_path, remove_cycles
from repro.routing.base import RoutingProblem, RoutingResult

__all__ = ["BatchSpec", "run_batch", "draw_plan", "build_waypoints", "resolve_orders"]


@dataclass
class BatchSpec:
    """Everything the engine needs to route one problem array-wise.

    ``box_lo`` / ``box_len`` are ``(N, S, d)``: per packet, ``S`` padded
    inner boxes (lower corner and side lengths).  Padded slots must be the
    single-node box of the packet's destination so the drawn waypoint is
    the destination itself and contributes zero movement; this keeps draw
    shapes mesh-determined (obliviousness) without altering any path.
    """

    mesh: Mesh
    coords_s: np.ndarray  #: (N, d) source coordinates
    coords_t: np.ndarray  #: (N, d) destination coordinates
    box_lo: np.ndarray  #: (N, S, d) inner-box lower corners
    box_len: np.ndarray  #: (N, S, d) inner-box side lengths
    dim_order: str  #: "random" (per subpath), "shared" (per packet), "fixed"
    fixed_order: tuple[int, ...] | None = None  #: ordering for "fixed"
    drop_cycles: bool = False
    #: global index of row 0 — shard workers set this so their packets draw
    #: the same streams the serial engine would have used
    packet_offset: int = 0
    #: (N,) real (unpadded) inner-box count per packet, when the router
    #: knows it — budget metering derives it from ``box_len`` otherwise
    n_inner: np.ndarray | None = None
    #: (N,) explicit global packet indices, overriding ``packet_offset +
    #: arange(N)`` — set on sliced specs (budget enforcement routes the
    #: within-budget rows through the engine with their original streams)
    packet_indices: np.ndarray | None = None

    def __post_init__(self):
        if self.dim_order not in ("random", "shared", "fixed"):
            raise ValueError(f"unknown dim_order {self.dim_order!r}")
        if self.mesh.torus:
            raise ValueError("the batch engine does not support torus meshes")

    @property
    def num_packets(self) -> int:
        return self.box_lo.shape[0]

    @property
    def num_stages(self) -> int:
        """``S``: padded inner waypoints per packet."""
        return self.box_lo.shape[1]

    @property
    def num_subpaths(self) -> int:
        """``L = S + 1`` dimension-order subpaths per packet."""
        return self.num_stages + 1


def draw_plan(
    entropy: int, spec: BatchSpec
) -> tuple[np.ndarray, np.ndarray | None]:
    """All random values for the whole batch, one stream per global packet.

    Returns ``(U_way, U_ord)`` — waypoint uniforms ``(N, S, d)`` and
    dimension-order uniforms (``(N, L, d)`` for ``"random"``, ``(N, 1, d)``
    for ``"shared"``, ``None`` for ``"fixed"``).  Packet ``i`` consumes a
    fixed number of uniforms — ``S*d`` waypoint values first, then its
    ordering values — from its own global-index stream
    (:func:`~repro.core.randomness.packet_uniforms`), so the plan row of a
    packet is invariant under any re-batching of the problem.  The draw
    order (waypoints first, then orderings) is part of the canonical
    protocol; the loop reference consumes the identical plan.
    """
    N, S, d = spec.box_lo.shape
    n_way = S * d
    if spec.dim_order == "random":
        n_ord = spec.num_subpaths * d
    elif spec.dim_order == "shared":
        n_ord = d
    else:
        n_ord = 0
    if spec.packet_indices is not None:
        indices = np.asarray(spec.packet_indices, dtype=np.int64)
    else:
        indices = spec.packet_offset + np.arange(N, dtype=np.int64)
    U = packet_uniforms(entropy, indices, n_way + n_ord)
    U_way = U[:, :n_way].reshape(N, S, d)
    if spec.dim_order == "random":
        U_ord = U[:, n_way:].reshape(N, spec.num_subpaths, d)
    elif spec.dim_order == "shared":
        U_ord = U[:, n_way:].reshape(N, 1, d)
    else:
        U_ord = None
    return U_way, U_ord


def build_waypoints(spec: BatchSpec, U_way: np.ndarray) -> np.ndarray:
    """Waypoint coordinate array ``(N, S + 2, d)``: source, inner draws, dest.

    A uniform ``u`` in ``[0, 1)`` maps to ``lo + floor(u * len)`` — the
    uniform node of the box, matching ``Submesh.sample_node`` in law.
    """
    N, S, d = spec.box_lo.shape
    W = np.empty((N, S + 2, d), dtype=np.int64)
    W[:, 0] = spec.coords_s
    W[:, S + 1] = spec.coords_t
    if S:
        W[:, 1 : S + 1] = spec.box_lo + (U_way * spec.box_len).astype(np.int64)
    return W


def resolve_orders(spec: BatchSpec, U_ord: np.ndarray | None) -> np.ndarray:
    """Per-subpath dimension orderings ``(N, L, d)`` (broadcast views)."""
    N, _, d = spec.box_lo.shape
    L = spec.num_subpaths
    if spec.dim_order == "fixed":
        base = np.asarray(
            spec.fixed_order if spec.fixed_order is not None else range(d),
            dtype=np.int64,
        )
        return np.broadcast_to(base, (N, L, d))
    orders = np.argsort(U_ord, axis=2)
    if spec.dim_order == "shared":
        return np.broadcast_to(orders, (N, L, d))
    return orders


def _assemble_array(
    spec: BatchSpec, W: np.ndarray, orders: np.ndarray, profiler=None
) -> PathSet:
    """Segmented-cumsum assembly of every path at once, emitted as CSR.

    The assembly *is* CSR — the flat node buffer plus per-path offsets —
    so the result wraps those arrays directly in a
    :class:`~repro.core.pathset.PathSet` instead of splitting into
    ``list[np.ndarray]`` and re-flattening downstream.  The two hot
    passes — step integration and loop erasure — dispatch through
    :mod:`repro.kernels` (numba when available, vectorised numpy
    otherwise; byte-identical either way).
    """
    mesh = spec.mesh
    N = W.shape[0]
    deltas = np.diff(W, axis=1)  # (N, L, d)
    ordered = np.take_along_axis(deltas, orders, axis=2)
    counts = np.abs(ordered)
    values = np.sign(ordered) * mesh.strides[orders]
    # Unit steps of every packet, in path order (C-order ravel == per
    # packet, per subpath, per ordered dimension — exactly the step
    # sequence dimension_order_path emits).
    lens = counts.sum(axis=(1, 2)) + 1  # nodes per path (N == 0 safe)
    starts = np.zeros(N, dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    total = int(lens.sum())
    flat_s = spec.coords_s @ mesh.strides
    nodes = kernels.assemble_paths(
        values.reshape(-1),
        counts.reshape(-1),
        flat_s,
        lens,
        starts,
        total,
        profiler=profiler,
    )
    offsets = np.concatenate((starts, np.asarray([total], dtype=np.int64)))
    if spec.drop_cycles:
        nodes, offsets, decycled = kernels.decycle_paths(
            nodes, offsets, profiler=profiler
        )
        if decycled and profiler is not None:
            profiler.count("engine.paths_decycled", decycled)
    # Freeze the freshly built buffers so PathSet can wrap them zero-copy
    # (a writable buffer would force a defensive copy).
    nodes.setflags(write=False)
    offsets.setflags(write=False)
    pathset = PathSet.from_arrays(nodes, offsets)
    if profiler is not None:
        profiler.count("engine.edges", pathset.total_nodes - N)
    return pathset


def _assemble_loop(spec: BatchSpec, W: np.ndarray, orders: np.ndarray) -> list[np.ndarray]:
    """Scalar reference: same plan, assembled with the classic primitives.

    Exists so the byte-identity of the array assembly is *testable* — both
    consume identical waypoints and orderings, so their outputs must match
    to the last byte.
    """
    mesh = spec.mesh
    strides = mesh.strides
    paths = []
    for i in range(W.shape[0]):
        pieces = []
        for j in range(spec.num_subpaths):
            a = int(W[i, j] @ strides)
            b = int(W[i, j + 1] @ strides)
            pieces.append(dimension_order_path(mesh, a, b, tuple(orders[i, j])))
        path = concatenate_paths(pieces)
        if spec.drop_cycles:
            path = remove_cycles(path)
        paths.append(path)
    return paths


def _sliced_spec(spec: BatchSpec, rows: np.ndarray, indices: np.ndarray) -> BatchSpec:
    """``spec`` restricted to ``rows``, pinned to their global indices."""
    return BatchSpec(
        mesh=spec.mesh,
        coords_s=spec.coords_s[rows],
        coords_t=spec.coords_t[rows],
        box_lo=spec.box_lo[rows],
        box_len=spec.box_len[rows],
        dim_order=spec.dim_order,
        fixed_order=spec.fixed_order,
        drop_cycles=spec.drop_cycles,
        packet_offset=spec.packet_offset,
        n_inner=None if spec.n_inner is None else np.asarray(spec.n_inner)[rows],
        packet_indices=np.asarray(indices)[rows],
    )


def _run_degraded(
    router,
    spec: BatchSpec,
    entropy: int,
    indices: np.ndarray,
    plan: tuple[np.ndarray, np.ndarray, np.ndarray],
    fallback,
    profiler,
) -> list[np.ndarray]:
    """Assemble a partially degraded batch (the ``enforce`` slow lane).

    Within-budget rows still go through the vectorised engine — on a
    sliced spec carrying their original global indices, so their bytes are
    untouched.  Recycled rows route scalar-by-scalar on the packet's own
    stream via the router's recycled-bit clone; dimension-order rows pay
    zero random bits.
    """
    ok, use_rec, use_dim = plan
    mesh = spec.mesh
    strides = mesh.strides
    flat_s = spec.coords_s @ strides
    flat_t = spec.coords_t @ strides
    paths: list = [None] * spec.num_packets
    rows_ok = np.flatnonzero(ok)
    if rows_ok.size:
        sub = _sliced_spec(spec, rows_ok, indices)
        U_way, U_ord = draw_plan(entropy, sub)
        W = build_waypoints(sub, U_way)
        orders = resolve_orders(sub, U_ord)
        kept = _assemble_array(sub, W, orders, profiler)
        for j, row in enumerate(rows_ok):
            paths[row] = kept[j]
    for row in np.flatnonzero(use_rec):
        stream = packet_stream(entropy, int(indices[row]))
        paths[row] = fallback.select_path(
            mesh, int(flat_s[row]), int(flat_t[row]), stream
        )
    order0 = tuple(range(mesh.d))
    for row in np.flatnonzero(use_dim):
        paths[row] = dimension_order_path(
            mesh, int(flat_s[row]), int(flat_t[row]), order0
        )
    return paths


def run_batch(
    router,
    spec: BatchSpec,
    problem: RoutingProblem,
    seed: int | None = None,
    *,
    assemble: str = "array",
    budget=None,
) -> RoutingResult:
    """Route ``problem`` under ``spec``; the batched half of ``Router.route``.

    ``seed`` may be an int or ``None``; it is resolved to concrete entropy
    (:func:`~repro.core.randomness.resolve_entropy`) and the resolved value
    is stored on the result so every run — seeded or not — can be replayed.

    ``budget`` is a resolved :class:`~repro.core.budget.BudgetParams` (or
    ``None``).  When active, the engine meters every packet's planned bits
    in one vectorised pass; under ``enforce``, packets over the ceiling
    are degraded down the deterministic ladder (recycled scheme, then
    dimension-order) while the remaining rows keep their exact engine
    bytes.
    """
    profiler = getattr(router, "profiler", None)

    def stage(name):
        return profiler.stage(name) if profiler is not None else nullcontext()

    entropy = resolve_entropy(seed)
    N = spec.num_packets
    ledger = None
    degraded = None
    fallback = None
    indices = None
    if budget is not None and budget.active:
        with stage("engine.budget"):
            alive = (spec.coords_s != spec.coords_t).any(axis=1)
            fresh = planned_fresh_bits(
                spec.box_len, spec.dim_order, alive, n_inner=spec.n_inner
            )
            ledger = budget.make_ledger(spec.mesh, N)
            ledger.metered = N
            paid = fresh
            if budget.enforcing:
                limit = budget.limit_for(spec.mesh)
                if bool((fresh > limit).any()):
                    fallback = router.budget_fallback_router()
                    recycled = (
                        planned_recycled_bits(spec.box_len, alive)
                        if fallback is not None
                        else None
                    )
                    degraded = degradation_plan(fresh, recycled, limit)
                    ok, use_rec, use_dim = degraded
                    paid = np.where(
                        ok, fresh, np.where(use_rec, recycled, 0) if recycled is not None else 0
                    )
                    ledger.fallbacks_recycled = int(use_rec.sum())
                    ledger.fallbacks_dimorder = int(use_dim.sum())
            ledger.bits_drawn = int(paid.sum())
            ledger.max_bits = int(paid.max()) if N else 0
            if spec.packet_indices is not None:
                indices = np.asarray(spec.packet_indices, dtype=np.int64)
            else:
                indices = spec.packet_offset + np.arange(N, dtype=np.int64)
        note_budget(profiler, ledger)

    if degraded is not None:
        with stage("engine.assemble"):
            paths = _run_degraded(
                router, spec, entropy, indices, degraded, fallback, profiler
            )
        result = RoutingResult(problem, paths, router.name, entropy)
        result.budget = ledger
        return result

    with stage("engine.draw"):
        U_way, U_ord = draw_plan(entropy, spec)
        W = build_waypoints(spec, U_way)
        orders = resolve_orders(spec, U_ord)
    if profiler is not None:
        profiler.annotate("kernels.backend", kernels.backend())
        profiler.count("engine.packets", spec.num_packets)
        profiler.count(
            "engine.rng_values", U_way.size + (U_ord.size if U_ord is not None else 0)
        )
    with stage("engine.assemble"):
        if assemble == "array":
            paths = _assemble_array(spec, W, orders, profiler)
        elif assemble == "loop":
            paths = _assemble_loop(spec, W, orders)
        else:
            raise ValueError(f"unknown assemble mode {assemble!r}")
    result = RoutingResult(problem, paths, router.name, entropy)
    result.budget = ledger
    return result
