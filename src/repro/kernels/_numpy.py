"""The pure-numpy kernel tier: always available, the reference backend.

Every function here is the *definition* of its kernel's behaviour; the
numba tier (:mod:`repro.kernels._numba`) must match it byte-for-byte and
the scalar oracles in :mod:`repro.verify.oracles` referee both.  The
implementations are vectorised array passes — no per-packet Python loops
— so the fallback tier is itself fast enough to carry production load
when numba is absent.

The interesting kernel is :func:`decycle_paths`.  The scalar contract
(:func:`repro.mesh.paths.remove_cycles`) is the classic stack algorithm:
walk the path, and on meeting a node already on the stack, pop back to
its first visit.  That is exactly chronological *loop erasure*, and loop
erasure has an equivalent **last-exit** characterisation::

    erase(w) = [w[0]] + erase(w[last_occurrence_of(w[0]) + 1 :])

(when ``w[0]`` is seen again the stack rewinds to position 0, so only the
walk *after its last visit* survives; no later rewind can cross below it
because ``w[0]`` never reappears).  The last-exit form vectorises: one
bucketed row-sort pass precomputes, for every position, the position of
its node's last occurrence within the path, and a lockstep pointer-chase
over all cyclic paths at once emits the erased nodes — O(total) work,
no per-path Python.
"""

from __future__ import annotations

import numpy as np

__all__ = ["IMPLS"]


def assemble_paths(values, counts, flat_s, lens, starts, total):
    """Repeat-expand unit steps and integrate per segment (one cumsum)."""
    steps = np.repeat(values, counts)
    buf = np.zeros(total, dtype=np.int64)
    mask = np.ones(total, dtype=bool)
    mask[starts] = False
    buf[mask] = steps
    # Segmented integration: global cumsum, then re-anchor each segment to
    # its source node.
    nodes = np.cumsum(buf)
    nodes -= np.repeat(nodes[starts] - flat_s, lens)
    return nodes


def _last_occurrence(nodes, offsets, lens, starts):
    """Per-position last occurrence of the position's node within its path.

    Returns ``(jump, has_dup)``: ``jump[g]`` is the *path-local* index of
    the last occurrence of ``nodes[g]``'s value inside its own path, and
    ``has_dup[p]`` whether path ``p`` contains any revisited node.
    Computed per length-bucket so each bucket is a dense ``(k, L)`` matrix
    sorted row-wise — many small-row sorts beat one global sort of the
    whole node stream.
    """
    N = offsets.size - 1
    jump = np.empty(nodes.size, dtype=np.int64)
    has_dup = np.zeros(N, dtype=bool)
    order = np.argsort(lens, kind="stable")
    sizes = lens[order]
    bounds = np.flatnonzero(sizes[1:] != sizes[:-1]) + 1
    group_starts = np.concatenate(([0], bounds))
    group_ends = np.concatenate((bounds, [sizes.size]))
    for gs, ge in zip(group_starts.tolist(), group_ends.tolist()):
        L = int(sizes[gs])
        rows = order[gs:ge]
        if L == 0:
            continue
        if L == 1:
            jump[starts[rows]] = 0
            continue
        idx = starts[rows][:, None] + np.arange(L, dtype=np.int64)
        mat = nodes[idx]
        srt = np.argsort(mat, axis=1, kind="stable")
        sm = np.take_along_axis(mat, srt, axis=1)
        same = sm[:, 1:] == sm[:, :-1]  # sorted col i == col i+1
        has_dup[rows] = same.any(axis=1)
        # Walk sorted columns right-to-left carrying each value-group's
        # last original position (stable sort => group max is rightmost).
        lastpos = np.empty_like(srt)
        cur = srt[:, L - 1]
        lastpos[:, L - 1] = cur
        for i in range(L - 2, -1, -1):
            cur = np.where(same[:, i], cur, srt[:, i])
            lastpos[:, i] = cur
        local = np.empty_like(srt)
        np.put_along_axis(local, srt, lastpos, axis=1)
        jump[idx] = local
    return jump, has_dup


def decycle_paths(nodes, offsets):
    """Loop-erase every path; identity (same arrays) when none is cyclic."""
    N = offsets.size - 1
    if N == 0 or nodes.size == 0:
        return nodes, offsets, 0
    lens = np.diff(offsets)
    starts = offsets[:-1]
    jump, has_dup = _last_occurrence(nodes, offsets, lens, starts)
    ndup = int(np.count_nonzero(has_dup))
    if ndup == 0:
        return nodes, offsets, 0
    dup_idx = np.flatnonzero(has_dup)

    # Phase 1: erased length of every cyclic path (lockstep pointer chase;
    # iteration t keeps only the paths still emitting at position t).
    new_lens = lens.copy()
    act = dup_idx
    pos = np.zeros(act.size, dtype=np.int64)
    emitted = 1
    while True:
        j = jump[starts[act] + pos]
        done = j == lens[act] - 1
        new_lens[act[done]] = emitted
        keep = ~done
        if not keep.any():
            break
        act = act[keep]
        pos = j[keep] + 1
        emitted += 1

    new_offsets = np.zeros(N + 1, dtype=np.int64)
    np.cumsum(new_lens, out=new_offsets[1:])
    out = np.empty(int(new_offsets[-1]), dtype=np.int64)

    # Acyclic paths copy over verbatim in one masked move.
    clean = ~has_dup
    if clean.any():
        out[np.repeat(clean, new_lens)] = nodes[np.repeat(clean, lens)]

    # Phase 2: re-chase the cyclic paths, writing erased nodes in place.
    act = dup_idx
    pos = np.zeros(act.size, dtype=np.int64)
    base = new_offsets[:-1]
    t = 0
    while act.size:
        g = starts[act] + pos
        out[base[act] + t] = nodes[g]
        j = jump[g]
        keep = j != lens[act] - 1
        act = act[keep]
        pos = j[keep] + 1
        t += 1
    return out, new_offsets, ndup


def bfs_parents(indptr, heads, s, t, n):
    """Level-synchronous BFS: expand the whole frontier in one gather.

    First writer wins within a level under (ascending frontier node, CSR
    neighbor order) — ``np.unique``'s first index over the level's gather
    — which pins the tie-breaking both tiers share.
    """
    parent = np.full(n, -1, dtype=np.int64)
    parent[s] = s
    if s == t:
        return parent
    frontier = np.asarray([s], dtype=np.int64)
    while frontier.size:
        counts = indptr[frontier + 1] - indptr[frontier]
        idx = np.repeat(indptr[frontier], counts) + (
            np.arange(int(counts.sum())) - np.repeat(np.cumsum(counts) - counts, counts)
        )
        nbrs = heads[idx]
        fresh = parent[nbrs] == -1
        nbrs = nbrs[fresh]
        srcs = np.repeat(frontier, counts)[fresh]
        uniq, first = np.unique(nbrs, return_index=True)
        parent[uniq] = srcs[first]
        if parent[t] != -1:
            break
        frontier = uniq
    return parent


def fill_box_chains(box_lo, box_len, cs, ct, u, blo, bhi, alive, k):
    """Masked scatters per height: up chain, bridge slot, down chain."""
    rows = np.arange(cs.shape[0])
    # up chain: height j at slot j - 1
    for j in range(1, k):
        mask = alive & (u >= j)
        if not mask.any():
            continue
        box_lo[mask, j - 1] = (cs[mask] >> j) << j
        box_len[mask, j - 1] = 1 << j
    # bridge at slot u
    if alive.any():
        box_lo[rows[alive], u[alive]] = blo[alive]
        box_len[rows[alive], u[alive]] = bhi[alive] - blo[alive] + 1
    # down chain: height j at slot 2u + 1 - j
    for j in range(1, k):
        mask = alive & (u >= j)
        if not mask.any():
            continue
        box_lo[rows[mask], 2 * u[mask] + 1 - j] = (ct[mask] >> j) << j
        box_len[rows[mask], 2 * u[mask] + 1 - j] = 1 << j


def count_loads(ids, minlength):
    return np.bincount(ids, minlength=minlength).astype(np.int64)


def node_loads_csr(nodes, offsets, n):
    """Bucket paths by length; one row-wise sort dedupes each bucket."""
    counts = np.zeros(n, dtype=np.int64)
    if nodes.size == 0:
        return counts
    npp = np.diff(offsets)
    starts = offsets[:-1]
    order = np.argsort(npp, kind="stable")
    sizes = npp[order]
    bounds = np.flatnonzero(sizes[1:] != sizes[:-1]) + 1
    group_starts = np.concatenate(([0], bounds))
    group_ends = np.concatenate((bounds, [sizes.size]))
    for gs, ge in zip(group_starts.tolist(), group_ends.tolist()):
        length = int(sizes[gs])
        if length == 0:
            continue
        rows = order[gs:ge]
        idx = starts[rows][:, None] + np.arange(length, dtype=np.int64)
        mat = np.sort(nodes[idx], axis=1)
        first = np.empty(mat.shape, dtype=bool)
        first[:, 0] = True
        np.not_equal(mat[:, 1:], mat[:, :-1], out=first[:, 1:])
        counts += np.bincount(mat[first], minlength=n)
    return counts


def stretch_ratios(lengths, dists):
    out = np.full(lengths.size, np.nan)
    nonzero = dists > 0
    out[nonzero] = lengths[nonzero] / dists[nonzero]
    return out


IMPLS = {
    "assemble_paths": assemble_paths,
    "decycle_paths": decycle_paths,
    "bfs_parents": bfs_parents,
    "fill_box_chains": fill_box_chains,
    "count_loads": count_loads,
    "node_loads_csr": node_loads_csr,
    "stretch_ratios": stretch_ratios,
}
