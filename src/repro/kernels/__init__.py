"""Tiered hot-path kernels: one contract, two backends.

The batch engine's inner loops — segmented-cumsum path assembly, per-path
cycle removal (loop erasure), the fault-aware BFS detour, and the metrics
array passes — are *kernel-shaped*: tight integer loops over flat CSR
buffers with no Python objects in sight.  This package gives each of them
two interchangeable implementations:

* ``numpy``  — pure-array passes, always available; the reference tier.
* ``numba``  — ``@njit(cache=True)`` compiled loops, used automatically
  when `numba <https://numba.pydata.org>`_ is importable.

**The contract is byte-identity.**  For any input, both backends return
arrays equal to the last byte; the scalar oracles in
:mod:`repro.verify.oracles` referee both (``repro verify`` must stay at
zero mismatches no matter which tier ran).  Because of that, backend
choice is *pure* performance policy — it can never change a route, a
golden hash, or a metric.  See ``docs/KERNELS.md`` for the guarantee and
for how to add a new kernel against the referee.

Selection happens at import time from the ``REPRO_KERNELS`` environment
variable:

``auto`` (default)
    ``numba`` when importable, else ``numpy``.
``numba``
    Force the compiled tier.  When numba is missing the package *degrades
    gracefully*: a :class:`RuntimeWarning` is emitted and the ``numpy``
    tier is used (routes are identical either way, only speed differs).
``numpy``
    Force the fallback tier (CI runs a matrix leg this way so the
    fallback never rots).

Runtime control (tests, benchmarks, the ``repro route --kernels`` flag)
goes through :func:`set_backend` / :func:`use_backend`.  Every dispatch
increments a process-wide counter (:func:`dispatch_counts`) and, when the
call site passes a profiler, a ``kernels.<backend>.<name>`` counter in
that profiler — the per-worker snapshots merge across process boundaries
like every other counter.

Examples
--------
>>> from repro import kernels
>>> kernels.backend() in kernels.available_backends()
True
>>> with kernels.use_backend("numpy"):
...     kernels.backend()
'numpy'
"""

from __future__ import annotations

import importlib.util
import os
import threading
import warnings
from contextlib import contextmanager

import numpy as np

from repro.kernels import _numpy as _np_impls

__all__ = [
    "available_backends",
    "backend",
    "set_backend",
    "use_backend",
    "dispatch_counts",
    "reset_dispatch_counts",
    "assemble_paths",
    "decycle_paths",
    "bfs_parents",
    "fill_box_chains",
    "count_loads",
    "node_loads_csr",
    "stretch_ratios",
    "KERNEL_NAMES",
]

#: every kernel the tier provides, in dispatch-table order
KERNEL_NAMES = (
    "assemble_paths",
    "decycle_paths",
    "bfs_parents",
    "fill_box_chains",
    "count_loads",
    "node_loads_csr",
    "stretch_ratios",
)


def _numba_importable() -> bool:
    """Whether a numba distribution is present (without importing it)."""
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic paths
        return False


_HAVE_NUMBA = _numba_importable()

_lock = threading.Lock()
_impl_tables: dict[str, dict] = {"numpy": _np_impls.IMPLS}
_counts: dict[str, int] = {}
_active: str = "numpy"


def _load_numba_table() -> dict | None:
    """Import the compiled tier, degrading to ``None`` on any failure."""
    global _HAVE_NUMBA
    table = _impl_tables.get("numba")
    if table is not None:
        return table
    try:
        from repro.kernels import _numba as _nb_impls
    except Exception as exc:  # broken install: degrade, don't crash
        _HAVE_NUMBA = False
        warnings.warn(
            f"repro.kernels: numba tier failed to import ({exc!r}); "
            "falling back to the numpy tier",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    _impl_tables["numba"] = _nb_impls.IMPLS
    return _impl_tables["numba"]


def available_backends() -> tuple[str, ...]:
    """Backends usable in this process, preferred first."""
    return ("numba", "numpy") if _HAVE_NUMBA else ("numpy",)


def backend() -> str:
    """The backend dispatches currently go to (``"numba"`` or ``"numpy"``)."""
    return _active


def set_backend(name: str) -> str:
    """Select the dispatch backend; returns the backend actually active.

    ``"auto"`` resolves to the preferred available backend.  Requesting
    ``"numba"`` when numba is unavailable warns and keeps ``"numpy"``
    (graceful degradation — results are byte-identical either way).
    Unknown names raise ``ValueError``.
    """
    global _active
    name = str(name).strip().lower()
    if name not in ("auto", "numba", "numpy"):
        raise ValueError(
            f"unknown kernels backend {name!r}; choose auto, numba or numpy"
        )
    if name == "auto":
        name = available_backends()[0]
    if name == "numba":
        if (_load_numba_table() if _HAVE_NUMBA else None) is None:
            warnings.warn(
                "repro.kernels: REPRO_KERNELS requested the numba backend "
                "but numba is not installed; using the numpy tier "
                "(byte-identical, slower)",
                RuntimeWarning,
                stacklevel=2,
            )
            name = "numpy"
    with _lock:
        _active = name
    return _active


@contextmanager
def use_backend(name: str):
    """Temporarily dispatch to ``name`` (restores the previous backend)."""
    previous = _active
    set_backend(name)
    try:
        yield _active
    finally:
        set_backend(previous)


def dispatch_counts() -> dict[str, int]:
    """Process-wide dispatch tally: ``{"<backend>.<kernel>": calls}``.

    Per-process only — sharded workers tally their own processes.  For a
    cross-process rollup, pass a profiler at the call sites (the engine
    and fault router do): ``kernels.<backend>.<name>`` counters ride the
    worker snapshot merge.
    """
    with _lock:
        return dict(_counts)


def reset_dispatch_counts() -> None:
    with _lock:
        _counts.clear()


def _dispatch(name: str, profiler=None):
    table = _impl_tables[_active]
    key = f"{_active}.{name}"
    with _lock:
        _counts[key] = _counts.get(key, 0) + 1
    if profiler is not None:
        profiler.count(f"kernels.{key}")
    return table[name]


# ---------------------------------------------------------------------------
# Public kernels.  Signatures are pure arrays + ints so both tiers (and any
# future C/Cython tier) implement the same flat contract.
# ---------------------------------------------------------------------------
def assemble_paths(
    values: np.ndarray,
    counts: np.ndarray,
    flat_s: np.ndarray,
    lens: np.ndarray,
    starts: np.ndarray,
    total: int,
    *,
    profiler=None,
) -> np.ndarray:
    """Segmented-cumsum path assembly: unit steps -> flat node buffer.

    ``values``/``counts`` are the flattened per-(packet, subpath, dim)
    signed strides and step counts; ``flat_s`` the per-packet source node
    ids; ``lens``/``starts`` the per-packet node counts and output
    offsets (``starts = exclusive cumsum of lens``, ``total = lens.sum()``).
    Returns the ``int64[total]`` node buffer: path ``p`` occupies
    ``[starts[p], starts[p] + lens[p])`` and integrates ``flat_s[p]``
    through its repeated step values.
    """
    return _dispatch("assemble_paths", profiler)(
        values, counts, flat_s, lens, starts, int(total)
    )


def decycle_paths(
    nodes: np.ndarray, offsets: np.ndarray, *, profiler=None
) -> tuple[np.ndarray, np.ndarray, int]:
    """Loop-erase every path of a CSR collection (earliest-visit semantics).

    Returns ``(nodes, offsets, changed)`` where ``changed`` counts the
    paths that contained a revisited node.  Paths without revisits are
    preserved byte-for-byte (the numpy tier returns the input arrays
    unchanged when ``changed == 0``).  Per path the result equals
    :func:`repro.mesh.paths.remove_cycles` exactly — the scalar oracle
    :func:`repro.verify.oracles.oracle_remove_cycles` referees both tiers.
    """
    return _dispatch("decycle_paths", profiler)(nodes, offsets)


def bfs_parents(
    indptr: np.ndarray,
    heads: np.ndarray,
    s: int,
    t: int,
    n: int,
    *,
    profiler=None,
) -> np.ndarray:
    """Level-synchronous BFS parents over a CSR adjacency, rooted at ``s``.

    Stops once ``t``'s level is complete; ``parent[v] == -1`` marks
    unreached nodes and ``parent[s] == s``.  Tie-breaking is part of the
    contract: within a level the first writer in (ascending frontier
    node, CSR neighbor order) wins, so equal-length detours are identical
    across backends.
    """
    return _dispatch("bfs_parents", profiler)(indptr, heads, int(s), int(t), int(n))


def fill_box_chains(
    box_lo: np.ndarray,
    box_len: np.ndarray,
    cs: np.ndarray,
    ct: np.ndarray,
    u: np.ndarray,
    blo: np.ndarray,
    bhi: np.ndarray,
    alive: np.ndarray,
    k: int,
    *,
    profiler=None,
) -> None:
    """Scatter the bitonic ancestor chains + bridge into padded box arrays.

    Mutates ``box_lo``/``box_len`` (``(N, S, d)``, pre-filled with the
    destination single-node padding) in place: per alive packet, slots
    ``0..u-1`` get the source's type-1 ancestors at heights ``1..u``,
    slot ``u`` the bridge box ``[blo, bhi]``, slots ``u+1..2u`` the
    destination's ancestors at heights ``u..1``.
    """
    _dispatch("fill_box_chains", profiler)(
        box_lo, box_len, cs, ct, u, blo, bhi, alive, int(k)
    )


def count_loads(ids: np.ndarray, minlength: int, *, profiler=None) -> np.ndarray:
    """Dense ``int64`` histogram of ``ids`` (the edge-load accumulate)."""
    return _dispatch("count_loads", profiler)(ids, int(minlength))


def node_loads_csr(
    nodes: np.ndarray, offsets: np.ndarray, n: int, *, profiler=None
) -> np.ndarray:
    """Per-node visiting-path counts over a CSR collection.

    A path visiting a node several times counts once for that node.
    """
    return _dispatch("node_loads_csr", profiler)(nodes, offsets, int(n))


def stretch_ratios(
    lengths: np.ndarray, dists: np.ndarray, *, profiler=None
) -> np.ndarray:
    """``lengths / dists`` with ``nan`` where ``dists <= 0`` (stretch pass)."""
    return _dispatch("stretch_ratios", profiler)(lengths, dists)


# ---------------------------------------------------------------------------
# Import-time selection (REPRO_KERNELS=auto|numba|numpy).
# ---------------------------------------------------------------------------
def _resolve_from_env() -> str:
    raw = os.environ.get("REPRO_KERNELS", "auto").strip().lower() or "auto"
    if raw not in ("auto", "numba", "numpy"):
        warnings.warn(
            f"repro.kernels: unknown REPRO_KERNELS={raw!r}; using auto",
            RuntimeWarning,
            stacklevel=2,
        )
        raw = "auto"
    return set_backend(raw)


_resolve_from_env()
