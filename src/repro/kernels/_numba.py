"""The numba kernel tier: ``@njit(cache=True)`` loops, byte-identical.

Imported lazily by :mod:`repro.kernels` only when numba is installed and
the active backend is ``"numba"``.  Every function matches the numpy tier
(:mod:`repro.kernels._numpy`) to the last byte — same integer arithmetic,
same tie-breaking, same output dtypes — which ``tests/test_kernels.py``
asserts pairwise and ``repro verify`` referees against the scalar
oracles.  Compilation is cached on disk (``cache=True``) so the JIT cost
is paid once per machine, not per process.

The wrappers below normalise dtypes/contiguity before entering nopython
land so the compiled signatures stay stable across call sites.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["IMPLS"]


@njit(cache=True, nogil=True)
def _assemble_paths(values, counts, flat_s, starts, total):
    nodes = np.empty(total, dtype=np.int64)
    n_packets = flat_s.size
    if n_packets == 0:
        return nodes
    per_packet = values.size // n_packets
    for p in range(n_packets):
        w = starts[p]
        cur = flat_s[p]
        nodes[w] = cur
        w += 1
        for k in range(p * per_packet, (p + 1) * per_packet):
            v = values[k]
            for _ in range(counts[k]):
                cur += v
                nodes[w] = cur
                w += 1
    return nodes


def assemble_paths(values, counts, flat_s, lens, starts, total):
    values = np.ascontiguousarray(values, dtype=np.int64)
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    flat_s = np.ascontiguousarray(flat_s, dtype=np.int64)
    starts = np.ascontiguousarray(starts, dtype=np.int64)
    return _assemble_paths(values, counts, flat_s, starts, int(total))


@njit(cache=True, nogil=True)
def _decycle_paths(nodes, offsets, n_ids):
    n_paths = offsets.size - 1
    out = np.empty(nodes.size, dtype=np.int64)
    new_offsets = np.empty(n_paths + 1, dtype=np.int64)
    new_offsets[0] = 0
    # stamp[v] == p marks v as currently on path p's stack; stack_pos[v]
    # is its output position (valid only while stamped).
    stamp = np.full(n_ids, -1, dtype=np.int64)
    stack_pos = np.empty(n_ids, dtype=np.int64)
    wp = 0
    changed = 0
    for p in range(n_paths):
        base = wp
        for i in range(offsets[p], offsets[p + 1]):
            v = nodes[i]
            if stamp[v] == p:
                # Rewind to the first visit of v, un-marking the dropped
                # suffix so those nodes read as unseen again.
                keep = stack_pos[v] + 1
                for j in range(keep, wp):
                    stamp[out[j]] = -1
                wp = keep
            else:
                stamp[v] = p
                stack_pos[v] = wp
                out[wp] = v
                wp += 1
        new_offsets[p + 1] = wp
        if wp - base != offsets[p + 1] - offsets[p]:
            changed += 1
    return out[:wp].copy(), new_offsets, changed


def decycle_paths(nodes, offsets):
    if offsets.size <= 1 or nodes.size == 0:
        return nodes, offsets, 0
    nodes_c = np.ascontiguousarray(nodes, dtype=np.int64)
    offsets_c = np.ascontiguousarray(offsets, dtype=np.int64)
    n_ids = int(nodes_c.max()) + 1
    out, new_offsets, changed = _decycle_paths(nodes_c, offsets_c, n_ids)
    if changed == 0:
        # Preserve the numpy tier's identity fast path (same objects out).
        return nodes, offsets, 0
    return out, new_offsets, int(changed)


@njit(cache=True, nogil=True)
def _bfs_parents(indptr, heads, s, t, n):
    parent = np.full(n, -1, dtype=np.int64)
    parent[s] = s
    if s == t:
        return parent
    frontier = np.empty(n, dtype=np.int64)
    discovered = np.empty(n, dtype=np.int64)
    frontier[0] = s
    fsize = 1
    while fsize > 0 and parent[t] == -1:
        nsize = 0
        for fi in range(fsize):
            u = frontier[fi]
            for e in range(indptr[u], indptr[u + 1]):
                v = heads[e]
                if parent[v] == -1:
                    parent[v] = u
                    discovered[nsize] = v
                    nsize += 1
        if nsize == 0:
            break
        # The numpy tier expands the next level in ascending node order
        # (np.unique); sorting here keeps the first-writer ties identical.
        nxt = np.sort(discovered[:nsize])
        for i in range(nsize):
            frontier[i] = nxt[i]
        fsize = nsize
    return parent


def bfs_parents(indptr, heads, s, t, n):
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    heads = np.ascontiguousarray(heads, dtype=np.int64)
    return _bfs_parents(indptr, heads, int(s), int(t), int(n))


@njit(cache=True, nogil=True)
def _fill_box_chains(box_lo, box_len, cs, ct, u, blo, bhi, alive, k):
    n_packets, _, d = box_lo.shape
    for p in range(n_packets):
        if not alive[p]:
            continue
        up = u[p]
        for j in range(1, k):
            if up < j:
                break
            for x in range(d):
                box_lo[p, j - 1, x] = (cs[p, x] >> j) << j
                box_len[p, j - 1, x] = 1 << j
                box_lo[p, 2 * up + 1 - j, x] = (ct[p, x] >> j) << j
                box_len[p, 2 * up + 1 - j, x] = 1 << j
        for x in range(d):
            box_lo[p, up, x] = blo[p, x]
            box_len[p, up, x] = bhi[p, x] - blo[p, x] + 1


def fill_box_chains(box_lo, box_len, cs, ct, u, blo, bhi, alive, k):
    _fill_box_chains(
        box_lo,
        box_len,
        np.ascontiguousarray(cs, dtype=np.int64),
        np.ascontiguousarray(ct, dtype=np.int64),
        np.ascontiguousarray(u, dtype=np.int64),
        np.ascontiguousarray(blo, dtype=np.int64),
        np.ascontiguousarray(bhi, dtype=np.int64),
        np.ascontiguousarray(alive, dtype=np.bool_),
        int(k),
    )


@njit(cache=True, nogil=True)
def _count_loads(ids, minlength):
    out = np.zeros(minlength, dtype=np.int64)
    for i in range(ids.size):
        out[ids[i]] += 1
    return out


def count_loads(ids, minlength):
    return _count_loads(np.ascontiguousarray(ids, dtype=np.int64), int(minlength))


@njit(cache=True, nogil=True)
def _node_loads_csr(nodes, offsets, n):
    counts = np.zeros(n, dtype=np.int64)
    stamp = np.full(n, -1, dtype=np.int64)
    for p in range(offsets.size - 1):
        for i in range(offsets[p], offsets[p + 1]):
            v = nodes[i]
            if stamp[v] != p:
                stamp[v] = p
                counts[v] += 1
    return counts


def node_loads_csr(nodes, offsets, n):
    return _node_loads_csr(
        np.ascontiguousarray(nodes, dtype=np.int64),
        np.ascontiguousarray(offsets, dtype=np.int64),
        int(n),
    )


@njit(cache=True, nogil=True)
def _stretch_ratios(lengths, dists):
    out = np.empty(lengths.size, dtype=np.float64)
    for i in range(lengths.size):
        d = dists[i]
        out[i] = lengths[i] / d if d > 0 else np.nan
    return out


def stretch_ratios(lengths, dists):
    return _stretch_ratios(
        np.ascontiguousarray(lengths, dtype=np.float64),
        np.ascontiguousarray(dists, dtype=np.float64),
    )


IMPLS = {
    "assemble_paths": assemble_paths,
    "decycle_paths": decycle_paths,
    "bfs_parents": bfs_parents,
    "fill_box_chains": fill_box_chains,
    "count_loads": count_loads,
    "node_loads_csr": node_loads_csr,
    "stretch_ratios": stretch_ratios,
}
