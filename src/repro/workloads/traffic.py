"""Trace-driven arrival processes: production traffic shapes as streams.

Everything before this module routes *one-shot matrices*: a fixed batch
of (source, dest) pairs handed to ``Router.route``.  A service shaped
like the ROADMAP north star sees none of that — it sees *arrival
processes*: sustained Poisson background load, bursty on/off sources,
diurnal rate curves, flash crowds toward a handful of destinations,
hotspots that drift across the mesh, and (because the paper is about
adversarial demand) replayed matrices mined to be bad for a specific
router.

Every process here is **seeded and chunk-invariant**: the arrivals of
step ``s`` are a pure function of ``(entropy, s)``, drawn from the
dedicated spawn-key branch ``packet_stream(entropy, s,
prefix=(SIM_TRAFFIC, ...))``.  No draw ever depends on how the stream is
batched or which steps were queried before, so

* any window of the stream can be regenerated in isolation (replay a
  single bad step from a multi-day trace),
* sharded consumers observe byte-identical arrivals for every worker
  count and chunk size, and
* :func:`stream_hash` is a well-defined fingerprint of the whole trace
  (the golden matrix in ``tests/golden/traffic_hashes.json`` pins it).

The processes only require ``graph.n`` (plus ``distance`` for nothing —
destinations are node ids), so they run unchanged on :class:`Mesh`,
torus and :class:`~repro.mesh.graph.GeneralGraph` topologies.

Examples
--------
>>> from repro.mesh.mesh import Mesh
>>> from repro.workloads.traffic import make_traffic
>>> proc = make_traffic("poisson", rate=0.5)
>>> src, dst = proc.arrivals_at(Mesh((4, 4)), step=3, entropy=42)
>>> bool((src != dst).all())
True
>>> src2, _ = proc.arrivals_at(Mesh((4, 4)), step=3, entropy=42)
>>> bool((src == src2).all())
True
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.randomness import SIM_TRAFFIC, packet_stream, resolve_entropy

__all__ = [
    "TrafficProcess",
    "PoissonTraffic",
    "MMPPTraffic",
    "DiurnalTraffic",
    "FlashCrowdTraffic",
    "HotspotTraffic",
    "ShiftingHotspotTraffic",
    "ReplayTraffic",
    "adversarial_replay",
    "make_traffic",
    "stream_hash",
    "TRAFFIC",
]

#: spawn-key sub-branches under ``SIM_TRAFFIC`` (second prefix word):
#: per-step arrival draws, per-epoch hot-set draws, modulating-chain
#: uniforms.  Keeping them distinct keeps e.g. a hot-set redraw from
#: shifting every later arrival draw.
_SUB_ARRIVALS = 0
_SUB_HOTSET = 1
_SUB_CHAIN = 2


def _step_rng(entropy: int, step: int, sub: int = _SUB_ARRIVALS) -> np.random.Generator:
    """The canonical generator of one traffic step (chunk-invariance)."""
    return packet_stream(entropy, step, prefix=(SIM_TRAFFIC, sub))


def _uniform_pairs(
    rng: np.random.Generator, n: int, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """``count`` uniform (src, dst) pairs with ``src != dst``."""
    if n < 2:
        raise ValueError("need at least two nodes")
    src = rng.integers(n, size=count).astype(np.int64)
    dst = rng.integers(n, size=count).astype(np.int64)
    clash = src == dst
    while np.any(clash):
        dst[clash] = rng.integers(n, size=int(clash.sum()))
        clash = src == dst
    return src, dst


def _retarget(
    rng: np.random.Generator, src: np.ndarray, dst: np.ndarray, n: int
) -> np.ndarray:
    """Resample ``dst`` entries that collide with ``src`` (uniformly)."""
    clash = src == dst
    while np.any(clash):
        dst[clash] = rng.integers(n, size=int(clash.sum()))
        clash = src == dst
    return dst


class TrafficProcess:
    """Base class: a seeded, chunk-invariant (step, source, dest) stream.

    Subclasses implement :meth:`offered_load` (the expected number of
    whole-graph arrivals at a step — the contract the rate-conservation
    property tests check) and :meth:`arrivals_at` (the actual draw).
    """

    name: str = "traffic"

    # -- the per-step contract ------------------------------------------
    def offered_load(self, graph, step: int) -> float:
        """Expected number of arrivals (whole graph) at ``step``."""
        raise NotImplementedError

    def arrivals_at(
        self, graph, step: int, entropy: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(sources, dests) int64 arrays for ``step``; pure in (entropy, step)."""
        raise NotImplementedError

    # -- derived streaming views ----------------------------------------
    def mean_load(self, graph, steps: int) -> float:
        """Expected arrivals over ``steps`` steps (whole graph)."""
        return float(sum(self.offered_load(graph, s) for s in range(steps)))

    def stream(
        self, graph, steps: int, seed: int | str | None = 0, start: int = 0
    ) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(step, sources, dests)`` for steps ``[start, start+steps)``.

        Steps with zero arrivals are yielded with empty arrays, so
        consumers can track wall-clock time without bookkeeping.
        """
        entropy = resolve_entropy(seed)
        for step in range(start, start + steps):
            src, dst = self.arrivals_at(graph, step, entropy)
            yield step, src, dst

    def batches(
        self,
        graph,
        steps: int,
        seed: int | str | None = 0,
        chunk_steps: int = 64,
        start: int = 0,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(step, sources, dests)`` triples batched over step windows.

        The concatenation of all batches is independent of
        ``chunk_steps`` — the chunk-invariance guarantee that makes
        :func:`stream_hash` meaningful.
        """
        if chunk_steps < 1:
            raise ValueError("chunk_steps must be >= 1")
        entropy = resolve_entropy(seed)
        for lo in range(start, start + steps, chunk_steps):
            hi = min(lo + chunk_steps, start + steps)
            cols: list[np.ndarray] = []
            srcs: list[np.ndarray] = []
            dsts: list[np.ndarray] = []
            for step in range(lo, hi):
                src, dst = self.arrivals_at(graph, step, entropy)
                cols.append(np.full(src.size, step, dtype=np.int64))
                srcs.append(src)
                dsts.append(dst)
            yield (
                np.concatenate(cols) if cols else np.empty(0, np.int64),
                np.concatenate(srcs) if srcs else np.empty(0, np.int64),
                np.concatenate(dsts) if dsts else np.empty(0, np.int64),
            )


@dataclass
class PoissonTraffic(TrafficProcess):
    """Memoryless background load: ``Poisson(rate * n)`` uniform pairs/step.

    ``rate`` is the per-node offered load in packets per step, the same
    unit ``simulate_online(rate=...)``'s Bernoulli injectors use — at
    equal rates the two offer equal load, Poisson just allows >1 arrival
    per node per step (a real ingress queue does too).
    """

    rate: float = 0.1
    name: str = "poisson"

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")

    def offered_load(self, graph, step: int) -> float:
        return self.rate * graph.n

    def arrivals_at(self, graph, step, entropy):
        rng = _step_rng(entropy, step)
        count = int(rng.poisson(self.rate * graph.n))
        return _uniform_pairs(rng, graph.n, count)


@dataclass
class MMPPTraffic(TrafficProcess):
    """Bursty on/off load: a 2-state Markov-modulated Poisson process.

    A hidden chain alternates between an *on* state offering
    ``rate_on`` and an *off* state offering ``rate_off`` (per node,
    per step); it flips on→off with probability ``p_exit_on`` and
    off→on with ``p_exit_off`` each step, giving geometric burst and
    gap lengths.  The chain's uniforms come from their own spawn-key
    branch keyed by step, so state ``s`` is a pure function of
    ``(entropy, s)`` — computed by folding the flip decisions, memoised
    per entropy so streaming consumption stays O(1) amortised per step.
    """

    rate_on: float = 0.3
    rate_off: float = 0.02
    p_exit_on: float = 0.1
    p_exit_off: float = 0.1
    name: str = "mmpp"
    _states: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for p in (self.p_exit_on, self.p_exit_off):
            if not 0 < p <= 1:
                raise ValueError("chain exit probabilities must be in (0, 1]")
        if min(self.rate_on, self.rate_off) < 0:
            raise ValueError("rates must be non-negative")

    def _state(self, entropy: int, step: int) -> bool:
        """Chain state at ``step`` (True = on); state 0 is *on*."""
        states = self._states.get(entropy)
        if states is None or states.size <= step:
            grow_to = max(step + 1, 256 if states is None else 2 * states.size)
            known = 0 if states is None else states.size
            new = np.empty(grow_to, dtype=bool)
            if known:
                new[:known] = states
            cur = bool(new[known - 1]) if known else True
            for s in range(max(known, 1), grow_to):
                # the flip uniform of step s-1 decides the state of step s
                u = float(_step_rng(entropy, s - 1, _SUB_CHAIN).random())
                exit_p = self.p_exit_on if cur else self.p_exit_off
                cur = (not cur) if u < exit_p else cur
                new[s] = cur
            if known == 0:
                new[0] = True
            states = self._states[entropy] = new
        return bool(states[step])

    def _rate(self, entropy: int, step: int) -> float:
        return self.rate_on if self._state(entropy, step) else self.rate_off

    def offered_load(self, graph, step: int) -> float:
        """Expected arrivals under the chain's *stationary* mix.

        The realised per-step rate depends on the hidden state, so rate
        conservation holds in expectation over the stationary
        distribution ``pi_on = p_exit_off / (p_exit_on + p_exit_off)``.
        """
        pi_on = self.p_exit_off / (self.p_exit_on + self.p_exit_off)
        return (pi_on * self.rate_on + (1 - pi_on) * self.rate_off) * graph.n

    def arrivals_at(self, graph, step, entropy):
        rng = _step_rng(entropy, step)
        count = int(rng.poisson(self._rate(entropy, step) * graph.n))
        return _uniform_pairs(rng, graph.n, count)


@dataclass
class DiurnalTraffic(TrafficProcess):
    """A smooth day/night rate curve: raised-cosine between base and peak.

    ``rate(s) = base + (peak - base) * (1 - cos(2 pi s / period)) / 2``
    — the load starts at ``base`` (midnight), peaks halfway through the
    period, and returns.  The canonical shape behind every service
    capacity plan.
    """

    base_rate: float = 0.05
    peak_rate: float = 0.4
    period: int = 200
    name: str = "diurnal"

    def __post_init__(self) -> None:
        if self.period < 2:
            raise ValueError("period must be >= 2")
        if not 0 <= self.base_rate <= self.peak_rate:
            raise ValueError("need 0 <= base_rate <= peak_rate")

    def rate_at(self, step: int) -> float:
        phase = (1 - math.cos(2 * math.pi * (step % self.period) / self.period)) / 2
        return self.base_rate + (self.peak_rate - self.base_rate) * phase

    def offered_load(self, graph, step: int) -> float:
        return self.rate_at(step) * graph.n

    def arrivals_at(self, graph, step, entropy):
        rng = _step_rng(entropy, step)
        count = int(rng.poisson(self.rate_at(step) * graph.n))
        return _uniform_pairs(rng, graph.n, count)


@dataclass
class FlashCrowdTraffic(TrafficProcess):
    """Baseline load plus a sudden crowd converging on few destinations.

    Outside the spike window this is :class:`PoissonTraffic` at
    ``base_rate``.  During ``[spike_start, spike_start + spike_len)``
    the offered load jumps to ``spike_rate`` and a ``hot_weight``
    fraction of the extra demand targets a ``hot_frac`` sliver of the
    nodes (drawn once per entropy from the hot-set branch) — the
    thundering-herd shape that breaks shortest-path-greedy schemes.
    """

    base_rate: float = 0.05
    spike_rate: float = 0.6
    spike_start: int = 50
    spike_len: int = 30
    hot_frac: float = 0.05
    hot_weight: float = 0.8
    name: str = "flash-crowd"

    def __post_init__(self) -> None:
        if self.spike_len < 1:
            raise ValueError("spike_len must be >= 1")
        if not 0 < self.hot_frac <= 1:
            raise ValueError("hot_frac must be in (0, 1]")
        if not 0 <= self.hot_weight <= 1:
            raise ValueError("hot_weight must be in [0, 1]")

    def _hot_nodes(self, graph, entropy: int) -> np.ndarray:
        k = max(1, int(round(self.hot_frac * graph.n)))
        rng = _step_rng(entropy, 0, _SUB_HOTSET)
        return np.sort(rng.choice(graph.n, size=k, replace=False)).astype(np.int64)

    def _in_spike(self, step: int) -> bool:
        return self.spike_start <= step < self.spike_start + self.spike_len

    def rate_at(self, step: int) -> float:
        return self.spike_rate if self._in_spike(step) else self.base_rate

    def offered_load(self, graph, step: int) -> float:
        return self.rate_at(step) * graph.n

    def arrivals_at(self, graph, step, entropy):
        rng = _step_rng(entropy, step)
        count = int(rng.poisson(self.rate_at(step) * graph.n))
        src, dst = _uniform_pairs(rng, graph.n, count)
        if count and self._in_spike(step) and self.hot_weight > 0:
            hot = self._hot_nodes(graph, entropy)
            to_hot = rng.random(count) < self.hot_weight
            dst[to_hot] = hot[rng.integers(hot.size, size=int(to_hot.sum()))]
            dst = _retarget(rng, src, dst, graph.n)
        return src, dst


@dataclass
class HotspotTraffic(TrafficProcess):
    """Stationary hotspot: a fixed sliver of nodes receives most traffic.

    A ``hot_weight`` fraction of destinations is drawn uniformly from a
    ``hot_frac`` subset (fixed per entropy), the rest uniformly from the
    whole graph — the all-to-one pattern of
    :func:`repro.workloads.generators.all_to_one`, softened into a
    sustained arrival process.
    """

    rate: float = 0.1
    hot_frac: float = 0.1
    hot_weight: float = 0.7
    name: str = "hotspot"

    def __post_init__(self) -> None:
        if not 0 < self.hot_frac <= 1:
            raise ValueError("hot_frac must be in (0, 1]")
        if not 0 <= self.hot_weight <= 1:
            raise ValueError("hot_weight must be in [0, 1]")

    def _hot_nodes(self, graph, entropy: int, epoch: int = 0) -> np.ndarray:
        k = max(1, int(round(self.hot_frac * graph.n)))
        rng = _step_rng(entropy, epoch, _SUB_HOTSET)
        return np.sort(rng.choice(graph.n, size=k, replace=False)).astype(np.int64)

    def _epoch(self, step: int) -> int:
        return 0

    def offered_load(self, graph, step: int) -> float:
        return self.rate * graph.n

    def arrivals_at(self, graph, step, entropy):
        rng = _step_rng(entropy, step)
        count = int(rng.poisson(self.rate * graph.n))
        src, dst = _uniform_pairs(rng, graph.n, count)
        if count and self.hot_weight > 0:
            hot = self._hot_nodes(graph, entropy, self._epoch(step))
            to_hot = rng.random(count) < self.hot_weight
            dst[to_hot] = hot[rng.integers(hot.size, size=int(to_hot.sum()))]
            dst = _retarget(rng, src, dst, graph.n)
        return src, dst


@dataclass
class ShiftingHotspotTraffic(HotspotTraffic):
    """Hotspot whose hot set is re-drawn every ``period`` steps.

    The epoch's hot set is keyed by ``step // period`` on the hot-set
    spawn branch, so it shifts deterministically without any cross-step
    state — a moving target no static placement can pre-provision for,
    and the regime where oblivious load balancing earns its keep.
    """

    period: int = 50
    name: str = "shifting-hotspot"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period < 1:
            raise ValueError("period must be >= 1")

    def _epoch(self, step: int) -> int:
        return step // self.period


@dataclass
class ReplayTraffic(TrafficProcess):
    """Replay of a fixed (source, dest) matrix as a sustained process.

    Each step offers ``Poisson(rate * n)`` arrivals sampled uniformly
    (with replacement) from the pair list — turning any one-shot matrix
    (a mined adversarial ``Π_A``, a captured production trace) into an
    arrival process at a controllable load.  Build from a
    :class:`~repro.routing.base.RoutingProblem` with
    :meth:`from_problem`, or mine a fresh adversary with
    :func:`adversarial_replay`.
    """

    pairs_src: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    pairs_dst: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    rate: float = 0.1
    name: str = "replay"

    def __post_init__(self) -> None:
        self.pairs_src = np.asarray(self.pairs_src, dtype=np.int64)
        self.pairs_dst = np.asarray(self.pairs_dst, dtype=np.int64)
        if self.pairs_src.size != self.pairs_dst.size:
            raise ValueError("source and dest pair arrays must align")
        if self.pairs_src.size == 0:
            raise ValueError("replay needs at least one (source, dest) pair")
        if np.any(self.pairs_src == self.pairs_dst):
            raise ValueError("replay pairs must have source != dest")

    @classmethod
    def from_problem(cls, problem, rate: float = 0.1, name: str | None = None):
        return cls(
            pairs_src=problem.sources,
            pairs_dst=problem.dests,
            rate=rate,
            name=name or f"replay:{problem.name}",
        )

    def offered_load(self, graph, step: int) -> float:
        return self.rate * graph.n

    def arrivals_at(self, graph, step, entropy):
        if int(self.pairs_src.max()) >= graph.n or int(self.pairs_dst.max()) >= graph.n:
            raise ValueError("replay pairs reference nodes outside the graph")
        rng = _step_rng(entropy, step)
        count = int(rng.poisson(self.rate * graph.n))
        pick = rng.integers(self.pairs_src.size, size=count)
        return self.pairs_src[pick].copy(), self.pairs_dst[pick].copy()


def adversarial_replay(
    mesh, router_name: str = "dim-order", l: int = 4, rate: float = 0.1
) -> ReplayTraffic:
    """Replay the paper's ``Π_A`` adversary mined against ``router_name``.

    Uses :func:`repro.workloads.adversarial.adversarial_for_router` (the
    construction behind bench_x6's hill-climbing search) to build the
    worst-case block-exchange matrix for the named router, then streams
    it at ``rate`` — sustained adversarial demand, the regime the
    paper's oblivious guarantees are *for*.
    """
    from repro.routing.registry import make_router
    from repro.workloads.adversarial import adversarial_for_router

    problem, _hot = adversarial_for_router(make_router(router_name), mesh, l)
    return ReplayTraffic.from_problem(
        problem, rate=rate, name=f"adversarial:{router_name}-l{l}"
    )


#: name -> zero-config factory (replay variants need a matrix, so the
#: registry carries the synthetic family; see :func:`adversarial_replay`).
TRAFFIC = {
    "poisson": PoissonTraffic,
    "mmpp": MMPPTraffic,
    "diurnal": DiurnalTraffic,
    "flash-crowd": FlashCrowdTraffic,
    "hotspot": HotspotTraffic,
    "shifting-hotspot": ShiftingHotspotTraffic,
}


def make_traffic(name: str, **params) -> TrafficProcess:
    """Instantiate a registered traffic process by name.

    >>> make_traffic("diurnal", period=100).period
    100
    """
    try:
        factory = TRAFFIC[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic process {name!r}; known: {sorted(TRAFFIC)}"
        ) from None
    return factory(**params)


def stream_hash(
    process: TrafficProcess,
    graph,
    steps: int,
    seed: int | str | None = 0,
    chunk_steps: int = 64,
) -> str:
    """sha256 fingerprint of the emitted arrival stream.

    Hashes the row-packed little-endian int64 ``(step, source, dest)``
    triples in step order, so the digest is invariant to ``chunk_steps``
    (pinned by a property test) and to the consumer's sharding.  Golden
    values live in ``tests/golden/traffic_hashes.json``.
    """
    digest = hashlib.sha256()
    for step_col, src, dst in process.batches(
        graph, steps, seed=seed, chunk_steps=chunk_steps
    ):
        rows = np.column_stack((step_col, src, dst)).astype("<i8")
        digest.update(np.ascontiguousarray(rows).tobytes())
    return digest.hexdigest()
