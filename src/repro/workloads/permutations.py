"""Classic permutation traffic patterns on the mesh.

Each generator returns a :class:`~repro.routing.base.RoutingProblem` in
which every node is the source of exactly one packet and the destination of
exactly one packet — the permutation setting the paper's Section 5
constructions use.  Packets with ``source == destination`` (fixed points)
are dropped unless ``keep_fixed_points`` is set.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem

__all__ = [
    "transpose",
    "bit_reversal",
    "bit_complement",
    "tornado",
    "random_permutation",
]


def _problem(
    mesh: Mesh, dests: np.ndarray, name: str, keep_fixed_points: bool
) -> RoutingProblem:
    sources = np.arange(mesh.n, dtype=np.int64)
    dests = np.asarray(dests, dtype=np.int64)
    if np.unique(dests).size != mesh.n:
        raise AssertionError(f"{name} must be a permutation")
    if not keep_fixed_points:
        keep = sources != dests
        sources, dests = sources[keep], dests[keep]
    return RoutingProblem(mesh, sources, dests, name)


def transpose(mesh: Mesh, *, keep_fixed_points: bool = False) -> RoutingProblem:
    """``(x_1, ..., x_d) -> (x_d, x_1, ..., x_{d-1})``; matrix transpose in 2-D.

    The classic adversary for deterministic dimension-order routing: all
    traffic from the lower triangle squeezes through the diagonal.
    Requires equal side lengths.
    """
    if len(set(mesh.sides)) != 1:
        raise ValueError("transpose needs equal side lengths")
    coords = mesh.flat_to_coords(np.arange(mesh.n, dtype=np.int64))
    rolled = np.roll(coords, 1, axis=1)
    return _problem(mesh, mesh.coords_to_flat(rolled), "transpose", keep_fixed_points)


def bit_reversal(mesh: Mesh, *, keep_fixed_points: bool = False) -> RoutingProblem:
    """Reverse the bits of each coordinate; needs power-of-two sides."""
    for s in mesh.sides:
        if s & (s - 1):
            raise ValueError("bit reversal needs power-of-two sides")
    coords = mesh.flat_to_coords(np.arange(mesh.n, dtype=np.int64))
    out = np.empty_like(coords)
    for i, m_i in enumerate(mesh.sides):
        bits = max(int(m_i).bit_length() - 1, 0)
        col = coords[:, i]
        rev = np.zeros_like(col)
        for b in range(bits):
            rev |= ((col >> b) & 1) << (bits - 1 - b)
        out[:, i] = rev
    return _problem(mesh, mesh.coords_to_flat(out), "bit-reversal", keep_fixed_points)


def bit_complement(mesh: Mesh, *, keep_fixed_points: bool = False) -> RoutingProblem:
    """``x_i -> m_i - 1 - x_i``: every packet crosses the mesh center."""
    coords = mesh.flat_to_coords(np.arange(mesh.n, dtype=np.int64))
    flipped = np.asarray(mesh.sides, dtype=np.int64)[None, :] - 1 - coords
    return _problem(
        mesh, mesh.coords_to_flat(flipped), "bit-complement", keep_fixed_points
    )


def tornado(mesh: Mesh, dim: int = 0, *, keep_fixed_points: bool = False) -> RoutingProblem:
    """Shift by ``ceil(m/2) - 1`` along one dimension (wrapping).

    A long-haul pattern that stresses one dimension uniformly.
    """
    if not (0 <= dim < mesh.d):
        raise ValueError("invalid dimension")
    m_i = mesh.sides[dim]
    shift = max((m_i + 1) // 2 - 1, 1 if m_i > 1 else 0)
    coords = mesh.flat_to_coords(np.arange(mesh.n, dtype=np.int64))
    coords[:, dim] = (coords[:, dim] + shift) % m_i
    return _problem(mesh, mesh.coords_to_flat(coords), "tornado", keep_fixed_points)


def random_permutation(
    mesh: Mesh, seed: int | None = None, *, keep_fixed_points: bool = False
) -> RoutingProblem:
    """A uniformly random permutation of the nodes."""
    rng = np.random.default_rng(seed)
    dests = rng.permutation(mesh.n).astype(np.int64)
    return _problem(mesh, dests, "random-permutation", keep_fixed_points)
