"""Random and parametric traffic generators (non-permutation workloads)."""

from __future__ import annotations

import numpy as np

from repro.core.randomness import resolve_entropy
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem

__all__ = [
    "random_pairs",
    "all_to_one",
    "nearest_neighbor",
    "local_traffic",
    "r_relation",
]


def _rng(seed: int | str | None) -> np.random.Generator:
    """Seeded generator accepting the decimal-string entropy convention.

    ``repro.io`` persists resolved entropy as a decimal string (it can be
    128 bits — past int64); routing every generator seed through
    :func:`resolve_entropy` lets a saved seed replay a workload directly.
    Integer seeds are untouched (``resolve_entropy(i) == i``), so existing
    streams are byte-identical.
    """
    return np.random.default_rng(resolve_entropy(seed))


def r_relation(mesh: Mesh, r: int, seed: int | str | None = None) -> RoutingProblem:
    """A random ``r``-relation: every node sends and receives ``r`` packets.

    The standard generalisation of permutation routing (r = 1 recovers a
    random permutation); built as ``r`` independent random permutations, so
    the optimal congestion scales linearly in ``r`` while the paper's
    guarantees apply unchanged (the router never looks at the workload).
    Self-packets are dropped.
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    rng = _rng(seed)
    sources = []
    dests = []
    for _ in range(r):
        perm = rng.permutation(mesh.n).astype(np.int64)
        src = np.arange(mesh.n, dtype=np.int64)
        keep = src != perm
        sources.append(src[keep])
        dests.append(perm[keep])
    return RoutingProblem(
        mesh,
        np.concatenate(sources),
        np.concatenate(dests),
        f"{r}-relation",
    )


def random_pairs(
    mesh: Mesh, num_packets: int, seed: int | str | None = None
) -> RoutingProblem:
    """``num_packets`` independent uniform (source, dest) pairs, s != t."""
    rng = _rng(seed)
    if mesh.n < 2:
        raise ValueError("need at least two nodes")
    sources = rng.integers(mesh.n, size=num_packets).astype(np.int64)
    dests = rng.integers(mesh.n, size=num_packets).astype(np.int64)
    clash = sources == dests
    while np.any(clash):
        dests[clash] = rng.integers(mesh.n, size=int(clash.sum()))
        clash = sources == dests
    return RoutingProblem(mesh, sources, dests, "random-pairs")


def all_to_one(mesh: Mesh, target: int | None = None) -> RoutingProblem:
    """Every node sends one packet to ``target`` (default: the center).

    The hot-spot pattern: optimal congestion is forced to
    ``~ (n-1) / degree(target)`` no matter the router.
    """
    if target is None:
        target = mesh.node(*[s // 2 for s in mesh.sides])
    sources = np.asarray(
        [v for v in range(mesh.n) if v != target], dtype=np.int64
    )
    dests = np.full(sources.size, target, dtype=np.int64)
    return RoutingProblem(mesh, sources, dests, "all-to-one")


def nearest_neighbor(mesh: Mesh, seed: int | str | None = None) -> RoutingProblem:
    """Every node sends to a uniformly random neighbor.

    Short-haul traffic: any constant-stretch router keeps paths local,
    while Valiant-style routers blow every packet across the mesh — the
    motivating scenario of the paper's introduction.
    """
    rng = _rng(seed)
    sources = np.arange(mesh.n, dtype=np.int64)
    dests = np.asarray(
        [mesh.neighbors(int(v))[int(rng.integers(mesh.degree(int(v))))] for v in sources],
        dtype=np.int64,
    )
    return RoutingProblem(mesh, sources, dests, "nearest-neighbor")


def local_traffic(
    mesh: Mesh, radius: int, seed: int | str | None = None
) -> RoutingProblem:
    """Every node sends to a random node within L1 distance ``radius``.

    Sampled by rejection over the enclosing coordinate box, so the radius
    may not exceed the mesh diameter.
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")
    rng = _rng(seed)
    coords = mesh.flat_to_coords(np.arange(mesh.n, dtype=np.int64))
    sides = np.asarray(mesh.sides, dtype=np.int64)
    dests = np.empty(mesh.n, dtype=np.int64)
    for v in range(mesh.n):
        c = coords[v]
        while True:
            offset = rng.integers(-radius, radius + 1, size=mesh.d)
            if np.abs(offset).sum() == 0 or np.abs(offset).sum() > radius:
                continue
            cand = c + offset
            if np.all((cand >= 0) & (cand < sides)):
                dests[v] = int(cand @ mesh.strides)
                break
    return RoutingProblem(
        mesh, np.arange(mesh.n, dtype=np.int64), dests, f"local-r{radius}"
    )
