"""Routing-problem generators.

Standard mesh traffic patterns (:mod:`permutations`), random/parametric
traffic (:mod:`generators`), the adversarial constructions of
Section 5.1 (:mod:`adversarial`), and trace-driven arrival processes
for the online simulator (:mod:`traffic` — see docs/WORKLOADS.md for
the full taxonomy).
"""

from repro.workloads.permutations import (
    bit_complement,
    bit_reversal,
    random_permutation,
    tornado,
    transpose,
)
from repro.workloads.generators import (
    all_to_one,
    local_traffic,
    nearest_neighbor,
    r_relation,
    random_pairs,
)
from repro.workloads.adversarial import (
    adversarial_for_router,
    block_exchange,
    scheme_separating_pairs,
)
from repro.workloads.traffic import (
    TRAFFIC,
    DiurnalTraffic,
    FlashCrowdTraffic,
    HotspotTraffic,
    MMPPTraffic,
    PoissonTraffic,
    ReplayTraffic,
    ShiftingHotspotTraffic,
    TrafficProcess,
    adversarial_replay,
    make_traffic,
    stream_hash,
)

__all__ = [
    "transpose",
    "bit_reversal",
    "bit_complement",
    "tornado",
    "random_permutation",
    "random_pairs",
    "all_to_one",
    "nearest_neighbor",
    "local_traffic",
    "r_relation",
    "block_exchange",
    "adversarial_for_router",
    "scheme_separating_pairs",
    "TrafficProcess",
    "PoissonTraffic",
    "MMPPTraffic",
    "DiurnalTraffic",
    "FlashCrowdTraffic",
    "HotspotTraffic",
    "ShiftingHotspotTraffic",
    "ReplayTraffic",
    "adversarial_replay",
    "make_traffic",
    "stream_hash",
    "TRAFFIC",
]

WORKLOADS = {
    "transpose": transpose,
    "bit-reversal": bit_reversal,
    "bit-complement": bit_complement,
    "tornado": tornado,
    "random-permutation": random_permutation,
}
