"""Adversarial constructions of Section 5.1.

The paper shows randomization is unavoidable by building, for any
``κ``-choice algorithm ``A``, a routing problem ``Π_A`` on which ``A``'s
expected congestion is at least ``l / (d κ)``:

1. partition the mesh into blocks of side ``l`` and pair blocks so that
   paired blocks exchange packets between corresponding nodes — a
   permutation in which every packet travels distance exactly ``l``
   (:func:`block_exchange`);
2. route it with ``A``'s most-probable path per packet (for deterministic
   routers, *the* path); by averaging, some edge is crossed by at least
   ``l / d`` packets;
3. keep only those packets (:func:`adversarial_for_router`).

For deterministic routers the resulting instance *forces* congestion
``|Π_A|``; the paper's hierarchical algorithm routes the same instance with
congestion ``O(B log n)`` where ``B(Π_A) <= l / (d (1 + d))`` (Lemma 5.2) —
the gap that makes random bits necessary (Lemma 5.3).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh
from repro.routing.base import Router, RoutingProblem

__all__ = ["block_exchange", "adversarial_for_router", "scheme_separating_pairs"]


def scheme_separating_pairs(mesh: Mesh) -> RoutingProblem:
    """Adjacent-ish pairs that defeat the half-shift ("direct
    generalization") decomposition but not the multishift one.

    Section 4 opens by noting that generalizing the 2-D construction
    directly (one shifted type, translation ``m_l / 2``) drives the stretch
    to ``O(2^d)``.  The mechanism: a pair can straddle the type-1 grid at
    *every* level in dimension 0 (the central cut) while each remaining
    dimension straddles the half-shift grid at a *different* level, killing
    both available types for ``d - 1`` consecutive levels — the meeting
    height rises by ``Theta(d)`` and each extra level doubles the bitonic
    subpaths.  The multishift scheme's ``>= d + 1`` offsets survive by the
    pigeonhole of Lemma 4.1.

    Pairs are emitted for every straddle depth ``j = 1 .. d-1`` (dims
    ``1..j`` straddle the half-shift grid at levels ``1..j``); the
    remaining free dimensions take several non-straddling positions, giving
    a small family rather than a single pair.
    """
    d, m = mesh.d, mesh.sides[0]
    if not mesh.is_power_of_two_cube:
        raise ValueError("needs equal power-of-two sides")
    k = mesh.k
    if d < 2 or k < d:
        raise ValueError("needs d >= 2 and side >= 2^d")
    free_positions = sorted({1, m // 2 + 1, m - 2})
    sources, dests = [], []
    for depth in range(1, d):
        for pos in free_positions:
            a = [m // 2 - 1]
            b = [m // 2]
            for i in range(1, d):
                if i <= depth:
                    boundary = 1 << (k - 1 - i)
                    a.append(boundary - 1)
                    b.append(boundary)
                else:
                    a.append(pos)
                    b.append(pos)
            sources.append(int(np.asarray(a) @ mesh.strides))
            dests.append(int(np.asarray(b) @ mesh.strides))
    return RoutingProblem(
        mesh, np.asarray(sources), np.asarray(dests), "scheme-separating"
    )


def block_exchange(mesh: Mesh, l: int) -> RoutingProblem:
    """Pair blocks of side ``l`` along dimension 0 and exchange their nodes.

    Every node is the source of one packet and destination of another, and
    every packet's distance is exactly ``l``.  Requires ``mesh.sides[0]``
    divisible by ``2 l``.
    """
    if l < 1:
        raise ValueError("block side must be >= 1")
    m0 = mesh.sides[0]
    if m0 % (2 * l) != 0:
        raise ValueError(f"side {m0} not divisible by 2*l = {2 * l}")
    coords = mesh.flat_to_coords(np.arange(mesh.n, dtype=np.int64))
    block = coords[:, 0] // l
    offset = np.where(block % 2 == 0, l, -l)
    dest_coords = coords.copy()
    dest_coords[:, 0] += offset
    dests = mesh.coords_to_flat(dest_coords)
    return RoutingProblem(
        mesh, np.arange(mesh.n, dtype=np.int64), dests, f"block-exchange-l{l}"
    )


def adversarial_for_router(
    router: Router,
    mesh: Mesh,
    l: int,
    seed: int | None = 0,
) -> tuple[RoutingProblem, int]:
    """Build ``Π_A`` for ``router``: the packets sharing its busiest edge.

    Routes :func:`block_exchange` with ``router`` (for randomized routers
    this samples one realisation in place of the paper's "most probable
    path" — exact for deterministic routers, a Monte-Carlo stand-in
    otherwise) and returns ``(Π_A, hot_edge_id)``.

    By the paper's averaging argument ``|Π_A| >= l / d`` for deterministic
    routers, and re-routing ``Π_A`` with the *same* deterministic router
    reproduces congestion ``|Π_A|`` on ``hot_edge_id``.
    """
    problem = block_exchange(mesh, l)
    result = router.route(problem, seed=seed)
    loads = result.edge_loads
    hot_edge = int(np.argmax(loads))
    eids = result.paths.edge_ids(mesh)
    crossing = np.unique(result.paths.edge_path_ids[eids == hot_edge])
    sub = problem.subproblem(crossing, name=f"adversarial-{router.name}-l{l}")
    return sub, hot_edge
