"""Sharded multiprocess execution with byte-identical merge.

The batched engine (PR 1) made a single core fast; this package makes the
*machine* fast without touching the repo's strongest invariant: fixed-seed
byte-identical paths.  A routing problem is split into contiguous per-worker
shards, each shard is routed in its own process, and the per-shard CSR
:class:`~repro.core.pathset.PathSet` results are concatenated —
**byte-identical to the serial engine for every shard count**.

Why that holds, in one sentence: every per-packet random stream is keyed by
the packet's *global* index (:mod:`repro.core.randomness`), never by its
position inside a shard, so worker ``k`` derives exactly the bytes the
serial engine would have derived for the same packets, and oblivious path
selection has no other cross-packet state to lose.

Layout:

* :mod:`~repro.parallel.sharding` — shard bounds and result merging;
* :mod:`~repro.parallel.executor` — :class:`SerialExecutor` (in-process,
  the ``workers=1`` / no-fork fallback) and the ``ProcessPoolExecutor``
  factory;
* :mod:`~repro.parallel.worker` — the picklable shard task/result types
  and the top-level worker functions;
* :mod:`~repro.parallel.api` — :func:`route_sharded`, the entry point
  behind ``Router.route(workers=)``.

Non-oblivious routers cannot shard (each path depends on every earlier
one); :func:`route_sharded` refuses them rather than silently changing
their semantics.
"""

from repro.parallel.api import route_sharded
from repro.parallel.executor import SerialExecutor, make_executor, resolve_workers
from repro.parallel.sharding import merge_shard_results, shard_bounds
from repro.parallel.worker import ShardResult, ShardTask, route_shard

__all__ = [
    "SerialExecutor",
    "ShardResult",
    "ShardTask",
    "make_executor",
    "merge_shard_results",
    "resolve_workers",
    "route_shard",
    "route_sharded",
    "shard_bounds",
]
