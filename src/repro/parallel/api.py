""":func:`route_sharded` — the entry point behind ``Router.route(workers=)``.

Splits the problem into contiguous shards, routes them on an executor
(process pool or in-process), and merges per-shard results into the exact
serial bytes.  The parent resolves the seed *once*
(:func:`~repro.core.randomness.resolve_entropy`) and ships the same
integer to every worker, so even ``seed=None`` runs are internally
consistent across shard counts.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.core.randomness import resolve_entropy
from repro.parallel.executor import make_executor, resolve_workers
from repro.parallel.sharding import merge_shard_results, shard_bounds
from repro.parallel.worker import ShardTask, prepare_router, route_shard
from repro.routing.base import RoutingProblem, RoutingResult, Router

__all__ = ["route_sharded"]


def route_sharded(
    router: Router,
    problem: RoutingProblem,
    seed: int | None = None,
    *,
    workers: int | None = None,
    batch: bool | str = True,
    packet_offset: int = 0,
    executor=None,
    budget=None,
    context: str = "auto",
    transport: str = "auto",
) -> RoutingResult:
    """Route ``problem`` in shards; byte-identical to the serial engine.

    Parameters mirror :meth:`Router.route`; ``executor`` optionally
    injects a pre-built executor (anything with ordered ``map`` +
    ``shutdown``) — callers routing many problems amortise pool start-up
    by passing one in (the warm service pool does exactly this), and tests
    sweep shard counts on the
    :class:`~repro.parallel.executor.SerialExecutor` without process cost.
    An executor this call created is always shut down before returning —
    success, worker exception or merge failure alike — so a failing
    sharded route can never leak a pool or its child processes.

    ``context`` picks the start method for an owned pool (see
    :func:`~repro.parallel.executor.make_executor`).  ``transport``
    selects how shard CSRs come back: ``"pickle"`` ships arrays inline,
    ``"shm"`` parks them in shared-memory segments
    (:meth:`PathSet.to_shared`), and ``"auto"`` uses shm exactly when the
    shards actually run in other processes.
    """
    if not router.is_oblivious:
        raise ValueError(
            f"cannot shard non-oblivious router {router.name!r}: its paths "
            "depend on each other; route with workers=1"
        )
    if transport not in ("auto", "pickle", "shm"):
        raise ValueError(f"unknown transport {transport!r}")
    from repro.core.budget import BudgetParams

    params = BudgetParams.resolve(budget)
    w = resolve_workers(workers)
    entropy = resolve_entropy(seed)
    n = problem.num_packets
    if w == 1 or n == 0:
        return router.route(
            problem,
            entropy,
            batch=batch,
            workers=1,
            packet_offset=packet_offset,
            budget=params,
        )

    from repro import kernels

    profiler = router.profiler
    payload = prepare_router(router)
    warm_keys = tuple(router.warmup_keys(problem))
    own_executor = executor is None
    pool = (
        make_executor(
            w,
            context=context,
            warm_keys=warm_keys,
            kernels_backend=kernels.backend(),
        )
        if own_executor
        else executor
    )
    try:
        is_process_pool = bool(getattr(pool, "is_process_pool", False))
        if not is_process_pool and profiler is not None:
            # workers > 1 was requested but the shards run in-process —
            # either a platform degradation or an injected SerialExecutor
            profiler.count("parallel.fallback_serial", 1)
        use_shm = transport == "shm" or (
            transport == "auto" and is_process_pool
        )
        bounds = shard_bounds(n, w)
        tasks = [
            ShardTask(
                router=payload,
                problem=problem.subproblem(range(a, b), name=problem.name),
                entropy=entropy,
                offset=packet_offset + a,
                batch=batch,
                warm_keys=warm_keys,
                profile=profiler is not None,
                kernels_backend=kernels.backend(),
                budget=params,
                use_shm=use_shm,
            )
            for a, b in bounds
        ]
        stage = profiler.stage("parallel.route") if profiler else nullcontext()
        with stage:
            results = pool.map(route_shard, tasks)

        # Merge first: it consumes (and unlinks) any shared-memory
        # segments the workers handed over, so a failure in the telemetry
        # fold below cannot strand them.
        merged = merge_shard_results(problem, router.name, entropy, results)

        # Fold worker telemetry back into the parent-side objects.
        if profiler is not None:
            profiler.count("parallel.shards", len(tasks))
            profiler.count("parallel.workers", w)
            for r in results:
                if r.profile is not None:
                    profiler.merge_snapshot(r.profile)
        for r in results:
            if r.cache_stats is not None:
                import repro.cache as cache

                cache.absorb_worker_stats(r.cache_stats)
            for attr, delta in r.counters.items():
                setattr(router, attr, getattr(router, attr, 0) + delta)
        if any(r.bits_log for r in results):
            merged_bits: list[int] = []
            for r in results:
                merged_bits.extend(r.bits_log or [])
            router.bits_log = merged_bits

        ledgers = [r.budget for r in results if r.budget is not None]
        if ledgers:
            total = ledgers[0]
            for extra in ledgers[1:]:
                total.merge(extra)
            merged.budget = total
        return merged
    finally:
        # Owned pools are torn down on *every* exit path: a worker
        # exception or a failure propagating out of the merge used to
        # leak the pool and its fork children.
        if own_executor:
            pool.shutdown()
