"""Shard bounds and the byte-identical merge.

Shards are *contiguous* index ranges: packet order is preserved, so the
merged CSR is the serial CSR verbatim (no permutation to undo), and the
per-packet global indices a worker needs are just ``offset + row``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.pathset import PathSet
from repro.routing.base import RoutingProblem, RoutingResult

__all__ = ["shard_bounds", "merge_shard_results"]


def shard_bounds(n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges covering ``n`` packets.

    ``np.array_split`` semantics — shard sizes differ by at most one, big
    shards first — with empty shards dropped (more workers than packets).
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    edges = np.linspace(0, n, min(workers, max(n, 1)) + 1).astype(np.int64)
    return [
        (int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a
    ]


def merge_shard_results(
    problem: RoutingProblem,
    router_name: str,
    entropy: int,
    shard_results: Sequence,
) -> RoutingResult:
    """Reassemble per-shard worker results into the serial result.

    ``shard_results`` must arrive in shard order.  Paths concatenate CSR-
    verbatim (:meth:`PathSet.concatenate`); if any shard dropped packets
    (fault-aware routing), the kept sets are lifted to global indices and
    the result is built on the same subproblem the serial route would have
    produced.

    Shards that travelled by shared memory (``r.shared`` set) are opened
    zero-copy, concatenated, and their segments unlinked here — the merge
    is the consuming end of the ownership hand-off, so a completed merge
    leaves no segment behind.
    """
    opened: list[PathSet] = []
    parts: list[PathSet] = []
    for r in shard_results:
        if getattr(r, "shared", None) is not None:
            ps = PathSet.from_shared(r.shared)
            opened.append(ps)
            parts.append(ps)
        else:
            parts.append(PathSet.from_arrays(r.nodes, r.offsets))
    try:
        paths = PathSet.concatenate(parts)
        if opened and any(paths is ps for ps in opened):
            # single-shard merge: concatenate returned the shm-backed part
            # itself; copy out so the segment can still be released below
            paths = PathSet.from_arrays(
                np.array(paths.nodes), np.array(paths.offsets)
            )
    finally:
        del parts
        for ps in opened:
            ps.close_shared(unlink=True)
    any_dropped = any(r.kept is not None for r in shard_results)
    if not any_dropped:
        return RoutingResult(problem, paths, router_name, entropy)
    kept_parts = []
    for r in shard_results:
        local = (
            r.kept
            if r.kept is not None
            else np.arange(r.num_packets, dtype=np.int64)
        )
        kept_parts.append(local + (r.offset - shard_results[0].offset))
    kept = np.concatenate(kept_parts) if kept_parts else np.empty(0, dtype=np.int64)
    if kept.size == problem.num_packets:
        return RoutingResult(problem, paths, router_name, entropy)
    sub = problem.subproblem(kept)
    return RoutingResult(
        sub, paths, router_name, entropy, kept_indices=kept
    )
