"""Executor selection: process pool when possible, in-process otherwise.

The contract every executor here satisfies is tiny — ``map(fn, tasks)``
returning results *in task order*, plus ``shutdown()`` — which keeps the
sharding layer agnostic: byte-identity of the merged result is a property
of the sharding math, not of where the shards ran, and the test suite
exploits that by running most shard-count sweeps on the
:class:`SerialExecutor` (no process-spawn cost) with a thinner matrix on
real process pools.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

__all__ = ["SerialExecutor", "fork_available", "make_executor", "resolve_workers"]


class SerialExecutor:
    """Runs shard tasks in the calling process, one after another.

    The ``workers=1`` executor, and the fallback on platforms without
    ``fork``.  Because the sharding/merge math is identical, a serial run
    through this executor produces the same bytes as any process pool.
    """

    def map(self, fn: Callable, tasks: Iterable) -> list:
        return [fn(t) for t in tasks]

    def shutdown(self, wait: bool = True) -> None:  # noqa: ARG002 - parity
        return None

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class _PoolAdapter:
    """Order-preserving ``map`` over a ``ProcessPoolExecutor``."""

    def __init__(self, pool: ProcessPoolExecutor):
        self.pool = pool

    def map(self, fn: Callable, tasks: Sequence) -> list:
        return list(self.pool.map(fn, tasks))

    def shutdown(self, wait: bool = True) -> None:
        self.pool.shutdown(wait=wait)

    def __enter__(self) -> "_PoolAdapter":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def fork_available() -> bool:
    """Whether the ``fork`` start method exists (Linux/macOS CPython)."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` argument to a concrete positive count.

    ``None`` and ``0`` mean one worker per CPU; anything else must be a
    positive integer.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    w = int(workers)
    if w < 1:
        raise ValueError(f"workers must be >= 1 (or 0/None for auto), got {workers}")
    return w


def make_executor(workers: int):
    """An executor for ``workers`` shard processes.

    One worker — or a platform without ``fork`` — gets the
    :class:`SerialExecutor`; otherwise a fork-context
    ``ProcessPoolExecutor``.  Fork is required (not just preferred): child
    processes inherit the parent's imported modules and warm caches
    copy-on-write, and the repo never relies on re-import side effects.
    """
    if workers <= 1 or not fork_available():
        return SerialExecutor()
    ctx = multiprocessing.get_context("fork")
    return _PoolAdapter(ProcessPoolExecutor(max_workers=workers, mp_context=ctx))
