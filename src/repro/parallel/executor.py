"""Executor selection: process pool when possible, in-process otherwise.

The contract every executor here satisfies is tiny — ``map(fn, tasks)``
returning results *in task order*, plus ``shutdown()`` — which keeps the
sharding layer agnostic: byte-identity of the merged result is a property
of the sharding math, not of where the shards ran, and the test suite
exploits that by running most shard-count sweeps on the
:class:`SerialExecutor` (no process-spawn cost) with a thinner matrix on
real process pools.

Start methods: ``fork`` is preferred — children inherit the parent's
imported modules and warm caches copy-on-write — but since the service
tier must run on spawn-only platforms too, :func:`make_executor` now
accepts an explicit ``context`` and supports ``spawn`` pools with an
explicit worker warm-up initializer (:func:`repro.parallel.worker.warm_worker`)
that pre-resolves the kernels backend and rebuilds the decomposition cache
once per worker process instead of once per task.  Degradation to the
:class:`SerialExecutor` for ``workers > 1`` is no longer silent: it warns
once per process and the sharding layer records ``parallel.fallback_serial``
in the profiler.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

__all__ = [
    "SerialExecutor",
    "fork_available",
    "make_executor",
    "resolve_context",
    "resolve_workers",
]


class SerialExecutor:
    """Runs shard tasks in the calling process, one after another.

    The ``workers=1`` executor, and the last-resort fallback when the
    requested start method does not exist.  Because the sharding/merge
    math is identical, a serial run through this executor produces the
    same bytes as any process pool.
    """

    #: real process pools run shard tasks elsewhere; the serial executor
    #: does not — callers use this to pick the pickle transport and to
    #: account the ``parallel.fallback_serial`` counter
    is_process_pool = False

    def map(self, fn: Callable, tasks: Iterable) -> list:
        return [fn(t) for t in tasks]

    def shutdown(self, wait: bool = True) -> None:  # noqa: ARG002 - parity
        return None

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class _PoolAdapter:
    """Order-preserving ``map`` over a ``ProcessPoolExecutor``."""

    is_process_pool = True

    def __init__(self, pool: ProcessPoolExecutor, context: str):
        self.pool = pool
        self.context = context

    def map(self, fn: Callable, tasks: Sequence) -> list:
        return list(self.pool.map(fn, tasks))

    def shutdown(self, wait: bool = True) -> None:
        self.pool.shutdown(wait=wait)

    def __enter__(self) -> "_PoolAdapter":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def fork_available() -> bool:
    """Whether the ``fork`` start method exists (Linux/macOS CPython)."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``workers`` argument to a concrete positive count.

    ``None`` and ``0`` mean one worker per CPU; anything else must be a
    positive integer.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    w = int(workers)
    if w < 1:
        raise ValueError(f"workers must be >= 1 (or 0/None for auto), got {workers}")
    return w


def resolve_context(context: str = "auto") -> str:
    """The concrete start method a ``context`` request resolves to.

    ``"auto"`` prefers ``fork`` (cheap, caches inherited copy-on-write)
    and falls back to ``spawn`` — never silently to serial.  ``"serial"``
    names the in-process executor explicitly.  A concrete method that the
    platform lacks resolves to ``"serial"`` (the caller warns).
    """
    if context == "auto":
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return "fork"
        return "spawn" if "spawn" in methods else "serial"
    if context == "serial":
        return "serial"
    if context in ("fork", "spawn"):
        return context if context in multiprocessing.get_all_start_methods() else "serial"
    raise ValueError(f"unknown executor context {context!r}")


_warned_fallback = False


def _warn_fallback(workers: int, context: str) -> None:
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    warnings.warn(
        f"workers={workers} requested but start method {context!r} is "
        "unavailable on this platform; routing serially in-process "
        "(counted as parallel.fallback_serial)",
        RuntimeWarning,
        stacklevel=3,
    )


def make_executor(
    workers: int,
    *,
    context: str = "auto",
    warm_keys: tuple = (),
    kernels_backend: str | None = None,
    force_pool: bool = False,
):
    """An executor for ``workers`` shard processes.

    ``context`` selects the start method: ``"auto"`` (fork where it
    exists, else spawn), ``"fork"``, ``"spawn"``, or ``"serial"``.  Spawn
    workers do not inherit the parent's state, so pools built here install
    :func:`repro.parallel.worker.warm_worker` as the pool initializer —
    each worker pins the kernels backend and warms the decomposition cache
    *once at start-up* (the explicit warm-up handshake) rather than per
    task.  One worker gets the :class:`SerialExecutor` — unless
    ``force_pool`` asks for a real single-process pool, which the warm
    service does for process isolation even at ``workers=1``.  A concrete
    ``context`` the platform lacks degrades to serial with a single
    :class:`RuntimeWarning` per process.
    """
    if workers <= 1 and not force_pool:
        return SerialExecutor()
    resolved = resolve_context(context)
    if resolved == "serial":
        if context != "serial":
            _warn_fallback(workers, context)
        return SerialExecutor()
    from repro.parallel.worker import warm_worker

    ctx = multiprocessing.get_context(resolved)
    pool = ProcessPoolExecutor(
        max_workers=max(1, workers),
        mp_context=ctx,
        initializer=warm_worker,
        initargs=(tuple(warm_keys), kernels_backend),
    )
    return _PoolAdapter(pool, resolved)
