"""Picklable shard tasks/results and the worker-side entry points.

Everything crossing the process boundary lives here and is plain data:
tasks carry the router (profiler and heavyweight per-instance caches
stripped), the shard's subproblem, the resolved entropy, the shard's
global packet offset, and the cache warm-up keys; results carry raw CSR
arrays plus the telemetry the parent folds back in (profiler snapshot,
cache-stats delta, fault counters, bit log).  The same functions run
unchanged under the :class:`~repro.parallel.executor.SerialExecutor`, so
``workers=1`` and ``workers=N`` share one code path end to end.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

import repro.cache as cache
from repro.routing.base import RoutingProblem, Router

__all__ = [
    "ShardTask",
    "ShardResult",
    "OnlinePathTask",
    "OnlinePathResult",
    "prepare_router",
    "route_shard",
    "select_online_paths",
    "warm_worker",
    "PKT_OK",
    "PKT_SKIP",
    "PKT_DROP",
]

#: fault-aware telemetry attributes whose per-shard deltas merge additively
_COUNTER_ATTRS = ("resamples", "detours", "unroutable")


def _pin_kernels(backend: str | None) -> None:
    """Align this worker's kernel backend with the parent's choice.

    A spawned worker re-resolves ``REPRO_KERNELS`` at import, which already
    matches the parent's environment; this covers the runtime-override case
    (``set_backend`` / ``use_backend`` in the parent after import).
    """
    if backend is not None:
        from repro import kernels

        if kernels.backend() != backend:
            kernels.set_backend(backend)


def warm_worker(warm_keys: tuple = (), kernels_backend: str | None = None) -> None:
    """Pool-initializer warm-up: runs once per worker process at start-up.

    Pins the kernels backend to the parent's choice and rebuilds the named
    decomposition cache entries, so even a ``spawn`` worker (which inherits
    nothing) is warm before its first shard task arrives.  Fork workers run
    it too — it is idempotent and confirms the copy-on-write entries.
    """
    _pin_kernels(kernels_backend)
    if warm_keys:
        cache.warm(warm_keys)


def prepare_router(router: Router) -> Router:
    """A shallow copy of ``router`` safe and cheap to pickle.

    The profiler is dropped (workers build their own and return snapshots)
    and known per-instance caches are emptied — workers rebuild them via
    the warm-up handshake instead of deserialising megabytes of tables.
    """
    payload = copy.copy(router)
    payload.profiler = None
    for attr in ("_graph_cache", "_dec_cache"):
        if getattr(payload, attr, None):
            setattr(payload, attr, {})
    if getattr(payload, "inner", None) is not None:  # fault-aware wrapper
        payload.inner = prepare_router(payload.inner)
    return payload


@dataclass
class ShardTask:
    """One worker's slice of a routing problem."""

    router: Router
    problem: RoutingProblem
    entropy: int  #: resolved in the parent — identical for every shard
    offset: int  #: global index of the shard's first packet
    batch: bool | str
    warm_keys: tuple = ()
    profile: bool = False
    #: parent's kernel backend — workers pin theirs to match (results are
    #: byte-identical regardless; this keeps *telemetry* comparable)
    kernels_backend: str | None = None
    #: resolved :class:`~repro.core.budget.BudgetParams` (or ``None``) —
    #: resolved once in the parent so every shard enforces identically
    budget: object | None = None
    #: ship the shard's CSR back through a shared-memory segment
    #: (:class:`~repro.core.pathset.SharedCSR`) instead of pickling the
    #: arrays — the zero-copy transport the warm service pool uses
    use_shm: bool = False


@dataclass
class ShardResult:
    """One worker's routed shard, as raw picklable arrays + telemetry.

    Exactly one of (``nodes``/``offsets``, ``shared``) carries the CSR:
    pickle transport ships the arrays inline; shm transport parks them in
    a shared segment and ships only the :class:`SharedCSR` handle, with
    segment ownership handed to the parent.
    """

    offset: int
    num_packets: int
    nodes: np.ndarray | None
    offsets: np.ndarray | None
    #: shared-memory handle when the task asked for ``use_shm``
    shared: object | None = None
    #: kept packet indices local to the shard (fault drops); ``None`` = all
    kept: np.ndarray | None = None
    bits_log: list | None = None
    counters: dict = field(default_factory=dict)
    profile: dict | None = None
    cache_stats: dict | None = None
    #: the shard's :class:`~repro.core.budget.BitBudget` ledger; the parent
    #: folds these additively into the merged result's ledger
    budget: object | None = None


#: per-packet selection outcomes of :func:`select_online_paths`
PKT_OK = 0  #: path selected, packet enters the network
PKT_SKIP = 1  #: degenerate (single-node) path: never scheduled or counted
PKT_DROP = 2  #: unroutable under faults: counted injected + dropped


@dataclass
class OnlinePathTask:
    """One worker's slice of an online simulation's injected packets.

    ``router`` is the (prepared) selecting router — the fault-aware
    wrapper on faulty runs — and ``born`` the per-packet injection steps:
    fault-aware selection evaluates the edge-alive mask *at the packet's
    injection step*, so it must travel with the packet, not the shard.
    """

    router: Router
    mesh: object
    sources: np.ndarray
    dests: np.ndarray
    born: np.ndarray
    entropy: int
    offset: int  #: global injection index of the shard's first packet
    warm_keys: tuple = ()
    profile: bool = False
    #: parent's kernel backend — workers pin theirs to match
    kernels_backend: str | None = None


@dataclass
class OnlinePathResult:
    """Selected edge-id sequences of one online shard (CSR + outcomes)."""

    offset: int
    status: np.ndarray  #: per-packet PKT_OK / PKT_SKIP / PKT_DROP
    eids: np.ndarray  #: edge ids of the PKT_OK packets, concatenated
    nedges: np.ndarray  #: edges per PKT_OK packet
    counters: dict = field(default_factory=dict)
    profile: dict | None = None
    cache_stats: dict | None = None


def select_online_paths(task: OnlinePathTask) -> OnlinePathResult:
    """Select every packet's path in one online shard (worker entry point).

    Oblivious selection sees only ``(entropy, global index, s, t)`` — and,
    under faults, the deterministic fault mask at the packet's injection
    step — never the network state, which is exactly why this phase shards
    while arrival enumeration and the advance loop stay serial.
    """
    from repro.core.randomness import SIM_PATHS, packet_stream
    from repro.faults.router import FaultRoutingError

    _pin_kernels(task.kernels_backend)
    cache.warm(task.warm_keys)
    router = task.router
    if task.profile:
        from repro.obs import Profiler

        router.profiler = Profiler()
    stats_before = cache.stats()
    before = {a: getattr(router, a) for a in _COUNTER_ATTRS if hasattr(router, a)}
    faulty = hasattr(router, "at_step")
    mesh = task.mesh
    n = task.sources.size
    status = np.full(n, PKT_OK, dtype=np.int8)
    seqs: list[np.ndarray] = []
    nedges: list[int] = []
    for j in range(n):
        if faulty:
            router.at_step = int(task.born[j])
        stream = packet_stream(task.entropy, task.offset + j, prefix=(SIM_PATHS,))
        try:
            path = router.select_path(
                mesh, int(task.sources[j]), int(task.dests[j]), stream
            )
        except FaultRoutingError:
            status[j] = PKT_DROP
            continue
        if len(path) < 2:
            status[j] = PKT_SKIP
            continue
        seq = mesh.edge_ids(path[:-1], path[1:])
        seqs.append(seq)
        nedges.append(int(seq.size))
        if task.profile:
            # per-shard hop-count distribution; fixed-bin histograms
            # merge exactly in the parent, so the fleet-level view is
            # shard-count invariant (tests/test_traffic_properties.py)
            router.profiler.record_hist("online.path_hops", int(seq.size))
    stats_after = cache.stats()
    counters = {a: int(getattr(router, a)) - int(v) for a, v in before.items()}
    return OnlinePathResult(
        offset=task.offset,
        status=status,
        eids=(
            np.concatenate(seqs) if seqs else np.empty(0, dtype=np.int64)
        ),
        nedges=np.asarray(nedges, dtype=np.int64),
        counters={k: v for k, v in counters.items() if v},
        profile=router.profiler.snapshot() if task.profile else None,
        cache_stats={
            "hits": stats_after.hits - stats_before.hits,
            "misses": stats_after.misses - stats_before.misses,
            "entries": stats_after.entries,
        },
    )


def route_shard(task: ShardTask) -> ShardResult:
    """Route one shard in the current process (the worker entry point)."""
    _pin_kernels(task.kernels_backend)
    cold = cache.warm(task.warm_keys)
    router = task.router
    if task.profile:
        from repro.obs import Profiler

        router.profiler = Profiler()
        router.profiler.count("parallel.cache_cold_keys", cold)
    stats_before = cache.stats()
    before = {a: getattr(router, a) for a in _COUNTER_ATTRS if hasattr(router, a)}
    result = router.route(
        task.problem,
        task.entropy,
        batch=task.batch,
        workers=1,
        packet_offset=task.offset,
        budget=task.budget,
    )
    stats_after = cache.stats()
    counters = {
        a: int(getattr(router, a)) - int(v) for a, v in before.items()
    }
    shared = None
    nodes: np.ndarray | None = result.paths.nodes
    offsets: np.ndarray | None = result.paths.offsets
    if task.use_shm:
        shared = result.paths.to_shared()
        nodes = offsets = None
    return ShardResult(
        offset=task.offset,
        num_packets=task.problem.num_packets,
        nodes=nodes,
        offsets=offsets,
        shared=shared,
        kept=result.kept_indices,
        bits_log=list(router.bits_log) if getattr(router, "bits_log", None) else None,
        budget=result.budget,
        counters={k: v for k, v in counters.items() if v},
        profile=router.profiler.snapshot() if task.profile else None,
        cache_stats={
            "hits": stats_after.hits - stats_before.hits,
            "misses": stats_after.misses - stats_before.misses,
            "entries": stats_after.entries,
        },
    )
