"""The differential runner: fast path vs oracle, case by case.

For every :class:`~repro.verify.cases.Case` the runner

1. routes the problem with the optimised stack (batched engine, sharded
   execution for ``workers > 1``, fault-aware wrapper where configured);
2. routes it again with the :mod:`~repro.verify.oracles` reference and
   diffs the CSR **byte-exactly** (nodes, offsets, kept indices);
3. recomputes every metric with the naive oracles and diffs;
4. runs every applicable invariant from the registry;
5. checks the statistical congestion certificate for certified routers.

``workers > 1`` cases additionally assert the sharded merge is
byte-identical to the serial engine — on an in-process
:class:`~repro.parallel.executor.SerialExecutor` in the smoke tier (the
merge logic is identical; only process start-up is skipped) and on a real
fork pool in the deep tier.

``via_service`` cases route a third time through a live ``repro serve``
daemon (booted lazily, shared across the suite, torn down at exit) and
demand byte-identity with the serial route — the acceptance cells for
the warm-pool/shared-memory transport.

Failures are shrunk (:mod:`~repro.verify.shrink`) and persisted as JSON
to the replay corpus, so every bug the runner ever finds stays
reproducible with ``repro verify --replay <case-file>``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.verify.cases import Case, build_case
from repro.verify.certificate import CERTIFIED_ROUTERS, congestion_certificate
from repro.verify.invariants import VerifyContext, check_invariants
from repro.verify.oracles import (
    oracle_dilation,
    oracle_edge_loads,
    oracle_node_loads,
    oracle_route,
    oracle_stretches,
)

__all__ = [
    "CaseOutcome",
    "VerifyReport",
    "run_case",
    "run_suite",
    "save_corpus_case",
    "load_corpus_case",
    "check_corpus",
]


@dataclass
class CaseOutcome:
    """What the runner observed for one case."""

    case: Case
    mismatches: list[str] = field(default_factory=list)
    violations: dict[str, list[str]] = field(default_factory=dict)
    certificate: list[str] = field(default_factory=list)
    invariants_checked: int = 0
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not (self.mismatches or self.violations or self.certificate)

    def to_dict(self) -> dict:
        return {
            "case": self.case.to_dict(),
            "case_id": self.case.case_id,
            "label": self.case.label(),
            "ok": self.ok,
            "mismatches": self.mismatches,
            "violations": self.violations,
            "certificate": self.certificate,
        }


def _diff_paths(fast, oracle_ps, oracle_kept, mismatches: list[str]) -> None:
    """Byte-exact CSR + kept-set diff between fast result and oracle."""
    if not np.array_equal(fast.paths.offsets, oracle_ps.offsets):
        mismatches.append("CSR offsets differ between fast path and oracle")
    elif not np.array_equal(fast.paths.nodes, oracle_ps.nodes):
        bad = np.flatnonzero(fast.paths.nodes != oracle_ps.nodes)
        mismatches.append(
            f"CSR nodes differ at {bad.size} positions (first: {int(bad[0])})"
        )
    fk = fast.kept_indices
    if (fk is None) != (oracle_kept is None) or (
        fk is not None and not np.array_equal(fk, oracle_kept)
    ):
        mismatches.append("kept_indices differ between fast path and oracle")


def _diff_metrics(result, mismatches: list[str]) -> None:
    """Vectorised metrics vs the naive loop oracles."""
    mesh = result.problem.mesh
    paths = list(result.paths)
    if not np.array_equal(result.edge_loads, oracle_edge_loads(mesh, paths)):
        mismatches.append("edge_loads differ from the loop oracle")
    from repro.metrics.congestion import node_loads

    if not np.array_equal(node_loads(mesh, result.paths), oracle_node_loads(mesh, paths)):
        mismatches.append("node_loads differ from the loop oracle")
    fast_st = result.stretches
    slow_st = oracle_stretches(
        mesh, result.problem.sources, result.problem.dests, paths
    )
    both_nan = np.isnan(fast_st) & np.isnan(slow_st)
    if not np.all(both_nan | np.isclose(fast_st, slow_st, rtol=0, atol=1e-12, equal_nan=True)):
        mismatches.append("stretches differ from the loop oracle")
    if result.dilation != oracle_dilation(paths):
        mismatches.append("dilation differs from the loop oracle")


_SERVICE: tuple | None = None


def _live_service():
    """The suite-shared ``repro serve`` daemon, booted on first use.

    One daemon serves every ``via_service`` cell of a verify run — that
    is the point: the cells must stay byte-identical on a *warm*, shared,
    batching service, not on a fresh one per case.
    """
    global _SERVICE
    if _SERVICE is None:
        import atexit
        import os
        import tempfile

        from repro.service.server import serve

        path = os.path.join(
            tempfile.mkdtemp(prefix="repro-verify-"), "service.sock"
        )
        svc = serve(path, workers=2, flush_ms=1.0)
        atexit.register(svc.stop)
        _SERVICE = (svc, path)
    return _SERVICE


def _diff_service(case: Case, serial, entropy: int, mismatches: list[str]) -> None:
    """Route the case through the live daemon; demand serial bytes."""
    from repro.service.client import ServiceClient

    if case.fault_mode != "none" or case.budget_mode != "off":
        # the service protocol carries (mesh, pairs, router, seed) only
        mismatches.append(
            "via_service cells must be fault-free and unbudgeted"
        )
        return
    _svc, path = _live_service()
    problem = serial.problem
    with ServiceClient(path) as client:
        via = client.route(problem, router=case.router, seed=entropy)
    if not (
        np.array_equal(via.paths.nodes, serial.paths.nodes)
        and np.array_equal(via.paths.offsets, serial.paths.offsets)
    ):
        mismatches.append("service route differs from serial bytes")
    if via.seed != entropy:
        mismatches.append("service echoed a different entropy")


def _run_route_case(case: Case, profiler, real_pool: bool) -> CaseOutcome:
    from repro.core.randomness import resolve_entropy
    from repro.parallel import route_sharded
    from repro.parallel.executor import SerialExecutor

    outcome = CaseOutcome(case)
    router, problem, faults = build_case(case)
    if profiler is not None:
        router.profiler = profiler
    entropy = resolve_entropy(case.seed)
    # "off" passes None so REPRO_BUDGET still applies (the CI enforce leg);
    # explicit modes pin the params for fast path, shards and oracle alike.
    budget = None
    if case.budget_mode != "off":
        from repro.core.budget import BudgetParams

        budget = BudgetParams(mode=case.budget_mode, bits=case.budget_bits)

    def route_fn(workers: int):
        return router.route(problem, entropy, workers=workers, budget=budget)

    serial = route_fn(1)

    if case.workers != 1:
        if real_pool:
            sharded = router.route(
                problem, entropy, workers=case.workers, budget=budget
            )
        else:
            sharded = route_sharded(
                router,
                problem,
                entropy,
                workers=case.workers,
                executor=SerialExecutor(),
                budget=budget,
            )
        if not (
            np.array_equal(sharded.paths.nodes, serial.paths.nodes)
            and np.array_equal(sharded.paths.offsets, serial.paths.offsets)
        ):
            outcome.mismatches.append(
                f"sharded merge (workers={case.workers}) differs from serial bytes"
            )
        sk, ek = sharded.kept_indices, serial.kept_indices
        if (sk is None) != (ek is None) or (
            sk is not None and not np.array_equal(sk, ek)
        ):
            outcome.mismatches.append("sharded kept_indices differ from serial")
        sb, eb = sharded.budget, serial.budget
        if (sb is None) != (eb is None) or (
            sb is not None and sb.to_dict() != eb.to_dict()
        ):
            outcome.mismatches.append("sharded bit ledger differs from serial")

    if case.via_service:
        _diff_service(case, serial, entropy, outcome.mismatches)
        if profiler is not None:
            profiler.count("verify.service_cells", 1)

    if router.is_oblivious:
        oracle_ps, oracle_kept = oracle_route(
            router, problem, entropy, budget=budget
        )
        _diff_paths(serial, oracle_ps, oracle_kept, outcome.mismatches)
    _diff_metrics(serial, outcome.mismatches)

    ctx = VerifyContext(
        result=serial,
        router=router,
        entropy=entropy,
        original_problem=problem,
        route_fn=route_fn,
        workers=case.workers,
        faults=faults,
        budget=budget,
        rng=np.random.default_rng(case.seed + 99),
    )
    outcome.violations = check_invariants(ctx)
    outcome.invariants_checked = len(
        [1 for inv in _applicable(ctx)]
    )

    if (
        getattr(ctx.base_router, "name", "") in CERTIFIED_ROUTERS
        and ctx.trivial_faults
        and serial.problem.num_packets
    ):
        from repro.metrics.bounds import congestion_lower_bound

        bound = congestion_lower_bound(
            problem.mesh, serial.problem.sources, serial.problem.dests, use_lp=False
        )
        outcome.certificate = congestion_certificate(serial, bound)
    return outcome


def _applicable(ctx: VerifyContext):
    from repro.verify.invariants import REGISTRY

    for inv in REGISTRY.values():
        try:
            if inv.applies(ctx):
                yield inv
        except Exception:  # pragma: no cover - applies() must not crash
            continue


def _run_online_case(case: Case, profiler) -> CaseOutcome:
    from repro.cli import parse_mesh
    from repro.simulation.online import simulate_online

    outcome = CaseOutcome(case)
    mesh = parse_mesh("x".join(str(s) for s in case.sides), case.torus)
    from repro.routing.registry import make_router

    router = make_router(case.router)
    from repro.verify.cases import _fault_model

    faults = _fault_model(case, mesh)
    kwargs = dict(rate=case.rate, steps=case.steps, seed=case.seed, faults=faults)
    stats = simulate_online(router, mesh, profiler=profiler, **kwargs)
    again = simulate_online(router, mesh, **kwargs)
    if (
        stats.injected != again.injected
        or stats.delivered != again.delivered
        or stats.dropped != again.dropped
        or not np.array_equal(stats.latencies, again.latencies)
    ):
        outcome.mismatches.append("online simulation is not seed-deterministic")
    drain = 8 * case.steps + 200
    ctx = VerifyContext(
        result=None,
        router=router,
        entropy=case.seed,
        original_problem=None,
        online=stats,
        online_params={"total_steps": case.steps + drain},
        faults=faults,
    )
    outcome.violations = check_invariants(ctx, names=("online.conservation",))
    outcome.invariants_checked = 1
    return outcome


def run_case(case: Case, profiler=None, *, real_pool: bool = False) -> CaseOutcome:
    """Execute one case end to end; never raises for a product bug.

    Infrastructure errors (the case itself cannot be built) do raise —
    a corpus case that stops building must be looked at, not skipped.
    """
    t0 = time.perf_counter()
    if case.kind == "online":
        outcome = _run_online_case(case, profiler)
    else:
        outcome = _run_route_case(case, profiler, real_pool)
    outcome.duration_s = time.perf_counter() - t0
    if profiler is not None:
        profiler.count("verify.cases", 1)
        if not outcome.ok:
            profiler.count("verify.failures", 1)
        profiler.count("verify.mismatches", len(outcome.mismatches))
        profiler.count(
            "verify.violations", sum(len(v) for v in outcome.violations.values())
        )
        profiler.count("verify.invariants_checked", outcome.invariants_checked)
    return outcome


# ---------------------------------------------------------------------------
# Suite driver
# ---------------------------------------------------------------------------

@dataclass
class VerifyReport:
    """Aggregate of one ``repro verify`` run."""

    mode: str
    cases: int = 0
    failures: int = 0
    mismatches: int = 0
    violations: int = 0
    certificate_failures: int = 0
    invariants_checked: int = 0
    duration_s: float = 0.0
    failing: list[dict] = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "ok": self.ok,
            "cases": self.cases,
            "failures": self.failures,
            "mismatches": self.mismatches,
            "violations": self.violations,
            "certificate_failures": self.certificate_failures,
            "invariants_checked": self.invariants_checked,
            "duration_s": round(self.duration_s, 3),
            "failing": self.failing,
            "counters": self.counters,
        }


def run_suite(
    cases: list[Case],
    *,
    mode: str = "smoke",
    profiler=None,
    real_pool: bool = False,
    corpus_dir: str | Path | None = None,
    shrink: bool = True,
    log=None,
) -> VerifyReport:
    """Run all cases; shrink + persist failures when ``corpus_dir`` is set."""
    from repro.verify.shrink import shrink_case

    report = VerifyReport(mode=mode)
    t0 = time.perf_counter()
    for case in cases:
        outcome = run_case(case, profiler, real_pool=real_pool)
        report.cases += 1
        report.mismatches += len(outcome.mismatches)
        report.violations += sum(len(v) for v in outcome.violations.values())
        report.certificate_failures += len(outcome.certificate)
        report.invariants_checked += outcome.invariants_checked
        if outcome.ok:
            continue
        report.failures += 1
        if log is not None:
            log(f"FAIL {case.label()}: {outcome.to_dict()}")
        final = outcome
        if shrink:
            small = shrink_case(case, real_pool=real_pool)
            if small is not None:
                final = small
        report.failing.append(final.to_dict())
        if corpus_dir is not None:
            save_corpus_case(Path(corpus_dir), final)
    report.duration_s = time.perf_counter() - t0
    if profiler is not None:
        report.counters = {
            k: v
            for k, v in profiler.snapshot().get("counters", {}).items()
            if k.startswith("verify.")
        }
    return report


# ---------------------------------------------------------------------------
# The replay corpus
# ---------------------------------------------------------------------------

def save_corpus_case(corpus_dir: Path, outcome: CaseOutcome) -> Path:
    """Persist a failing case as ``<case_id>.json`` (status: open)."""
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"{outcome.case.case_id}.json"
    payload = {
        "case": outcome.case.to_dict(),
        "status": "open",
        "found": time.strftime("%Y-%m-%d"),
        "note": "auto-recorded by repro verify; see mismatches/violations",
        "mismatches": outcome.mismatches,
        "violations": outcome.violations,
        "certificate": outcome.certificate,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus_case(path: str | Path) -> Case:
    """Load a corpus file (or a bare case JSON) back into a :class:`Case`."""
    data = json.loads(Path(path).read_text())
    if "case" in data:
        data = data["case"]
    return Case.from_dict(data)


def check_corpus(corpus_dir: str | Path) -> tuple[int, list[str]]:
    """(total files, names of unresolved cases) — the CI corpus gate."""
    corpus_dir = Path(corpus_dir)
    open_cases = []
    total = 0
    for path in sorted(corpus_dir.glob("*.json")):
        total += 1
        data = json.loads(path.read_text())
        if data.get("status", "open") != "resolved":
            open_cases.append(path.name)
    return total, open_cases
