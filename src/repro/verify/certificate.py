"""Statistical congestion certificates with explicit Chernoff tolerances.

Theorem 3.5 bounds the hierarchical algorithm's congestion by
``C = O(d^2 * C* * log n)`` with high probability.  A bare assert on a
measured ``C`` would either be vacuous (huge constant) or flaky (tight
constant); instead we certify against an explicit tail bound: with the
boundary-congestion estimate ``B <= C*`` as the mean proxy,

    ``ceiling = alpha * d^2 * max(B, 1) * log2(n) + slack``

where the slack is the Chernoff deviation allowance
``sqrt(3 * mu * ln(E / eps)) + ln(E / eps)`` for ``mu`` the proxy mean,
``E`` the number of edges (union bound over edges) and ``eps`` the
certificate's failure budget.  ``alpha`` is calibrated loose (the X4
experiments measure ``C / B`` between 2 and 4 on these meshes, far under
``d^2 log2 n``): a certificate violation means a *systematic* regression,
not an unlucky draw.
"""

from __future__ import annotations

import math

from repro.routing.base import RoutingResult

__all__ = ["congestion_ceiling", "congestion_certificate", "CERTIFIED_ROUTERS"]

#: routers covered by the O(d^2 C* log n) guarantee (Theorem 3.5 and its
#: access-tree / rectangular extensions).
CERTIFIED_ROUTERS = (
    "hierarchical",
    "hierarchical-general",
    "access-tree",
    "rect-hierarchical",
)

#: leading constant of the ceiling; deliberately >= the paper's implicit
#: constant so violations indicate regressions rather than bad luck.
ALPHA = 1.0

#: certificate failure budget: the probability (per check, by the Chernoff
#: bound) that a *correct* implementation trips the ceiling.
EPSILON = 1e-6


def congestion_ceiling(
    mesh, lower_bound: float, *, alpha: float = ALPHA, eps: float = EPSILON
) -> float:
    """The certified congestion ceiling for a problem with ``C* >= lower_bound``.

    ``mu = alpha * d^2 * max(lower_bound, 1) * log2(n)`` plus the Chernoff
    slack ``sqrt(3 mu ln(E/eps)) + ln(E/eps)`` (union bound over the
    ``E`` edges).
    """
    n = max(mesh.n, 2)
    mu = alpha * mesh.d**2 * max(lower_bound, 1.0) * math.log2(n)
    tail = math.log(max(mesh.num_edges, 1) / eps)
    return mu + math.sqrt(3.0 * mu * tail) + tail


def congestion_certificate(result: RoutingResult, lower_bound: float) -> list[str]:
    """Check ``C <= ceiling``; returns violation messages (empty = certified)."""
    ceiling = congestion_ceiling(result.problem.mesh, lower_bound)
    if result.congestion > ceiling:
        return [
            f"congestion {result.congestion} exceeds the certified ceiling "
            f"{ceiling:.1f} (C* lower bound {lower_bound:.2f}, "
            f"eps={EPSILON:g})"
        ]
    return []
