"""The invariant registry: named predicates every RoutingResult must obey.

The paper's guarantees survive refactors only if they are executable.
Each invariant is a small pure function over a :class:`VerifyContext`
(the result plus how it was produced) returning a list of violation
strings — empty means the invariant holds.  Invariants self-select via
``applies``: a stretch ceiling only binds routers that promise one, the
bitonic-envelope check only binds routers exposing an access-graph
``submesh_sequence``, and fault-sensitive checks step aside when packets
were resampled or detoured.

Registered invariants (see ``docs/THEORY.md`` for the paper mapping):

=========================  =================================================
name                       property
=========================  =================================================
paths.valid-walk           every path is a mesh walk from s_i to t_i
paths.bitonic-envelope     paths stay inside the bitonic submesh sequence
paths.stretch-bound        stretch <= 64 (2-D hierarchical) / = 1 (dim-order)
seed.replay-determinism    same entropy -> byte-identical CSR
seed.obliviousness         packet i's path is a function of (seed, i, s, t)
pathset.csr-wellformed     offsets monotone, buffers frozen, lengths agree
metrics.consistent         cached metrics agree with each other
bounds.lower-bound-holds   measured C >= congestion_lower_bound
online.conservation        delivered + dropped <= injected; latency >= dist
=========================  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.metrics.bounds import congestion_lower_bound
from repro.routing.base import Router, RoutingProblem, RoutingResult
from repro.verify.oracles import oracle_distance

__all__ = [
    "Invariant",
    "VerifyContext",
    "REGISTRY",
    "register",
    "check_invariants",
    "invariant_table",
]

#: routers with a proven stretch ceiling on 2-D meshes: name -> bound.
#: Theorem 3.4 gives 64 for the hierarchical algorithm; dimension-order
#: and shortest-path routes are shortest by construction.
STRETCH_BOUNDS = {
    "hierarchical": 64.0,
    "hierarchical-general": 64.0,
    "dim-order": 1.0,
    "random-dim-order": 1.0,
    "shortest-path": 1.0,
}


@dataclass
class VerifyContext:
    """Everything an invariant may look at.

    ``result`` is always the *serial* fast-path result (the runner
    compares sharded runs against it separately); ``route_fn(workers)``
    re-routes the original problem with the same entropy, for the
    determinism and obliviousness probes.
    """

    result: RoutingResult
    router: Router
    entropy: int
    original_problem: RoutingProblem
    route_fn: Callable[[int], RoutingResult] | None = None
    workers: int = 1
    faults: object | None = None
    online: object | None = None
    online_params: dict | None = None
    #: how many packets the sampled (per-packet) invariants inspect
    sample_limit: int = 4
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    @property
    def mesh(self):
        return self.result.problem.mesh

    @property
    def trivial_faults(self) -> bool:
        return self.faults is None or self.faults.is_trivial

    @property
    def base_router(self) -> Router:
        """The inner router when wrapped fault-aware, else the router."""
        return getattr(self.router, "inner", self.router)

    def sample_rows(self, n_rows: int) -> list[int]:
        """Up to ``sample_limit`` distinct row indices, deterministic."""
        if n_rows <= self.sample_limit:
            return list(range(n_rows))
        picks = self.rng.choice(n_rows, size=self.sample_limit, replace=False)
        return sorted(int(i) for i in picks)


@dataclass(frozen=True)
class Invariant:
    """A named predicate: ``applies(ctx) -> bool``, ``check(ctx) -> [msg]``."""

    name: str
    description: str
    applies: Callable[[VerifyContext], bool]
    check: Callable[[VerifyContext], list[str]]


REGISTRY: dict[str, Invariant] = {}


def register(name: str, description: str, applies=None):
    """Decorator: add ``fn`` to the registry under ``name``."""

    def wrap(fn):
        REGISTRY[name] = Invariant(
            name, description, applies or (lambda ctx: True), fn
        )
        return fn

    return wrap


def check_invariants(
    ctx: VerifyContext, names=None
) -> dict[str, list[str]]:
    """Run every applicable invariant; map name -> violations (non-empty only).

    A ``skipped`` entry never appears: inapplicable invariants are simply
    not run.  An invariant that *raises* is reported as a violation too —
    a crashing check must never pass silently.
    """
    out: dict[str, list[str]] = {}
    for name, inv in REGISTRY.items():
        if names is not None and name not in names:
            continue
        try:
            if not inv.applies(ctx):
                continue
            msgs = inv.check(ctx)
        except Exception as exc:  # noqa: BLE001 - any crash is a violation
            msgs = [f"invariant raised {type(exc).__name__}: {exc}"]
        if msgs:
            out[name] = msgs
    return out


def invariant_table() -> list[tuple[str, str]]:
    """(name, description) rows, for docs and ``--json`` reports."""
    return [(inv.name, inv.description) for inv in REGISTRY.values()]


# ---------------------------------------------------------------------------
# Path-shape invariants
# ---------------------------------------------------------------------------

def _is_route(ctx: VerifyContext) -> bool:
    return ctx.result is not None


@register("paths.valid-walk", "every path is a mesh walk from s_i to t_i", _is_route)
def _valid_walk(ctx: VerifyContext) -> list[str]:
    res, mesh = ctx.result, ctx.mesh
    out = []
    if not res.validate():
        out.append("RoutingResult.validate() failed")
    # independent scalar spot-check of sampled rows
    for i in ctx.sample_rows(len(res.paths)):
        path = [int(x) for x in res.paths[i]]
        if path[0] != int(res.problem.sources[i]) or path[-1] != int(
            res.problem.dests[i]
        ):
            out.append(f"path {i} endpoints do not match its (s, t)")
            continue
        for a, b in zip(path[:-1], path[1:]):
            if oracle_distance(mesh, a, b) != 1:
                out.append(f"path {i} hop ({a}, {b}) is not a mesh link")
                break
    return out


def _has_sequence(ctx: VerifyContext) -> bool:
    return (
        hasattr(ctx.base_router, "submesh_sequence")
        and not ctx.mesh.torus
        and ctx.trivial_faults
    )


@register(
    "paths.bitonic-envelope",
    "paths stay inside a bitonic (grow-then-shrink) submesh sequence",
    _has_sequence,
)
def _bitonic_envelope(ctx: VerifyContext) -> list[str]:
    res, mesh = ctx.result, ctx.mesh
    router = ctx.base_router
    out = []
    for i in ctx.sample_rows(len(res.paths)):
        s = int(res.problem.sources[i])
        t = int(res.problem.dests[i])
        seq, bridge = router.submesh_sequence(mesh, s, t)
        # bitonicity: boxes grow up to the bridge, then shrink
        for j in range(len(seq) - 1):
            lo_ok = (
                seq[j + 1].contains_submesh(seq[j])
                if j + 1 <= bridge
                else seq[j].contains_submesh(seq[j + 1])
            )
            if not lo_ok:
                out.append(
                    f"packet {i}: access sequence not bitonic at step {j}"
                )
                break
        # envelope: every path node lies in the union's bounding box
        big = seq[bridge]
        env_lo = np.asarray(big.lo, dtype=np.int64)
        env_hi = np.asarray(big.hi, dtype=np.int64)
        coords = mesh.flat_to_coords(np.asarray(res.paths[i], dtype=np.int64))
        if np.any(coords < env_lo) or np.any(coords > env_hi):
            out.append(f"packet {i}: path leaves the bridge submesh envelope")
    return out


def _stretch_applies(ctx: VerifyContext) -> bool:
    name = ctx.base_router.name
    if name not in STRETCH_BOUNDS or not ctx.trivial_faults:
        return False
    # Theorem 3.4's constant is proved for 2-D; dimension-order routes are
    # shortest in every dimension count.
    if STRETCH_BOUNDS[name] > 1.0 and ctx.mesh.d > 2:
        return False
    return True


@register(
    "paths.stretch-bound",
    "stretch <= 64 for 2-D hierarchical routing; = 1 for dimension-order",
    _stretch_applies,
)
def _stretch_bound(ctx: VerifyContext) -> list[str]:
    bound = STRETCH_BOUNDS[ctx.base_router.name]
    measured = ctx.result.stretch
    if measured > bound + 1e-9:
        return [f"stretch {measured:.2f} exceeds bound {bound}"]
    return []


# ---------------------------------------------------------------------------
# Seed-discipline invariants
# ---------------------------------------------------------------------------

def _can_reroute(ctx: VerifyContext) -> bool:
    return ctx.route_fn is not None


@register(
    "seed.replay-determinism",
    "routing again under the same entropy reproduces the bytes",
    _can_reroute,
)
def _replay_determinism(ctx: VerifyContext) -> list[str]:
    again = ctx.route_fn(1)
    out = []
    if not np.array_equal(again.paths.nodes, ctx.result.paths.nodes):
        out.append("replayed CSR nodes differ")
    if not np.array_equal(again.paths.offsets, ctx.result.paths.offsets):
        out.append("replayed CSR offsets differ")
    ka, kb = again.kept_indices, ctx.result.kept_indices
    if (ka is None) != (kb is None) or (
        ka is not None and not np.array_equal(ka, kb)
    ):
        out.append("replayed kept_indices differ")
    return out


def _oblivious_applies(ctx: VerifyContext) -> bool:
    return ctx.router.is_oblivious and ctx.original_problem.num_packets > 0


@register(
    "seed.obliviousness",
    "packet i's path depends only on (entropy, i, s_i, t_i)",
    _oblivious_applies,
)
def _obliviousness(ctx: VerifyContext) -> list[str]:
    """Route sampled packets *alone* and demand the identical path.

    If any path ever peeked at another packet's state, shrinking the
    batch to one packet (at the same global index, via ``packet_offset``)
    would change it.
    """
    res = ctx.result
    out = []
    for row in ctx.sample_rows(len(res.paths)):
        gi = int(res.kept_indices[row]) if res.kept_indices is not None else row
        sub = ctx.original_problem.subproblem([gi])
        solo = ctx.router.route(sub, ctx.entropy, packet_offset=gi, workers=1)
        if solo.problem.num_packets == 0:
            out.append(f"packet {gi} kept in batch but dropped when routed alone")
            continue
        if not np.array_equal(
            np.asarray(solo.paths[0]), np.asarray(res.paths[row])
        ):
            out.append(f"packet {gi} routes differently alone vs in the batch")
    return out


# ---------------------------------------------------------------------------
# Representation and metric invariants
# ---------------------------------------------------------------------------

@register(
    "pathset.csr-wellformed",
    "CSR offsets are monotone and complete; buffers are frozen",
    _is_route,
)
def _csr_wellformed(ctx: VerifyContext) -> list[str]:
    ps = ctx.result.paths
    out = []
    if ps.offsets[0] != 0 or ps.offsets[-1] != ps.nodes.size:
        out.append("offsets do not span the node buffer")
    if np.any(np.diff(ps.offsets) < 0):
        out.append("offsets are not non-decreasing")
    if len(ps) != ctx.result.problem.num_packets:
        out.append("path count does not match the problem")
    if ps.nodes.flags.writeable or ps.offsets.flags.writeable:
        out.append("CSR buffers are writable (PathSet must be frozen)")
    if not np.array_equal(ps.lengths, np.diff(ps.offsets) - 1):
        out.append("cached lengths disagree with the offsets")
    return out


@register(
    "metrics.consistent",
    "cached metrics agree: C = max edge load, D = max length, etc.",
    _is_route,
)
def _metrics_consistent(ctx: VerifyContext) -> list[str]:
    res = ctx.result
    out = []
    loads = res.edge_loads
    c = int(loads.max()) if loads.size else 0
    if res.congestion != c:
        out.append(f"congestion {res.congestion} != max edge load {c}")
    if int(loads.sum()) != int(res.paths.total_edges):
        out.append("edge loads do not sum to the total edge traversals")
    lens = res.paths.lengths
    d = int(lens.max()) if lens.size else 0
    if res.dilation != d:
        out.append(f"dilation {res.dilation} != max path length {d}")
    vals = res.stretches
    finite = vals[np.isfinite(vals)]
    smax = float(finite.max()) if finite.size else 0.0
    if abs(res.stretch - smax) > 1e-12:
        out.append(f"stretch {res.stretch} != max finite per-packet stretch")
    return out


@register(
    "bounds.lower-bound-holds",
    "measured congestion >= the C* lower bound (a theorem, not a tolerance)",
    lambda ctx: _is_route(ctx) and ctx.result.problem.num_packets > 0,
)
def _lower_bound_holds(ctx: VerifyContext) -> list[str]:
    prob = ctx.result.problem
    bound = congestion_lower_bound(
        prob.mesh, prob.sources, prob.dests, use_lp=False
    )
    if ctx.result.congestion + 1e-9 < bound:
        return [
            f"congestion {ctx.result.congestion} below the C* lower bound "
            f"{bound:.3f} — the bound or the loads are wrong"
        ]
    return []


# ---------------------------------------------------------------------------
# Online-simulation invariants
# ---------------------------------------------------------------------------

def _has_online(ctx: VerifyContext) -> bool:
    return ctx.online is not None


@register(
    "online.conservation",
    "delivered + dropped <= injected; per-packet latency >= distance",
    _has_online,
)
def _online_conservation(ctx: VerifyContext) -> list[str]:
    st = ctx.online
    out = []
    if st.delivered + st.dropped > st.injected:
        out.append(
            f"delivered {st.delivered} + dropped {st.dropped} exceeds "
            f"injected {st.injected}"
        )
    if st.latencies.size != st.delivered:
        out.append("latencies array size does not match delivered count")
    if st.distances.size == st.latencies.size and np.any(
        st.latencies < st.distances
    ):
        out.append("some delivered packet beat its shortest-path distance")
    if not 0.0 <= st.delivery_ratio <= 1.0:
        out.append(f"delivery ratio {st.delivery_ratio} outside [0, 1]")
    params = ctx.online_params or {}
    total = params.get("total_steps")
    if total is not None and st.steps < total:
        # the run drained early: everything injected must be accounted for
        if st.delivered + st.dropped != st.injected:
            out.append("drained run left packets unaccounted for")
    return out
