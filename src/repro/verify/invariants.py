"""The invariant registry: named predicates every RoutingResult must obey.

The paper's guarantees survive refactors only if they are executable.
Each invariant is a small pure function over a :class:`VerifyContext`
(the result plus how it was produced) returning a list of violation
strings — empty means the invariant holds.  Invariants self-select via
``applies``: a stretch ceiling only binds routers that promise one, the
bitonic-envelope check only binds routers exposing an access-graph
``submesh_sequence``, and fault-sensitive checks step aside when packets
were resampled or detoured.

Registered invariants (see ``docs/THEORY.md`` for the paper mapping):

=========================  =================================================
name                       property
=========================  =================================================
paths.valid-walk           every path is a mesh walk from s_i to t_i
paths.bitonic-envelope     paths stay inside the bitonic submesh sequence
paths.stretch-bound        stretch <= 64 (2-D hierarchical) / = 1 (dim-order)
seed.replay-determinism    same entropy -> byte-identical CSR
seed.obliviousness         packet i's path is a function of (seed, i, s, t)
pathset.csr-wellformed     offsets monotone, buffers frozen, lengths agree
metrics.consistent         cached metrics agree with each other
bounds.lower-bound-holds   measured C >= congestion_lower_bound
online.conservation        delivered + dropped <= injected; latency >= dist
budget.respected           ledger accounts every packet; enforce caps max_bits
budget.envelope            recycled bits/packet <= the Theorem 5.5 envelope
compact.state-equivalent   compact router == global router, polylog state
=========================  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.metrics.bounds import congestion_lower_bound
from repro.routing.base import Router, RoutingProblem, RoutingResult
from repro.verify.oracles import oracle_distance

__all__ = [
    "Invariant",
    "VerifyContext",
    "REGISTRY",
    "register",
    "check_invariants",
    "invariant_table",
]

#: routers with a proven stretch ceiling on 2-D meshes: name -> bound.
#: Theorem 3.4 gives 64 for the hierarchical algorithm; dimension-order
#: and shortest-path routes are shortest by construction.  The competitor
#: routers carry *per-router* bounds in a different metric: semi-oblivious
#: candidates are shortest paths under weights inflated by at most
#: ``1 + eps``, so their bound (``1 + eps``, default 1.25) applies to the
#: weighted path length; the Räcke tree's bound is the per-packet sum of
#: waypoint leg distances (checked structurally, no single constant).
STRETCH_BOUNDS = {
    "hierarchical": 64.0,
    "hierarchical-general": 64.0,
    "dim-order": 1.0,
    "random-dim-order": 1.0,
    "shortest-path": 1.0,
    "semi-oblivious": 1.25,
    "racke-tree": float("inf"),
}


@dataclass
class VerifyContext:
    """Everything an invariant may look at.

    ``result`` is always the *serial* fast-path result (the runner
    compares sharded runs against it separately); ``route_fn(workers)``
    re-routes the original problem with the same entropy, for the
    determinism and obliviousness probes.
    """

    result: RoutingResult
    router: Router
    entropy: int
    original_problem: RoutingProblem
    route_fn: Callable[[int], RoutingResult] | None = None
    workers: int = 1
    faults: object | None = None
    online: object | None = None
    online_params: dict | None = None
    #: resolved :class:`~repro.core.budget.BudgetParams` the result was
    #: routed under (``None`` when the case never touched the budget API)
    budget: object | None = None
    #: how many packets the sampled (per-packet) invariants inspect
    sample_limit: int = 4
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    @property
    def mesh(self):
        return self.result.problem.mesh

    @property
    def trivial_faults(self) -> bool:
        return self.faults is None or self.faults.is_trivial

    @property
    def base_router(self) -> Router:
        """The inner router when wrapped fault-aware, else the router."""
        return getattr(self.router, "inner", self.router)

    def sample_rows(self, n_rows: int) -> list[int]:
        """Up to ``sample_limit`` distinct row indices, deterministic."""
        if n_rows <= self.sample_limit:
            return list(range(n_rows))
        picks = self.rng.choice(n_rows, size=self.sample_limit, replace=False)
        return sorted(int(i) for i in picks)


@dataclass(frozen=True)
class Invariant:
    """A named predicate: ``applies(ctx) -> bool``, ``check(ctx) -> [msg]``."""

    name: str
    description: str
    applies: Callable[[VerifyContext], bool]
    check: Callable[[VerifyContext], list[str]]


REGISTRY: dict[str, Invariant] = {}


def register(name: str, description: str, applies=None):
    """Decorator: add ``fn`` to the registry under ``name``."""

    def wrap(fn):
        REGISTRY[name] = Invariant(
            name, description, applies or (lambda ctx: True), fn
        )
        return fn

    return wrap


def check_invariants(
    ctx: VerifyContext, names=None
) -> dict[str, list[str]]:
    """Run every applicable invariant; map name -> violations (non-empty only).

    A ``skipped`` entry never appears: inapplicable invariants are simply
    not run.  An invariant that *raises* is reported as a violation too —
    a crashing check must never pass silently.
    """
    out: dict[str, list[str]] = {}
    for name, inv in REGISTRY.items():
        if names is not None and name not in names:
            continue
        try:
            if not inv.applies(ctx):
                continue
            msgs = inv.check(ctx)
        except Exception as exc:  # noqa: BLE001 - any crash is a violation
            msgs = [f"invariant raised {type(exc).__name__}: {exc}"]
        if msgs:
            out[name] = msgs
    return out


def invariant_table() -> list[tuple[str, str]]:
    """(name, description) rows, for docs and ``--json`` reports."""
    return [(inv.name, inv.description) for inv in REGISTRY.values()]


# ---------------------------------------------------------------------------
# Path-shape invariants
# ---------------------------------------------------------------------------

def _is_route(ctx: VerifyContext) -> bool:
    return ctx.result is not None


@register("paths.valid-walk", "every path is a mesh walk from s_i to t_i", _is_route)
def _valid_walk(ctx: VerifyContext) -> list[str]:
    res, mesh = ctx.result, ctx.mesh
    out = []
    if not res.validate():
        out.append("RoutingResult.validate() failed")
    # independent scalar spot-check of sampled rows
    for i in ctx.sample_rows(len(res.paths)):
        path = [int(x) for x in res.paths[i]]
        if path[0] != int(res.problem.sources[i]) or path[-1] != int(
            res.problem.dests[i]
        ):
            out.append(f"path {i} endpoints do not match its (s, t)")
            continue
        for a, b in zip(path[:-1], path[1:]):
            if oracle_distance(mesh, a, b) != 1:
                out.append(f"path {i} hop ({a}, {b}) is not a mesh link")
                break
    return out


def _has_sequence(ctx: VerifyContext) -> bool:
    return (
        hasattr(ctx.base_router, "submesh_sequence")
        and not ctx.mesh.torus
        and ctx.trivial_faults
    )


@register(
    "paths.bitonic-envelope",
    "paths stay inside a bitonic (grow-then-shrink) submesh sequence",
    _has_sequence,
)
def _bitonic_envelope(ctx: VerifyContext) -> list[str]:
    res, mesh = ctx.result, ctx.mesh
    router = ctx.base_router
    out = []
    for i in ctx.sample_rows(len(res.paths)):
        s = int(res.problem.sources[i])
        t = int(res.problem.dests[i])
        seq, bridge = router.submesh_sequence(mesh, s, t)
        # bitonicity: boxes grow up to the bridge, then shrink
        for j in range(len(seq) - 1):
            lo_ok = (
                seq[j + 1].contains_submesh(seq[j])
                if j + 1 <= bridge
                else seq[j].contains_submesh(seq[j + 1])
            )
            if not lo_ok:
                out.append(
                    f"packet {i}: access sequence not bitonic at step {j}"
                )
                break
        # envelope: every path node lies in the union's bounding box
        big = seq[bridge]
        env_lo = np.asarray(big.lo, dtype=np.int64)
        env_hi = np.asarray(big.hi, dtype=np.int64)
        coords = mesh.flat_to_coords(np.asarray(res.paths[i], dtype=np.int64))
        if np.any(coords < env_lo) or np.any(coords > env_hi):
            out.append(f"packet {i}: path leaves the bridge submesh envelope")
    return out


_COMPETITORS = ("semi-oblivious", "racke-tree")


def _stretch_applies(ctx: VerifyContext) -> bool:
    name = ctx.base_router.name
    if name not in STRETCH_BOUNDS or not ctx.trivial_faults:
        return False
    if name in _COMPETITORS:
        # the weighted/structural bounds below hold on every topology
        return ctx.result.problem.num_packets > 0
    # Theorem 3.4's constant is proved for 2-D; dimension-order routes are
    # shortest in every dimension count.
    if STRETCH_BOUNDS[name] > 1.0 and ctx.mesh.d > 2:
        return False
    return True


@register(
    "paths.stretch-bound",
    "per-router stretch ceilings: 64 for 2-D hierarchical, 1 for "
    "dimension-order, 1+eps weighted for semi-oblivious, waypoint-leg sum "
    "for the Räcke tree",
    _stretch_applies,
)
def _stretch_bound(ctx: VerifyContext) -> list[str]:
    from repro.verify.oracles import (
        oracle_weighted_distance,
        oracle_weighted_length,
    )

    name = ctx.base_router.name
    res = ctx.result
    if name == "semi-oblivious":
        from repro.core.randomness import bits_for_range

        bound = 1.0 + ctx.base_router.eps
        # packets over an enforced bit budget fall back to the zero-bit
        # tree router; the 1+eps bound only covers sampled candidates
        degrade_limit = None
        if ctx.budget is not None and getattr(ctx.budget, "enforcing", False):
            degrade_limit = ctx.budget.limit_for(ctx.mesh)
        per_packet = ctx.base_router.candidates * bits_for_range(ctx.mesh.n)
        out = []
        for i in ctx.sample_rows(len(res.paths)):
            s = int(res.problem.sources[i])
            t = int(res.problem.dests[i])
            if s == t:
                continue
            if degrade_limit is not None and per_packet > degrade_limit:
                continue
            got = oracle_weighted_length(ctx.mesh, res.paths[i])
            opt = oracle_weighted_distance(ctx.mesh, s, t)
            if got > bound * opt + 1e-9:
                out.append(
                    f"packet {i}: weighted length {got:.4f} exceeds "
                    f"{bound} x weighted distance {opt:.4f}"
                )
        return out
    if name == "racke-tree":
        from repro.routing.competitors import tree_waypoints

        out = []
        for i in ctx.sample_rows(len(res.paths)):
            s = int(res.problem.sources[i])
            t = int(res.problem.dests[i])
            if s == t:
                continue
            way = tree_waypoints(ctx.mesh, s, t)
            ceiling = sum(
                oracle_weighted_distance(ctx.mesh, a, b)
                for a, b in zip(way, way[1:])
            )
            got = oracle_weighted_length(ctx.mesh, res.paths[i])
            if got > ceiling + 1e-9:
                out.append(
                    f"packet {i}: weighted length {got:.4f} exceeds the "
                    f"tree waypoint ceiling {ceiling:.4f}"
                )
        return out
    bound = STRETCH_BOUNDS[name]
    measured = res.stretch
    if measured > bound + 1e-9:
        return [f"stretch {measured:.2f} exceeds bound {bound}"]
    return []


# ---------------------------------------------------------------------------
# Seed-discipline invariants
# ---------------------------------------------------------------------------

def _can_reroute(ctx: VerifyContext) -> bool:
    return ctx.route_fn is not None


@register(
    "seed.replay-determinism",
    "routing again under the same entropy reproduces the bytes",
    _can_reroute,
)
def _replay_determinism(ctx: VerifyContext) -> list[str]:
    again = ctx.route_fn(1)
    out = []
    if not np.array_equal(again.paths.nodes, ctx.result.paths.nodes):
        out.append("replayed CSR nodes differ")
    if not np.array_equal(again.paths.offsets, ctx.result.paths.offsets):
        out.append("replayed CSR offsets differ")
    ka, kb = again.kept_indices, ctx.result.kept_indices
    if (ka is None) != (kb is None) or (
        ka is not None and not np.array_equal(ka, kb)
    ):
        out.append("replayed kept_indices differ")
    return out


def _oblivious_applies(ctx: VerifyContext) -> bool:
    return ctx.router.is_oblivious and ctx.original_problem.num_packets > 0


@register(
    "seed.obliviousness",
    "packet i's path depends only on (entropy, i, s_i, t_i)",
    _oblivious_applies,
)
def _obliviousness(ctx: VerifyContext) -> list[str]:
    """Route sampled packets *alone* and demand the identical path.

    If any path ever peeked at another packet's state, shrinking the
    batch to one packet (at the same global index, via ``packet_offset``)
    would change it.
    """
    res = ctx.result
    out = []
    for row in ctx.sample_rows(len(res.paths)):
        gi = int(res.kept_indices[row]) if res.kept_indices is not None else row
        sub = ctx.original_problem.subproblem([gi])
        solo = ctx.router.route(
            sub, ctx.entropy, packet_offset=gi, workers=1, budget=ctx.budget
        )
        if solo.problem.num_packets == 0:
            out.append(f"packet {gi} kept in batch but dropped when routed alone")
            continue
        if not np.array_equal(
            np.asarray(solo.paths[0]), np.asarray(res.paths[row])
        ):
            out.append(f"packet {gi} routes differently alone vs in the batch")
    return out


# ---------------------------------------------------------------------------
# Representation and metric invariants
# ---------------------------------------------------------------------------

@register(
    "pathset.csr-wellformed",
    "CSR offsets are monotone and complete; buffers are frozen",
    _is_route,
)
def _csr_wellformed(ctx: VerifyContext) -> list[str]:
    ps = ctx.result.paths
    out = []
    if ps.offsets[0] != 0 or ps.offsets[-1] != ps.nodes.size:
        out.append("offsets do not span the node buffer")
    if np.any(np.diff(ps.offsets) < 0):
        out.append("offsets are not non-decreasing")
    if len(ps) != ctx.result.problem.num_packets:
        out.append("path count does not match the problem")
    if ps.nodes.flags.writeable or ps.offsets.flags.writeable:
        out.append("CSR buffers are writable (PathSet must be frozen)")
    if not np.array_equal(ps.lengths, np.diff(ps.offsets) - 1):
        out.append("cached lengths disagree with the offsets")
    return out


@register(
    "metrics.consistent",
    "cached metrics agree: C = max edge load, D = max length, etc.",
    _is_route,
)
def _metrics_consistent(ctx: VerifyContext) -> list[str]:
    res = ctx.result
    out = []
    loads = res.edge_loads
    c = int(loads.max()) if loads.size else 0
    if res.congestion != c:
        out.append(f"congestion {res.congestion} != max edge load {c}")
    if int(loads.sum()) != int(res.paths.total_edges):
        out.append("edge loads do not sum to the total edge traversals")
    lens = res.paths.lengths
    d = int(lens.max()) if lens.size else 0
    if res.dilation != d:
        out.append(f"dilation {res.dilation} != max path length {d}")
    vals = res.stretches
    finite = vals[np.isfinite(vals)]
    smax = float(finite.max()) if finite.size else 0.0
    if abs(res.stretch - smax) > 1e-12:
        out.append(f"stretch {res.stretch} != max finite per-packet stretch")
    return out


def _lower_bound_applies(ctx: VerifyContext) -> bool:
    from repro.mesh.mesh import Mesh

    # The C* window argument is grid-coordinate geometry; on a
    # GeneralGraph there is no boundary-counting analogue to check.
    return (
        _is_route(ctx)
        and ctx.result.problem.num_packets > 0
        and isinstance(ctx.result.problem.mesh, Mesh)
    )


@register(
    "bounds.lower-bound-holds",
    "measured congestion >= the C* lower bound (a theorem, not a tolerance)",
    _lower_bound_applies,
)
def _lower_bound_holds(ctx: VerifyContext) -> list[str]:
    prob = ctx.result.problem
    bound = congestion_lower_bound(
        prob.mesh, prob.sources, prob.dests, use_lp=False
    )
    if ctx.result.congestion + 1e-9 < bound:
        return [
            f"congestion {ctx.result.congestion} below the C* lower bound "
            f"{bound:.3f} — the bound or the loads are wrong"
        ]
    return []


# ---------------------------------------------------------------------------
# Online-simulation invariants
# ---------------------------------------------------------------------------

def _has_online(ctx: VerifyContext) -> bool:
    return ctx.online is not None


@register(
    "online.conservation",
    "delivered + dropped + admission drops <= injected; latency >= distance",
    _has_online,
)
def _online_conservation(ctx: VerifyContext) -> list[str]:
    st = ctx.online
    out = []
    adm_dropped = getattr(st, "admission_dropped", 0)
    if st.delivered + st.dropped + adm_dropped > st.injected:
        out.append(
            f"delivered {st.delivered} + dropped {st.dropped} + admission "
            f"drops {adm_dropped} exceeds injected {st.injected}"
        )
    if adm_dropped < 0:
        out.append(f"negative admission drop count {adm_dropped}")
    if st.latencies.size != st.delivered:
        out.append("latencies array size does not match delivered count")
    if st.distances.size == st.latencies.size and np.any(
        st.latencies < st.distances
    ):
        out.append("some delivered packet beat its shortest-path distance")
    if not 0.0 <= st.delivery_ratio <= 1.0:
        out.append(f"delivery ratio {st.delivery_ratio} outside [0, 1]")
    slo = getattr(st, "slo", None)
    if slo is not None:
        # SLO telemetry must agree with the run's own ledger: the latency
        # histogram holds exactly the delivered packets, attainment is a
        # fraction of injections, and no packet met a deadline it missed.
        if slo.latency_hist.count != st.delivered:
            out.append(
                f"SLO latency histogram holds {slo.latency_hist.count} "
                f"samples but {st.delivered} packets were delivered"
            )
        if not 0.0 <= slo.attainment <= 1.0:
            out.append(f"SLO attainment {slo.attainment} outside [0, 1]")
        if slo.met_deadline > slo.delivered:
            out.append(
                f"SLO met_deadline {slo.met_deadline} exceeds delivered "
                f"{slo.delivered}"
            )
        if slo.admission_dropped != adm_dropped:
            out.append("SLO admission-drop count disagrees with the run's")
    params = ctx.online_params or {}
    total = params.get("total_steps")
    if total is not None and st.steps < total:
        # the run drained early: everything injected must be accounted
        # for (admission-shed packets count as accounted)
        if st.delivered + st.dropped + adm_dropped != st.injected:
            out.append("drained run left packets unaccounted for")
    return out


# ---------------------------------------------------------------------------
# Randomness-budget and compact-state invariants
# ---------------------------------------------------------------------------

def _has_ledger(ctx: VerifyContext) -> bool:
    return (
        ctx.result is not None
        and getattr(ctx.result, "budget", None) is not None
    )


@register(
    "budget.respected",
    "the bit ledger accounts every packet; enforce caps per-packet bits",
    _has_ledger,
)
def _budget_respected(ctx: VerifyContext) -> list[str]:
    from repro.core.budget import MODES
    from repro.verify.oracles import oracle_metered_bits

    ledger = ctx.result.budget
    out = []
    if ledger.mode not in MODES:
        out.append(f"ledger mode {ledger.mode!r} is not a known budget mode")
    if ledger.packets != ctx.original_problem.num_packets:
        out.append(
            f"ledger covers {ledger.packets} packets, problem has "
            f"{ctx.original_problem.num_packets}"
        )
    if ledger.metered + ledger.unmetered != ledger.packets:
        out.append(
            f"metered {ledger.metered} + unmetered {ledger.unmetered} != "
            f"packets {ledger.packets}"
        )
    if min(ledger.bits_drawn, ledger.max_bits, ledger.fallbacks) < 0:
        out.append("negative entries in the bit ledger")
    if ledger.mode == "enforce":
        if ledger.limit is None:
            out.append("enforce-mode ledger carries no limit")
        elif ledger.max_bits > ledger.limit:
            out.append(
                f"enforce violated: a selection drew {ledger.max_bits} bits "
                f"over the {ledger.limit}-bit budget"
            )
    # Independent recount: on a clean engine run (no faults, no fallbacks,
    # every packet metered) the drawn total must equal the scalar oracle's
    # price of the batch spec, packet by packet.
    if (
        ctx.trivial_faults
        and ledger.metered == ledger.packets
        and ledger.fallbacks == 0
        and ledger.packets > 0
    ):
        spec = ctx.router.batch_spec(ctx.original_problem)
        if spec is not None:
            recount = oracle_metered_bits(spec)
            if sum(recount) != ledger.bits_drawn:
                out.append(
                    f"bits_drawn {ledger.bits_drawn} != oracle recount "
                    f"{sum(recount)}"
                )
            if max(recount) != ledger.max_bits:
                out.append(
                    f"max_bits {ledger.max_bits} != oracle recount max "
                    f"{max(recount)}"
                )
    return out


def _envelope_applies(ctx: VerifyContext) -> bool:
    from repro.core.path_selection import HierarchicalRouter

    return (
        ctx.result is not None
        and isinstance(ctx.base_router, HierarchicalRouter)
        and getattr(ctx.base_router, "use_bridges", False)
        and ctx.mesh.is_power_of_two_cube
        and ctx.trivial_faults
        and ctx.result.problem.num_packets > 0
    )


@register(
    "budget.envelope",
    "recycled bits per packet stay within the Theorem 5.5 envelope "
    "O(d log(D d))",
    _envelope_applies,
)
def _budget_envelope(ctx: VerifyContext) -> list[str]:
    import math

    from repro.core.budget import sequence_recycled_bits

    res, mesh = ctx.result, ctx.mesh
    router = ctx.base_router
    out = []
    for i in ctx.sample_rows(res.problem.num_packets):
        s = int(res.problem.sources[i])
        t = int(res.problem.dests[i])
        if s == t:
            continue
        seq, bridge_idx = router.submesh_sequence(mesh, s, t)
        cost = sequence_recycled_bits(seq[bridge_idx].sides, mesh.d)
        dist = oracle_distance(mesh, s, t)
        bound = 4 * mesh.d * (math.log2(max(2, dist) * mesh.d) + 4)
        if cost > bound:
            out.append(
                f"packet {i}: recycled cost {cost} bits exceeds the "
                f"envelope {bound:.1f} (dist {dist})"
            )
    return out


def _competitor_applies(ctx: VerifyContext) -> bool:
    return (
        ctx.result is not None
        and ctx.base_router.name in _COMPETITORS
        and ctx.trivial_faults
        and ctx.result.problem.num_packets > 0
    )


@register(
    "competitors.path-oracle",
    "competitor paths match the independent scalar sampling / serialized "
    "tree oracles byte for byte",
    _competitor_applies,
)
def _competitor_path_oracle(ctx: VerifyContext) -> list[str]:
    from repro.core.randomness import bits_for_range
    from repro.verify.oracles import (
        oracle_semi_oblivious_path,
        oracle_tree_path,
    )

    res = ctx.result
    name = ctx.base_router.name
    degrade_limit = None
    if ctx.budget is not None and getattr(ctx.budget, "enforcing", False):
        degrade_limit = ctx.budget.limit_for(ctx.mesh)
    out = []
    for row in ctx.sample_rows(len(res.paths)):
        gi = (
            int(res.kept_indices[row])
            if res.kept_indices is not None
            else row
        )
        s = int(res.problem.sources[row])
        t = int(res.problem.dests[row])
        if name == "semi-oblivious":
            k = ctx.base_router.candidates
            # replay the enforcement ladder: an over-budget packet must
            # have been routed by the zero-bit tree fallback instead
            degraded = (
                s != t
                and degrade_limit is not None
                and k * bits_for_range(ctx.mesh.n) > degrade_limit
            )
            expect = (
                oracle_tree_path(ctx.mesh, s, t)
                if degraded
                else oracle_semi_oblivious_path(
                    ctx.mesh, ctx.entropy, gi, s, t, candidates=k
                )
            )
        else:
            expect = oracle_tree_path(ctx.mesh, s, t)
        if [int(x) for x in res.paths[row]] != expect:
            out.append(
                f"packet {gi}: {name} path differs from the scalar oracle"
            )
    return out


def _compact_applies(ctx: VerifyContext) -> bool:
    from repro.core.compact import CompactHierarchicalRouter

    return (
        ctx.result is not None
        and isinstance(ctx.base_router, CompactHierarchicalRouter)
        and ctx.trivial_faults
    )


@register(
    "compact.state-equivalent",
    "compact per-node routing is byte-identical to the global router and "
    "its state stays polylogarithmic",
    _compact_applies,
)
def _compact_state_equivalent(ctx: VerifyContext) -> list[str]:
    from repro.core.compact import CompactNodeTable
    from repro.core.path_selection import HierarchicalRouter

    res, mesh = ctx.result, ctx.mesh
    compact = ctx.base_router
    out = []
    reference = HierarchicalRouter(
        scheme=compact.scheme,
        variant=compact.variant,
        use_bridges=compact.use_bridges,
        dim_order=compact.dim_order,
        bit_mode=compact.bit_mode,
        drop_cycles=compact.drop_cycles,
    )
    ref = reference.route(
        ctx.original_problem, ctx.entropy, workers=1, budget=ctx.budget
    )
    if not np.array_equal(ref.paths.nodes, res.paths.nodes) or not np.array_equal(
        ref.paths.offsets, res.paths.offsets
    ):
        out.append("compact router bytes differ from the global router")
    # state accounting: serialization round-trips and stays polylog
    node = int(res.problem.sources[0]) if res.problem.num_packets else 0
    table = compact.node_table(mesh, node)
    if CompactNodeTable.from_bytes(table.to_bytes()) != table:
        out.append("compact node table does not round-trip through bytes")
    bits = compact.state_bits_per_node(mesh)
    if bits != 8 * len(table.to_bytes()):
        out.append("state_bits_per_node disagrees with the serialized size")
    ceiling = 512 * (mesh.k + 1) * (mesh.d + 1) + 1024
    if bits > ceiling:
        out.append(
            f"per-node state {bits} bits exceeds the polylog ceiling "
            f"{ceiling}"
        )
    return out
