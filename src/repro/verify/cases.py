"""Randomized case generation for the differential runner.

A :class:`Case` is a fully serialisable description of one verification
scenario: mesh shape, router, workload, seed, worker count, fault model,
and (optionally) an online-simulation configuration.  Cases round-trip
through JSON so any failure the runner ever finds can be committed to
``tests/corpus/`` and replayed bit-exactly with ``repro verify --replay``.

:func:`generate_cases` produces a deterministic mix:

* a **grid core** covering every supported router on the three mesh
  families (square, rectangular, torus) crossed with worker counts
  {1, 4} and {no-fault, static-fault} — the acceptance matrix;
* a **random fill** sampling the wider ladder (3-D meshes, odd sides,
  extra workloads, block/dynamic faults, online runs) until the
  requested count is reached.

Sampling is rejection-based: a drawn combination that the codebase
legitimately rejects (e.g. the hierarchical router on a non-power-of-two
mesh, transpose on a rectangle) is skipped, which keeps the stream
deterministic because validity never depends on randomness.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.mesh.mesh import Mesh
from repro.routing.registry import make_router

__all__ = ["Case", "build_case", "generate_cases", "supported", "GRID_MESHES"]

#: the acceptance-matrix mesh families: (sides, torus, label)
GRID_MESHES = (
    ((8, 8), False, "square"),
    ((8, 4), False, "rect"),
    ((8, 8), True, "torus"),
)

#: wider shapes for the random fill
FILL_MESHES = (
    ((4, 4), False),
    ((8, 8), False),
    ((8, 4), False),
    ((6, 5), False),
    ((4, 4, 4), False),
    ((8, 8), True),
    ((6, 6), True),
)

ROUTERS = (
    "hierarchical",
    "hierarchical-general",
    "compact-hierarchical",
    "access-tree",
    "dim-order",
    "random-dim-order",
    "valiant",
    "shortest-path",
    "greedy-offline",
    "rect-hierarchical",
    # appended at the end so the workload rotation of every pre-existing
    # grid cell (and with it every committed corpus case_id) is unchanged
    "semi-oblivious",
    "racke-tree",
)

#: named general-graph topologies competitor cells run on (see
#: ``repro.mesh.graph.NAMED_GRAPHS``); only coordinate-free workloads
#: (random-pairs / random-permutation) are valid here
GRAPHS = ("random-regular-24", "dumbbell-16")

WORKLOADS = (
    "random-pairs",
    "transpose",
    "bit-reversal",
    "bit-complement",
    "tornado",
    "random-permutation",
)


@dataclass(frozen=True)
class Case:
    """One verification scenario; JSON-serialisable and hashable."""

    sides: tuple[int, ...]
    torus: bool
    router: str
    workload: str
    seed: int
    workers: int = 1
    packets: int = 32  #: only honoured by the random-pairs workload
    fault_mode: str = "none"  #: "none" | "static" | "blocks" | "dynamic"
    fault_p: float = 0.0
    fault_blocks: int = 0
    fault_seed: int = 0
    kind: str = "route"  #: "route" | "online"
    rate: float = 0.3  #: online injection rate
    steps: int = 40  #: online injection steps
    budget_mode: str = "off"  #: "off" | "measure" | "enforce"
    budget_bits: int | None = None  #: per-packet cap; None = default ceiling
    #: additionally route through a live ``repro serve`` daemon and demand
    #: byte-identity with the serial route (the service acceptance cells)
    via_service: bool = False
    #: topology selector: "mesh" builds ``Mesh(sides, torus)``; any other
    #: value names a fixed :data:`repro.mesh.graph.NAMED_GRAPHS` instance
    #: (``sides``/``torus`` are then informational only)
    graph: str = "mesh"

    def to_dict(self) -> dict:
        out = asdict(self)
        out["sides"] = list(self.sides)
        # Default-valued late additions are dropped from the encoding, so
        # every pre-existing corpus case_id stays valid (the budget fields
        # set the precedent; via_service and graph follow it).
        if out["budget_mode"] == "off":
            del out["budget_mode"]
        if out["budget_bits"] is None:
            del out["budget_bits"]
        if not out["via_service"]:
            del out["via_service"]
        if out["graph"] == "mesh":
            del out["graph"]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Case":
        data = dict(data)
        data["sides"] = tuple(int(s) for s in data["sides"])
        return cls(**data)

    @property
    def case_id(self) -> str:
        """Stable 12-hex-digit id over the canonical JSON encoding."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:12]

    def label(self) -> str:
        if self.graph != "mesh":
            mesh = self.graph
        else:
            mesh = "x".join(str(s) for s in self.sides) + (
                "t" if self.torus else ""
            )
        bits = [self.router, mesh, self.workload, f"seed={self.seed}"]
        if self.workers != 1:
            bits.append(f"w={self.workers}")
        if self.fault_mode != "none":
            bits.append(f"faults={self.fault_mode}")
        if self.kind != "route":
            bits.append(self.kind)
        if self.budget_mode != "off":
            cap = "" if self.budget_bits is None else f"={self.budget_bits}"
            bits.append(f"budget={self.budget_mode}{cap}")
        if self.via_service:
            bits.append("service")
        return " ".join(bits)


def _mesh(case: Case):
    if case.graph != "mesh":
        from repro.mesh.graph import named_graph

        return named_graph(case.graph)
    return Mesh(case.sides, torus=case.torus)


def _fault_model(case: Case, mesh: Mesh):
    if case.fault_mode == "none":
        return None
    from repro.faults.model import FaultModel

    if case.fault_mode == "static":
        return FaultModel.static(mesh, p=case.fault_p, seed=case.fault_seed)
    if case.fault_mode == "blocks":
        return FaultModel.blocks(
            mesh, num_blocks=case.fault_blocks, seed=case.fault_seed
        )
    if case.fault_mode == "dynamic":
        return FaultModel.dynamic(mesh, p=case.fault_p, seed=case.fault_seed)
    raise ValueError(f"unknown fault mode {case.fault_mode!r}")


def build_case(case: Case):
    """Materialise ``(router, problem, faults)`` for a case.

    Raises whatever the codebase raises for invalid combinations — the
    generator treats that as "skip", the replayer as a hard error.
    """
    from repro.cli import build_workload
    from repro.faults.router import FaultAwareRouter

    mesh = _mesh(case)
    if case.workload == "random-pairs":
        from repro.workloads import random_pairs

        problem = random_pairs(mesh, case.packets, seed=case.seed)
    else:
        problem = build_workload(case.workload, mesh, case.seed)
    router = make_router(case.router)
    faults = _fault_model(case, mesh)
    if faults is not None:
        router = FaultAwareRouter(router, faults)
    # reject invalid combinations eagerly (routers validate lazily)
    if problem.num_packets:
        router.batch_spec(problem)
        if hasattr(router, "submesh_sequence") or hasattr(
            getattr(router, "inner", None), "submesh_sequence"
        ):
            seq_router = getattr(router, "inner", router)
            s = int(problem.sources[0])
            t = int(problem.dests[0])
            seq_router.submesh_sequence(mesh, s, t)
    return router, problem, faults


def supported(case: Case) -> bool:
    """Whether the codebase accepts this combination at all."""
    try:
        build_case(case)
        return True
    except (ValueError, KeyError):
        return False


def _grid_cases(seed: int) -> list[Case]:
    """The acceptance matrix: routers x mesh families x workers x faults."""
    out = []
    for sides, torus, _label in GRID_MESHES:
        for r_i, router in enumerate(ROUTERS):
            # rotate workloads so the grid exercises several patterns
            workload = WORKLOADS[r_i % len(WORKLOADS)]
            for workers in (1, 4):
                for faulty in (False, True):
                    if router == "greedy-offline" and (workers != 1 or faulty):
                        continue  # non-oblivious: no sharding, no fault wrap
                    case = Case(
                        sides=tuple(sides),
                        torus=torus,
                        router=router,
                        workload=workload,
                        seed=seed + r_i,
                        workers=workers,
                        fault_mode="static" if faulty else "none",
                        fault_p=0.06 if faulty else 0.0,
                        fault_seed=seed + 1,
                    )
                    if not supported(case):
                        # fall back to the universal workload for routers
                        # that reject this mesh's named pattern
                        case = replace(case, workload="random-pairs")
                        if not supported(case):
                            continue
                    out.append(case)
    out.extend(_budget_cases(seed))
    out.extend(_service_cases(seed))
    out.extend(_graph_cases(seed))
    return out


def _graph_cases(seed: int) -> list[Case]:
    """Competitor cells on the named general graphs.

    Both competitor routers on both fixed graphs, serial and sharded,
    plus budget cells: a measure ledger and a deliberately tight enforce
    cap that pushes every semi-oblivious packet down the recycled
    (zero-bit tree) rung of the degradation ladder.
    """
    from repro.mesh.graph import named_graph

    cells = []
    for g_i, gname in enumerate(GRAPHS):
        n = named_graph(gname).n
        for r_i, router in enumerate(("semi-oblivious", "racke-tree")):
            workload = ("random-pairs", "random-permutation")[(g_i + r_i) % 2]
            for workers in (1, 4):
                cells.append(
                    Case(
                        sides=(n,),
                        torus=False,
                        router=router,
                        workload=workload,
                        seed=seed + 40 + g_i,
                        workers=workers,
                        graph=gname,
                    )
                )
    cells.append(
        Case(sides=(24,), torus=False, router="semi-oblivious",
             workload="random-pairs", seed=seed + 44,
             budget_mode="measure", graph="random-regular-24")
    )
    cells.append(
        Case(sides=(24,), torus=False, router="semi-oblivious",
             workload="random-pairs", seed=seed + 45,
             budget_mode="enforce", budget_bits=10, graph="random-regular-24")
    )
    cells.append(
        Case(sides=(16,), torus=False, router="racke-tree",
             workload="random-pairs", seed=seed + 46,
             budget_mode="enforce", graph="dumbbell-16")
    )
    return [c for c in cells if supported(c)]


def _service_cases(seed: int) -> list[Case]:
    """Service acceptance cells: the same route through a live daemon.

    Every cell demands byte-identity between ``repro serve`` output and
    the serial route.  Faults and budgets stay off — the service protocol
    carries (mesh, pairs, router, seed) only — so these cells isolate the
    transport: batching, shared memory and worker warm-up must all be
    invisible in the bytes.
    """
    cells = []
    for i, (router, sides, torus) in enumerate(
        (
            ("hierarchical", (8, 8), False),
            ("hierarchical", (8, 8), True),
            ("rect-hierarchical", (8, 4), False),
            ("access-tree", (8, 8), False),
            ("dim-order", (8, 4), False),
            ("valiant", (8, 8), False),
        )
    ):
        case = Case(
            sides=sides,
            torus=torus,
            router=router,
            workload=WORKLOADS[i % len(WORKLOADS)],
            seed=seed + 700 + i,
            via_service=True,
        )
        if not supported(case):
            case = replace(case, workload="random-pairs")
            if not supported(case):
                continue
        cells.append(case)
    return cells


def _budget_cases(seed: int) -> list[Case]:
    """Dedicated budget cells: measure, default enforce, and tight caps.

    The tight 24-bit cap forces the degradation ladder (recycled fallback,
    then dimension-order) on 8x8 meshes, where fresh hierarchical
    selections plan up to ~40 bits; the default enforce ceiling degrades
    nothing, so those cells double as byte-identity probes.
    """
    base = dict(workload="random-pairs", seed=seed + 500)
    cells = [
        Case(sides=(8, 8), torus=False, router="hierarchical",
             budget_mode="measure", **base),
        Case(sides=(8, 8), torus=False, router="hierarchical",
             budget_mode="enforce", **base),
        Case(sides=(8, 8), torus=False, router="hierarchical",
             budget_mode="enforce", budget_bits=24, **base),
        Case(sides=(8, 8), torus=True, router="hierarchical",
             budget_mode="enforce", budget_bits=24, **base),
        Case(sides=(8, 8), torus=False, router="compact-hierarchical",
             budget_mode="enforce", budget_bits=24, **base),
        Case(sides=(8, 8), torus=False, router="valiant",
             budget_mode="measure", **base),
        Case(sides=(8, 8), torus=False, router="hierarchical",
             budget_mode="enforce", budget_bits=24, workers=4,
             workload="random-pairs", seed=seed + 501),
        Case(sides=(8, 8), torus=False, router="hierarchical",
             budget_mode="enforce", budget_bits=24,
             fault_mode="static", fault_p=0.06, fault_seed=seed + 1,
             workload="random-pairs", seed=seed + 502),
    ]
    return [c for c in cells if supported(c)]


def _random_case(rng: np.random.Generator, seed: int) -> Case:
    sides, torus = FILL_MESHES[int(rng.integers(len(FILL_MESHES)))]
    router = ROUTERS[int(rng.integers(len(ROUTERS)))]
    workload = WORKLOADS[int(rng.integers(len(WORKLOADS)))]
    workers = int(rng.choice((1, 1, 4)))
    fault_mode = str(rng.choice(("none", "none", "static", "blocks", "dynamic")))
    kind = "online" if rng.random() < 0.08 else "route"
    budget_mode = str(rng.choice(("off", "off", "off", "measure", "enforce")))
    budget_bits = None
    if budget_mode == "enforce" and rng.random() < 0.5:
        budget_bits = int(rng.integers(16, 40))
    if router == "greedy-offline":
        workers = 1
        fault_mode = "none"
        kind = "route"
    if kind == "online":
        workers = 1
        budget_mode = "off"
        budget_bits = None
        if fault_mode in ("blocks", "dynamic"):
            fault_mode = "static"
    return Case(
        sides=tuple(sides),
        torus=torus,
        router=router,
        workload=workload,
        seed=seed,
        workers=workers,
        packets=int(rng.integers(8, 48)),
        fault_mode=fault_mode,
        fault_p=0.08 if fault_mode in ("static", "dynamic") else 0.0,
        fault_blocks=2 if fault_mode == "blocks" else 0,
        fault_seed=seed + 7,
        kind=kind,
        rate=float(np.round(0.1 + 0.4 * rng.random(), 2)),
        steps=int(rng.integers(20, 50)),
        budget_mode=budget_mode,
        budget_bits=budget_bits,
    )


def generate_cases(count: int, seed: int = 0) -> list[Case]:
    """``count`` deterministic cases: the grid core plus a random fill."""
    cases = _grid_cases(seed)
    rng = np.random.default_rng(seed)
    draw = 0
    while len(cases) < count:
        case = _random_case(rng, seed + 1000 + draw)
        draw += 1
        if supported(case):
            cases.append(case)
        if draw > 50 * count:  # pragma: no cover - defensive
            raise RuntimeError("case generator cannot reach the requested count")
    return cases[:count] if len(cases) > count else cases
