"""Differential verification: oracles, invariants, and the conformance gate.

Four PRs of optimisation (batched engine, columnar :class:`PathSet`,
fault-aware rerouting, sharded multiprocess routing) all rest on
"byte-identical to the reference" claims.  This package makes those claims
*standing* instead of spot-checked:

* :mod:`repro.verify.oracles` — deliberately slow, obviously-correct
  scalar reimplementations of every hot path (engine-protocol routing,
  metrics array passes, fault masking, BFS detours), built on numpy's
  public ``SeedSequence`` rather than the repo's vectorised replica;
* :mod:`repro.verify.invariants` — a registry of named, machine-checkable
  predicates over a :class:`~repro.routing.base.RoutingResult` (walk
  validity, bitonic envelopes, stretch ceilings, seed determinism and
  per-packet obliviousness, CSR well-formedness, online conservation);
* :mod:`repro.verify.certificate` — statistical congestion certificates
  with explicit Chernoff-style tolerances instead of bare asserts;
* :mod:`repro.verify.cases` / :mod:`repro.verify.runner` /
  :mod:`repro.verify.shrink` — randomized case generation, the
  differential fast-path-vs-oracle runner, shrinking, and the replayable
  failure corpus under ``tests/corpus/``.

Entry point: ``python -m repro verify [--smoke|--deep] [--json]`` (see
``docs/VERIFICATION.md``).
"""

from repro.verify.cases import Case, build_case, generate_cases, supported
from repro.verify.certificate import congestion_ceiling, congestion_certificate
from repro.verify.invariants import (
    REGISTRY,
    Invariant,
    VerifyContext,
    check_invariants,
    invariant_table,
    register,
)
from repro.verify.oracles import (
    oracle_dilation,
    oracle_edge_loads,
    oracle_fault_mask,
    oracle_node_loads,
    oracle_route,
    oracle_stretches,
    replay_hash,
    result_hash,
)
from repro.verify.runner import (
    CaseOutcome,
    VerifyReport,
    check_corpus,
    load_corpus_case,
    run_case,
    run_suite,
    save_corpus_case,
)
from repro.verify.shrink import shrink_case

__all__ = [
    "Case",
    "CaseOutcome",
    "Invariant",
    "REGISTRY",
    "VerifyContext",
    "VerifyReport",
    "build_case",
    "check_corpus",
    "check_invariants",
    "congestion_ceiling",
    "congestion_certificate",
    "generate_cases",
    "invariant_table",
    "load_corpus_case",
    "oracle_dilation",
    "oracle_edge_loads",
    "oracle_fault_mask",
    "oracle_node_loads",
    "oracle_route",
    "oracle_stretches",
    "register",
    "replay_hash",
    "result_hash",
    "run_case",
    "run_suite",
    "save_corpus_case",
    "shrink_case",
    "supported",
]
