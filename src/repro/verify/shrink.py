"""Greedy case shrinking: make a failing case as small as it will stay.

Classic delta-debugging over the knobs of a :class:`~repro.verify.cases.Case`:
each transformation simplifies one dimension (drop workers, drop faults,
fewer packets, a smaller mesh, the plainest workload), and a
transformation is kept only if the shrunk case *still fails*.  Repeats to
a fixed point, so the corpus records the smallest reproduction the
greedy pass can find rather than the sprawling original.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.verify.cases import Case, supported

__all__ = ["shrink_case"]

#: per-knob simplification ladders, tried in order
_MESH_LADDER = ((4, 4), (4, 2), (2, 2))


def _candidates(case: Case):
    """Simplified variants of ``case``, most aggressive knobs first."""
    if case.workers != 1:
        yield replace(case, workers=1)
    if case.fault_mode != "none":
        yield replace(case, fault_mode="none", fault_p=0.0, fault_blocks=0)
    if case.kind == "online" and case.steps > 5:
        yield replace(case, steps=max(5, case.steps // 2))
    if case.workload != "random-pairs":
        yield replace(case, workload="random-pairs")
    if case.workload == "random-pairs" and case.packets > 1:
        yield replace(case, packets=max(1, case.packets // 2))
        yield replace(case, packets=case.packets - 1)
    cur = math.prod(case.sides)
    for sides in _MESH_LADDER:
        # strictly smaller only: a non-monotone ladder would oscillate
        # between same-size meshes and burn the round budget
        if len(sides) == len(case.sides) and math.prod(sides) < cur:
            yield replace(case, sides=tuple(sides), torus=False)


def shrink_case(case: Case, *, real_pool: bool = False, max_rounds: int = 12):
    """Shrink ``case`` while it keeps failing; returns the final outcome.

    Returns ``None`` when the original case cannot be re-failed (flaky
    infrastructure — the caller then records the unshrunk outcome).
    """
    from repro.verify.runner import run_case

    def failing_outcome(c: Case):
        if not supported(c):
            return None
        try:
            outcome = run_case(c, real_pool=real_pool)
        except Exception:  # infrastructure error: not a reproduction
            return None
        return outcome if not outcome.ok else None

    best = failing_outcome(case)
    if best is None:
        return None
    for _ in range(max_rounds):
        improved = False
        for candidate in _candidates(best.case):
            outcome = failing_outcome(candidate)
            if outcome is not None:
                best = outcome
                improved = True
                break
        if not improved:
            break
    return best
