"""Reference oracles: slow, obviously-correct reimplementations of hot paths.

Every function here trades speed for transparency.  The batched engine,
the columnar metrics, the fault masking, and the sharded merge are all
re-derived from first principles — scalar Python loops, dict-based edge
lookups, numpy's *public* ``SeedSequence`` instead of the repo's
vectorised :func:`~repro.core.randomness.spawn_state` replica — so that a
bug in the optimised code and the same bug in the oracle would have to be
introduced twice, independently, to go unnoticed.

The canonical randomized-routing protocol being checked (see
:mod:`repro.routing.engine`):

* packet ``i`` (global index) draws all its uniforms from
  ``SeedSequence(entropy, spawn_key=(i,))`` — waypoint uniforms first
  (``S * d`` of them), ordering uniforms after;
* a uniform ``u`` picks node ``lo + floor(u * len)`` of its inner box;
* consecutive waypoints are joined by dimension-order subpaths whose
  ordering is the ``argsort`` of the order uniforms;
* with ``drop_cycles``, revisited nodes splice out the enclosed loop.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core.pathset import PathSet
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem, RoutingResult, Router

__all__ = [
    "oracle_uniforms",
    "oracle_metered_bits",
    "oracle_route",
    "oracle_edge_loads",
    "oracle_node_loads",
    "oracle_stretches",
    "oracle_dilation",
    "oracle_distance",
    "oracle_fault_mask",
    "oracle_alive_bfs",
    "oracle_remove_cycles",
    "oracle_semi_oblivious_path",
    "oracle_tree_path",
    "oracle_weighted_length",
    "oracle_weighted_distance",
    "result_hash",
    "replay_hash",
]


# ---------------------------------------------------------------------------
# Scalar coordinate helpers (independent of Mesh's stride arithmetic)
# ---------------------------------------------------------------------------

def _coords(mesh: Mesh, node: int) -> list[int]:
    """Flat id -> coordinate list by repeated divmod (C order)."""
    out = [0] * mesh.d
    rem = int(node)
    for i in range(mesh.d - 1, -1, -1):
        rem, out[i] = divmod(rem, mesh.sides[i])
    return out


def _flat(mesh: Mesh, coords: list[int]) -> int:
    """Coordinate list -> flat id by Horner's rule."""
    out = 0
    for c, side in zip(coords, mesh.sides):
        out = out * side + int(c)
    return out


def oracle_distance(mesh: Mesh, u: int, v: int) -> int:
    """Scalar L1 distance, shorter-way-around per dimension on the torus.

    On a :class:`~repro.mesh.graph.GeneralGraph` (no coordinate
    structure), the hop distance from a scalar breadth-first search over
    the edge map instead — still fully independent of the topology's own
    vectorised ``distance``.
    """
    from repro.mesh.graph import GeneralGraph

    if isinstance(mesh, GeneralGraph):
        return _oracle_bfs_hops(mesh, int(u))[int(v)]
    cu, cv = _coords(mesh, u), _coords(mesh, v)
    total = 0
    for a, b, side in zip(cu, cv, mesh.sides):
        diff = abs(a - b)
        if mesh.torus:
            diff = min(diff, side - diff)
        total += diff
    return total


def _edge_map(mesh: Mesh) -> dict[tuple[int, int], int]:
    """Undirected (min, max) endpoint pair -> dense edge id.

    Built scalarly from :meth:`Mesh.edge_id_to_endpoints`, the one-edge
    inverse — never from the vectorised ``edge_ids`` being verified.
    """
    cache = getattr(mesh, "_verify_edge_map", None)
    if cache is not None:
        return cache
    table = {}
    for e in range(mesh.num_edges):
        u, v = mesh.edge_id_to_endpoints(e)
        table[(min(u, v), max(u, v))] = e
    try:
        mesh._verify_edge_map = table
    except AttributeError:  # pragma: no cover - Mesh has no __slots__ today
        pass
    return table


def _path_edge_ids(mesh: Mesh, path: np.ndarray) -> list[int]:
    """Edge ids along a path via the scalar edge map (raises on non-links)."""
    table = _edge_map(mesh)
    out = []
    nodes = [int(x) for x in path]
    for a, b in zip(nodes[:-1], nodes[1:]):
        key = (min(a, b), max(a, b))
        if key not in table:
            raise ValueError(f"({a}, {b}) is not a mesh link")
        out.append(table[key])
    return out


# ---------------------------------------------------------------------------
# Competitor-router oracles (semi-oblivious + Räcke tree), all scalar
# ---------------------------------------------------------------------------

def _scalar_adjacency(mesh) -> dict[int, list[tuple[int, int]]]:
    """Node -> sorted ``(neighbor, edge id)`` list, from the edge map."""
    adj = getattr(mesh, "_verify_adj", None)
    if adj is None:
        adj = {v: [] for v in range(mesh.n)}
        for (a, b), e in _edge_map(mesh).items():
            adj[a].append((b, e))
            adj[b].append((a, e))
        for v in adj:
            adj[v].sort()
        mesh._verify_adj = adj
    return adj


def _oracle_bfs_hops(mesh, s: int) -> list[int]:
    """Hop distances from ``s`` by plain breadth-first search (cached)."""
    from collections import deque

    cache = getattr(mesh, "_verify_bfs", None)
    if cache is None:
        cache = {}
        mesh._verify_bfs = cache
    row = cache.get(s)
    if row is None:
        adj = _scalar_adjacency(mesh)
        row = [-1] * mesh.n
        row[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for v, _e in adj[u]:
                if row[v] < 0:
                    row[v] = row[u] + 1
                    queue.append(v)
        cache[s] = row
    return row


def _oracle_base_weights(mesh) -> list[float]:
    """Per-edge-id lengths: the graph's ``weights``, or all 1.0 on a mesh."""
    w = getattr(mesh, "weights", None)
    if w is None:
        return [1.0] * mesh.num_edges
    return [float(x) for x in w]


# the same splitmix64-style constants the router documents; all arithmetic
# here is plain-int with explicit 64-bit masking
_GOLD = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_M64 = (1 << 64) - 1


def _oracle_salt_uniform(e: int, salt: int) -> float:
    x = ((e + 1) * _GOLD) & _M64
    x ^= ((salt + 1) & _M64) * _MIX1 & _M64
    x ^= x >> 30
    x = (x * _MIX1) & _M64
    x ^= x >> 27
    x = (x * _MIX2) & _M64
    x ^= x >> 31
    return (x >> 11) * 2.0**-53


def _oracle_salt_weights(mesh, salt: int) -> list[float]:
    base = _oracle_base_weights(mesh)
    return [
        w * (1.0 + 0.25 * _oracle_salt_uniform(e, salt))
        for e, w in enumerate(base)
    ]


def _oracle_dijkstra_row(mesh, weights: list[float], s: int) -> list[float]:
    """Textbook heapq Dijkstra.  Each relaxation is the single float add
    ``dist[u] + w`` — identical operands to any other implementation on
    the same weights, so the final row is bitwise reproducible."""
    import heapq

    adj = _scalar_adjacency(mesh)
    dist = [float("inf")] * mesh.n
    dist[s] = 0.0
    heap = [(0.0, s)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, e in adj[u]:
            nd = d + weights[e]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def _oracle_wdist_row(mesh, salt: int | None, s: int) -> list[float]:
    """Cached Dijkstra row under the base (``salt=None``) or salted weights."""
    cache = getattr(mesh, "_verify_wdist", None)
    if cache is None:
        cache = {}
        mesh._verify_wdist = cache
    row = cache.get((salt, s))
    if row is None:
        w = (
            _oracle_base_weights(mesh)
            if salt is None
            else _oracle_salt_weights(mesh, salt)
        )
        row = _oracle_dijkstra_row(mesh, w, s)
        cache[(salt, s)] = row
    return row


def oracle_weighted_distance(mesh, s: int, t: int) -> float:
    """Scalar shortest-path distance under the edge-length metric."""
    return _oracle_wdist_row(mesh, None, int(s))[int(t)]


def oracle_weighted_length(mesh, path) -> float:
    """Total edge length of a path, summed front to back."""
    w = _oracle_base_weights(mesh)
    total = 0.0
    for e in _path_edge_ids(mesh, np.asarray(path, dtype=np.int64)):
        total += w[e]
    return total


def _oracle_min_id_walk(
    mesh, dist: list[float], weights: list[float], s: int, t: int
) -> list[int]:
    """The canonical min-id shortest path from a distance row: step to the
    smallest-id predecessor satisfying the exact relaxation equality."""
    adj = _scalar_adjacency(mesh)
    rev = [t]
    cur = t
    while cur != s:
        nxt = None
        for v, e in adj[cur]:  # sorted by id: first hit is the minimum
            if dist[v] < dist[cur] and dist[v] + weights[e] == dist[cur]:
                nxt = v
                break
        if nxt is None:
            raise RuntimeError(f"no shortest-path predecessor at node {cur}")
        rev.append(nxt)
        cur = nxt
    return rev[::-1]


def _oracle_potential(mesh) -> list[int]:
    """Scalar shortest-path load potential: for each source, the min-id
    predecessor tree plus bottom-up subtree counts (the vectorised twin
    lives in ``repro.routing.competitors``)."""
    pot = getattr(mesh, "_verify_potential", None)
    if pot is not None:
        return pot
    adj = _scalar_adjacency(mesh)
    w = _oracle_base_weights(mesh)
    pot = [0] * mesh.num_edges
    for s in range(mesh.n):
        dist = _oracle_wdist_row(mesh, None, s)
        parent: dict[int, tuple[int, int]] = {}
        for v in range(mesh.n):
            if v == s:
                continue
            for u, e in adj[v]:
                if dist[u] < dist[v] and dist[u] + w[e] == dist[v]:
                    parent[v] = (u, e)
                    break
        if len(parent) != mesh.n - 1:
            raise RuntimeError("incomplete shortest-path tree")
        count = [1] * mesh.n
        count[s] = 0
        for v in sorted(range(mesh.n), key=lambda x: (-dist[x], x)):
            if v != s:
                count[parent[v][0]] += count[v]
        for v in range(mesh.n):
            if v != s:
                pot[parent[v][1]] += count[v]
    mesh._verify_potential = pot
    return pot


def oracle_semi_oblivious_path(
    mesh, entropy: int, index: int, s: int, t: int, candidates: int = 4
) -> list[int]:
    """Independent replay of ``SemiObliviousRouter.select_path``.

    Salts come off the packet's public ``SeedSequence`` stream exactly as
    the router draws them (one vectorised ``integers(0, n, size=k)``
    call); everything downstream — perturbation hash, Dijkstra, min-id
    walk-back, potential scoring — is scalar reimplementation.
    """
    s, t = int(s), int(t)
    if s == t:
        return [s]
    ss = np.random.SeedSequence(entropy, spawn_key=(index,))
    salts = [
        int(x)
        for x in np.random.default_rng(ss).integers(
            0, mesh.n, size=candidates
        )
    ]
    pot = _oracle_potential(mesh)
    best = None
    best_path: list[int] | None = None
    for j, salt in enumerate(salts):
        weights = _oracle_salt_weights(mesh, salt)
        dist = _oracle_wdist_row(mesh, salt, s)
        path = _oracle_min_id_walk(mesh, dist, weights, s, t)
        loads = [pot[e] for e in _path_edge_ids(mesh, np.asarray(path))]
        score = (max(loads), sum(loads), j)
        if best is None or score < best:
            best, best_path = score, path
    return best_path


def oracle_tree_path(mesh, s: int, t: int) -> list[int]:
    """Independent replay of ``RackeTreeRouter.select_path`` from the
    *serialized* per-node state: deserialize both endpoints' node tables,
    derive the waypoint sequence from their center chains, and join the
    waypoints by scalar min-id shortest paths under the base weights."""
    from repro.routing.competitors import RackeNodeTable, node_table

    s, t = int(s), int(t)
    if s == t:
        return [s]
    cs = RackeNodeTable.from_bytes(node_table(mesh, s).to_bytes()).centers
    ct = RackeNodeTable.from_bytes(node_table(mesh, t).to_bytes()).centers
    pre = 0
    for a, b in zip(cs, ct):
        if a != b:
            break
        pre += 1
    raw = list(cs[pre - 1 :][::-1]) + list(ct[pre:])
    way = [raw[0]]
    for v in raw[1:]:
        if v != way[-1]:
            way.append(v)
    w = _oracle_base_weights(mesh)
    path = [s]
    for a, b in zip(way, way[1:]):
        dist = _oracle_wdist_row(mesh, None, a)
        path.extend(_oracle_min_id_walk(mesh, dist, w, a, b)[1:])
    return oracle_remove_cycles(path)


# ---------------------------------------------------------------------------
# The per-packet stream, straight from numpy's public SeedSequence
# ---------------------------------------------------------------------------

def oracle_uniforms(
    entropy: int, index: int, n: int, prefix: tuple[int, ...] = ()
) -> list[float]:
    """``n`` uniforms of global packet ``index``, via the public primitive.

    Definitionally what :func:`repro.core.randomness.packet_uniforms`
    promises: ``generate_state(2n)`` uint32 words, paired little-endian
    (low word first) into uint64, mapped through the standard 53-bit
    conversion.  No vectorised hash replica involved.
    """
    ss = np.random.SeedSequence(entropy, spawn_key=(*prefix, index))
    words = ss.generate_state(2 * n).tolist()
    out = []
    for k in range(n):
        w = words[2 * k] | (words[2 * k + 1] << 32)
        out.append((w >> 11) * 2.0**-53)
    return out


# ---------------------------------------------------------------------------
# Scalar path assembly
# ---------------------------------------------------------------------------

def oracle_remove_cycles(path: list[int]) -> list[int]:
    """Splice out loops, keeping the earliest visit of every node.

    Naive quadratic restatement of :func:`repro.mesh.paths.remove_cycles`:
    repeatedly find the first position whose node already appeared and cut
    everything between the two visits.
    """
    path = list(path)
    while True:
        seen: dict[int, int] = {}
        cut = None
        for j, node in enumerate(path):
            if node in seen:
                cut = (seen[node], j)
                break
            seen[node] = j
        if cut is None:
            return path
        first, again = cut
        path = path[: first + 1] + path[again + 1 :]


def _dim_order_walk(
    mesh: Mesh, a: int, b: int, order: list[int]
) -> list[int]:
    """Dimension-order walk from ``a`` to ``b``: unit steps per dimension.

    On the torus each dimension takes the shorter way around (positive on
    ties) when the side admits wrap links (``m_i >= 3``).
    """
    ca, cb = _coords(mesh, a), _coords(mesh, b)
    out = [a]
    cur = list(ca)
    for dim in order:
        side = mesh.sides[dim]
        delta = cb[dim] - cur[dim]
        wrap = mesh.torus and side >= 3
        if wrap:
            fwd = delta % side
            bwd = fwd - side
            delta = fwd if fwd <= -bwd else bwd
        step = 1 if delta > 0 else -1
        for _ in range(abs(delta)):
            cur[dim] = (cur[dim] + step) % side if wrap else cur[dim] + step
            out.append(_flat(mesh, cur))
    return out


def _batch_packet_index(spec, i: int) -> int:
    """Global stream index of batch row ``i`` (honours explicit indices)."""
    if getattr(spec, "packet_indices", None) is not None:
        return int(spec.packet_indices[i])
    return spec.packet_offset + i


def _oracle_batch_path(spec, entropy: int, i: int) -> list[int]:
    """Replay of the batch protocol for one packet (row ``i``)."""
    mesh = spec.mesh
    _, S, d = spec.box_lo.shape
    L = S + 1
    if spec.dim_order == "random":
        n_ord = L * d
    elif spec.dim_order == "shared":
        n_ord = d
    else:
        n_ord = 0
    u = oracle_uniforms(entropy, _batch_packet_index(spec, i), S * d + n_ord)
    # inner waypoints: lo + floor(u * len), one uniform per (stage, dim)
    pts = [[int(c) for c in spec.coords_s[i]]]
    for j in range(S):
        pts.append(
            [
                int(spec.box_lo[i, j, k])
                + int(u[j * d + k] * int(spec.box_len[i, j, k]))
                for k in range(d)
            ]
        )
    pts.append([int(c) for c in spec.coords_t[i]])
    # subpath dimension orders
    if spec.dim_order == "fixed":
        base = list(spec.fixed_order) if spec.fixed_order is not None else list(range(d))
        orders = [base] * L
    elif spec.dim_order == "shared":
        vals = u[S * d : S * d + d]
        shared = sorted(range(d), key=lambda k: (vals[k], k))
        orders = [shared] * L
    else:
        orders = [
            sorted(
                range(d),
                key=lambda k, j=j: (u[S * d + j * d + k], k),
            )
            for j in range(L)
        ]
    path = [_flat(mesh, pts[0])]
    for j in range(L):
        a = _flat(mesh, pts[j])
        b = _flat(mesh, pts[j + 1])
        path.extend(_dim_order_walk(mesh, a, b, orders[j])[1:])
    if spec.drop_cycles:
        path = oracle_remove_cycles(path)
    return path


def _oracle_batch_paths(spec, entropy: int) -> list[list[int]]:
    """Per-packet replay of the batch protocol, one packet at a time."""
    N = spec.box_lo.shape[0]
    return [_oracle_batch_path(spec, entropy, i) for i in range(N)]


def oracle_metered_bits(spec) -> list[int]:
    """Independent scalar recount of the planned fresh bits per batch row.

    Re-derives the information-theoretic price the budget layer meters
    (:func:`repro.core.budget.planned_fresh_bits`) from the batch spec
    alone: ``ceil(log2 side)`` per inner-box dimension (padded single-node
    slots price 0 since ``bit_length(0) == 0``) plus the dimension-order
    cost — ``sum_{i=2..d} ceil(log2 i)`` per consumed ordering.  A bug in
    the vectorised metering and the same bug here would have to be written
    twice to agree.
    """
    N, S, d = spec.box_lo.shape
    perm = sum((i - 1).bit_length() for i in range(2, d + 1))
    out = []
    for i in range(N):
        alive = any(
            int(spec.coords_s[i][k]) != int(spec.coords_t[i][k])
            for k in range(d)
        )
        if not alive:
            out.append(0)
            continue
        total = sum(
            (int(spec.box_len[i, j, k]) - 1).bit_length()
            for j in range(S)
            for k in range(d)
        )
        if spec.n_inner is not None:
            n_inner = int(spec.n_inner[i])
        else:
            n_inner = sum(
                1
                for j in range(S)
                if any(int(spec.box_len[i, j, k]) > 1 for k in range(d))
            )
        if spec.dim_order == "random":
            total += (n_inner + 1) * perm
        elif spec.dim_order == "shared":
            total += perm
        out.append(total)
    return out


# ---------------------------------------------------------------------------
# Fault masking and detours
# ---------------------------------------------------------------------------

def oracle_fault_mask(model, step: int = 0) -> np.ndarray:
    """Recompute a :class:`~repro.faults.model.FaultModel` mask scalarly.

    Consumes the generator in the documented order (explicit set, link
    uniforms, node uniforms / block corners, then one draw per edge per
    dynamic step) but applies the masking logic edge by edge in Python.
    """
    mesh = model.mesh
    E = mesh.num_edges
    endpoints = [mesh.edge_id_to_endpoints(e) for e in range(E)]
    dead = [False] * E
    if model._explicit is not None:
        for e in range(E):
            dead[e] = bool(model._explicit[e])
    rng = np.random.default_rng(model.seed)
    if model.mode == "static":
        if model.p > 0.0:
            u = rng.random(E)
            for e in range(E):
                if u[e] < model.p:
                    dead[e] = True
        if model.node_p > 0.0:
            un = rng.random(mesh.n)
            dead_nodes = {v for v in range(mesh.n) if un[v] < model.node_p}
            for e, (a, b) in enumerate(endpoints):
                if a in dead_nodes or b in dead_nodes:
                    dead[e] = True
    elif model.mode == "blocks":
        side = [min(model.block_side, m) for m in mesh.sides]
        for _ in range(model.num_blocks):
            lo = [int(rng.integers(0, m - s + 1)) for m, s in zip(mesh.sides, side)]
            hi = [a + s for a, s in zip(lo, side)]

            def inside(node: int) -> bool:
                return all(
                    lo[k] <= c < hi[k] for k, c in enumerate(_coords(mesh, node))
                )

            for e, (a, b) in enumerate(endpoints):
                if inside(a) or inside(b):
                    dead[e] = True
    elif model.mode == "dynamic":
        down_until = [model.repair_delay if dead[e] else 0 for e in range(E)]
        for t in range(1, step + 1):
            u = rng.random(E)
            # an edge repaired exactly at step t can fail again at step t
            for e in range(E):
                if down_until[e] <= t and u[e] < model.p:
                    down_until[e] = t + model.repair_delay
        dead = [down_until[e] > step for e in range(E)]
    return np.asarray([not d for d in dead], dtype=bool)


def oracle_alive_bfs(
    mesh: Mesh, s: int, t: int, alive: np.ndarray
) -> list[int] | None:
    """Naive BFS over alive edges, matching ``shortest_alive_path``'s ties.

    The fast BFS expands whole levels at once; within a level the first
    writer wins and the next frontier is the *sorted* set of new nodes.
    This loop reproduces that discipline with dicts and sorted lists.
    """
    if s == t:
        return [s]
    table = _edge_map(mesh)
    alive_set = {
        pair for pair, e in table.items() if bool(alive[e])
    }
    parent = {s: s}
    frontier = [s]
    while frontier:
        level: dict[int, int] = {}
        for u in frontier:
            for v in mesh.neighbors(u):
                if v in parent or v in level:
                    continue
                if (min(u, v), max(u, v)) in alive_set:
                    level[v] = u
        if not level:
            return None
        parent.update(level)
        if t in parent:
            break
        frontier = sorted(level)
    path = [t]
    while path[-1] != s:
        path.append(parent[path[-1]])
    return path[::-1]


def _oracle_fault_paths(
    router,
    problem: RoutingProblem,
    entropy: int,
    packet_offset: int,
    degraded=None,
) -> tuple[list[list[int]], list[int]]:
    """Replay of :class:`FaultAwareRouter`: resample, detour, or drop.

    The inner router's draws come from the same per-packet stream the
    fast path uses (selection *draws* are the shared contract); the mask,
    the edge checks, the BFS detour, and the drop bookkeeping are all
    re-derived here.  ``degraded`` optionally carries the budget ladder's
    ``(use_rec, use_dim, fallback)`` decisions: recycled packets select
    through the fallback router on the same stream, dimension-order
    packets are deterministic and skip the resample loop entirely.
    """
    mesh = problem.mesh
    alive = oracle_fault_mask(router.faults, router.at_step)
    use_rec, use_dim, fallback = degraded or (None, None, None)

    def path_ok(path: np.ndarray) -> bool:
        if len(path) < 2:
            return True
        return all(bool(alive[e]) for e in _path_edge_ids(mesh, path))

    paths, kept = [], []
    for i, (s, t) in enumerate(problem.pairs()):
        if use_dim is not None and use_dim[i]:
            # deterministic: redrawing cannot dodge a dead edge
            path = np.asarray(
                _dim_order_walk(mesh, int(s), int(t), list(range(mesh.d))),
                dtype=np.int64,
            )
        else:
            select = (
                fallback.select_path
                if use_rec is not None and use_rec[i]
                else router.inner.select_path
            )
            ss = np.random.SeedSequence(entropy, spawn_key=(packet_offset + i,))
            rng = np.random.default_rng(ss)
            path = select(mesh, int(s), int(t), rng)
            tries = 0
            while tries < router.max_resamples and not path_ok(path):
                path = select(mesh, int(s), int(t), rng)
                tries += 1
        if not path_ok(path):
            detour = oracle_alive_bfs(mesh, int(s), int(t), alive)
            if detour is None:
                continue
            path = detour
        paths.append([int(x) for x in path])
        kept.append(i)
    return paths, kept


# ---------------------------------------------------------------------------
# The routing oracle
# ---------------------------------------------------------------------------

def _oracle_degradation(router, problem: RoutingProblem, params):
    """The budget ladder's decisions, replayed from planned costs.

    Reuses the router's deterministic :meth:`planned_bits` (the shared
    contract, like ``select_path`` in the fault replay — the costs are
    pinned separately by :func:`oracle_metered_bits`) and re-derives the
    ok / recycled / dimension-order split.  Returns ``None`` when nothing
    degrades.
    """
    from repro.core.budget import degradation_plan

    if not params.enforcing:
        return None
    plan = router.planned_bits(problem)
    if plan is None:
        return None
    plan = np.asarray(plan)
    limit = params.limit_for(problem.mesh)
    if not bool((plan > limit).any()):
        return None
    fallback = router.budget_fallback_router()
    rec = (
        router.planned_bits(problem, mode="recycled")
        if fallback is not None
        else None
    )
    _, use_rec, use_dim = degradation_plan(plan, rec, limit)
    return use_rec, use_dim, fallback


def oracle_route(
    router: Router,
    problem: RoutingProblem,
    entropy: int,
    *,
    packet_offset: int = 0,
    budget=None,
) -> tuple[PathSet, np.ndarray | None]:
    """Route ``problem`` the slow way; returns ``(paths, kept_indices)``.

    * routers with a :meth:`~repro.routing.base.Router.batch_spec` replay
      the batch protocol packet by packet (independent waypoint building,
      ordering, walking, and cycle removal);
    * fault-aware routers with live faults replay the resample / detour /
      drop discipline against a scalarly recomputed mask;
    * everything else runs the per-packet loop with the documented
      ``SeedSequence(entropy, spawn_key=(i,))`` streams.

    ``budget`` (anything :meth:`BudgetParams.resolve` accepts; ``None``
    reads ``REPRO_BUDGET`` exactly like the fast path) replays the
    enforcement ladder: over-budget packets select through the recycled
    fallback on their own stream, or walk the deterministic zero-bit
    dimension-order path.

    ``entropy`` must be the resolved integer (a fast-path result's
    ``seed`` attribute), so seeded and unseeded runs replay alike.
    """
    from repro.core.budget import BudgetParams
    from repro.faults.router import FaultAwareRouter

    params = BudgetParams.resolve(budget)
    degraded = _oracle_degradation(router, problem, params)
    mesh = problem.mesh

    if isinstance(router, FaultAwareRouter) and not router.faults.is_trivial:
        paths, kept = _oracle_fault_paths(
            router, problem, entropy, packet_offset, degraded
        )
        kept_idx = None
        if len(kept) != problem.num_packets:
            kept_idx = np.asarray(kept, dtype=np.int64)
        ps = PathSet.from_paths(
            [np.asarray(p, dtype=np.int64) for p in paths]
        )
        return ps, kept_idx

    use_rec, use_dim, fallback = degraded or (None, None, None)
    spec = router.batch_spec(problem)
    if spec is not None:
        spec.packet_offset = packet_offset
        raw = []
        for i in range(problem.num_packets):
            if use_dim is not None and use_dim[i]:
                raw.append(
                    _dim_order_walk(
                        mesh,
                        int(problem.sources[i]),
                        int(problem.dests[i]),
                        list(range(mesh.d)),
                    )
                )
            elif use_rec is not None and use_rec[i]:
                ss = np.random.SeedSequence(
                    entropy, spawn_key=(packet_offset + i,)
                )
                path = fallback.select_path(
                    mesh,
                    int(problem.sources[i]),
                    int(problem.dests[i]),
                    np.random.default_rng(ss),
                )
                raw.append([int(x) for x in path])
            else:
                raw.append(_oracle_batch_path(spec, entropy, i))
        ps = PathSet.from_paths([np.asarray(p, dtype=np.int64) for p in raw])
        return ps, None

    # Per-packet loop reference: same generators as Router.route's legacy
    # branch, built from the public primitive.
    paths = []
    for i, (s, t) in enumerate(problem.pairs()):
        if use_dim is not None and use_dim[i]:
            paths.append(
                np.asarray(
                    _dim_order_walk(mesh, int(s), int(t), list(range(mesh.d))),
                    dtype=np.int64,
                )
            )
            continue
        ss = np.random.SeedSequence(entropy, spawn_key=(packet_offset + i,))
        rng = np.random.default_rng(ss)
        select = (
            fallback.select_path
            if use_rec is not None and use_rec[i]
            else router.select_path
        )
        paths.append(select(mesh, int(s), int(t), rng))
    return PathSet.from_paths(paths), None


# ---------------------------------------------------------------------------
# Metric oracles
# ---------------------------------------------------------------------------

def oracle_edge_loads(mesh: Mesh, paths) -> np.ndarray:
    """Per-edge path counts via a dict of endpoint pairs; multiplicity kept."""
    loads = [0] * mesh.num_edges
    for path in paths:
        for e in _path_edge_ids(mesh, np.asarray(path)):
            loads[e] += 1
    return np.asarray(loads, dtype=np.int64)


def oracle_node_loads(mesh: Mesh, paths) -> np.ndarray:
    """Per-node visiting-path counts; a path counts once per node."""
    counts = [0] * mesh.n
    for path in paths:
        for node in set(int(x) for x in np.asarray(path)):
            counts[node] += 1
    return np.asarray(counts, dtype=np.int64)


def oracle_stretches(
    mesh: Mesh, sources, dests, paths
) -> np.ndarray:
    """Per-packet |p| / dist(s, t); nan where s == t."""
    out = []
    for s, t, path in zip(sources, dests, paths):
        dist = oracle_distance(mesh, int(s), int(t))
        if dist == 0:
            out.append(float("nan"))
        else:
            out.append((len(np.asarray(path)) - 1) / dist)
    return np.asarray(out, dtype=np.float64)


def oracle_dilation(paths) -> int:
    """Max path length (edges), 0 for empty collections."""
    best = 0
    for path in paths:
        best = max(best, len(np.asarray(path)) - 1)
    return best


# ---------------------------------------------------------------------------
# Hashing
# ---------------------------------------------------------------------------

def result_hash(result: RoutingResult) -> str:
    """sha256 over the CSR bytes — the golden-matrix fingerprint."""
    ps = result.paths
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(ps.nodes).tobytes())
    h.update(np.ascontiguousarray(ps.offsets).tobytes())
    return h.hexdigest()


def replay_hash(
    router: Router,
    problem: RoutingProblem,
    entropy: int,
    *,
    workers: int = 1,
) -> str:
    """Hash of a fresh route under ``entropy`` — the io round-trip check."""
    return result_hash(router.route(problem, entropy, workers=workers))
