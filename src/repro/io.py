"""Persistence helpers: save/load routing results and export sweep rows.

Routing large instances and LP bounds can take minutes; experiments want to
route once and analyse many times.  Results serialise to a single ``.npz``
(paths are ragged, so they are stored as one concatenated array plus
per-path lengths — exactly the CSR layout of
:class:`~repro.core.pathset.PathSet`, so the arrays are written and read
verbatim, no re-flattening or re-splitting); sweep rows export to CSV for
external tooling.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.pathset import PathSet
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem, RoutingResult

__all__ = ["save_result", "load_result", "rows_to_csv", "rows_from_csv"]


def save_result(path: str | Path, result: RoutingResult) -> None:
    """Serialise a routing result (mesh, problem, paths) to ``.npz``."""
    problem = result.problem
    mesh = problem.mesh
    paths = PathSet.from_paths(result.paths)
    np.savez_compressed(
        Path(path),
        sides=np.asarray(mesh.sides, dtype=np.int64),
        torus=np.asarray([int(mesh.torus)]),
        sources=problem.sources,
        dests=problem.dests,
        problem_name=np.asarray([problem.name]),
        router_name=np.asarray([result.router_name]),
        # Seeds serialise as decimal strings: resolved entropy from an
        # unseeded run is a 128-bit integer, far past int64.
        seed=np.asarray(["-1" if result.seed is None else str(int(result.seed))]),
        path_data=paths.nodes,
        path_lengths=paths.nodes_per_path,
    )


def load_result(path: str | Path) -> RoutingResult:
    """Inverse of :func:`save_result`."""
    with np.load(Path(path), allow_pickle=False) as data:
        mesh = Mesh(tuple(int(s) for s in data["sides"]), torus=bool(data["torus"][0]))
        problem = RoutingProblem(
            mesh,
            data["sources"],
            data["dests"],
            str(data["problem_name"][0]),
        )
        paths = PathSet.from_lengths(data["path_data"], data["path_lengths"])
        # str() covers both the string format and legacy int64 files.
        seed = int(str(data["seed"][0]))
        return RoutingResult(
            problem,
            paths,
            str(data["router_name"][0]),
            None if seed == -1 else seed,
        )


def rows_to_csv(path: str | Path, rows: Sequence[Mapping]) -> None:
    """Write evaluation rows (dicts) as CSV; columns from the first row."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to write")
    columns = list(rows[0].keys())
    with open(Path(path), "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)


def rows_from_csv(path: str | Path) -> list[dict]:
    """Read rows back; numeric-looking fields are converted."""
    out = []
    with open(Path(path), newline="") as fh:
        for row in csv.DictReader(fh):
            parsed: dict = {}
            for key, value in row.items():
                try:
                    parsed[key] = int(value)
                except (TypeError, ValueError):
                    try:
                        parsed[key] = float(value)
                    except (TypeError, ValueError):
                        parsed[key] = value
            out.append(parsed)
    return out
