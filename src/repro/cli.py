"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``route``       route one workload with one router; print metrics (optionally
                an edge-load heatmap and a sample path drawing in 2-D).
``compare``     route one workload with several routers; print the table.
``decompose``   print the decomposition inventory (and 2-D level renders).
``simulate``    route, then schedule synchronously; print makespan vs C+D.
``online``      dynamic-arrival simulation; print the latency-vs-load curve.
``faults``      fault-injection sweep: delivery ratio and degradation under
                static / block / dynamic link failures.

Examples
--------
::

    python -m repro route --mesh 16x16 --workload transpose --heatmap
    python -m repro compare --mesh 32x32 --workload nearest-neighbor \
        --routers hierarchical,access-tree,valiant --seeds 0,1,2
    python -m repro decompose --mesh 8x8 --render-level 1
    python -m repro online --mesh 16x16 --rates 0.01,0.05,0.1
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.experiments import aggregate, sweep
from repro.analysis.reporting import format_table
from repro.analysis.visualize import draw_path, edge_load_heatmap
from repro.core.decomposition import Decomposition
from repro.mesh.mesh import Mesh
from repro.routing.registry import available_routers, make_router

__all__ = ["main", "parse_mesh", "build_workload"]

WORKLOAD_CHOICES = (
    "transpose",
    "bit-reversal",
    "bit-complement",
    "tornado",
    "random-permutation",
    "random-pairs",
    "all-to-one",
    "nearest-neighbor",
    "block-exchange",
)


def parse_mesh(spec: str, torus: bool = False) -> Mesh:
    """Parse ``"16x16"``, ``"8x8x8"`` or ``"16^2"`` into a mesh."""
    spec = spec.strip().lower()
    try:
        if "^" in spec:
            side, d = spec.split("^")
            sides = (int(side),) * int(d)
        else:
            sides = tuple(int(p) for p in spec.split("x"))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad mesh spec {spec!r}") from exc
    return Mesh(sides, torus=torus)


def build_workload(name: str, mesh: Mesh, seed: int):
    """Instantiate a workload by CLI name."""
    from repro import workloads as wl

    if name == "transpose":
        return wl.transpose(mesh)
    if name == "bit-reversal":
        return wl.bit_reversal(mesh)
    if name == "bit-complement":
        return wl.bit_complement(mesh)
    if name == "tornado":
        return wl.tornado(mesh)
    if name == "random-permutation":
        return wl.random_permutation(mesh, seed=seed)
    if name == "random-pairs":
        return wl.random_pairs(mesh, mesh.n, seed=seed)
    if name == "all-to-one":
        return wl.all_to_one(mesh)
    if name == "nearest-neighbor":
        return wl.nearest_neighbor(mesh, seed=seed)
    if name == "block-exchange":
        return wl.block_exchange(mesh, max(mesh.sides[0] // 4, 1))
    raise argparse.ArgumentTypeError(f"unknown workload {name!r}")


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mesh", default="16x16", help="e.g. 16x16, 8x8x8, 16^2")
    p.add_argument("--torus", action="store_true", help="wrap-around links")
    p.add_argument("--workload", default="transpose", choices=WORKLOAD_CHOICES)
    p.add_argument("--seed", type=int, default=0)


def _cmd_route(args) -> int:
    from repro import kernels

    if args.kernels != "auto":
        kernels.set_backend(args.kernels)
    mesh = parse_mesh(args.mesh, args.torus)
    problem = build_workload(args.workload, mesh, args.seed)
    if args.via is not None:
        return _route_via_service(args, mesh, problem)
    router = make_router(args.router)
    profiler = None
    if args.profile or args.trace:
        from repro.obs import Profiler

        profiler = Profiler(trace=args.trace)
        router.profiler = profiler
    budget = None
    if args.budget_mode is not None or args.budget_bits is not None:
        from repro.core.budget import BudgetParams

        budget = BudgetParams(
            mode=args.budget_mode or "enforce", bits=args.budget_bits
        )
    result = router.route(
        problem, seed=args.seed, workers=args.workers, budget=budget
    )
    from repro.metrics.bounds import congestion_lower_bound

    bound = congestion_lower_bound(mesh, problem.sources, problem.dests, use_lp=False)
    print(problem.describe())
    print(result.summary())
    print(f"C* lower bound = {bound:.2f}; C / bound = {result.congestion / max(bound, 1e-9):.2f}")
    if result.budget is not None:
        b = result.budget
        line = (
            f"budget: mode={b.mode} metered={b.metered}/{b.packets} "
            f"bits/packet={b.bits_per_packet:.1f} max={b.max_bits}"
        )
        if b.limit is not None:
            line += f" limit={b.limit}"
        if b.fallbacks:
            line += (
                f" fallbacks={b.fallbacks_recycled} recycled"
                f" + {b.fallbacks_dimorder} dim-order"
            )
        print(line)
    if hasattr(router, "state_bits_per_node"):
        print(f"compact state: {router.state_bits_per_node(mesh)} bits/node")
    if profiler is not None:
        from repro import cache

        print()
        print(profiler.format())
        backend = profiler.annotations.get("kernels.backend", kernels.backend())
        print(f"kernels: backend={backend} "
              f"(available: {', '.join(kernels.available_backends())})")
        st = cache.stats()
        print(f"cache: hits={st.hits} misses={st.misses} entries={st.entries} "
              f"hit_rate={st.hit_rate:.0%}")
        ws = cache.worker_stats()
        if ws.hits or ws.misses:
            print(f"worker cache (rolled up): hits={ws.hits} misses={ws.misses} "
                  f"entries={ws.entries}")
        if args.trace:
            profiler.write_summary()
            profiler.close()
            print(f"trace written to {args.trace}")
    if args.heatmap:
        if mesh.d != 2:
            print("(heatmap skipped: needs a 2-D mesh)", file=sys.stderr)
        else:
            print()
            print(edge_load_heatmap(mesh, result.edge_loads))
    if args.show_path is not None:
        i = args.show_path
        if not (0 <= i < problem.num_packets):
            print(f"(no packet {i})", file=sys.stderr)
        elif mesh.d != 2:
            print("(path drawing needs a 2-D mesh)", file=sys.stderr)
        else:
            print()
            print(draw_path(mesh, result.paths[i]))
    return 0


def _route_via_service(args, mesh: Mesh, problem) -> int:
    """``repro route --via SOCKET``: route through a live daemon."""
    if args.budget_mode is not None or args.budget_bits is not None:
        print("--via does not carry budget options", file=sys.stderr)
        return 2
    from repro.service.client import ServiceClient

    with ServiceClient(args.via) as client:
        result = client.route(problem, router=args.router, seed=args.seed)
    print(problem.describe())
    print(result.summary())
    print(f"(routed via service at {args.via})")
    return 0


def _cmd_serve(args) -> int:
    """``repro serve``: run the routing daemon until stopped."""
    import signal

    from repro import kernels
    from repro.service.server import RoutingService

    if args.kernels != "auto":
        kernels.set_backend(args.kernels)
    prewarm = tuple(s for s in (args.prewarm or "").split(",") if s)
    service = RoutingService(
        args.socket,
        workers=args.workers,
        context=args.context,
        max_batch=args.max_batch,
        flush_ms=args.flush_ms,
        shard_threshold=args.shard_threshold,
        prewarm=prewarm,
    )
    signal.signal(signal.SIGTERM, lambda *_: service.stop())
    service.start()
    print(
        f"repro service: {service.pool.workers} warm worker(s) on "
        f"{args.socket} (pid {__import__('os').getpid()})",
        flush=True,
    )
    service.serve_forever()
    return 0


def _cmd_compare(args) -> int:
    mesh = parse_mesh(args.mesh, args.torus)
    problem = build_workload(args.workload, mesh, args.seed)
    routers = [make_router(name) for name in args.routers.split(",")]
    seeds = [int(s) for s in args.seeds.split(",")]
    rows = sweep(routers, [problem], seeds=seeds)
    agg = aggregate(
        rows, group_by=["router", "workload"], fields=["C", "D", "stretch", "C_ratio"]
    )
    print(format_table(agg, title=f"{problem.name} on {mesh!r} (mean over {len(seeds)} seeds)"))
    return 0


def _cmd_decompose(args) -> int:
    mesh = parse_mesh(args.mesh, args.torus)
    dec = Decomposition(mesh, scheme=args.scheme)
    print(dec.summary())
    if args.render_level is not None:
        if mesh.d != 2:
            print("(render skipped: needs a 2-D mesh)", file=sys.stderr)
        else:
            for j in range(1, dec.num_types(args.render_level) + 1):
                print(f"\nlevel {args.render_level}, type {j}:")
                print(dec.render_level_2d(args.render_level, j))
    return 0


def _cmd_simulate(args) -> int:
    mesh = parse_mesh(args.mesh, args.torus)
    problem = build_workload(args.workload, mesh, args.seed)
    router = make_router(args.router)
    result = router.route(problem, seed=args.seed)
    from repro.simulation.scheduler import simulate

    sim = simulate(mesh, result, policy=args.policy, seed=args.seed)
    print(problem.describe())
    print(sim.summary())
    return 0


def _cmd_online(args) -> int:
    mesh = parse_mesh(args.mesh, args.torus)
    router = make_router(args.router)
    from repro.simulation.online import latency_vs_load

    rates = [float(r) for r in args.rates.split(",")]
    rows = latency_vs_load(router, mesh, rates, steps=args.steps, seed=args.seed)
    print(format_table(rows, title=f"online: {router.name} on {mesh!r}"))
    return 0


def _build_traffic(args, mesh, rate: float):
    from repro.workloads import traffic as tr

    if args.traffic == "adversarial":
        return tr.adversarial_replay(
            mesh, args.adv_router, l=args.adv_l, rate=rate
        )
    kwargs: dict = {}
    if args.traffic in ("poisson", "hotspot", "shifting-hotspot"):
        kwargs["rate"] = rate
    elif args.traffic == "mmpp":
        kwargs["rate_on"] = rate
    elif args.traffic == "diurnal":
        kwargs["peak_rate"] = rate
    elif args.traffic == "flash-crowd":
        kwargs["spike_rate"] = rate
    return tr.make_traffic(args.traffic, **kwargs)


def _build_admission(args):
    if not (args.admit_rate or args.max_backlog or args.max_wait):
        return None
    from repro.simulation.admission import AdmissionParams

    return AdmissionParams(
        rate_limit=args.admit_rate,
        burst=args.admit_burst,
        max_backlog=args.max_backlog,
        max_wait=args.max_wait,
    )


def _cmd_traffic(args) -> int:
    mesh = parse_mesh(args.mesh, args.torus)
    router = make_router(args.router)
    from repro.simulation.slo import SLOParams, capacity_curve

    slo = SLOParams(deadline=args.deadline)
    admission = _build_admission(args)
    faults = None
    if args.fault_mode != "none":
        from repro.faults import FaultModel

        if args.fault_mode == "static":
            faults = FaultModel.static(mesh, p=args.fault_p, seed=args.fault_seed)
        else:
            faults = FaultModel.dynamic(mesh, p=args.fault_p, seed=args.fault_seed)
    rates = [float(r) for r in args.rates.split(",")]
    rows = capacity_curve(
        router,
        mesh,
        rates,
        steps=args.steps,
        seed=args.seed,
        traffic_factory=lambda rate: _build_traffic(args, mesh, rate),
        slo=slo,
        admission=admission,
        faults=faults,
        workers=args.workers,
    )
    title = (
        f"traffic: {args.traffic} x {router.name} on {mesh!r}"
        + (" +admission" if admission is not None else "")
        + (f" +faults:{args.fault_mode}" if faults is not None else "")
    )
    print(format_table(rows, title=title))
    return 0


def _build_faults(args, mesh):
    from repro.faults import FaultModel

    if args.mode == "static":
        return FaultModel.static(mesh, p=args.p, node_p=args.node_p, seed=args.fault_seed)
    if args.mode == "blocks":
        return FaultModel.blocks(
            mesh, num_blocks=args.blocks, block_side=args.block_side, seed=args.fault_seed
        )
    return FaultModel.dynamic(
        mesh, p=args.p, repair_delay=args.repair_delay, seed=args.fault_seed
    )


def _cmd_faults(args) -> int:
    mesh = parse_mesh(args.mesh, args.torus)
    router = make_router(args.router)
    faults = _build_faults(args, mesh)
    from repro.simulation.online import simulate_online

    print(faults.describe())
    baseline = simulate_online(
        make_router(args.router), mesh, rate=args.rate, steps=args.steps, seed=args.seed
    )
    stats = simulate_online(
        router, mesh, rate=args.rate, steps=args.steps, seed=args.seed, faults=faults
    )
    rows = [
        {
            "run": name,
            "injected": s.injected,
            "delivered": s.delivered,
            "delivery_ratio": round(s.delivery_ratio, 4),
            "mean_latency": round(s.mean_latency, 2),
            "p95_latency": round(s.p95_latency, 2),
            "resamples": s.resamples,
            "detours": s.detours,
            "reroutes": s.reroutes,
            "blocked": s.blocked_steps,
            "dropped": s.dropped,
        }
        for name, s in (("fault-free", baseline), (args.mode, stats))
    ]
    print(format_table(rows, title=f"faults: {router.name} on {mesh!r}"))
    if baseline.mean_latency:
        tax = stats.mean_latency / baseline.mean_latency - 1.0
        print(f"latency tax: {tax:+.1%}; delivery ratio {stats.delivery_ratio:.1%}")
    return 0


def _cmd_certify(args) -> int:
    mesh = parse_mesh(args.mesh, args.torus)
    router = make_router(args.router)
    from repro.analysis.certificates import certify_stretch

    if mesh.n * (mesh.n - 1) <= args.exhaustive_limit:
        cert = certify_stretch(router, mesh, exhaustive_limit=args.exhaustive_limit)
        mode = "exhaustive"
    else:
        rng = np.random.default_rng(args.seed)
        pairs = [
            (int(a), int(b))
            for a, b in rng.integers(mesh.n, size=(args.samples, 2))
            if a != b
        ]
        cert = certify_stretch(router, mesh, pairs=pairs)
        mode = f"sampled ({len(pairs)} pairs)"
    s, t = cert["witness"]
    cs = tuple(int(x) for x in mesh.flat_to_coords(s))
    ct = tuple(int(x) for x in mesh.flat_to_coords(t))
    print(f"{router.name} on {mesh!r} [{mode}]:")
    print(f"  certified worst-case stretch over ALL random choices: "
          f"{cert['worst_stretch']:.2f}")
    print(f"  witness pair: {cs} -> {ct}")
    bound = 64 if mesh.d <= 2 else None
    if bound is not None:
        verdict = "HOLDS" if cert["worst_stretch"] <= bound else "VIOLATED"
        print(f"  Theorem 3.4 bound ({bound}): {verdict}")
    return 0


def _cmd_bits(args) -> int:
    mesh = parse_mesh(args.mesh, args.torus)
    from repro.core.path_selection import HierarchicalRouter
    from repro.workloads.generators import random_pairs

    problem = random_pairs(mesh, args.packets, seed=args.seed)
    rows = []
    for mode in ("fresh", "recycled"):
        router = HierarchicalRouter(bit_mode=mode)
        router.route(problem, seed=args.seed)
        bits = np.asarray(router.bits_log, dtype=np.float64)
        rows.append(
            {
                "mode": mode,
                "packets": problem.num_packets,
                "mean_bits": float(bits.mean()),
                "max_bits": int(bits.max()),
            }
        )
    from repro.analysis.theory import random_bits_upper_curve

    print(format_table(rows, title=f"random bits per packet on {mesh!r}"))
    print(f"Lemma 5.4 shape d*log2(D*d) = "
          f"{random_bits_upper_curve(mesh.d, problem.max_distance):.1f}")
    return 0


def _cmd_verify(args) -> int:
    import json as _json

    from repro.obs import Profiler
    from repro.verify.cases import generate_cases
    from repro.verify.runner import check_corpus, load_corpus_case, run_case, run_suite

    profiler = Profiler()

    def log(msg: str) -> None:
        if not args.json:
            print(msg, file=sys.stderr)

    if args.replay is not None:
        case = load_corpus_case(args.replay)
        outcome = run_case(case, profiler, real_pool=args.deep)
        payload = outcome.to_dict()
        if args.json:
            print(_json.dumps(payload, indent=2, sort_keys=True))
        else:
            status = "OK" if outcome.ok else "FAIL"
            print(f"{status} {case.label()} (case {case.case_id})")
            for msg in outcome.mismatches:
                print(f"  mismatch: {msg}")
            for name, msgs in outcome.violations.items():
                for msg in msgs:
                    print(f"  {name}: {msg}")
            for msg in outcome.certificate:
                print(f"  certificate: {msg}")
        return 0 if outcome.ok else 1

    if args.check_corpus:
        total, open_cases = check_corpus(args.corpus)
        if open_cases:
            print(
                f"replay corpus has {len(open_cases)} unresolved case(s): "
                + ", ".join(open_cases)
            )
            return 1
        print(f"replay corpus clean: {total} case(s), all resolved")
        return 0

    count = args.cases if args.cases is not None else (1000 if args.deep else 220)
    cases = generate_cases(count, seed=args.seed)
    report = run_suite(
        cases,
        mode="deep" if args.deep else "smoke",
        profiler=profiler,
        real_pool=args.deep,
        corpus_dir=args.corpus if args.record else None,
        log=log,
    )
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        d = report.to_dict()
        print(
            f"verify [{d['mode']}]: {d['cases']} cases, "
            f"{d['failures']} failures ({d['mismatches']} mismatches, "
            f"{d['violations']} invariant violations, "
            f"{d['certificate_failures']} certificate failures), "
            f"{d['invariants_checked']} invariant checks in {d['duration_s']:.1f}s"
        )
        for fail in report.failing:
            print(f"  FAIL {fail['label']} -> corpus case {fail['case_id']}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Oblivious path selection on the mesh (Busch et al., IPPS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("route", help="route one workload, print metrics")
    _add_common(p)
    p.add_argument("--router", default="hierarchical", choices=available_routers())
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="shard routing over N processes (0 = one per CPU); "
                        "the result is byte-identical for every N")
    p.add_argument("--heatmap", action="store_true", help="ASCII edge-load heatmap (2-D)")
    p.add_argument("--show-path", type=int, default=None, metavar="I",
                   help="draw packet I's path (2-D)")
    p.add_argument("--profile", action="store_true",
                   help="print per-stage timings, counters and cache stats")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a JSONL event trace (implies profiling)")
    p.add_argument("--kernels", default="auto", choices=("auto", "numba", "numpy"),
                   help="hot-loop kernel backend (default: auto; results are "
                        "byte-identical either way)")
    p.add_argument("--budget-mode", default=None,
                   choices=("off", "measure", "enforce"),
                   help="randomness budget: measure meters planned bits, "
                        "enforce degrades over-budget packets "
                        "(default: the REPRO_BUDGET environment variable)")
    p.add_argument("--budget-bits", type=int, default=None, metavar="N",
                   help="per-packet bit cap (implies --budget-mode enforce; "
                        "default cap: a structural ceiling no fresh "
                        "selection exceeds)")
    p.add_argument("--via", default=None, metavar="SOCKET",
                   help="route through a running 'repro serve' daemon at "
                        "this unix socket (byte-identical to local routing)")
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser(
        "serve", help="persistent routing daemon with a warm worker pool"
    )
    p.add_argument("--socket", default="/tmp/repro.sock", metavar="PATH",
                   help="unix socket to listen on (default: /tmp/repro.sock)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="warm worker processes (0 = one per CPU)")
    p.add_argument("--context", default="auto",
                   choices=("auto", "fork", "spawn", "serial"),
                   help="worker start method (default: auto)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="micro-batch size cap (default: 16)")
    p.add_argument("--flush-ms", type=float, default=2.0,
                   help="micro-batch flush deadline in ms (default: 2)")
    p.add_argument("--shard-threshold", type=int, default=1 << 16,
                   help="requests with at least this many packets shard "
                        "across all warm workers instead of batching")
    p.add_argument("--prewarm", default="", metavar="MESHES",
                   help="comma-separated mesh specs to warm at boot, e.g. "
                        "'16x16,8x8x8:torus'")
    p.add_argument("--kernels", default="auto", choices=("auto", "numba", "numpy"))
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("compare", help="compare routers on one workload")
    _add_common(p)
    p.add_argument("--routers", default="hierarchical,access-tree,dim-order,valiant")
    p.add_argument("--seeds", default="0,1,2")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("decompose", help="print the decomposition inventory")
    p.add_argument("--mesh", default="8x8")
    p.add_argument("--torus", action="store_true")
    p.add_argument("--scheme", default="auto", choices=("auto", "paper2d", "multishift"))
    p.add_argument("--render-level", type=int, default=None)
    p.set_defaults(func=_cmd_decompose)

    p = sub.add_parser("simulate", help="route then schedule; makespan vs C+D")
    _add_common(p)
    p.add_argument("--router", default="hierarchical", choices=available_routers())
    p.add_argument("--policy", default="farthest-first",
                   choices=("farthest-first", "fifo", "random"))
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "certify", help="worst-case stretch certificate over all random choices"
    )
    p.add_argument("--mesh", default="8x8")
    p.add_argument("--torus", action="store_true")
    p.add_argument("--router", default="hierarchical", choices=available_routers())
    p.add_argument("--exhaustive-limit", type=int, default=4096)
    p.add_argument("--samples", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_certify)

    p = sub.add_parser("bits", help="measure random bits per packet (Lemma 5.4)")
    p.add_argument("--mesh", default="16x16")
    p.add_argument("--torus", action="store_true")
    p.add_argument("--packets", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_bits)

    p = sub.add_parser("faults", help="fault injection: delivery under failures")
    p.add_argument("--mesh", default="16x16")
    p.add_argument("--torus", action="store_true")
    p.add_argument("--router", default="hierarchical", choices=available_routers())
    p.add_argument("--mode", default="static", choices=("static", "blocks", "dynamic"))
    p.add_argument("--p", type=float, default=0.01,
                   help="link failure probability (static: once; dynamic: per step)")
    p.add_argument("--node-p", type=float, default=0.0,
                   help="node failure probability (static only)")
    p.add_argument("--blocks", type=int, default=2, help="failed blocks (blocks mode)")
    p.add_argument("--block-side", type=int, default=2)
    p.add_argument("--repair-delay", type=int, default=8, help="dynamic repair time")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--rate", type=float, default=0.05)
    p.add_argument("--steps", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "verify",
        help="differential conformance gate: fast paths vs reference oracles",
    )
    tier = p.add_mutually_exclusive_group()
    tier.add_argument("--smoke", action="store_true",
                      help="the CI tier: 220 cases, in-process shard checks (default)")
    tier.add_argument("--deep", action="store_true",
                      help="the nightly tier: more cases, real worker pools")
    p.add_argument("--cases", type=int, default=None, metavar="N",
                   help="override the case count of the selected tier")
    p.add_argument("--seed", type=int, default=0, help="case-generator seed")
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.add_argument("--replay", default=None, metavar="PATH",
                   help="re-run one corpus case file and report, nothing else")
    p.add_argument("--corpus", default="tests/corpus", metavar="DIR",
                   help="replay-corpus directory (default: tests/corpus)")
    p.add_argument("--record", action="store_true",
                   help="persist shrunk failing cases into the corpus")
    p.add_argument("--check-corpus", action="store_true",
                   help="fail if the corpus holds unresolved cases (CI gate)")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("online", help="dynamic arrivals: latency vs load")
    p.add_argument("--mesh", default="16x16")
    p.add_argument("--torus", action="store_true")
    p.add_argument("--router", default="hierarchical", choices=available_routers())
    p.add_argument("--rates", default="0.01,0.05,0.1")
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_online)

    p = sub.add_parser(
        "traffic",
        help="trace-driven load: capacity curves, SLO percentiles, admission",
    )
    p.add_argument("--mesh", default="16x16")
    p.add_argument("--torus", action="store_true")
    p.add_argument("--router", default="hierarchical", choices=available_routers())
    from repro.workloads.traffic import TRAFFIC as _TRAFFIC

    p.add_argument(
        "--traffic",
        default="poisson",
        choices=sorted(_TRAFFIC) + ["adversarial"],
        help="arrival process (docs/WORKLOADS.md); 'adversarial' replays Pi_A",
    )
    p.add_argument(
        "--rates",
        default="0.05,0.1,0.2",
        help="offered per-node loads, one capacity-curve row each",
    )
    p.add_argument("--steps", type=int, default=120)
    p.add_argument("--seed", default=0, help="int or decimal-string entropy")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--deadline", type=int, default=None, help="latency SLO (steps)")
    p.add_argument("--admit-rate", type=float, default=None,
                   help="token-bucket admissions/step (enables admission)")
    p.add_argument("--admit-burst", type=float, default=None)
    p.add_argument("--max-backlog", type=int, default=None,
                   help="in-network packet ceiling (backpressure)")
    p.add_argument("--max-wait", type=int, default=None,
                   help="shed packets queued longer than this")
    p.add_argument("--fault-mode", default="none", choices=["none", "static", "dynamic"])
    p.add_argument("--fault-p", type=float, default=0.01)
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--adv-router", default="dim-order", choices=available_routers(),
                   help="router the adversarial replay is mined against")
    p.add_argument("--adv-l", type=int, default=4)
    p.set_defaults(func=_cmd_traffic)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
