"""Greedy synchronous store-and-forward scheduling of fixed paths.

Packets follow their pre-selected paths; per time step every edge carries
at most one packet (the paper's model), and contention is resolved by a
priority policy:

* ``"farthest-first"`` — most remaining hops wins (the classic policy
  behind near-``O(C + D)`` schedules on meshes);
* ``"fifo"`` — lowest packet index wins (stable, injection-order);
* ``"random"`` — a fresh random winner per edge per step;
* ``"random-delay"`` — every packet waits a uniform initial delay in
  ``[0, C]`` before moving, then FIFO — the classic random-delays trick
  behind the ``O(C + D)``-style schedules the paper's ``C + D`` metric
  anticipates (delays decorrelate packets sharing edges).

The whole step is vectorised: paths are viewed as a
:class:`~repro.core.pathset.PathSet` whose flat edge-id stream is computed
once up front; each step gathers every active packet's next edge with one
fancy index, then requests are (edge, priority) pairs sorted with
``np.lexsort`` and winners are the first request per edge.

The makespan of *any* schedule is at least ``max(C, D) >= (C + D) / 2``,
so ``makespan / (C + D)`` in ``[0.5, ~1+]`` certifies the selected paths
are routable in near-optimal time.

Fault injection
---------------
Pass ``faults=`` a :class:`~repro.faults.model.FaultModel` and packets
whose next edge is dead *wait* with exponential backoff, then *reroute*
from their current node over the alive subgraph after ``max_retries``
blocked attempts; packets whose destination became unreachable under a
non-repairing model are dropped (``delivery_times[i] == -1``).  A trivial
model (``p = 0``) is a strict no-op: the fault-free code path runs and
results are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.pathset import PathSet
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingResult

__all__ = ["simulate", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of a synchronous schedule.

    Fault-tolerance accounting (all zero on a fault-free run):
    ``delivered`` counts packets that reached their destination,
    ``retries_total`` the packet-steps spent blocked on a dead edge,
    ``rerouted`` the packets that switched to an alive-subgraph detour,
    and ``dropped`` the packets abandoned as unreachable (their
    ``delivery_times`` entry is ``-1``).
    """

    makespan: int
    delivery_times: np.ndarray  # step at which each packet arrived (0 = started there)
    congestion: int
    dilation: int
    policy: str
    num_packets: int = 0
    delivered: int = 0
    retries_total: int = 0
    rerouted: int = 0
    dropped: int = 0
    #: admission-control accounting (zero with ``admission=None``)
    admission_dropped: int = 0
    admission_delayed_steps: int = 0

    @property
    def cd_bound(self) -> int:
        """``C + D``: the paper's path-quality measure."""
        return self.congestion + self.dilation

    @property
    def efficiency(self) -> float:
        """``makespan / (C + D)`` — at least 0.5 for any schedule."""
        return self.makespan / self.cd_bound if self.cd_bound else 0.0

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction (1.0 when nothing was injected)."""
        return self.delivered / self.num_packets if self.num_packets else 1.0

    def summary(self) -> str:
        base = (
            f"makespan={self.makespan} vs C+D={self.cd_bound} "
            f"(C={self.congestion}, D={self.dilation}, policy={self.policy})"
        )
        if self.delivered < self.num_packets or self.retries_total:
            base += (
                f"; delivered {self.delivered}/{self.num_packets} "
                f"(retries={self.retries_total}, rerouted={self.rerouted}, "
                f"dropped={self.dropped})"
            )
        return base


def simulate(
    mesh: Mesh,
    paths: Sequence[np.ndarray] | RoutingResult,
    *,
    policy: str = "farthest-first",
    seed: int | None = None,
    max_steps: int | None = None,
    faults=None,
    max_retries: int = 3,
    backoff_cap: int = 5,
    profiler=None,
    admission=None,
) -> SimulationResult:
    """Schedule ``paths`` synchronously and measure the makespan.

    ``paths`` may be a raw path list or a :class:`RoutingResult`.  Raises
    ``RuntimeError`` if delivery takes more than ``max_steps`` (default
    ``8 * (C + D) + 64``, far above anything a greedy schedule needs).

    With a non-trivial ``faults`` model the run degrades instead of
    raising: blocked packets back off exponentially (capped at
    ``2 ** backoff_cap`` steps), reroute after ``max_retries`` blocked
    attempts, drop when unreachable, and hitting ``max_steps`` ends the
    run with the stragglers marked undelivered rather than raising.

    With ``admission=`` an :class:`~repro.simulation.admission.
    AdmissionParams`, packets enter the network from a FIFO ingress
    queue under token-bucket + backpressure control instead of all at
    step 0; ``delivery_times`` keep counting from step 0, so queueing
    shows up in the makespan, and stragglers at ``max_steps`` are marked
    undelivered rather than raising.  ``admission=None`` runs the
    byte-identical pre-admission code path.
    """
    pathset = PathSet.from_paths(
        paths.paths if isinstance(paths, RoutingResult) else paths
    )
    if policy not in ("farthest-first", "fifo", "random", "random-delay"):
        raise ValueError(f"unknown policy {policy!r}")
    faulty = faults is not None and not faults.is_trivial
    rng = np.random.default_rng(seed)

    num = len(pathset)
    # The flat edge-id stream: packet i's remaining edges are
    # eids[estarts[i] + pos[i] : estarts[i] + lengths[i]].
    eids = pathset.edge_ids(mesh)
    estarts = pathset.edge_offsets[:-1]
    lengths = pathset.lengths

    from repro.metrics.congestion import congestion as _congestion

    cong = _congestion(mesh, pathset)
    dil = int(lengths.max()) if num else 0
    if max_steps is None:
        max_steps = 8 * (cong + dil) + 64
        if faulty:
            # waiting/rerouting legitimately needs more room than C + D
            max_steps = 8 * max_steps + 8 * mesh.diameter
        if admission is not None:
            # queueing legitimately stretches the schedule: budget the
            # worst-case release time on top of the scheduling bound
            if admission.rate_limit is not None:
                max_steps += int(np.ceil(num / admission.rate_limit)) + 64
            if admission.max_backlog is not None:
                waves = int(np.ceil(num / admission.max_backlog))
                max_steps += waves * (cong + dil + 1)

    pos = np.zeros(num, dtype=np.int64)
    delivery = np.zeros(num, dtype=np.int64)
    active = lengths > 0
    adm = None
    released = None
    if admission is not None:
        from repro.simulation.admission import AdmissionState

        adm = AdmissionState(admission)
        adm.push(np.nonzero(active)[0])  # FIFO by packet index
        released = np.zeros(num, dtype=bool)
    step = 0
    packet_ids = np.arange(num, dtype=np.int64)
    delays = (
        rng.integers(0, cong + 1, size=num)
        if policy == "random-delay"
        else np.zeros(num, dtype=np.int64)
    )
    retries_total = rerouted = dropped_n = 0
    if faulty:
        from repro.faults.router import shortest_alive_path

        # Rerouting mutates the per-packet slices, so the shared CSR views
        # become private writable state; detours append to the edge stream.
        eids = eids.copy()
        estarts = estarts.copy()
        lengths = lengths.copy()
        ends = pathset.offsets[1:] - 1
        cur = pathset.nodes[pathset.offsets[:-1]].copy()
        dests = pathset.nodes[ends]
        retries = np.zeros(num, dtype=np.int64)
        next_try = np.zeros(num, dtype=np.int64)
        endpoints = mesh.edge_endpoints
    while np.any(active):
        if step >= max_steps:
            if faulty or adm is not None:
                # stragglers are undelivered, not a scheduling bug
                delivery[active] = -1
                break
            raise RuntimeError(
                f"schedule exceeded {max_steps} steps (C={cong}, D={dil})"
            )
        if adm is not None:
            admitted, shed = adm.step_admit(step, int((active & released).sum()))
            if admitted:
                released[np.asarray(admitted, dtype=np.int64)] = True
            if shed:
                shed_a = np.asarray(shed, dtype=np.int64)
                active[shed_a] = False
                delivery[shed_a] = -1
        eligible = active & (delays <= step)
        if adm is not None:
            eligible &= released
        if faulty:
            eligible &= next_try <= step
        if not np.any(eligible):
            step += 1
            continue
        idx = packet_ids[eligible]
        edges = eids[estarts[idx] + pos[idx]]
        if faulty:
            alive = faults.edge_alive(step)
            blocked = ~alive[edges]
            if np.any(blocked):
                bidx = idx[blocked]
                retries[bidx] += 1
                retries_total += int(bidx.size)
                if profiler is not None:
                    profiler.count("faults.blocked_steps", int(bidx.size))
                # exponential backoff before the next attempt
                next_try[bidx] = step + (
                    1 << np.minimum(retries[bidx] - 1, backoff_cap)
                )
                for i in bidx[retries[bidx] >= max_retries].tolist():
                    detour = shortest_alive_path(mesh, int(cur[i]), int(dests[i]), alive)
                    if detour is not None and detour.size > 1:
                        seq = mesh.edge_ids(detour[:-1], detour[1:])
                        at = eids.size
                        eids = np.concatenate((eids, seq))
                        estarts[i] = at - pos[i]
                        lengths[i] = pos[i] + seq.size
                        retries[i] = 0
                        next_try[i] = step + 1
                        rerouted += 1
                        if profiler is not None:
                            profiler.count("faults.reroutes", 1)
                    elif not faults.repairs:
                        # statically unreachable: give up on the packet
                        active[i] = False
                        delivery[i] = -1
                        dropped_n += 1
                        if profiler is not None:
                            profiler.count("faults.dropped", 1)
                    else:
                        # the fault process repairs; wait out the backoff
                        retries[i] = 0
                idx = idx[~blocked]
                if idx.size == 0:
                    step += 1
                    continue
                edges = edges[~blocked]
        if policy == "farthest-first":
            prio = -(lengths[idx] - pos[idx])
        elif policy in ("fifo", "random-delay"):
            prio = idx
        else:
            prio = rng.permutation(idx.size)
        order = np.lexsort((prio, edges))
        sorted_edges = edges[order]
        first = np.ones(sorted_edges.size, dtype=bool)
        first[1:] = sorted_edges[1:] != sorted_edges[:-1]
        winners = idx[order][first]
        if faulty:
            wedges = eids[estarts[winners] + pos[winners]]
            cur[winners] = endpoints[wedges].sum(axis=1) - cur[winners]
            retries[winners] = 0
        pos[winners] += 1
        step += 1
        arrived = winners[pos[winners] == lengths[winners]]
        delivery[arrived] = step
        active[arrived] = False
    undelivered = int((delivery < 0).sum())
    if adm is not None and profiler is not None:
        for name, value in adm.counters().items():
            profiler.count(name, value)
    return SimulationResult(
        makespan=step,
        delivery_times=delivery,
        congestion=cong,
        dilation=dil,
        policy=policy,
        num_packets=num,
        delivered=num - undelivered,
        retries_total=retries_total,
        rerouted=rerouted,
        dropped=dropped_n,
        admission_dropped=adm.dropped if adm is not None else 0,
        admission_delayed_steps=adm.delayed_steps if adm is not None else 0,
    )
