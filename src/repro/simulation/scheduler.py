"""Greedy synchronous store-and-forward scheduling of fixed paths.

Packets follow their pre-selected paths; per time step every edge carries
at most one packet (the paper's model), and contention is resolved by a
priority policy:

* ``"farthest-first"`` — most remaining hops wins (the classic policy
  behind near-``O(C + D)`` schedules on meshes);
* ``"fifo"`` — lowest packet index wins (stable, injection-order);
* ``"random"`` — a fresh random winner per edge per step;
* ``"random-delay"`` — every packet waits a uniform initial delay in
  ``[0, C]`` before moving, then FIFO — the classic random-delays trick
  behind the ``O(C + D)``-style schedules the paper's ``C + D`` metric
  anticipates (delays decorrelate packets sharing edges).

The whole step is vectorised: paths are viewed as a
:class:`~repro.core.pathset.PathSet` whose flat edge-id stream is computed
once up front; each step gathers every active packet's next edge with one
fancy index, then requests are (edge, priority) pairs sorted with
``np.lexsort`` and winners are the first request per edge.

The makespan of *any* schedule is at least ``max(C, D) >= (C + D) / 2``,
so ``makespan / (C + D)`` in ``[0.5, ~1+]`` certifies the selected paths
are routable in near-optimal time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.pathset import PathSet
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingResult

__all__ = ["simulate", "SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of a synchronous schedule."""

    makespan: int
    delivery_times: np.ndarray  # step at which each packet arrived (0 = started there)
    congestion: int
    dilation: int
    policy: str

    @property
    def cd_bound(self) -> int:
        """``C + D``: the paper's path-quality measure."""
        return self.congestion + self.dilation

    @property
    def efficiency(self) -> float:
        """``makespan / (C + D)`` — at least 0.5 for any schedule."""
        return self.makespan / self.cd_bound if self.cd_bound else 0.0

    def summary(self) -> str:
        return (
            f"makespan={self.makespan} vs C+D={self.cd_bound} "
            f"(C={self.congestion}, D={self.dilation}, policy={self.policy})"
        )


def simulate(
    mesh: Mesh,
    paths: Sequence[np.ndarray] | RoutingResult,
    *,
    policy: str = "farthest-first",
    seed: int | None = None,
    max_steps: int | None = None,
) -> SimulationResult:
    """Schedule ``paths`` synchronously and measure the makespan.

    ``paths`` may be a raw path list or a :class:`RoutingResult`.  Raises
    ``RuntimeError`` if delivery takes more than ``max_steps`` (default
    ``8 * (C + D) + 64``, far above anything a greedy schedule needs).
    """
    pathset = PathSet.from_paths(
        paths.paths if isinstance(paths, RoutingResult) else paths
    )
    if policy not in ("farthest-first", "fifo", "random", "random-delay"):
        raise ValueError(f"unknown policy {policy!r}")
    rng = np.random.default_rng(seed)

    num = len(pathset)
    # The flat edge-id stream: packet i's remaining edges are
    # eids[estarts[i] + pos[i] : estarts[i] + lengths[i]].
    eids = pathset.edge_ids(mesh)
    estarts = pathset.edge_offsets[:-1]
    lengths = pathset.lengths

    from repro.metrics.congestion import congestion as _congestion

    cong = _congestion(mesh, pathset)
    dil = int(lengths.max()) if num else 0
    if max_steps is None:
        max_steps = 8 * (cong + dil) + 64

    pos = np.zeros(num, dtype=np.int64)
    delivery = np.zeros(num, dtype=np.int64)
    active = lengths > 0
    step = 0
    packet_ids = np.arange(num, dtype=np.int64)
    delays = (
        rng.integers(0, cong + 1, size=num)
        if policy == "random-delay"
        else np.zeros(num, dtype=np.int64)
    )
    while np.any(active):
        if step >= max_steps:
            raise RuntimeError(
                f"schedule exceeded {max_steps} steps (C={cong}, D={dil})"
            )
        eligible = active & (delays <= step)
        if not np.any(eligible):
            step += 1
            continue
        idx = packet_ids[eligible]
        edges = eids[estarts[idx] + pos[idx]]
        if policy == "farthest-first":
            prio = -(lengths[idx] - pos[idx])
        elif policy in ("fifo", "random-delay"):
            prio = idx
        else:
            prio = rng.permutation(idx.size)
        order = np.lexsort((prio, edges))
        sorted_edges = edges[order]
        first = np.ones(sorted_edges.size, dtype=bool)
        first[1:] = sorted_edges[1:] != sorted_edges[:-1]
        winners = idx[order][first]
        pos[winners] += 1
        step += 1
        arrived = winners[pos[winners] == lengths[winners]]
        delivery[arrived] = step
        active[arrived] = False
    return SimulationResult(
        makespan=step,
        delivery_times=delivery,
        congestion=cong,
        dilation=dil,
        policy=policy,
    )
