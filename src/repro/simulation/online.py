"""Online (dynamic-arrival) routing simulation.

The paper motivates oblivious algorithms because they are "by their nature
distributed and capable of solving online routing problems, where packets
continuously arrive in the network" (Section 1).  This module closes that
loop: packets are injected over time, each one picks its path *immediately
and independently* via an oblivious router, and a synchronous scheduler
(one packet per edge per step) delivers them.

The headline quantity is the latency-vs-load curve: a router whose paths
have low congestion sustains higher injection rates before queues blow up,
and a router with low stretch keeps latency near the distance at light
load.  The hierarchical router is the only one good on both ends — the
online restatement of the paper's contribution.

Fault injection
---------------
Pass ``faults=`` a :class:`~repro.faults.model.FaultModel` and the run
becomes fault-aware end to end: paths are selected through a
:class:`~repro.faults.router.FaultAwareRouter` against the mask at the
injection step (resample with fresh bits, greedy detour as a last
resort), in-flight packets blocked on a dead edge wait with exponential
backoff and re-select their path from their current node after
``max_retries`` blocked attempts, and packets that become unreachable
under a non-repairing model are dropped.  A trivial model (``p = 0``)
runs the fault-free code path: byte-identical statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.mesh.mesh import Mesh
from repro.routing.base import Router

__all__ = ["OnlineStats", "simulate_online", "latency_vs_load"]


def _empty_i64() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass
class OnlineStats:
    """Outcome of an online simulation run.

    The fault-tolerance counters (zero on fault-free runs): ``dropped``
    packets abandoned (unroutable at injection or in flight),
    ``reroutes`` in-flight path re-selections, ``blocked_steps`` the
    packet-steps spent waiting on a dead edge, ``resamples`` /
    ``detours`` the fault-aware selection fallbacks taken.
    """

    steps: int
    injected: int
    delivered: int
    mean_latency: float
    p95_latency: float
    max_latency: int
    mean_distance: float
    max_queue: int
    #: delivered packets per step during the injection phase
    throughput: float
    latencies: np.ndarray = field(repr=False)
    #: per-delivered-packet shortest distances, aligned with ``latencies``
    distances: np.ndarray = field(default_factory=_empty_i64, repr=False)
    dropped: int = 0
    reroutes: int = 0
    blocked_steps: int = 0
    resamples: int = 0
    detours: int = 0

    @property
    def mean_slowdown(self) -> float:
        """Mean latency / mean distance: the online stretch analogue."""
        return self.mean_latency / self.mean_distance if self.mean_distance else 0.0

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of injected packets (1.0 when none)."""
        return self.delivered / self.injected if self.injected else 1.0

    def summary(self) -> str:
        base = (
            f"{self.delivered}/{self.injected} delivered in {self.steps} steps; "
            f"latency mean={self.mean_latency:.1f} p95={self.p95_latency:.1f} "
            f"max_queue={self.max_queue}"
        )
        if self.dropped or self.blocked_steps:
            base += (
                f"; faults: dropped={self.dropped} reroutes={self.reroutes} "
                f"blocked_steps={self.blocked_steps}"
            )
        return base


def _uniform_dest(mesh: Mesh, src: int, rng: np.random.Generator) -> int:
    t = int(rng.integers(mesh.n))
    while t == src:
        t = int(rng.integers(mesh.n))
    return t


def simulate_online(
    router: Router,
    mesh: Mesh,
    *,
    rate: float,
    steps: int,
    seed: int | None = 0,
    dest_fn: Callable[[Mesh, int, np.random.Generator], int] = _uniform_dest,
    drain_steps: int | None = None,
    policy: str = "fifo",
    profiler=None,
    faults=None,
    max_retries: int = 3,
    backoff_cap: int = 5,
) -> OnlineStats:
    """Inject Bernoulli(rate) packets per node per step and schedule them.

    Parameters
    ----------
    rate:
        Per-node per-step injection probability.
    steps:
        Injection phase length; afterwards the network drains for
        ``drain_steps`` (default ``8 * steps + 200``) or until empty.
    dest_fn:
        Destination chooser (default: uniform over other nodes).  Use a
        local chooser to model locality traffic.
    policy:
        ``"fifo"`` (oldest packet wins an edge) or ``"random"``.
    profiler:
        Optional :class:`repro.obs.Profiler`: times the ``online.inject``
        (path selection) and ``online.advance`` (contention/scheduling)
        stages and counts ``online.injected`` / ``online.delivered``
        plus the ``faults.*`` counters on fault-injected runs.
    faults:
        Optional :class:`~repro.faults.model.FaultModel`.  Selection goes
        through a fault-aware wrapper and blocked packets wait (with
        exponential backoff, capped at ``2 ** backoff_cap`` steps) then
        reroute after ``max_retries`` blocked attempts.

    The router must be oblivious: paths are selected at injection time with
    a per-packet spawned stream, independent of network state.
    """
    from repro.faults.router import FaultAwareRouter, FaultRoutingError

    if not router.is_oblivious:
        raise ValueError("online simulation requires an oblivious router")
    if policy not in ("fifo", "random"):
        raise ValueError(f"unknown policy {policy!r}")
    from contextlib import nullcontext

    def stage(name):
        return profiler.stage(name) if profiler is not None else nullcontext()

    if faults is None and isinstance(router, FaultAwareRouter):
        faults = router.faults
    faulty = faults is not None and not faults.is_trivial
    if faulty:
        if isinstance(router, FaultAwareRouter):
            wrapper = router
        else:
            wrapper = FaultAwareRouter(router, faults)
        wrapper.profiler = profiler
        select = wrapper.select_path
        endpoints = mesh.edge_endpoints
    else:
        select = router.select_path

    rng = np.random.default_rng(seed)
    path_rng = np.random.default_rng(None if seed is None else seed + 1)

    # Packet state in flat CSR-style arrays: every packet's edge ids live in
    # one growing stream (`eids`), sliced per packet by `starts` / `nedges`.
    # Each step gathers the active packets' next edges with one fancy index
    # — no per-packet Python work in the advance loop.
    eids = np.empty(1024, dtype=np.int64)
    eids_used = 0
    starts: list[int] = []
    nedges: list[int] = []
    born: list[int] = []
    dist: list[int] = []
    starts_a = np.empty(0, dtype=np.int64)  # numpy mirrors, rebuilt on injection
    nedges_a = np.empty(0, dtype=np.int64)
    born_a = np.empty(0, dtype=np.int64)
    dist_a = np.empty(0, dtype=np.int64)
    pos = np.empty(0, dtype=np.int64)
    active = np.empty(0, dtype=np.int64)  # indices into the packet arrays
    done_latency: list[int] = []
    done_distance: list[int] = []
    if faulty:
        cur: list[int] = []  # current node per packet (for mid-flight reroute)
        dests: list[int] = []
        cur_a = np.empty(0, dtype=np.int64)
        dests_a = np.empty(0, dtype=np.int64)
        retries = np.empty(0, dtype=np.int64)
        next_try = np.empty(0, dtype=np.int64)

    max_queue = 0
    injected = 0
    dropped_n = reroutes = blocked_steps = 0
    if drain_steps is None:
        drain_steps = 8 * steps + 200
    total_steps = steps + drain_steps
    step = 0
    delivered_during_injection = 0
    for step in range(1, total_steps + 1):
        injecting = step <= steps
        if injecting:
            with stage("online.inject"):
                if faulty:
                    wrapper.at_step = step
                arrivals = np.nonzero(rng.random(mesh.n) < rate)[0]
                first_new = len(starts)
                for src in arrivals.tolist():
                    dst = dest_fn(mesh, int(src), rng)
                    pkt_rng = np.random.default_rng(path_rng.integers(2**63))
                    try:
                        path = select(mesh, int(src), dst, pkt_rng)
                    except FaultRoutingError:
                        injected += 1
                        dropped_n += 1
                        if profiler is not None:
                            profiler.count("faults.dropped", 1)
                        continue
                    if len(path) < 2:
                        continue
                    seq = mesh.edge_ids(path[:-1], path[1:])
                    if eids_used + seq.size > eids.size:
                        grown = np.empty(
                            max(eids_used + seq.size, 2 * eids.size), dtype=np.int64
                        )
                        grown[:eids_used] = eids[:eids_used]
                        eids = grown
                    eids[eids_used : eids_used + seq.size] = seq
                    starts.append(eids_used)
                    nedges.append(seq.size)
                    born.append(step)
                    dist.append(int(mesh.distance(int(src), dst)))
                    if faulty:
                        cur.append(int(src))
                        dests.append(dst)
                    eids_used += seq.size
                    injected += 1
                if len(starts) > first_new:
                    starts_a = np.asarray(starts, dtype=np.int64)
                    nedges_a = np.asarray(nedges, dtype=np.int64)
                    born_a = np.asarray(born, dtype=np.int64)
                    dist_a = np.asarray(dist, dtype=np.int64)
                    new = len(starts) - first_new
                    pos = np.concatenate((pos, np.zeros(new, dtype=np.int64)))
                    active = np.concatenate(
                        (active, np.arange(first_new, len(starts), dtype=np.int64))
                    )
                    if faulty:
                        # cur_a mutates as packets move: append the new
                        # packets rather than rebuilding from the birth list
                        cur_a = np.concatenate(
                            (cur_a, np.asarray(cur[first_new:], dtype=np.int64))
                        )
                        dests_a = np.asarray(dests, dtype=np.int64)
                        retries = np.concatenate(
                            (retries, np.zeros(new, dtype=np.int64))
                        )
                        next_try = np.concatenate(
                            (next_try, np.zeros(new, dtype=np.int64))
                        )
        if active.size == 0:
            if not injecting:
                break
            continue
        with stage("online.advance"):
            if faulty:
                alive_mask = faults.edge_alive(step)
                wrapper.at_step = step
                ready = active[next_try[active] <= step]
                if ready.size == 0:
                    continue
                edges = eids[starts_a[ready] + pos[ready]]
                blocked = ~alive_mask[edges]
                if np.any(blocked):
                    bidx = ready[blocked]
                    retries[bidx] += 1
                    blocked_steps += int(bidx.size)
                    if profiler is not None:
                        profiler.count("faults.blocked_steps", int(bidx.size))
                    next_try[bidx] = step + (
                        1 << np.minimum(retries[bidx] - 1, backoff_cap)
                    )
                    drop: list[int] = []
                    for i in bidx[retries[bidx] >= max_retries].tolist():
                        # re-select from the current node with fresh bits
                        pkt_rng = np.random.default_rng(path_rng.integers(2**63))
                        try:
                            new_path = select(
                                mesh, int(cur_a[i]), int(dests_a[i]), pkt_rng
                            )
                        except FaultRoutingError:
                            if not faults.repairs:
                                drop.append(i)
                            else:
                                retries[i] = 0
                            continue
                        seq = mesh.edge_ids(new_path[:-1], new_path[1:])
                        if eids_used + seq.size > eids.size:
                            grown = np.empty(
                                max(eids_used + seq.size, 2 * eids.size),
                                dtype=np.int64,
                            )
                            grown[:eids_used] = eids[:eids_used]
                            eids = grown
                        eids[eids_used : eids_used + seq.size] = seq
                        # repoint packet i's slice at the fresh suffix; the
                        # list mirrors must stay in sync because injection
                        # rebuilds the arrays from them
                        starts[i] = eids_used - int(pos[i])
                        nedges[i] = int(pos[i]) + seq.size
                        starts_a[i] = starts[i]
                        nedges_a[i] = nedges[i]
                        eids_used += seq.size
                        retries[i] = 0
                        next_try[i] = step + 1
                        reroutes += 1
                        if profiler is not None:
                            profiler.count("faults.reroutes", 1)
                    if drop:
                        dropped_n += len(drop)
                        if profiler is not None:
                            profiler.count("faults.dropped", len(drop))
                        active = active[~np.isin(active, np.asarray(drop))]
                    ready = ready[~blocked]
                    if ready.size == 0:
                        continue
                    edges = edges[~blocked]
                sched = ready
            else:
                sched = active
                # every active packet's next edge, in one gather
                edges = eids[starts_a[sched] + pos[sched]]
            # queue sizes: packets waiting per next-edge tail (proxy: per edge)
            max_queue = max(max_queue, int(np.bincount(edges).max()))
            # contention resolution
            if policy == "fifo":
                prio = born_a[sched]
            else:
                prio = rng.permutation(sched.size)
            order = np.lexsort((prio, edges))
            sorted_edges = edges[order]
            first = np.ones(sorted_edges.size, dtype=bool)
            first[1:] = sorted_edges[1:] != sorted_edges[:-1]
            winners = sched[order[first]]
            if faulty:
                wedges = eids[starts_a[winners] + pos[winners]]
                cur_a[winners] = endpoints[wedges].sum(axis=1) - cur_a[winners]
                retries[winners] = 0
            pos[winners] += 1
            finished = winners[pos[winners] == nedges_a[winners]]
            if finished.size:
                done_latency.extend((step - born_a[finished] + 1).tolist())
                done_distance.extend(dist_a[finished].tolist())
                if injecting:
                    delivered_during_injection += int(finished.size)
                active = active[pos[active] < nedges_a[active]]

    if faulty:
        resamples, detours = wrapper.resamples, wrapper.detours
    else:
        resamples = detours = 0
    if profiler is not None:
        profiler.count("online.injected", injected)
        profiler.count("online.delivered", len(done_latency))
    lat = np.asarray(done_latency, dtype=np.int64)
    return OnlineStats(
        steps=step,
        injected=injected,
        delivered=int(lat.size),
        mean_latency=float(lat.mean()) if lat.size else 0.0,
        p95_latency=float(np.percentile(lat, 95)) if lat.size else 0.0,
        max_latency=int(lat.max()) if lat.size else 0,
        mean_distance=float(np.mean(done_distance)) if done_distance else 0.0,
        max_queue=max_queue,
        throughput=delivered_during_injection / max(steps, 1),
        latencies=lat,
        distances=np.asarray(done_distance, dtype=np.int64),
        dropped=dropped_n,
        reroutes=reroutes,
        blocked_steps=blocked_steps,
        resamples=resamples,
        detours=detours,
    )


def latency_vs_load(
    router: Router,
    mesh: Mesh,
    rates: list[float],
    *,
    steps: int = 200,
    seed: int = 0,
    dest_fn: Callable[[Mesh, int, np.random.Generator], int] = _uniform_dest,
    faults=None,
) -> list[dict]:
    """Sweep injection rates, one row per rate (the saturation curve)."""
    rows = []
    for rate in rates:
        stats = simulate_online(
            router, mesh, rate=rate, steps=steps, seed=seed, dest_fn=dest_fn,
            faults=faults,
        )
        rows.append(
            {
                "router": router.name,
                "rate": rate,
                "injected": stats.injected,
                "delivered": stats.delivered,
                "mean_latency": stats.mean_latency,
                "p95_latency": stats.p95_latency,
                "mean_slowdown": stats.mean_slowdown,
                "max_queue": stats.max_queue,
                "delivery_ratio": stats.delivery_ratio,
            }
        )
    return rows
