"""Online (dynamic-arrival) routing simulation.

The paper motivates oblivious algorithms because they are "by their nature
distributed and capable of solving online routing problems, where packets
continuously arrive in the network" (Section 1).  This module closes that
loop: packets are injected over time, each one picks its path *immediately
and independently* via an oblivious router, and a synchronous scheduler
(one packet per edge per step) delivers them.

The headline quantity is the latency-vs-load curve: a router whose paths
have low congestion sustains higher injection rates before queues blow up,
and a router with low stretch keeps latency near the distance at light
load.  The hierarchical router is the only one good on both ends — the
online restatement of the paper's contribution.

Fault injection
---------------
Pass ``faults=`` a :class:`~repro.faults.model.FaultModel` and the run
becomes fault-aware end to end: paths are selected through a
:class:`~repro.faults.router.FaultAwareRouter` against the mask at the
injection step (resample with fresh bits, greedy detour as a last
resort), in-flight packets blocked on a dead edge wait with exponential
backoff and re-select their path from their current node after
``max_retries`` blocked attempts, and packets that become unreachable
under a non-repairing model are dropped.  A trivial model (``p = 0``)
runs the fault-free code path: byte-identical statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import kernels
from repro.mesh.mesh import Mesh
from repro.routing.base import Router

__all__ = ["OnlineStats", "simulate_online", "latency_vs_load"]


def _empty_i64() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass
class OnlineStats:
    """Outcome of an online simulation run.

    The fault-tolerance counters (zero on fault-free runs): ``dropped``
    packets abandoned (unroutable at injection or in flight),
    ``reroutes`` in-flight path re-selections, ``blocked_steps`` the
    packet-steps spent waiting on a dead edge, ``resamples`` /
    ``detours`` the fault-aware selection fallbacks taken.
    """

    steps: int
    injected: int
    delivered: int
    mean_latency: float
    p95_latency: float
    max_latency: int
    mean_distance: float
    max_queue: int
    #: delivered packets per step during the injection phase
    throughput: float
    latencies: np.ndarray = field(repr=False)
    #: per-delivered-packet shortest distances, aligned with ``latencies``
    distances: np.ndarray = field(default_factory=_empty_i64, repr=False)
    dropped: int = 0
    reroutes: int = 0
    blocked_steps: int = 0
    resamples: int = 0
    detours: int = 0
    #: admission-control accounting (zero with ``admission=None``):
    #: packets shed by the ``max_wait`` rule / packet-steps spent in the
    #: ingress queue / peak of in-network + queued packets over the run
    admission_dropped: int = 0
    admission_delayed_steps: int = 0
    peak_backlog: int = 0
    #: :class:`~repro.simulation.slo.SLOStats` when ``slo=`` was passed
    slo: object | None = None

    @property
    def mean_slowdown(self) -> float:
        """Mean latency / mean distance: the online stretch analogue."""
        return self.mean_latency / self.mean_distance if self.mean_distance else 0.0

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of injected packets (1.0 when none)."""
        return self.delivered / self.injected if self.injected else 1.0

    def summary(self) -> str:
        base = (
            f"{self.delivered}/{self.injected} delivered in {self.steps} steps; "
            f"latency mean={self.mean_latency:.1f} p95={self.p95_latency:.1f} "
            f"max_queue={self.max_queue}"
        )
        if self.dropped or self.blocked_steps:
            base += (
                f"; faults: dropped={self.dropped} reroutes={self.reroutes} "
                f"blocked_steps={self.blocked_steps}"
            )
        return base


def _uniform_dest(mesh: Mesh, src: int, rng: np.random.Generator) -> int:
    t = int(rng.integers(mesh.n))
    while t == src:
        t = int(rng.integers(mesh.n))
    return t


def simulate_online(
    router: Router,
    mesh: Mesh,
    *,
    rate: float | None = None,
    steps: int,
    seed: int | str | None = 0,
    dest_fn: Callable[[Mesh, int, np.random.Generator], int] = _uniform_dest,
    drain_steps: int | None = None,
    policy: str = "fifo",
    profiler=None,
    faults=None,
    max_retries: int = 3,
    backoff_cap: int = 5,
    workers: int | None = 1,
    traffic=None,
    slo=None,
    admission=None,
) -> OnlineStats:
    """Inject packets over time and schedule them synchronously.

    Parameters
    ----------
    rate:
        Per-node per-step Bernoulli injection probability (the classic
        synthetic load).  Mutually exclusive with ``traffic``.
    traffic:
        A :class:`~repro.workloads.traffic.TrafficProcess`: arrivals for
        birth step ``b`` come from ``traffic.arrivals_at(mesh, b - 1,
        entropy)`` — seeded, chunk-invariant production traffic shapes
        (Poisson, bursty, diurnal, flash crowds, hotspots, adversarial
        replay).  ``dest_fn`` is ignored; the process draws both ends.
    slo:
        Optional :class:`~repro.simulation.slo.SLOParams`; the result's
        ``slo`` field then carries :class:`~repro.simulation.slo.SLOStats`
        — exact-merge latency percentile histograms, per-step backlog
        distribution and delivery-SLO attainment.
    admission:
        Optional :class:`~repro.simulation.admission.AdmissionParams`:
        token-bucket admission + queue-depth backpressure between birth
        and network entry.  Paths are selected *before* admission from
        per-packet streams, so ``admission=None`` is byte-identical to a
        run without the feature, and an enabled policy changes only
        *when* packets enter, never which path they take.  Latency keeps
        counting from birth, so ingress queueing is visible in every
        percentile.
    steps:
        Injection phase length; afterwards the network drains for
        ``drain_steps`` (default ``8 * steps + 200``) or until empty.
    dest_fn:
        Destination chooser (default: uniform over other nodes).  Use a
        local chooser to model locality traffic.
    policy:
        ``"fifo"`` (oldest packet wins an edge) or ``"random"``.
    profiler:
        Optional :class:`repro.obs.Profiler`: times the ``online.arrivals``
        (arrival enumeration), ``online.inject`` (path selection) and
        ``online.advance`` (contention/scheduling) stages and counts
        ``online.injected`` / ``online.delivered`` plus the ``faults.*``
        counters on fault-injected runs.
    faults:
        Optional :class:`~repro.faults.model.FaultModel`.  Selection goes
        through a fault-aware wrapper and blocked packets wait (with
        exponential backoff, capped at ``2 ** backoff_cap`` steps) then
        reroute after ``max_retries`` blocked attempts.
    workers:
        Shard the path-selection phase over this many worker processes
        (``None``/``0`` = one per CPU).  Statistics are identical for
        every worker count.

    The run is organised in three phases so selection can shard:

    1. **arrivals** (serial) — enumerate every injected packet ``(src,
       dst, birth step)`` from a dedicated arrival stream;
    2. **selection** (sharded) — each packet's path is chosen obliviously
       from its own stream, keyed by *global injection index*
       (:mod:`repro.core.randomness`); under faults the wrapper evaluates
       the mask at the packet's birth step.  Oblivious selection never
       sees network state, so this phase is order-free by construction —
       the very property the paper attributes to oblivious algorithms in
       online settings (Section 1);
    3. **advance** (serial) — the synchronous scheduler replays injections
       by birth step and moves packets; scheduler tie-breaks and
       mid-flight reroutes draw from their own streams.

    The router must be oblivious: paths depend only on ``(seed, packet,
    s, t)``, independent of network state.
    """
    from repro.core.randomness import (
        SIM_ARRIVALS,
        SIM_REROUTE,
        SIM_SCHED,
        packet_seed_sequence,
        packet_stream,
        resolve_entropy,
    )
    from repro.faults.router import FaultAwareRouter, FaultRoutingError
    from repro.parallel.executor import make_executor, resolve_workers
    from repro.routing.base import RoutingProblem
    from repro.parallel.sharding import shard_bounds
    from repro.parallel.worker import (
        PKT_DROP,
        PKT_OK,
        OnlinePathTask,
        prepare_router,
        select_online_paths,
    )

    if not router.is_oblivious:
        raise ValueError("online simulation requires an oblivious router")
    if policy not in ("fifo", "random"):
        raise ValueError(f"unknown policy {policy!r}")
    if (rate is None) == (traffic is None):
        raise ValueError("pass exactly one of rate= or traffic=")
    from contextlib import nullcontext

    def stage(name):
        return profiler.stage(name) if profiler is not None else nullcontext()

    if faults is None and isinstance(router, FaultAwareRouter):
        faults = router.faults
    faulty = faults is not None and not faults.is_trivial
    if faulty:
        if isinstance(router, FaultAwareRouter):
            wrapper = router
        else:
            wrapper = FaultAwareRouter(router, faults)
        wrapper.profiler = profiler
        select = wrapper.select_path
        selecting_router: Router = wrapper
        endpoints = mesh.edge_endpoints
    else:
        select = router.select_path
        selecting_router = router

    entropy = resolve_entropy(seed)
    arrival_rng = np.random.default_rng(
        packet_seed_sequence(entropy, SIM_ARRIVALS)
    )
    sched_rng = np.random.default_rng(packet_seed_sequence(entropy, SIM_SCHED))

    # ------------------------------------------------------------------
    # Phase 1 (serial): enumerate arrivals — (src, dst, birth step) per
    # injected packet, in injection order.
    # ------------------------------------------------------------------
    with stage("online.arrivals"):
        if traffic is not None:
            # Trace-driven arrivals: birth step b replays traffic step
            # b - 1, so the injected stream is exactly rows [0, steps) of
            # ``traffic.stream(mesh, steps, seed)`` — chunk-invariant and
            # regenerable in isolation (the golden-hash contract).
            srcs_l: list[np.ndarray] = []
            dsts_l: list[np.ndarray] = []
            borns_l: list[np.ndarray] = []
            for birth in range(1, steps + 1):
                t_src, t_dst = traffic.arrivals_at(mesh, birth - 1, entropy)
                srcs_l.append(t_src)
                dsts_l.append(t_dst)
                borns_l.append(np.full(t_src.size, birth, dtype=np.int64))
            pkt_src = (
                np.concatenate(srcs_l) if srcs_l else np.empty(0, np.int64)
            )
            pkt_dst = (
                np.concatenate(dsts_l) if dsts_l else np.empty(0, np.int64)
            )
            pkt_born = (
                np.concatenate(borns_l) if borns_l else np.empty(0, np.int64)
            )
        else:
            src_l: list[int] = []
            dst_l: list[int] = []
            born_l: list[int] = []
            for birth in range(1, steps + 1):
                arrivals = np.nonzero(arrival_rng.random(mesh.n) < rate)[0]
                for src in arrivals.tolist():
                    src_l.append(int(src))
                    dst_l.append(dest_fn(mesh, int(src), arrival_rng))
                    born_l.append(birth)
            pkt_src = np.asarray(src_l, dtype=np.int64)
            pkt_dst = np.asarray(dst_l, dtype=np.int64)
            pkt_born = np.asarray(born_l, dtype=np.int64)
    total_packets = pkt_src.size

    # ------------------------------------------------------------------
    # Phase 2 (sharded): oblivious path selection, one stream per global
    # injection index.
    # ------------------------------------------------------------------
    w = resolve_workers(workers)
    with stage("online.inject"):
        payload = prepare_router(selecting_router)
        warm_keys = (
            tuple(
                selecting_router.warmup_keys(RoutingProblem(mesh, pkt_src, pkt_dst))
            )
            if total_packets
            else ()
        )
        tasks = [
            OnlinePathTask(
                router=payload,
                mesh=mesh,
                sources=pkt_src[a:b],
                dests=pkt_dst[a:b],
                born=pkt_born[a:b],
                entropy=entropy,
                offset=a,
                warm_keys=warm_keys,
                profile=profiler is not None,
                kernels_backend=kernels.backend(),
            )
            for a, b in shard_bounds(total_packets, w)
        ]
        pool = make_executor(w if len(tasks) > 1 else 1)
        try:
            shard_results = pool.map(select_online_paths, tasks)
        finally:
            pool.shutdown()
    status = (
        np.concatenate([r.status for r in shard_results])
        if shard_results
        else np.empty(0, dtype=np.int8)
    )
    for r in shard_results:
        if r.profile is not None and profiler is not None:
            profiler.merge_snapshot(r.profile)
        if r.cache_stats is not None:
            import repro.cache as _cache

            _cache.absorb_worker_stats(r.cache_stats)
        for attr, delta in r.counters.items():
            setattr(
                selecting_router,
                attr,
                getattr(selecting_router, attr, 0) + delta,
            )

    dropped_n = int(np.count_nonzero(status == PKT_DROP))
    injected = int(np.count_nonzero(status == PKT_OK)) + dropped_n
    if dropped_n and profiler is not None:
        profiler.count("faults.dropped", dropped_n)

    # Scheduled packets (PKT_OK only), packet-major CSR of edge ids.  The
    # buffer stays growable: mid-flight reroutes append fresh suffixes.
    ok = status == PKT_OK
    nedges_a = (
        np.concatenate([r.nedges for r in shard_results])
        if shard_results
        else np.empty(0, dtype=np.int64)
    )
    eids_used = int(nedges_a.sum())
    eids = np.empty(max(eids_used, 1024), dtype=np.int64)
    filled = 0
    for r in shard_results:
        eids[filled : filled + r.eids.size] = r.eids
        filled += int(r.eids.size)
    starts_a = np.zeros(nedges_a.size, dtype=np.int64)
    np.cumsum(nedges_a[:-1], out=starts_a[1:])
    born_a = pkt_born[ok]
    dist_a = (
        np.asarray(mesh.distance(pkt_src[ok], pkt_dst[ok]), dtype=np.int64).reshape(-1)
        if born_a.size
        else np.empty(0, dtype=np.int64)
    )
    num_ok = born_a.size
    pos = np.zeros(num_ok, dtype=np.int64)
    if faulty:
        cur_a = pkt_src[ok].copy()
        dests_a = pkt_dst[ok].copy()
        retries = np.zeros(num_ok, dtype=np.int64)
        next_try = np.zeros(num_ok, dtype=np.int64)
        reroute_idx = 0  # global mid-flight reroute counter (its own streams)

    active = np.empty(0, dtype=np.int64)  # indices into the packet arrays
    next_birth = 0  # packets [0, next_birth) have been activated
    done_latency: list[int] = []
    done_distance: list[int] = []

    adm = None
    if admission is not None:
        from repro.simulation.admission import AdmissionState

        adm = AdmissionState(admission)
    slo_stats = None
    if slo is not None:
        from repro.simulation.slo import SLOStats

        slo_stats = SLOStats(params=slo)

    max_queue = 0
    peak_backlog = 0
    reroutes = blocked_steps = 0
    if drain_steps is None:
        drain_steps = 8 * steps + 200
    total_steps = steps + drain_steps
    step = 0
    delivered_during_injection = 0

    # ------------------------------------------------------------------
    # Phase 3 (serial): synchronous advance — activate packets at their
    # birth step, resolve contention, move winners one edge per step.
    # ------------------------------------------------------------------
    for step in range(1, total_steps + 1):
        injecting = step <= steps
        if injecting and next_birth < num_ok:
            hi = int(np.searchsorted(born_a, step, side="right"))
            if hi > next_birth:
                fresh = np.arange(next_birth, hi, dtype=np.int64)
                next_birth = hi
                if adm is None:
                    active = np.concatenate((active, fresh))
                else:
                    adm.push(fresh)
        if adm is not None:
            admitted, shed = adm.step_admit(step, int(active.size), born_a)
            if shed:
                # shed before entering the network: injected but never
                # scheduled — the admission analogue of a fault drop
                for i in shed:
                    pos[i] = nedges_a[i]  # mark consumed, never active
            if admitted:
                active = np.concatenate(
                    (active, np.asarray(admitted, dtype=np.int64))
                )
        # backlog = packets *inside* the network: the pressure backpressure
        # caps.  Ingress-queue depth is reported separately (``admission.
        # delayed_steps`` / ``admission_delayed_steps``) — at fixed
        # arrivals, total unserved work is conserved, so folding the
        # ingress queue in here would make the cap invisible.
        backlog = int(active.size)
        peak_backlog = max(peak_backlog, backlog)
        if slo_stats is not None:
            slo_stats.record_backlog(backlog)
        if active.size == 0:
            if not injecting and (adm is None or len(adm) == 0):
                break
            continue
        with stage("online.advance"):
            if faulty:
                alive_mask = faults.edge_alive(step)
                wrapper.at_step = step
                ready = active[next_try[active] <= step]
                if ready.size == 0:
                    continue
                edges = eids[starts_a[ready] + pos[ready]]
                blocked = ~alive_mask[edges]
                if np.any(blocked):
                    bidx = ready[blocked]
                    retries[bidx] += 1
                    blocked_steps += int(bidx.size)
                    if profiler is not None:
                        profiler.count("faults.blocked_steps", int(bidx.size))
                    next_try[bidx] = step + (
                        1 << np.minimum(retries[bidx] - 1, backoff_cap)
                    )
                    drop: list[int] = []
                    for i in bidx[retries[bidx] >= max_retries].tolist():
                        # re-select from the current node with fresh bits
                        # from the next reroute stream — keyed by a global
                        # reroute counter, separate from the per-packet
                        # selection streams
                        pkt_rng = packet_stream(
                            entropy, reroute_idx, prefix=(SIM_REROUTE,)
                        )
                        reroute_idx += 1
                        try:
                            new_path = select(
                                mesh, int(cur_a[i]), int(dests_a[i]), pkt_rng
                            )
                        except FaultRoutingError:
                            if not faults.repairs:
                                drop.append(i)
                            else:
                                retries[i] = 0
                            continue
                        seq = mesh.edge_ids(new_path[:-1], new_path[1:])
                        if eids_used + seq.size > eids.size:
                            grown = np.empty(
                                max(eids_used + seq.size, 2 * eids.size),
                                dtype=np.int64,
                            )
                            grown[:eids_used] = eids[:eids_used]
                            eids = grown
                        eids[eids_used : eids_used + seq.size] = seq
                        # repoint packet i's slice at the fresh suffix
                        starts_a[i] = eids_used - int(pos[i])
                        nedges_a[i] = int(pos[i]) + seq.size
                        eids_used += seq.size
                        retries[i] = 0
                        next_try[i] = step + 1
                        reroutes += 1
                        if profiler is not None:
                            profiler.count("faults.reroutes", 1)
                    if drop:
                        dropped_n += len(drop)
                        if profiler is not None:
                            profiler.count("faults.dropped", len(drop))
                        active = active[~np.isin(active, np.asarray(drop))]
                    ready = ready[~blocked]
                    if ready.size == 0:
                        continue
                    edges = edges[~blocked]
                sched = ready
            else:
                sched = active
                # every active packet's next edge, in one gather
                edges = eids[starts_a[sched] + pos[sched]]
            # queue sizes: packets waiting per next-edge tail (proxy: per edge)
            max_queue = max(max_queue, int(np.bincount(edges).max()))
            # contention resolution
            if policy == "fifo":
                prio = born_a[sched]
            else:
                prio = sched_rng.permutation(sched.size)
            order = np.lexsort((prio, edges))
            sorted_edges = edges[order]
            first = np.ones(sorted_edges.size, dtype=bool)
            first[1:] = sorted_edges[1:] != sorted_edges[:-1]
            winners = sched[order[first]]
            if faulty:
                wedges = eids[starts_a[winners] + pos[winners]]
                cur_a[winners] = endpoints[wedges].sum(axis=1) - cur_a[winners]
                retries[winners] = 0
            pos[winners] += 1
            finished = winners[pos[winners] == nedges_a[winners]]
            if finished.size:
                done_latency.extend((step - born_a[finished] + 1).tolist())
                done_distance.extend(dist_a[finished].tolist())
                if injecting:
                    delivered_during_injection += int(finished.size)
                active = active[pos[active] < nedges_a[active]]

    if faulty:
        resamples, detours = wrapper.resamples, wrapper.detours
    else:
        resamples = detours = 0
    admission_dropped = adm.dropped if adm is not None else 0
    admission_delayed = adm.delayed_steps if adm is not None else 0
    if profiler is not None:
        profiler.count("online.injected", injected)
        profiler.count("online.delivered", len(done_latency))
        if adm is not None:
            for name, value in adm.counters().items():
                profiler.count(name, value)
    lat = np.asarray(done_latency, dtype=np.int64)
    if profiler is not None and lat.size:
        # exact-merge latency distribution (bin width 1 step): the same
        # histogram SLOStats reports, exposed as streaming telemetry
        for v, c in zip(*np.unique(lat, return_counts=True)):
            profiler.record_hist("online.latency", int(v), int(c))
    if slo_stats is not None:
        slo_stats.injected = injected
        slo_stats.dropped = dropped_n
        slo_stats.admission_dropped = admission_dropped
        for latency in done_latency:
            slo_stats.record_delivery(latency)
    return OnlineStats(
        steps=step,
        injected=injected,
        delivered=int(lat.size),
        mean_latency=float(lat.mean()) if lat.size else 0.0,
        p95_latency=float(np.percentile(lat, 95)) if lat.size else 0.0,
        max_latency=int(lat.max()) if lat.size else 0,
        mean_distance=float(np.mean(done_distance)) if done_distance else 0.0,
        max_queue=max_queue,
        throughput=delivered_during_injection / max(steps, 1),
        latencies=lat,
        distances=np.asarray(done_distance, dtype=np.int64),
        dropped=dropped_n,
        reroutes=reroutes,
        blocked_steps=blocked_steps,
        resamples=resamples,
        detours=detours,
        admission_dropped=admission_dropped,
        admission_delayed_steps=admission_delayed,
        peak_backlog=peak_backlog,
        slo=slo_stats,
    )


def latency_vs_load(
    router: Router,
    mesh: Mesh,
    rates: list[float],
    *,
    steps: int = 200,
    seed: int = 0,
    dest_fn: Callable[[Mesh, int, np.random.Generator], int] = _uniform_dest,
    faults=None,
) -> list[dict]:
    """Sweep injection rates, one row per rate (the saturation curve)."""
    rows = []
    for rate in rates:
        stats = simulate_online(
            router, mesh, rate=rate, steps=steps, seed=seed, dest_fn=dest_fn,
            faults=faults,
        )
        rows.append(
            {
                "router": router.name,
                "rate": rate,
                "injected": stats.injected,
                "delivered": stats.delivered,
                "mean_latency": stats.mean_latency,
                "p95_latency": stats.p95_latency,
                "mean_slowdown": stats.mean_slowdown,
                "max_queue": stats.max_queue,
                "delivery_ratio": stats.delivery_ratio,
            }
        )
    return rows
