"""Synchronous store-and-forward packet scheduling.

The paper's routing model (Section 1): time is synchronous and at most one
packet traverses any edge per time step, so any schedule needs at least
``max(C, D) >= (C + D) / 2`` steps — the ``Ω(C + D)`` folklore bound that
motivates judging path selection by congestion *and* dilation together.
:func:`~repro.simulation.scheduler.simulate` schedules selected paths
greedily under several contention policies and reports the makespan, which
experiments compare against ``C + D``.
"""

from repro.simulation.scheduler import SimulationResult, simulate
from repro.simulation.online import OnlineStats, latency_vs_load, simulate_online
from repro.simulation.admission import AdmissionParams, AdmissionState
from repro.simulation.slo import SLOParams, SLOStats, capacity_curve

__all__ = [
    "simulate",
    "SimulationResult",
    "simulate_online",
    "latency_vs_load",
    "OnlineStats",
    "AdmissionParams",
    "AdmissionState",
    "SLOParams",
    "SLOStats",
    "capacity_curve",
]
