"""Admission control and backpressure for the simulators.

A service at overload has exactly three choices: queue, shed, or melt.
This module gives both simulators the first two as an explicit policy —
a classic **token bucket** (sustained admission rate ``rate_limit``
packets/step with bursts up to ``burst``) composed with **queue-depth
backpressure** (admission pauses while the in-network packet count is at
``max_backlog``) and an optional shed rule (``max_wait``: a packet still
queued after that many steps is dropped instead of admitted).

The policy acts only on *when* an already-routed packet enters the
network — never on which path it takes.  Path selection happens before
admission and draws from per-packet streams keyed by global injection
index, so enabling admission cannot shift a single random draw:
``admission=None`` runs the byte-identical pre-admission code path, and
an enabled policy changes scheduling only.  Latency is always counted
from the packet's *birth* step, so time spent queued at the ingress is
part of the packet's latency — the honest, user-visible number.

Instrumentation lands on ``admission.*`` profiler counters
(``admitted``, ``dropped``, ``delayed_steps``, ``throttled_steps``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["AdmissionParams", "AdmissionState"]


@dataclass(frozen=True)
class AdmissionParams:
    """Admission policy: token bucket + queue-depth backpressure.

    Parameters
    ----------
    rate_limit:
        Sustained admissions per step (whole network); ``None`` = no
        rate limit (backpressure only).
    burst:
        Token-bucket capacity — how far above the sustained rate a quiet
        period lets a burst go.  Defaults to ``max(rate_limit, 1)``.
    max_backlog:
        In-network packet ceiling; admission pauses while the network
        holds this many undelivered packets.  ``None`` = unbounded.
    max_wait:
        Shed rule: a packet queued longer than this many steps is
        dropped (counted ``admission_dropped``).  ``None`` = queue
        forever.

    >>> AdmissionParams(rate_limit=4.0, max_backlog=100).effective_burst
    4.0
    """

    rate_limit: float | None = None
    burst: float | None = None
    max_backlog: int | None = None
    max_wait: int | None = None

    def __post_init__(self) -> None:
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive (or None)")
        if self.burst is not None and self.burst < 1:
            raise ValueError("burst must be >= 1 (or None for the default)")
        if self.max_backlog is not None and self.max_backlog < 1:
            raise ValueError("max_backlog must be >= 1 (or None)")
        if self.max_wait is not None and self.max_wait < 1:
            raise ValueError("max_wait must be >= 1 (or None)")
        if (
            self.rate_limit is None
            and self.max_backlog is None
            and self.max_wait is None
        ):
            raise ValueError(
                "admission policy is a no-op: set rate_limit, max_backlog "
                "or max_wait (or pass admission=None)"
            )

    @property
    def effective_burst(self) -> float:
        if self.burst is not None:
            return float(self.burst)
        return float(max(self.rate_limit or 1.0, 1.0))


class AdmissionState:
    """Per-run mutable admission machinery (deterministic, RNG-free).

    Holds the FIFO ingress queue of packet indices, the token bucket
    level and the policy counters.  Both simulators drive it the same
    way: :meth:`push` newly-born packets, then once per step
    :meth:`step_admit` returns which packets enter the network and which
    are shed.
    """

    def __init__(self, params: AdmissionParams):
        self.params = params
        self.bucket = params.effective_burst  # start full: bursts admit at once
        self.queue: deque[int] = deque()
        self.admitted = 0
        self.dropped = 0
        self.delayed_steps = 0
        self.throttled_steps = 0

    def __len__(self) -> int:
        return len(self.queue)

    def push(self, indices) -> None:
        """Enqueue newly-born packet indices (callers push in birth order,
        so the FIFO queue stays sorted by birth step)."""
        self.queue.extend(int(i) for i in np.asarray(indices).tolist())

    def step_admit(
        self, step: int, in_network: int, born=None
    ) -> tuple[list[int], list[int]]:
        """One admission round: refill, shed stale waiters, admit FIFO.

        Parameters
        ----------
        step:
            Current scheduler step (drives refill and the stale check).
        in_network:
            Undelivered packets currently inside the network (the
            backpressure signal).
        born:
            Per-packet birth steps (indexable by packet id); ``None``
            means every packet was born at step 0 (the batch scheduler).

        Returns ``(admitted, shed)`` packet-id lists, both in FIFO order.
        """
        p = self.params
        if p.rate_limit is not None:
            self.bucket = min(p.effective_burst, self.bucket + p.rate_limit)
        shed: list[int] = []
        if p.max_wait is not None:
            # the queue is FIFO in birth order, so stale packets are a prefix
            while self.queue:
                head = self.queue[0]
                birth = int(born[head]) if born is not None else 0
                if step - birth < p.max_wait:
                    break
                shed.append(self.queue.popleft())
            self.dropped += len(shed)
        admitted: list[int] = []
        while self.queue:
            if p.rate_limit is not None and self.bucket < 1.0:
                break
            if (
                p.max_backlog is not None
                and in_network + len(admitted) >= p.max_backlog
            ):
                break
            admitted.append(self.queue.popleft())
            if p.rate_limit is not None:
                self.bucket -= 1.0
        self.admitted += len(admitted)
        if self.queue:
            self.delayed_steps += len(self.queue)
            self.throttled_steps += 1
        return admitted, shed

    def counters(self) -> dict[str, int]:
        """The ``admission.*`` counter deltas for a profiler."""
        return {
            "admission.admitted": self.admitted,
            "admission.dropped": self.dropped,
            "admission.delayed_steps": self.delayed_steps,
            "admission.throttled_steps": self.throttled_steps,
        }
