"""Service-level telemetry for the online simulator.

ROADMAP item 4 asks the simulator to *report like a service*: latency
percentiles (p50/p99/p999), delivery-SLO attainment under fault regimes,
and offered-load vs. makespan/backlog capacity curves.  This module is
that reporting layer.

Percentiles come from the exact-merge fixed-bin
:class:`~repro.obs.histogram.Histogram` over the integer step latencies
(``bin_width=1`` makes every percentile equal nearest-rank
``numpy.percentile(..., method="inverted_cdf")`` on the raw array, and
bin counts add, so per-shard histograms fold without approximation).
Attainment is measured against the *injected* population — a packet
dropped by faults or shed by admission control missed its SLO; hiding it
from the denominator would be SLO theater.

:func:`capacity_curve` sweeps offered load and emits one row per point:
the classic saturation plot (offered load vs. delivered throughput,
latency percentiles, backlog) that locates a router's capacity knee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.histogram import Histogram

__all__ = ["SLOParams", "SLOStats", "capacity_curve"]

#: the headline percentiles every summary reports
_HEADLINE = (50.0, 99.0, 99.9)


@dataclass(frozen=True)
class SLOParams:
    """What to measure: the deadline and the percentile ladder.

    ``deadline`` is an absolute latency budget in scheduler steps; a
    delivered packet *meets* the SLO iff ``latency <= deadline``.
    ``None`` keeps the latency histogram but scores attainment on
    delivery alone (every delivered packet counts as met).
    """

    deadline: int | None = None
    percentiles: tuple[float, ...] = _HEADLINE

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline < 1:
            raise ValueError("deadline must be >= 1 step (or None)")
        for q in self.percentiles:
            if not 0 <= q <= 100:
                raise ValueError("percentiles must be in [0, 100]")


@dataclass
class SLOStats:
    """Streaming SLO telemetry of one online run.

    ``latency_hist`` holds every delivered packet's latency (bin width
    1 step — exact percentiles); ``backlog_hist`` samples the
    *in-network* packet count once per scheduler step, so its
    percentiles describe the sustained pressure admission backpressure
    caps (ingress-queue depth is reported separately via the
    ``admission.*`` counters — at fixed arrivals total unserved work is
    conserved, so folding the queue in would hide the cap).
    """

    params: SLOParams = field(default_factory=SLOParams)
    latency_hist: Histogram = field(default_factory=Histogram)
    backlog_hist: Histogram = field(default_factory=Histogram)
    injected: int = 0
    delivered: int = 0
    dropped: int = 0
    admission_dropped: int = 0
    met_deadline: int = 0

    def record_delivery(self, latency: int) -> None:
        self.latency_hist.add(int(latency))
        self.delivered += 1
        if self.params.deadline is None or latency <= self.params.deadline:
            self.met_deadline += 1

    def record_backlog(self, depth: int) -> None:
        self.backlog_hist.add(int(depth))

    # ------------------------------------------------------------------
    # Derived service metrics
    # ------------------------------------------------------------------
    @property
    def attainment(self) -> float:
        """Fraction of *injected* packets that met the SLO (1.0 if none)."""
        return self.met_deadline / self.injected if self.injected else 1.0

    @property
    def p50(self) -> float:
        return self.latency_hist.percentile(50)

    @property
    def p99(self) -> float:
        return self.latency_hist.percentile(99)

    @property
    def p999(self) -> float:
        return self.latency_hist.percentile(99.9)

    @property
    def backlog_p99(self) -> float:
        return self.backlog_hist.percentile(99)

    def percentile_row(self) -> dict[str, float]:
        return {
            f"p{str(q).rstrip('0').rstrip('.').replace('.', '')}": (
                self.latency_hist.percentile(q)
            )
            for q in self.params.percentiles
        }

    def to_row(self) -> dict:
        """One flat dict — the service dashboard row."""
        row = {
            "injected": self.injected,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "admission_dropped": self.admission_dropped,
            "attainment": self.attainment,
            "backlog_p99": self.backlog_p99,
        }
        row.update(self.percentile_row())
        return row

    def merge(self, other: "SLOStats") -> None:
        """Exact fold of another shard's telemetry (counts + histograms)."""
        self.latency_hist.merge(other.latency_hist)
        self.backlog_hist.merge(other.backlog_hist)
        self.injected += other.injected
        self.delivered += other.delivered
        self.dropped += other.dropped
        self.admission_dropped += other.admission_dropped
        self.met_deadline += other.met_deadline


def capacity_curve(
    router,
    mesh,
    rates,
    *,
    steps: int = 120,
    seed: int | str | None = 0,
    traffic_factory=None,
    slo: SLOParams | None = None,
    admission=None,
    faults=None,
    workers: int | None = 1,
) -> list[dict]:
    """Offered load vs. makespan/backlog: one row per offered rate.

    ``traffic_factory(rate)`` builds the arrival process for each point
    (default: :class:`~repro.workloads.traffic.PoissonTraffic`), so the
    same sweep runs under any traffic shape.  Each row reports the
    offered per-node load, realised injections/deliveries, the makespan
    (total steps until drained), the latency percentile ladder, backlog
    pressure, and SLO attainment — the saturation curve that locates the
    capacity knee.
    """
    from repro.simulation.online import simulate_online
    from repro.workloads.traffic import PoissonTraffic

    if traffic_factory is None:
        traffic_factory = PoissonTraffic
    slo = slo or SLOParams()
    rows = []
    for rate in rates:
        stats = simulate_online(
            router,
            mesh,
            traffic=traffic_factory(rate),
            steps=steps,
            seed=seed,
            slo=slo,
            admission=admission,
            faults=faults,
            workers=workers,
        )
        s = stats.slo
        row = {
            "router": router.name,
            "offered_rate": float(rate),
            "injected": stats.injected,
            "delivered": stats.delivered,
            "makespan": stats.steps,
            "throughput": stats.throughput,
            "peak_backlog": stats.peak_backlog,
            "mean_latency": stats.mean_latency,
        }
        row.update(s.to_row() if s is not None else {})
        rows.append(row)
    return rows
