"""Dilation and stretch (Section 2).

* dilation ``D`` — the maximum path length of the collection;
* ``stretch(p_i) = |p_i| / dist(s_i, t_i)`` — path length relative to the
  shortest-path distance;
* ``stretch(P) = max_i stretch(p_i)`` — the collection's stretch factor.

Packets with ``s_i == t_i`` have empty paths and are excluded from stretch
(the ratio is 0/0); the paper implicitly assumes distinct endpoints
(Theorem 3.4 is stated "for any two distinct nodes").

Path lengths come from the :class:`~repro.core.pathset.PathSet` per-path
length view, so both metrics are pure array expressions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import kernels
from repro.core.pathset import PathSet
from repro.mesh.mesh import Mesh

__all__ = ["dilation", "stretches", "stretch"]


def dilation(paths: Sequence[np.ndarray] | PathSet) -> int:
    """The dilation ``D = max_i |p_i|`` (0 for empty collections)."""
    lengths = PathSet.from_paths(paths).lengths
    return int(lengths.max()) if lengths.size else 0


def stretches(
    mesh: Mesh,
    sources: np.ndarray,
    dests: np.ndarray,
    paths: Sequence[np.ndarray] | PathSet,
) -> np.ndarray:
    """Per-packet stretch factors; ``nan`` where ``s == t``."""
    sources = np.asarray(sources, dtype=np.int64)
    dests = np.asarray(dests, dtype=np.int64)
    ps = PathSet.from_paths(paths)
    if not (len(ps) == sources.size == dests.size):
        raise ValueError("sources, dests and paths must have matching lengths")
    lengths = ps.lengths.astype(np.float64)
    dists = np.asarray(mesh.distance(sources, dests), dtype=np.float64)
    return kernels.stretch_ratios(lengths, dists)


def stretch(
    mesh: Mesh,
    sources: np.ndarray,
    dests: np.ndarray,
    paths: Sequence[np.ndarray] | PathSet,
) -> float:
    """The collection stretch ``max_i stretch(p_i)`` (0 if all trivial)."""
    vals = stretches(mesh, sources, dests, paths)
    finite = vals[np.isfinite(vals)]
    return float(finite.max()) if finite.size else 0.0
