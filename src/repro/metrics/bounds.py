"""Lower bounds on the optimal congestion ``C*`` (Section 2 and Appendix A.2).

``C*`` — the best congestion *any* (even offline, non-oblivious) algorithm
can achieve — is not efficiently computable, so the paper compares against
the **boundary congestion**

    ``B = max_{M'} |Π'| / out(M')  <=  C*``

where ``Π'`` are the packets with exactly one endpoint inside submesh
``M'`` and ``out(M')`` is the number of edges leaving ``M'``.  We provide:

* :func:`boundary_congestion` — ``B`` maximised over a hierarchy of grid
  windows (all decomposition levels and shifts, plus single nodes), in
  O(N) per window family via vectorised cell-bucketing;
* :func:`boundary_congestion_exact` — ``B`` over *every* axis-aligned box
  (tiny meshes only);
* :func:`average_load_lower_bound` — ``sum_i dist(s_i, t_i) / E``: total
  unavoidable edge usage spread over all edges;
* :func:`lp_congestion_lower_bound` — the fractional multicommodity-flow
  optimum (an LP), the strongest tractable bound, for small instances;
* :func:`congestion_lower_bound` — the best available combination.

Every bound here is a true lower bound on ``C*``, so measured ratios
``C / bound`` *over*-estimate the real competitive ratio ``C / C*``.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Iterable

import numpy as np

from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh

__all__ = [
    "boundary_congestion",
    "boundary_congestion_exact",
    "average_load_lower_bound",
    "lp_congestion_lower_bound",
    "congestion_lower_bound",
]


def _grid_boundary_congestion(
    mesh: Mesh,
    sources: np.ndarray,
    dests: np.ndarray,
    cell_side: int,
    shift: int,
) -> float:
    """Max ``|Π'| / out`` over the grid of ``cell_side`` windows at ``shift``.

    The grid tiles the mesh with boxes anchored at ``i * cell_side + shift``
    (clipped to the mesh); every box of the grid is a legitimate submesh, so
    the maximum over them lower-bounds ``B`` and hence ``C*``.
    """
    cs = mesh.flat_to_coords(sources)
    ct = mesh.flat_to_coords(dests)
    # Per-dimension cell index, offset by +1 so the clipped layer at -1 maps
    # to a valid bucket.
    dims = tuple(m // cell_side + 2 for m in mesh.sides)
    idx_s = tuple(((cs[:, i] - shift) // cell_side + 1) for i in range(mesh.d))
    idx_t = tuple(((ct[:, i] - shift) // cell_side + 1) for i in range(mesh.d))
    cell_s = np.ravel_multi_index(idx_s, dims)
    cell_t = np.ravel_multi_index(idx_t, dims)
    differ = cell_s != cell_t
    if not np.any(differ):
        return 0.0
    total = int(np.prod(dims))
    crossing = np.bincount(cell_s[differ], minlength=total) + np.bincount(
        cell_t[differ], minlength=total
    )
    best = 0.0
    for cell in np.nonzero(crossing)[0]:
        cell_idx = np.unravel_index(int(cell), dims)
        lo, hi = [], []
        for i, ci in enumerate(cell_idx):
            a = (int(ci) - 1) * cell_side + shift
            b = a + cell_side - 1
            lo.append(max(a, 0))
            hi.append(min(b, mesh.sides[i] - 1))
        box = Submesh(mesh, lo, hi)
        out = box.out()
        if out > 0:
            best = max(best, float(crossing[cell]) / out)
    return best


def _single_node_bound(mesh: Mesh, sources: np.ndarray, dests: np.ndarray) -> float:
    """``B`` restricted to single-node submeshes: endpoint count / degree."""
    differ = sources != dests
    counts = np.bincount(sources[differ], minlength=mesh.n) + np.bincount(
        dests[differ], minlength=mesh.n
    )
    best = 0.0
    for v in np.nonzero(counts)[0]:
        best = max(best, float(counts[v]) / mesh.degree(int(v)))
    return best


def boundary_congestion(
    mesh: Mesh,
    sources: np.ndarray,
    dests: np.ndarray,
    *,
    extra_shifts: bool = True,
) -> float:
    """Boundary congestion ``B`` over a rich family of grid windows.

    Window sides sweep all powers of two up to the largest mesh side; each
    side is tried at shift 0 and (when ``extra_shifts``) at every quarter
    shift, which covers both the paper's type-1 and shifted grids.  Single
    nodes are always included.  Runs in ``O(N log m)`` plus the number of
    occupied windows.
    """
    sources = np.asarray(sources, dtype=np.int64)
    dests = np.asarray(dests, dtype=np.int64)
    if sources.size == 0:
        return 0.0
    best = _single_node_bound(mesh, sources, dests)
    side = 2
    max_side = max(mesh.sides)
    while side <= max_side:
        shifts = {0}
        if extra_shifts:
            shifts.update({side // 2, side // 4, 3 * side // 4} - {0})
        for shift in sorted(shifts):
            best = max(
                best, _grid_boundary_congestion(mesh, sources, dests, side, shift)
            )
        side *= 2
    return best


def boundary_congestion_exact(
    mesh: Mesh, sources: np.ndarray, dests: np.ndarray
) -> float:
    """``B`` maximised over *every* axis-aligned box.  O(#boxes * N) — tiny
    meshes only; used to validate :func:`boundary_congestion`."""
    sources = np.asarray(sources, dtype=np.int64)
    dests = np.asarray(dests, dtype=np.int64)
    cs = mesh.flat_to_coords(sources)
    ct = mesh.flat_to_coords(dests)
    best = 0.0
    spans_per_dim = [
        [(a, b) for a in range(m) for b in range(a, m)] for m in mesh.sides
    ]
    for spans in product(*spans_per_dim):
        lo = tuple(a for a, _ in spans)
        hi = tuple(b for _, b in spans)
        box = Submesh(mesh, lo, hi)
        out = box.out()
        if out == 0:
            continue
        in_s = box.contains_coords(cs)
        in_t = box.contains_coords(ct)
        crossing = int(np.count_nonzero(in_s ^ in_t))
        if crossing:
            best = max(best, crossing / out)
    return best


def average_load_lower_bound(
    mesh: Mesh, sources: np.ndarray, dests: np.ndarray
) -> float:
    """``sum_i dist(s_i, t_i) / E``: some edge carries at least the average."""
    sources = np.asarray(sources, dtype=np.int64)
    dests = np.asarray(dests, dtype=np.int64)
    if sources.size == 0 or mesh.num_edges == 0:
        return 0.0
    total = int(np.sum(mesh.distance(sources, dests)))
    return total / mesh.num_edges


def lp_congestion_lower_bound(
    mesh: Mesh,
    sources: np.ndarray,
    dests: np.ndarray,
    *,
    max_variables: int = 2_000_000,
) -> float:
    """Fractional multicommodity-flow optimum: minimise the max edge load.

    Packets are grouped into commodities by (source, dest); each commodity
    routes its demand as splittable flow.  The optimum of this LP is a lower
    bound on the integral optimal congestion ``C*`` (and is usually very
    close to it on meshes).  Solved with ``scipy.optimize.linprog`` (HiGHS)
    over sparse constraints; refuses instances above ``max_variables``.
    """
    import scipy.sparse as sp
    from scipy.optimize import linprog

    sources = np.asarray(sources, dtype=np.int64)
    dests = np.asarray(dests, dtype=np.int64)
    keep = sources != dests
    sources, dests = sources[keep], dests[keep]
    if sources.size == 0:
        return 0.0
    pairs: dict[tuple[int, int], int] = {}
    for s, t in zip(sources.tolist(), dests.tolist()):
        pairs[(s, t)] = pairs.get((s, t), 0) + 1
    commodities = list(pairs.items())
    E = mesh.num_edges
    n_nodes = mesh.n
    K = len(commodities)
    n_vars = 2 * E * K + 1  # directed arc flows per commodity, plus z
    if n_vars > max_variables:
        raise ValueError(
            f"LP too large: {n_vars} variables (cap {max_variables}); use "
            "boundary_congestion for big instances"
        )
    endpoints = mesh.all_edges()  # (E, 2)
    # Arc a = 2e goes endpoints[e,0] -> endpoints[e,1]; arc 2e+1 reverses.
    arc_tail = np.empty(2 * E, dtype=np.int64)
    arc_head = np.empty(2 * E, dtype=np.int64)
    arc_tail[0::2], arc_head[0::2] = endpoints[:, 0], endpoints[:, 1]
    arc_tail[1::2], arc_head[1::2] = endpoints[:, 1], endpoints[:, 0]

    rows, cols, vals = [], [], []
    b_eq = np.zeros(K * n_nodes)
    for c, ((s, t), demand) in enumerate(commodities):
        base = c * 2 * E
        row0 = c * n_nodes
        # Conservation: sum(out) - sum(in) = demand at s, -demand at t, 0 else.
        rows.extend((row0 + arc_tail).tolist())
        cols.extend(range(base, base + 2 * E))
        vals.extend([1.0] * (2 * E))
        rows.extend((row0 + arc_head).tolist())
        cols.extend(range(base, base + 2 * E))
        vals.extend([-1.0] * (2 * E))
        b_eq[row0 + s] = demand
        b_eq[row0 + t] = -demand
    a_eq = sp.coo_matrix(
        (vals, (rows, cols)), shape=(K * n_nodes, n_vars)
    ).tocsr()

    # Capacity: for each undirected edge, total flow (both directions, all
    # commodities) <= z.
    rows, cols, vals = [], [], []
    for c in range(K):
        base = c * 2 * E
        rows.extend(np.repeat(np.arange(E), 2).tolist())
        cols.extend(range(base, base + 2 * E))
        vals.extend([1.0] * (2 * E))
    rows.extend(range(E))
    cols.extend([n_vars - 1] * E)
    vals.extend([-1.0] * E)
    a_ub = sp.coo_matrix((vals, (rows, cols)), shape=(E, n_vars)).tocsr()

    cost = np.zeros(n_vars)
    cost[-1] = 1.0
    res = linprog(
        cost,
        A_ub=a_ub,
        b_ub=np.zeros(E),
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * n_vars,
        method="highs",
    )
    if not res.success:  # pragma: no cover - should not happen on feasible input
        raise RuntimeError(f"LP solve failed: {res.message}")
    return float(res.fun)


def congestion_lower_bound(
    mesh: Mesh,
    sources: np.ndarray,
    dests: np.ndarray,
    *,
    use_lp: bool | None = None,
) -> float:
    """Best available lower bound on ``C*``.

    Combines boundary congestion, the average-load bound and (for small
    instances, or when ``use_lp`` forces it) the multicommodity LP.  Always
    at least 1 when some packet has distinct endpoints.
    """
    sources = np.asarray(sources, dtype=np.int64)
    dests = np.asarray(dests, dtype=np.int64)
    bound = max(
        boundary_congestion(mesh, sources, dests),
        average_load_lower_bound(mesh, sources, dests),
    )
    if np.any(sources != dests):
        bound = max(bound, 1.0)
    if use_lp is None:
        use_lp = mesh.n <= 256 and len(set(zip(sources.tolist(), dests.tolist()))) <= 128
    if use_lp:
        bound = max(bound, lp_congestion_lower_bound(mesh, sources, dests))
    return bound
