"""Edge-congestion accounting (Section 2).

The (edge) congestion ``C`` of a path collection is the maximum number of
paths using any edge.  The paper's synchronous model moves at most one
packet per edge per time step, so congestion is counted on *undirected*
edges; directed loads are also provided for link-level analyses.

All accounting is columnar: path collections are viewed as a
:class:`~repro.core.pathset.PathSet` (a no-op for results coming from the
routing engine, one concatenation for raw ``list[np.ndarray]`` input) and
every function below is a handful of array passes over its shared flat
edge/node streams — no per-path Python loops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.pathset import PathSet
from repro.mesh.mesh import Mesh

__all__ = ["edge_loads", "congestion", "directed_edge_loads", "node_loads"]


def edge_loads(mesh: Mesh, paths: Sequence[np.ndarray] | PathSet) -> np.ndarray:
    """Per-edge path counts ``C(e)``, indexed by undirected edge id.

    A path that crosses the same edge twice contributes twice — the paper
    counts "the number of times that edge e is used by the paths of all the
    packets" (Section 3.3).
    """
    ps = PathSet.from_paths(paths)
    if ps.total_edges == 0:
        return np.zeros(mesh.num_edges, dtype=np.int64)
    ids = ps.edge_ids(mesh)
    return np.bincount(ids, minlength=mesh.num_edges).astype(np.int64)


def congestion(mesh: Mesh, paths: Sequence[np.ndarray] | PathSet) -> int:
    """The congestion ``C = max_e C(e)`` (0 for empty path sets)."""
    loads = edge_loads(mesh, paths)
    return int(loads.max()) if loads.size else 0


def directed_edge_loads(
    mesh: Mesh, paths: Sequence[np.ndarray] | PathSet
) -> np.ndarray:
    """Per-edge loads split by traversal direction, shape ``(E, 2)``.

    Column 0 counts low-to-high endpoint traversals (as ordered by
    ``Mesh.edge_id_to_endpoints``), column 1 the reverse.  Orientation is a
    single gather into :attr:`Mesh.edge_endpoints`.
    """
    ps = PathSet.from_paths(paths)
    out = np.zeros((mesh.num_edges, 2), dtype=np.int64)
    if ps.total_edges == 0:
        return out
    ids = ps.edge_ids(mesh)
    forward = mesh.edge_endpoints[ids, 0] == ps.edge_tails
    out[:, 0] = np.bincount(ids[forward], minlength=mesh.num_edges)
    out[:, 1] = np.bincount(ids[~forward], minlength=mesh.num_edges)
    return out


def node_loads(mesh: Mesh, paths: Sequence[np.ndarray] | PathSet) -> np.ndarray:
    """How many paths visit each node (endpoints included).

    A path visiting a node several times (a walk with a cycle) still counts
    once for that node.  Paths are bucketed by length so each bucket is a
    dense ``(k, L)`` matrix: one row-wise ``np.sort`` dedupes every path in
    the bucket at once (sorting many short rows beats one global sort of
    the whole node stream), then a masked ``bincount`` accumulates — no
    per-path Python loops or length-``n`` allocations.
    """
    ps = PathSet.from_paths(paths)
    counts = np.zeros(mesh.n, dtype=np.int64)
    if ps.total_nodes == 0:
        return counts
    npp = ps.nodes_per_path
    starts = ps.offsets[:-1]
    order = np.argsort(npp, kind="stable")
    sizes = npp[order]
    bounds = np.flatnonzero(sizes[1:] != sizes[:-1]) + 1
    group_starts = np.concatenate(([0], bounds))
    group_ends = np.concatenate((bounds, [sizes.size]))
    for gs, ge in zip(group_starts.tolist(), group_ends.tolist()):
        length = int(sizes[gs])
        if length == 0:
            continue
        rows = order[gs:ge]
        idx = starts[rows][:, None] + np.arange(length, dtype=np.int64)
        mat = np.sort(ps.nodes[idx], axis=1)
        first = np.empty(mat.shape, dtype=bool)
        first[:, 0] = True
        np.not_equal(mat[:, 1:], mat[:, :-1], out=first[:, 1:])
        counts += np.bincount(mat[first], minlength=mesh.n)
    return counts
