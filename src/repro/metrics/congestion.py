"""Edge-congestion accounting (Section 2).

The (edge) congestion ``C`` of a path collection is the maximum number of
paths using any edge.  The paper's synchronous model moves at most one
packet per edge per time step, so congestion is counted on *undirected*
edges; directed loads are also provided for link-level analyses.

All accounting is columnar: path collections are viewed as a
:class:`~repro.core.pathset.PathSet` (a no-op for results coming from the
routing engine, one concatenation for raw ``list[np.ndarray]`` input) and
every function below is a handful of array passes over its shared flat
edge/node streams — no per-path Python loops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import kernels
from repro.core.pathset import PathSet
from repro.mesh.mesh import Mesh

__all__ = ["edge_loads", "congestion", "directed_edge_loads", "node_loads"]


def edge_loads(mesh: Mesh, paths: Sequence[np.ndarray] | PathSet) -> np.ndarray:
    """Per-edge path counts ``C(e)``, indexed by undirected edge id.

    A path that crosses the same edge twice contributes twice — the paper
    counts "the number of times that edge e is used by the paths of all the
    packets" (Section 3.3).
    """
    ps = PathSet.from_paths(paths)
    if ps.total_edges == 0:
        return np.zeros(mesh.num_edges, dtype=np.int64)
    ids = ps.edge_ids(mesh)
    return kernels.count_loads(ids, mesh.num_edges)


def congestion(mesh: Mesh, paths: Sequence[np.ndarray] | PathSet) -> int:
    """The congestion ``C = max_e C(e)`` (0 for empty path sets)."""
    loads = edge_loads(mesh, paths)
    return int(loads.max()) if loads.size else 0


def directed_edge_loads(
    mesh: Mesh, paths: Sequence[np.ndarray] | PathSet
) -> np.ndarray:
    """Per-edge loads split by traversal direction, shape ``(E, 2)``.

    Column 0 counts low-to-high endpoint traversals (as ordered by
    ``Mesh.edge_id_to_endpoints``), column 1 the reverse.  Orientation is a
    single gather into :attr:`Mesh.edge_endpoints`.
    """
    ps = PathSet.from_paths(paths)
    out = np.zeros((mesh.num_edges, 2), dtype=np.int64)
    if ps.total_edges == 0:
        return out
    ids = ps.edge_ids(mesh)
    forward = mesh.edge_endpoints[ids, 0] == ps.edge_tails
    out[:, 0] = kernels.count_loads(ids[forward], mesh.num_edges)
    out[:, 1] = kernels.count_loads(ids[~forward], mesh.num_edges)
    return out


def node_loads(mesh: Mesh, paths: Sequence[np.ndarray] | PathSet) -> np.ndarray:
    """How many paths visit each node (endpoints included).

    A path visiting a node several times (a walk with a cycle) still counts
    once for that node.  Dispatches to :func:`repro.kernels.node_loads_csr`
    (numba loop, or the numpy tier's bucketed row-wise sort-and-dedupe).
    """
    ps = PathSet.from_paths(paths)
    if ps.total_nodes == 0:
        return np.zeros(mesh.n, dtype=np.int64)
    return kernels.node_loads_csr(ps.nodes, ps.offsets, mesh.n)
