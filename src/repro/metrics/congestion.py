"""Edge-congestion accounting (Section 2).

The (edge) congestion ``C`` of a path collection is the maximum number of
paths using any edge.  The paper's synchronous model moves at most one
packet per edge per time step, so congestion is counted on *undirected*
edges; directed loads are also provided for link-level analyses.

All accounting is vectorised: paths are flattened into edge-id streams and
accumulated with ``np.bincount``, so measuring congestion of tens of
thousands of paths costs a few array passes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mesh.mesh import Mesh
from repro.mesh.paths import path_edge_endpoints

__all__ = ["edge_loads", "congestion", "directed_edge_loads", "node_loads"]


def _gather_edges(mesh: Mesh, paths: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the (tails, heads) of every edge of every path."""
    tails_parts: list[np.ndarray] = []
    heads_parts: list[np.ndarray] = []
    for p in paths:
        p = np.asarray(p, dtype=np.int64)
        if p.size < 2:
            continue
        t, h = path_edge_endpoints(p)
        tails_parts.append(t)
        heads_parts.append(h)
    if not tails_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(tails_parts), np.concatenate(heads_parts)


def edge_loads(mesh: Mesh, paths: Sequence[np.ndarray]) -> np.ndarray:
    """Per-edge path counts ``C(e)``, indexed by undirected edge id.

    A path that crosses the same edge twice contributes twice — the paper
    counts "the number of times that edge e is used by the paths of all the
    packets" (Section 3.3).
    """
    tails, heads = _gather_edges(mesh, paths)
    if tails.size == 0:
        return np.zeros(mesh.num_edges, dtype=np.int64)
    ids = mesh.edge_ids(tails, heads)
    return np.bincount(ids, minlength=mesh.num_edges).astype(np.int64)


def congestion(mesh: Mesh, paths: Sequence[np.ndarray]) -> int:
    """The congestion ``C = max_e C(e)`` (0 for empty path sets)."""
    loads = edge_loads(mesh, paths)
    return int(loads.max()) if loads.size else 0


def directed_edge_loads(mesh: Mesh, paths: Sequence[np.ndarray]) -> np.ndarray:
    """Per-edge loads split by traversal direction, shape ``(E, 2)``.

    Column 0 counts low-to-high endpoint traversals (as ordered by
    ``Mesh.edge_id_to_endpoints``), column 1 the reverse.
    """
    tails, heads = _gather_edges(mesh, paths)
    out = np.zeros((mesh.num_edges, 2), dtype=np.int64)
    if tails.size == 0:
        return out
    ids = mesh.edge_ids(tails, heads)
    # Determine orientation: compare against the canonical endpoint order.
    canon_low = np.asarray(
        [mesh.edge_id_to_endpoints(int(e))[0] for e in np.unique(ids)], dtype=np.int64
    )
    canon = dict(zip(np.unique(ids).tolist(), canon_low.tolist()))
    forward = np.asarray([canon[int(e)] for e in ids], dtype=np.int64) == tails
    out[:, 0] = np.bincount(ids[forward], minlength=mesh.num_edges)
    out[:, 1] = np.bincount(ids[~forward], minlength=mesh.num_edges)
    return out


def node_loads(mesh: Mesh, paths: Sequence[np.ndarray]) -> np.ndarray:
    """How many paths visit each node (endpoints included)."""
    counts = np.zeros(mesh.n, dtype=np.int64)
    for p in paths:
        p = np.asarray(p, dtype=np.int64)
        if p.size:
            counts += np.bincount(np.unique(p), minlength=mesh.n)
    return counts
