"""Path-quality metrics: congestion ``C``, dilation ``D``, stretch, and
lower bounds on the optimal congestion ``C*`` (Section 2 of the paper)."""

from repro.metrics.congestion import (
    congestion,
    directed_edge_loads,
    edge_loads,
    node_loads,
)
from repro.metrics.stretch import dilation, stretch, stretches
from repro.metrics.bounds import (
    average_load_lower_bound,
    boundary_congestion,
    boundary_congestion_exact,
    congestion_lower_bound,
    lp_congestion_lower_bound,
)

__all__ = [
    "congestion",
    "edge_loads",
    "directed_edge_loads",
    "node_loads",
    "dilation",
    "stretch",
    "stretches",
    "boundary_congestion",
    "boundary_congestion_exact",
    "average_load_lower_bound",
    "lp_congestion_lower_bound",
    "congestion_lower_bound",
]
