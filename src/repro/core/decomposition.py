"""Hierarchical mesh decomposition into regular submeshes.

Implements the decompositions of Sections 3.1 (two dimensions) and 4.1
(``d`` dimensions) for meshes with equal side lengths ``m = 2^k``:

Type-1 submeshes
    Defined recursively: the whole mesh is the only level-0 submesh; every
    level-``l`` submesh splits into ``2^d`` level-``l+1`` submeshes by
    halving each side.  Level ``k`` submeshes are single nodes (the access
    graph's leaves).

Shifted submeshes (type-2 ... type-j)
    At every level ``l >= 1`` the type-1 grid is extended by one layer of
    cells along every dimension and translated.  Two schemes:

    * ``"paper2d"`` (Section 3.1, and the paper's "direct generalization"):
      a single shifted type with translation ``m_l / 2`` in each dimension.
      External pieces are clipped to the mesh; pieces clipped in *every*
      dimension ("corner submeshes") are discarded because they coincide
      with type-1 submeshes of the next level.

    * ``"multishift"`` (Section 4.1): ``λ = max(1, m_l / 2^ceil(log2(d+1)))``
      and type-``j`` uses translation ``(j-1) λ``, giving between ``d+1``
      and ``2(d+1)`` distinct types per level.  All nonempty clipped pieces
      are kept.

A submesh of ``M`` is *regular* if it is produced by either construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh

__all__ = ["Decomposition", "RegularSubmesh", "num_shift_slots"]


def _contains(candidate, box) -> bool:
    """Containment across the Submesh / TorusBox kinds."""
    from repro.mesh.torus_box import TorusBox

    if isinstance(candidate, TorusBox):
        return candidate.contains_box(box)
    if isinstance(box, TorusBox):
        # cyclic-arc inclusion equals node-set inclusion for arcs, so the
        # wrapped-box algebra answers this exactly
        return TorusBox.from_submesh(candidate).contains_box(box)
    return candidate.contains_submesh(box)


def num_shift_slots(d: int) -> int:
    """``2^ceil(log2(d+1))``: the shift-grid granularity of Section 4.1.

    This is the number of distinct translation offsets used at levels where
    the cell side is large enough; it lies in ``[d+1, 2(d+1))``.
    """
    if d < 1:
        raise ValueError("dimension must be >= 1")
    return 1 << math.ceil(math.log2(d + 1))


@dataclass(frozen=True)
class RegularSubmesh:
    """A regular submesh: its box, level, type and grid cell.

    ``type_index`` is 1 for the unshifted (type-1) grid and ``j >= 2`` for
    the shifted grids.  ``cell`` is the per-dimension index of the grid cell
    the box came from; shifted grids include the extension layer, so cell
    indices range over ``-1 .. 2^level - 1``.
    """

    box: Submesh
    level: int
    type_index: int
    cell: tuple[int, ...]

    @property
    def is_type1(self) -> bool:
        return self.type_index == 1

    @property
    def truncated(self) -> bool:
        """Whether the box was clipped against the mesh border.

        Always false on the torus, where translation wraps instead.
        """
        m_l = 1 << (self.box.mesh.k - self.level)
        return any(side != m_l for side in self.box.sides)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RegularSubmesh(level={self.level}, type={self.type_index}, "
            f"cell={self.cell}, box={self.box!r})"
        )


class Decomposition:
    """The regular-submesh hierarchy of a power-of-two cube mesh.

    Parameters
    ----------
    mesh:
        Mesh with equal power-of-two side lengths (``mesh.is_power_of_two_cube``).
    scheme:
        ``"paper2d"``, ``"multishift"`` or ``"auto"`` (default): ``paper2d``
        when ``d <= 2`` else ``multishift``, matching the paper's choice.

    The class offers both arithmetic O(1)-per-query accessors (used by the
    router on large meshes) and explicit per-level enumeration (used by the
    access graph, tests and figures on small meshes).
    """

    def __init__(self, mesh: Mesh, scheme: str = "auto"):
        if not mesh.is_power_of_two_cube:
            raise ValueError(
                "the hierarchical decomposition requires equal power-of-two "
                f"side lengths; got {mesh.sides} "
                "(see repro.mesh.pad_to_power_of_two)"
            )
        if scheme == "auto":
            scheme = "paper2d" if mesh.d <= 2 else "multishift"
        if scheme not in ("paper2d", "multishift"):
            raise ValueError(f"unknown scheme {scheme!r}")
        self.mesh = mesh
        self.scheme = scheme
        self.d = mesh.d
        self.k = mesh.k
        self.m = mesh.sides[0]

    # ------------------------------------------------------------------
    # Level geometry
    # ------------------------------------------------------------------
    def side(self, level: int) -> int:
        """Cell side length ``m_l = 2^{k-l}`` at the given level."""
        self._check_level(level)
        return 1 << (self.k - level)

    def height(self, level: int) -> int:
        """Height ``k - level`` (leaves have height 0)."""
        self._check_level(level)
        return self.k - level

    def level_of_height(self, height: int) -> int:
        return self.k - height

    def num_cells(self, level: int) -> int:
        """Cells per dimension of the type-1 grid at ``level`` (``2^l``)."""
        self._check_level(level)
        return 1 << level

    def lam(self, level: int) -> int:
        """The shift unit ``λ`` of Section 4.1 at ``level``."""
        return max(1, self.side(level) // num_shift_slots(self.d))

    def shifts(self, level: int) -> list[int]:
        """Translation offsets of all types at ``level`` (index 0 = type-1).

        Level 0 has only the unshifted whole mesh.  The paper guarantees at
        most ``2(d+1)`` types per level and at least ``d+1`` when
        ``m_l >= d+1``.
        """
        self._check_level(level)
        if level == 0:
            return [0]
        m_l = self.side(level)
        if self.scheme == "paper2d":
            return [0] if m_l < 2 else [0, m_l // 2]
        lam = self.lam(level)
        out = [0]
        shift = lam
        while shift < m_l:
            out.append(shift)
            shift += lam
        return out

    def num_types(self, level: int) -> int:
        return len(self.shifts(level))

    def _check_level(self, level: int) -> None:
        if not (0 <= level <= self.k):
            raise ValueError(f"level must be in 0..{self.k}, got {level}")

    # ------------------------------------------------------------------
    # Arithmetic accessors (no enumeration)
    # ------------------------------------------------------------------
    def type1_cell(self, node: int, level: int) -> tuple[int, ...]:
        """Grid-cell index of the type-1 submesh at ``level`` containing ``node``."""
        m_l = self.side(level)
        coords = self.mesh.flat_to_coords(node)
        return tuple(int(c) // m_l for c in coords)

    def type1_box(self, level: int, cell: Sequence[int]) -> Submesh:
        """Box of the type-1 submesh at ``level`` with the given cell index."""
        m_l = self.side(level)
        g = self.num_cells(level)
        cell = tuple(int(c) for c in cell)
        if any(not (0 <= c < g) for c in cell):
            raise ValueError(f"type-1 cell index out of range: {cell}")
        lo = tuple(c * m_l for c in cell)
        hi = tuple(c * m_l + m_l - 1 for c in cell)
        return Submesh(self.mesh, lo, hi)

    def type1_ancestor(self, node: int, height: int) -> Submesh:
        """The unique type-1 submesh at the given *height* containing ``node``.

        Heights are counted from the leaves (``height 0`` is the single-node
        submesh ``{node}``); this is the ancestor chain every monotonic
        access-graph path follows (Section 3.2).
        """
        level = self.level_of_height(height)
        return self.type1_box(level, self.type1_cell(node, level))

    def shifted_box(self, level: int, type_index: int, cell: Sequence[int]):
        """Box of a shifted-grid cell, or ``None`` if discarded/empty.

        On the **mesh**, cells are clipped against the border; ``cell``
        entries range over ``-1 .. 2^level - 1`` (the extension layer sits
        at index ``-1`` before translation) and, under the ``paper2d``
        scheme, pieces clipped in every dimension (the 2-D "corner
        submeshes") return ``None``.

        On the **torus** — the setting of the paper's proofs — translation
        wraps instead of clipping: cells range over ``0 .. 2^level - 1``,
        every piece is full-size, and the return type is a
        :class:`~repro.mesh.torus_box.TorusBox` whenever the piece actually
        wraps (a plain :class:`Submesh` otherwise).
        """
        shifts = self.shifts(level)
        if not (2 <= type_index <= len(shifts)):
            raise ValueError(
                f"type index {type_index} invalid at level {level} "
                f"(valid: 2..{len(shifts)})"
            )
        shift = shifts[type_index - 1]
        m_l = self.side(level)
        g = self.num_cells(level)
        m = self.m
        cell = tuple(int(c) for c in cell)
        if self.mesh.torus:
            from repro.mesh.torus_box import TorusBox

            if any(not (0 <= c < g) for c in cell):
                raise ValueError(f"torus shifted cell index out of range: {cell}")
            start = tuple((c * m_l + shift) % m for c in cell)
            box = TorusBox(self.mesh, start, (m_l,) * self.d)
            return box if box.wraps() else box.to_submesh()
        if any(not (-1 <= c <= g - 1) for c in cell):
            raise ValueError(f"shifted cell index out of range: {cell}")
        lo, hi, clipped = [], [], []
        for c in cell:
            a = c * m_l + shift
            b = a + m_l - 1
            ca, cb = max(a, 0), min(b, m - 1)
            if ca > cb:
                return None
            lo.append(ca)
            hi.append(cb)
            clipped.append(cb - ca + 1 != m_l)
        if self.scheme == "paper2d" and all(clipped):
            return None  # corner submesh: coincides with a next-level type-1
        return Submesh(self.mesh, tuple(lo), tuple(hi))

    @staticmethod
    def _arc(box) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(start, lengths) of a plain or wrapped box."""
        from repro.mesh.torus_box import TorusBox

        if isinstance(box, TorusBox):
            return box.start, box.lengths
        return box.lo, box.sides

    def cell_of_box(self, level: int, type_index: int, box) -> tuple[int, ...] | None:
        """Cell of the (un-clipped) type grid whose span covers ``box``.

        Returns ``None`` when ``box`` straddles a grid line in some
        dimension, i.e. no single cell of this type contains it.  Because
        mesh clipping only removes territory outside the mesh and ``box``
        lies inside the mesh, a covering un-clipped cell also covers
        ``box`` after clipping; on the torus the arithmetic is modular.
        """
        shifts = self.shifts(level)
        if not (1 <= type_index <= len(shifts)):
            return None
        shift = shifts[type_index - 1]
        m_l = self.side(level)
        start, lengths = self._arc(box)
        cell = []
        if self.mesh.torus:
            for a, ln in zip(start, lengths):
                rel = (a - shift) % self.m
                if m_l == self.m:
                    cell.append(0)  # one cell covers the whole ring
                    continue
                if rel % m_l + ln > m_l:
                    return None
                cell.append(int(rel // m_l))
            return tuple(cell)
        for a, ln in zip(start, lengths):
            ca = (a - shift) // m_l
            cb = (a + ln - 1 - shift) // m_l
            if ca != cb:
                return None
            cell.append(int(ca))
        return tuple(cell)

    def containing_regulars(self, box, level: int) -> list[RegularSubmesh]:
        """All regular submeshes at ``level`` completely containing ``box``.

        ``box`` may be a plain :class:`Submesh` or (on torus meshes) a
        :class:`~repro.mesh.torus_box.TorusBox`.
        """
        out: list[RegularSubmesh] = []
        for j in range(1, self.num_types(level) + 1):
            cell = self.cell_of_box(level, j, box)
            if cell is None:
                continue
            if j == 1:
                g = self.num_cells(level)
                if any(not (0 <= c < g) for c in cell):
                    continue
                candidate = self.type1_box(level, cell)
            else:
                maybe = self.shifted_box(level, j, cell)
                if maybe is None:
                    continue
                candidate = maybe
            if _contains(candidate, box):
                out.append(RegularSubmesh(candidate, level, j, cell))
        return out

    # ------------------------------------------------------------------
    # Explicit enumeration (small meshes: figures, tests, access graph)
    # ------------------------------------------------------------------
    def type1_at_level(self, level: int) -> list[RegularSubmesh]:
        from itertools import product

        g = self.num_cells(level)
        return [
            RegularSubmesh(self.type1_box(level, cell), level, 1, cell)
            for cell in product(range(g), repeat=self.d)
        ]

    def shifted_at_level(self, level: int, type_index: int) -> list[RegularSubmesh]:
        from itertools import product

        g = self.num_cells(level)
        lo_cell = 0 if self.mesh.torus else -1
        out = []
        for cell in product(range(lo_cell, g), repeat=self.d):
            box = self.shifted_box(level, type_index, cell)
            if box is not None:
                out.append(RegularSubmesh(box, level, type_index, cell))
        return out

    def at_level(self, level: int) -> list[RegularSubmesh]:
        """All regular submeshes at ``level`` (type-1 first)."""
        out = self.type1_at_level(level)
        for j in range(2, self.num_types(level) + 1):
            out.extend(self.shifted_at_level(level, j))
        return out

    def iter_all(self) -> Iterator[RegularSubmesh]:
        """All regular submeshes, level by level (levels ``0..k``)."""
        for level in range(self.k + 1):
            yield from self.at_level(level)

    # ------------------------------------------------------------------
    # Rendering (Figure 1 / Figure 2 reproduction)
    # ------------------------------------------------------------------
    def render_level_2d(self, level: int, type_index: int = 1) -> str:
        """ASCII rendering of one level of a 2-D decomposition (Figure 1).

        Each node is drawn as a letter identifying the submesh that owns it
        (``.`` for nodes not covered by this type, e.g. discarded corners).
        """
        if self.d != 2:
            raise ValueError("rendering is only supported for 2-D meshes")
        if self.mesh.torus:
            raise ValueError("rendering wrapped (torus) pieces is not supported")
        regs = (
            self.type1_at_level(level)
            if type_index == 1
            else self.shifted_at_level(level, type_index)
        )
        m = self.m
        grid = np.full((m, m), ".", dtype="<U1")
        letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        for idx, reg in enumerate(regs):
            ch = letters[idx % len(letters)]
            lo, hi = reg.box.lo, reg.box.hi
            grid[lo[0] : hi[0] + 1, lo[1] : hi[1] + 1] = ch
        return "\n".join("".join(row) for row in grid)

    def summary(self) -> str:
        """Tabular inventory of submeshes per level and type."""
        lines = [
            f"Decomposition of {self.mesh!r} (scheme={self.scheme}, k={self.k})",
            f"{'level':>5} {'side':>6} {'types':>5}  counts per type",
        ]
        for level in range(self.k + 1):
            counts = [len(self.type1_at_level(level))]
            for j in range(2, self.num_types(level) + 1):
                counts.append(len(self.shifted_at_level(level, j)))
            lines.append(
                f"{level:>5} {self.side(level):>6} {len(counts):>5}  "
                + " ".join(str(c) for c in counts)
            )
        return "\n".join(lines)
