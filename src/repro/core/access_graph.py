"""The access graph ``G(M)`` (Section 3.2).

A leveled graph with ``k + 1`` node levels; nodes are the *distinct* regular
submeshes (a region appearing under several types at one level is a single
node), and an edge ``(u_l, u_{l+1})`` exists iff the level-``l`` submesh
completely contains the level-``l+1`` submesh.  The graph generalises the
access *tree* of Maggs et al.: shifted submeshes give leaves many bitonic
paths, in particular much shorter ones.

This explicit construction is an analysis substrate: the router proper uses
arithmetic ancestor/bridge queries (:mod:`repro.core.bridges`) and never
materialises the graph.  Property tests certify the two agree.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.bridges import common_ancestor_2d
from repro.core.decomposition import Decomposition, RegularSubmesh
from repro.mesh.submesh import Submesh

__all__ = ["AccessGraph"]


class AccessGraph:
    """Explicit access graph of a decomposition (small meshes only).

    Nodes are :class:`RegularSubmesh` records, deduplicated per level by
    region (type-1 representative wins).  Levels run ``0`` (root, the whole
    mesh) to ``k`` (leaves, single nodes).
    """

    def __init__(self, dec: Decomposition):
        self.dec = dec
        self.levels: list[list[RegularSubmesh]] = []
        self._by_box: list[dict[Submesh, RegularSubmesh]] = []
        for level in range(dec.k + 1):
            seen: dict[Submesh, RegularSubmesh] = {}
            for reg in dec.at_level(level):
                seen.setdefault(reg.box, reg)
            self._by_box.append(seen)
            self.levels.append(list(seen.values()))
        self._parents: dict[RegularSubmesh, list[RegularSubmesh]] = {}
        self._children: dict[RegularSubmesh, list[RegularSubmesh]] = {}
        for level in range(1, dec.k + 1):
            for child in self.levels[level]:
                parents = []
                for cand in dec.containing_regulars(child.box, level - 1):
                    canonical = self._by_box[level - 1][cand.box]
                    if canonical not in parents:
                        parents.append(canonical)
                self._parents[child] = parents
                for p in parents:
                    self._children.setdefault(p, []).append(child)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> RegularSubmesh:
        return self.levels[0][0]

    def canonical(self, reg: RegularSubmesh) -> RegularSubmesh:
        """The graph node representing ``reg``'s region at its level."""
        return self._by_box[reg.level][reg.box]

    def node_for_box(self, box: Submesh, level: int) -> RegularSubmesh | None:
        return self._by_box[level].get(box)

    def leaf(self, node: int) -> RegularSubmesh:
        """The leaf (single-node submesh) ``g^{-1}(node)``."""
        box = Submesh.single(self.dec.mesh, node)
        leaf = self._by_box[self.dec.k].get(box)
        assert leaf is not None, "every mesh node is a leaf"
        return leaf

    def parents(self, reg: RegularSubmesh) -> list[RegularSubmesh]:
        """Access-graph parents (level ``l - 1`` submeshes containing ``reg``)."""
        if reg.level == 0:
            return []
        return list(self._parents[self.canonical(reg)])

    def children(self, reg: RegularSubmesh) -> list[RegularSubmesh]:
        if reg.level == self.dec.k:
            return []
        return list(self._children.get(self.canonical(reg), []))

    def num_nodes(self) -> int:
        return sum(len(lv) for lv in self.levels)

    def num_edges(self) -> int:
        return sum(len(v) for v in self._parents.values())

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def is_monotonic_path(self, seq: Sequence[RegularSubmesh]) -> bool:
        """Section 3.2: strictly rising levels, all but the top of type-1.

        ``seq`` is ordered top (lowest level) to bottom (leaf); every node
        except possibly the first must be type-1, and each consecutive pair
        must be an access-graph edge.
        """
        if not seq:
            return False
        for top, bot in zip(seq, seq[1:]):
            if bot.level != top.level + 1:
                return False
            if not top.box.contains_submesh(bot.box):
                return False
        return all(r.is_type1 for r in seq[1:])

    def monotonic_chain(self, node: int, height: int) -> list[RegularSubmesh]:
        """Type-1 ancestor chain of a leaf, from ``height`` down to the leaf."""
        chain = []
        for h in range(height, -1, -1):
            box = self.dec.type1_ancestor(node, h)
            level = self.dec.level_of_height(h)
            reg = self._by_box[level].get(box)
            assert reg is not None, "type-1 submeshes are always graph nodes"
            chain.append(reg)
        return chain

    def bitonic_path(self, s: int, t: int) -> list[RegularSubmesh]:
        """The bitonic path ``(u, ..., A, ..., v)`` between two leaves.

        Concatenates the two monotonic chains through the deepest common
        ancestor ``A`` found by :func:`common_ancestor_2d`; the bridge
        appears once.  ``s == t`` yields the single leaf.
        """
        if s == t:
            return [self.leaf(s)]
        h, bridge = common_ancestor_2d(self.dec, s, t)
        up = list(reversed(self.monotonic_chain(s, h - 1)))
        down = self.monotonic_chain(t, h - 1)
        return up + [self.canonical(bridge)] + down

    def deepest_common_ancestor(self, s: int, t: int) -> tuple[int, RegularSubmesh]:
        h, bridge = common_ancestor_2d(self.dec, s, t)
        return h, self.canonical(bridge)

    # ------------------------------------------------------------------
    # Lemma checks (used by tests and the Figure-1 bench)
    # ------------------------------------------------------------------
    def check_lemma_3_1(self) -> dict[str, bool]:
        """Empirically verify the properties of Lemma 3.1.

        (1) ``disjoint`` — same-level same-type submeshes are disjoint;
        (2) ``partition`` — every regular submesh at level ``l`` is
            partitioned by the type-1 submeshes at level ``l+1`` it
            contains;
        (3) ``contained`` — every *type-1* submesh at level ``l+1`` is
            completely contained in some regular submesh at level ``l``.

        Reproduction note (erratum): the paper states (3) for *every*
        regular submesh, but that literal claim is false — e.g. on the 8x8
        mesh the level-2 type-2 submesh ``[1,2][3,4]`` straddles both the
        type-1 and the type-2 level-1 grids (on the mesh and on the torus
        alike).  The algorithm never needs it: shifted submeshes appear
        only at the *top* of bitonic paths, where (2) — which does hold —
        provides their type-1 children.  ``contained_all_types`` reports
        the literal claim for reference.
        """
        dec = self.dec
        results = {
            "disjoint": True,
            "partition": True,
            "contained": True,
            "contained_all_types": True,
        }
        for level in range(dec.k + 1):
            by_type: dict[int, list[RegularSubmesh]] = {}
            for reg in dec.at_level(level):
                by_type.setdefault(reg.type_index, []).append(reg)
            for regs in by_type.values():
                for i, a in enumerate(regs):
                    for b in regs[i + 1 :]:
                        if a.box.overlaps(b.box):
                            results["disjoint"] = False
        for level in range(dec.k):
            type1_next = dec.type1_at_level(level + 1)
            for reg in self.levels[level]:
                covered = sum(
                    t.box.size for t in type1_next if reg.box.contains_submesh(t.box)
                )
                if covered != reg.box.size:
                    results["partition"] = False
        for level in range(1, dec.k + 1):
            for reg in self.levels[level]:
                if not self._parents.get(self.canonical(reg)):
                    results["contained_all_types"] = False
            for reg in dec.type1_at_level(level):
                if not self._parents.get(self.canonical(reg)):
                    results["contained"] = False
        return results

    def check_lemma_3_2(self, samples: Iterable[tuple[int, RegularSubmesh]]) -> bool:
        """Lemma 3.2: for any node ``v`` of a regular submesh ``M'``,
        ``g^{-1}(M')`` is an ancestor of ``g^{-1}(v)`` — i.e. a monotonic
        (all type-1 below the top) chain descends from ``M'`` to the leaf.

        The candidate chain is ``M'`` followed by the type-1 ancestors of
        ``v`` at every deeper level; it is monotonic iff ``M'`` contains the
        type-1 ancestor of ``v`` one level down (deeper containments nest).
        """
        dec = self.dec
        for v, reg in samples:
            if not reg.box.contains_node(v):
                raise ValueError("sample node must lie inside the submesh")
            if reg.level == dec.k:
                continue  # the leaf itself
            child = dec.type1_ancestor(v, dec.height(reg.level + 1))
            if not reg.box.contains_submesh(child):
                return False
        return True

    def to_networkx(self):
        """Directed graph (parent -> child) for external analysis."""
        import networkx as nx

        g = nx.DiGraph()
        for level, regs in enumerate(self.levels):
            for reg in regs:
                g.add_node(reg, level=level, type_index=reg.type_index)
        for child, parents in self._parents.items():
            for p in parents:
                g.add_edge(p, child)
        return g
