"""Bridge-submesh location (Lemma 3.3 and Lemma 4.1).

A *bridge* is the regular submesh at the top of a bitonic access-graph path:
two monotonic (type-1) chains, one rising from the source and one from the
destination, meet at it.  Shifted submeshes act as bridges between type-1
submeshes, which is what bounds the stretch: Lemma 3.3 shows the meeting
height is at most ``ceil(log2 dist(s, t)) + 2`` in two dimensions, and Lemma
4.1 gives the ``d``-dimensional analogue via the pigeonhole over the
``>= d+1`` shifted types.

Two implementations are provided:

* arithmetic search (:func:`common_ancestor_2d`, :func:`find_bridge`) —
  O(#types) work per level, no enumeration, scales to large meshes;
* brute-force search over the explicit enumeration
  (:func:`common_ancestor_brute`) — used by property tests to certify the
  arithmetic version.
"""

from __future__ import annotations

from repro.core.decomposition import Decomposition, RegularSubmesh
from repro.mesh.submesh import Submesh
from repro.mesh.torus_box import torus_bounding


def _target(dec: Decomposition, a: Submesh, b: Submesh):
    """Region both chain tops must fit in: torus-aware bounding box."""
    return torus_bounding(a, b) if dec.mesh.torus else a.bounding_with(b)

__all__ = [
    "common_ancestor_2d",
    "common_ancestor_brute",
    "find_bridge",
    "bridge_height_bound_2d",
]


def bridge_height_bound_2d(dist: int) -> int:
    """The Lemma 3.3 bound: deepest-common-ancestor height ``<= ceil(log2 dist) + 2``."""
    import math

    if dist < 1:
        raise ValueError("distinct nodes required")
    return math.ceil(math.log2(dist)) + 2 if dist > 1 else 2


def common_ancestor_2d(
    dec: Decomposition, s: int, t: int
) -> tuple[int, RegularSubmesh]:
    """Deepest common ancestor of leaves ``s`` and ``t`` in the access graph.

    Returns ``(height, bridge)`` where ``bridge`` is a regular submesh at
    ``height`` that completely contains the type-1 ancestors of ``s`` and
    ``t`` at ``height - 1`` (so the bitonic path of Section 3.2 exists).
    Despite the name this works for any dimension; it is the Section 3
    bitonic construction, which climbs one level at a time.
    """
    if s == t:
        raise ValueError("s and t must be distinct")
    for h in range(1, dec.k + 1):
        anc_s = dec.type1_ancestor(s, h - 1)
        anc_t = dec.type1_ancestor(t, h - 1)
        target = _target(dec, anc_s, anc_t)
        level = dec.level_of_height(h)
        candidates = dec.containing_regulars(target, level)
        if candidates:
            # Prefer type-1 (matches the access tree when it suffices); any
            # candidate yields the same height, which is all that matters
            # for the stretch bound.
            candidates.sort(key=lambda r: r.type_index)
            return h, candidates[0]
    raise AssertionError("unreachable: the root contains every submesh")


def common_ancestor_brute(
    dec: Decomposition, s: int, t: int
) -> tuple[int, RegularSubmesh]:
    """Brute-force deepest common ancestor via explicit enumeration.

    Exhaustively scans every regular submesh per level.  Only for small
    meshes; property tests check it agrees with :func:`common_ancestor_2d`
    on the height (the witnessing bridge may differ when several exist).
    """
    if s == t:
        raise ValueError("s and t must be distinct")
    for h in range(1, dec.k + 1):
        anc_s = dec.type1_ancestor(s, h - 1)
        anc_t = dec.type1_ancestor(t, h - 1)
        level = dec.level_of_height(h)
        for reg in dec.at_level(level):
            if reg.box.contains_submesh(anc_s) and reg.box.contains_submesh(anc_t):
                return h, reg
    raise AssertionError("unreachable: the root contains every submesh")


def find_bridge(
    dec: Decomposition,
    box_s: Submesh,
    box_t: Submesh,
    min_height: int,
    *,
    require_double_side: int | None = None,
) -> tuple[int, RegularSubmesh]:
    """Lowest regular submesh at height ``>= min_height`` containing both boxes.

    This is the Section 4 bridge search: ``box_s`` / ``box_t`` are the
    type-1 submeshes ``M_1`` / ``M_3`` at height ``h' = ceil(log2 dist)``,
    and the bridge ``M_2`` is sought at heights ``h' + 1`` and above.  When
    ``require_double_side`` is given, candidates must additionally have
    every side ``>= 2 * require_double_side`` — condition (iii) of Appendix
    A.1, which the congestion analysis needs (this is the paper's "technical
    reason" for using height ``h + 1`` rather than ``h``).  The root always
    qualifies provided ``require_double_side <= m / 2``.

    Returns ``(height, bridge)``.
    """
    if min_height > dec.k:
        raise ValueError(f"min_height {min_height} exceeds root height {dec.k}")
    target = _target(dec, box_s, box_t)
    for h in range(min_height, dec.k + 1):
        level = dec.level_of_height(h)
        candidates = dec.containing_regulars(target, level)
        if require_double_side is not None:
            candidates = [
                r
                for r in candidates
                if all(side >= 2 * require_double_side for side in r.box.sides)
            ]
        if candidates:
            candidates.sort(key=lambda r: r.type_index)
            return h, candidates[0]
    raise AssertionError(
        "unreachable: the root submesh contains every box and satisfies the "
        "side condition whenever require_double_side <= m / 2"
    )
