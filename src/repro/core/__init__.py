"""Core contribution: hierarchical decomposition, access graph, bridges,
and the oblivious path-selection algorithm of Busch, Magdon-Ismail and Xi.

Modules
-------
``decomposition``
    Type-1 and shifted (type-2 / type-j) submesh hierarchies
    (Sections 3.1 and 4.1).
``access_graph``
    The explicit leveled access graph ``G(M)`` (Section 3.2), used for
    analysis and property tests on small meshes.
``bridges``
    Arithmetic common-ancestor / bridge-submesh location that scales to
    large meshes without materialising the graph (Lemmas 3.3 and 4.1).
``path_selection``
    The oblivious routing algorithm ``H`` (Sections 3.3 and 4), both the
    faithful 2-D bitonic variant and the general ``d``-dimensional one.
``randomness``
    Bit-counting RNG and the paper's recycled-bit scheme (Section 5.3).
"""

from repro.core.pathset import PathSet
from repro.core.decomposition import Decomposition, RegularSubmesh
from repro.core.access_graph import AccessGraph
from repro.core.bridges import common_ancestor_2d, find_bridge
from repro.core.path_selection import HierarchicalRouter
from repro.core.rect import RectDecomposition, RectHierarchicalRouter
from repro.core.randomness import BitCounter, RecycledBits

__all__ = [
    "PathSet",
    "Decomposition",
    "RegularSubmesh",
    "AccessGraph",
    "common_ancestor_2d",
    "find_bridge",
    "HierarchicalRouter",
    "RectDecomposition",
    "RectHierarchicalRouter",
    "BitCounter",
    "RecycledBits",
]
