"""The oblivious path-selection algorithm ``H`` (Sections 3.3 and 4).

For each packet independently:

1. build a *bitonic* sequence of nested regular submeshes — the type-1
   ancestors of the source rising to a **bridge** submesh, then the type-1
   ancestors of the destination descending back to the leaf;
2. pick a uniformly random node ``v_i`` in every submesh of the sequence
   (``v_0 = s``, ``v_l = t``);
3. connect consecutive ``v_{i-1}, v_i`` by a dimension-by-dimension
   shortest path (at most one bend in 2-D) under a random ordering of the
   dimensions;
4. concatenate the subpaths (and drop any cycles — never increases
   congestion, see the remark before Theorem 3.9).

Two variants:

``"bitonic2d"`` (Section 3)
    The bitonic access-graph path climbs one level at a time to the deepest
    common ancestor.  With the ``paper2d`` decomposition this is the
    algorithm of Theorem 3.4 (stretch <= 64) and Theorem 3.9 (congestion
    ``O(C* log n)`` whp).  It works in any dimension — the paper's "direct
    generalization" — but its stretch grows like ``O(2^d)``.

``"general"`` (Section 4)
    The ``d``-dimensional algorithm: climb the type-1 chain only to height
    ``h' = ceil(log2 dist(s,t))``, then jump to a bridge at height
    ``>= h' + 1`` whose sides are at least twice the chain's (condition
    (iii) of Appendix A; the paper's "technical reason" for height
    ``h + 1``), then descend.  Stretch ``O(d^2)``, congestion
    ``O(d^2 C* log n)`` whp (Theorems 4.2, 4.3).

Randomness modes (Section 5.3): fresh bits per draw, or the recycled-bit
scheme (one shared dimension order + two master nodes) which needs only
``O(d log(D d))`` bits per packet (Lemma 5.4).
"""

from __future__ import annotations

import math

import numpy as np

from repro import cache
from repro.core.bridges import common_ancestor_2d, find_bridge
from repro.core.decomposition import Decomposition
from repro.core.randomness import BitCounter, RecycledBits
from repro.mesh.mesh import Mesh
from repro.mesh.paths import concatenate_paths, dimension_order_path, remove_cycles
from repro.mesh.submesh import Submesh
from repro.routing.base import Router, RoutingProblem, RoutingResult

__all__ = ["HierarchicalRouter", "common_type1_height"]


def common_type1_height(dec: Decomposition, s: int, t: int) -> int:
    """Smallest height at which the type-1 ancestors of ``s``, ``t`` agree.

    This is the access-*tree* meeting height (Maggs et al. [9]); the access
    graph's bridges exist precisely to beat it.
    """
    if s == t:
        return 0
    for h in range(1, dec.k + 1):
        if dec.type1_cell(s, dec.level_of_height(h)) == dec.type1_cell(
            t, dec.level_of_height(h)
        ):
            return h
    raise AssertionError("unreachable: the root is a common ancestor")


class HierarchicalRouter(Router):
    """Algorithm ``H``: oblivious routing over the hierarchical decomposition.

    Parameters
    ----------
    scheme:
        Decomposition scheme (``"auto"``, ``"paper2d"``, ``"multishift"``);
        see :class:`~repro.core.decomposition.Decomposition`.
    variant:
        ``"auto"`` (``bitonic2d`` for d <= 2, else ``general``),
        ``"bitonic2d"`` or ``"general"`` — see the module docstring.
    use_bridges:
        Disabling bridges restricts meeting points to type-1 ancestors,
        which *is* the access-tree algorithm — kept here so the ablation
        differs by exactly one switch.
    dim_order:
        ``"random"`` — a fresh random ordering per subpath (step 7 as
        written); ``"shared"`` — one random ordering reused along the whole
        path (the Section 5.3 bit saving); ``"fixed"`` — ordering
        ``0, 1, ..., d-1`` (ablation A2).
    bit_mode:
        ``None`` — plain numpy sampling, no accounting (fastest);
        ``"fresh"`` — every draw metered through :class:`BitCounter`;
        ``"recycled"`` — the Section 5.3 scheme (forces shared ordering).
    drop_cycles:
        Shortcut revisited nodes out of the final path (default, as in the
        paper's congestion analysis).
    profiler:
        Optional :class:`repro.obs.Profiler`; when set, :meth:`route`
        stages (sequence construction, draws, assembly) are timed and
        packet/edge/random-value counters accumulate on it.
    """

    is_oblivious = True

    def __init__(
        self,
        *,
        scheme: str = "auto",
        variant: str = "auto",
        use_bridges: bool = True,
        dim_order: str = "random",
        bit_mode: str | None = None,
        drop_cycles: bool = True,
        name: str | None = None,
        profiler=None,
    ):
        if variant not in ("auto", "bitonic2d", "general"):
            raise ValueError(f"unknown variant {variant!r}")
        if dim_order not in ("random", "shared", "fixed"):
            raise ValueError(f"unknown dim_order {dim_order!r}")
        if bit_mode not in (None, "fresh", "recycled"):
            raise ValueError(f"unknown bit_mode {bit_mode!r}")
        if bit_mode == "recycled" and dim_order == "random":
            dim_order = "shared"  # the recycled scheme fixes one ordering
        self.scheme = scheme
        self.variant = variant
        self.use_bridges = use_bridges
        self.dim_order = dim_order
        self.bit_mode = bit_mode
        self.drop_cycles = drop_cycles
        self.name = name or ("hierarchical" if use_bridges else "hierarchical-nobridge")
        self.profiler = profiler
        #: per-packet random bits consumed by the latest :meth:`route` call
        #: (populated only when ``bit_mode`` is set)
        self.bits_log: list[int] = []

    # ------------------------------------------------------------------
    def decomposition(self, mesh: Mesh) -> Decomposition:
        """The (process-wide shared) decomposition for ``mesh``."""
        return cache.get_decomposition(mesh, self.scheme)

    def warmup_keys(self, problem: RoutingProblem) -> tuple:
        return (cache.warmup_key(problem.mesh, self.scheme),)

    def _variant_for(self, mesh: Mesh) -> str:
        if self.variant != "auto":
            return self.variant
        return "bitonic2d" if mesh.d <= 2 else "general"

    # ------------------------------------------------------------------
    # Submesh sequence construction
    # ------------------------------------------------------------------
    def submesh_sequence(self, mesh: Mesh, s: int, t: int) -> tuple[list[Submesh], int]:
        """The bitonic submesh sequence for packet ``(s, t)``.

        Returns ``(sequence, bridge_index)``; the sequence starts with the
        leaf ``{s}`` and ends with the leaf ``{t}``, and
        ``sequence[bridge_index]`` is the topmost (largest) submesh.
        """
        dec = self.decomposition(mesh)
        if s == t:
            leaf = Submesh.single(mesh, s)
            return [leaf], 0
        variant = self._variant_for(mesh)
        if variant == "bitonic2d":
            return self._sequence_bitonic(dec, s, t)
        return self._sequence_general(dec, s, t)

    def _sequence_bitonic(
        self, dec: Decomposition, s: int, t: int
    ) -> tuple[list[Submesh], int]:
        if self.use_bridges:
            h, bridge = common_ancestor_2d(dec, s, t)
            top = bridge.box
        else:
            h = common_type1_height(dec, s, t)
            top = dec.type1_ancestor(s, h)
        up = [dec.type1_ancestor(s, i) for i in range(h)]  # heights 0..h-1
        down = [dec.type1_ancestor(t, i) for i in range(h - 1, -1, -1)]
        return up + [top] + down, h

    def _sequence_general(
        self, dec: Decomposition, s: int, t: int
    ) -> tuple[list[Submesh], int]:
        mesh = dec.mesh
        dist = int(mesh.distance(s, t))
        h_prime = min(max(math.ceil(math.log2(dist)), 0), dec.k - 1) if dec.k else 0
        m1 = dec.type1_ancestor(s, h_prime)
        m3 = dec.type1_ancestor(t, h_prime)
        if m1 == m3 or not self.use_bridges:
            # Pure type-1 meeting: use the deepest common type-1 ancestor.
            h = common_type1_height(dec, s, t)
            up = [dec.type1_ancestor(s, i) for i in range(h)]
            down = [dec.type1_ancestor(t, i) for i in range(h - 1, -1, -1)]
            return up + [dec.type1_ancestor(s, h)] + down, h
        _, bridge = find_bridge(
            dec, m1, m3, h_prime + 1, require_double_side=1 << h_prime
        )
        up = [dec.type1_ancestor(s, i) for i in range(h_prime + 1)]  # 0..h'
        down = [dec.type1_ancestor(t, i) for i in range(h_prime, -1, -1)]
        return up + [bridge.box] + down, h_prime + 1

    # ------------------------------------------------------------------
    # Path selection
    # ------------------------------------------------------------------
    def select_path(
        self, mesh: Mesh, s: int, t: int, rng: np.random.Generator
    ) -> np.ndarray:
        if s == t:
            if self.bit_mode is not None:
                self.bits_log.append(0)
            return np.asarray([s], dtype=np.int64)
        seq, bridge_idx = self.submesh_sequence(mesh, s, t)
        counter = BitCounter(rng) if self.bit_mode is not None else None
        waypoints = self._waypoints(seq, bridge_idx, s, t, rng, counter)
        pieces = []
        shared_order = None
        if self.dim_order == "shared":
            shared_order = (
                counter.permutation(mesh.d)
                if counter is not None
                else tuple(int(x) for x in rng.permutation(mesh.d))
            )
        for a, b in zip(waypoints, waypoints[1:]):
            if self.dim_order == "fixed":
                order = tuple(range(mesh.d))
            elif self.dim_order == "shared":
                order = shared_order
            else:
                order = (
                    counter.permutation(mesh.d)
                    if counter is not None
                    else tuple(int(x) for x in rng.permutation(mesh.d))
                )
            pieces.append(dimension_order_path(mesh, a, b, order))
        path = concatenate_paths(pieces)
        if self.drop_cycles:
            path = remove_cycles(path)
        if counter is not None:
            self.bits_log.append(counter.bits_used)
        return path

    def _waypoints(
        self,
        seq: list[Submesh],
        bridge_idx: int,
        s: int,
        t: int,
        rng: np.random.Generator,
        counter: BitCounter | None,
    ) -> list[int]:
        """Random node per submesh (endpoints pinned to ``s`` / ``t``)."""
        if self.bit_mode == "recycled":
            assert counter is not None
            recycler = RecycledBits(counter, seq[bridge_idx])
            inner = [
                recycler.node_for(i, box) for i, box in enumerate(seq[1:-1], start=1)
            ]
        elif counter is not None:
            inner = [counter.uniform_node(box) for box in seq[1:-1]]
        else:
            inner = [box.sample_node(rng) for box in seq[1:-1]]
        return [s, *inner, t]

    # ------------------------------------------------------------------
    # Batched engine support
    # ------------------------------------------------------------------
    def batch_spec(self, problem: RoutingProblem):
        """Batched-engine spec; ``None`` when this run needs the loop.

        Ineligible cases: bit-metered randomness (``bit_mode``), torus
        meshes (wrap-around assembly), and meshes the decomposition does
        not accept (non-power-of-two-cube) — all fall back to
        :meth:`select_path` per packet with identical behaviour.
        """
        mesh = problem.mesh
        if self.bit_mode is not None or mesh.torus or not mesh.is_power_of_two_cube:
            return None
        from repro.core.tables import SequenceTables
        from repro.routing.engine import BatchSpec

        tables = SequenceTables.for_mesh(mesh, self.scheme)
        box_lo, box_len, n_inner = tables.batch_boxes(
            problem.sources,
            problem.dests,
            variant=self._variant_for(mesh),
            use_bridges=self.use_bridges,
        )
        return BatchSpec(
            mesh=mesh,
            coords_s=np.atleast_2d(mesh.flat_to_coords(problem.sources)),
            coords_t=np.atleast_2d(mesh.flat_to_coords(problem.dests)),
            box_lo=box_lo,
            box_len=box_len,
            dim_order=self.dim_order,
            fixed_order=tuple(range(mesh.d)) if self.dim_order == "fixed" else None,
            drop_cycles=self.drop_cycles,
            n_inner=n_inner,
        )

    # ------------------------------------------------------------------
    # Randomness-budget support (:mod:`repro.core.budget`)
    # ------------------------------------------------------------------
    def planned_bits(self, problem: RoutingProblem, mode: str | None = None):
        """Deterministic planned bits per packet of this router's draws.

        ``mode=None`` prices the router's own scheme (``bit_mode="recycled"``
        already pays recycled prices); ``mode="recycled"`` prices the budget
        ladder's degraded scheme.  Vectorised through
        :class:`~repro.core.tables.SequenceTables` when the mesh supports
        them; otherwise (torus / non-power-of-two) a scalar pass over
        :meth:`submesh_sequence`.
        """
        from repro.core.budget import (
            planned_fresh_bits,
            planned_recycled_bits,
            sequence_fresh_bits,
            sequence_recycled_bits,
        )

        mesh = problem.mesh
        eff = mode or ("recycled" if self.bit_mode == "recycled" else "fresh")
        if eff not in ("fresh", "recycled"):
            raise ValueError(f"unknown planned-bits mode {mode!r}")
        if not mesh.torus and mesh.is_power_of_two_cube:
            from repro.core.tables import SequenceTables

            tables = SequenceTables.for_mesh(mesh, self.scheme)
            _, box_len, n_inner = tables.batch_boxes(
                problem.sources,
                problem.dests,
                variant=self._variant_for(mesh),
                use_bridges=self.use_bridges,
            )
            alive = problem.sources != problem.dests
            if eff == "recycled":
                return planned_recycled_bits(box_len, alive)
            return planned_fresh_bits(
                box_len, self.dim_order, alive, n_inner=n_inner
            )
        out = np.zeros(problem.num_packets, dtype=np.int64)
        for i, (s, t) in enumerate(problem.pairs()):
            if s == t:
                continue
            seq, bridge_idx = self.submesh_sequence(mesh, s, t)
            if eff == "recycled":
                out[i] = sequence_recycled_bits(seq[bridge_idx].sides, mesh.d)
            else:
                out[i] = sequence_fresh_bits(seq[1:-1], self.dim_order, mesh.d)
        return out

    def budget_fallback_router(self) -> "HierarchicalRouter":
        """A recycled-bit clone of this router for budget degradation.

        Same decomposition, variant and cycle policy; ``bit_mode`` switched
        to ``"recycled"`` (which fixes one shared ordering), so a degraded
        packet pays exactly the Lemma 5.4 price on its own stream.
        """
        return HierarchicalRouter(
            scheme=self.scheme,
            variant=self.variant,
            use_bridges=self.use_bridges,
            dim_order="shared",
            bit_mode="recycled",
            drop_cycles=self.drop_cycles,
        )

    # ------------------------------------------------------------------
    def route(
        self,
        problem: RoutingProblem,
        seed: int | None = None,
        *,
        batch: bool | str = True,
        **kwargs,
    ) -> RoutingResult:
        self.bits_log = []
        return super().route(problem, seed, batch=batch, **kwargs)
