"""Compact per-node routing state (Section 5 discussion; Theorem 5.5).

The paper's estimate of the routing state is information-theoretic: a node
needs only the *shift schedule* of the hierarchical decomposition — ``O(k)``
offsets of ``O(log m)`` bits each — plus its own address to reconstruct, by
pure arithmetic, every regular submesh on any packet's bitonic sequence.
That is ``O(d \\log^2 n)`` bits per node, not a global table.

This module makes that claim executable:

:class:`CompactNodeTable`
    The serialized per-node state: the node's coordinates, the mesh
    geometry (sides / torus flag), the resolved decomposition scheme and
    the per-level shift offsets.  ``to_bytes`` / ``from_bytes`` round-trip
    a compact binary encoding and ``state_bits`` measures it exactly.

:class:`CompactHierarchicalRouter`
    A :class:`~repro.core.path_selection.HierarchicalRouter` whose path
    selection runs entirely from a table-backed local decomposition — the
    shared process-wide decomposition cache and the vectorised
    :class:`~repro.core.tables.SequenceTables` are never consulted.  The
    table is round-tripped through its byte encoding before use, so routing
    provably depends on nothing outside the serialized state.  Paths are
    byte-identical to :class:`HierarchicalRouter` under the same seed: both
    reduce to the same shift arithmetic, and this is pinned by the
    ``compact.state-equivalent`` verify invariant and the golden corpus.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.decomposition import Decomposition
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem

__all__ = [
    "CompactNodeTable",
    "CompactHierarchicalRouter",
    "build_node_table",
]

#: serialization magic: "Repro Compact Table", format version 1
_MAGIC = b"RCT1"
_SCHEMES = ("paper2d", "multishift")


@dataclass(frozen=True)
class CompactNodeTable:
    """One node's complete routable state, independently serializable.

    ``shifts[level]`` holds the translation offsets of every type at that
    level (index 0 is the unshifted type-1 grid), exactly as produced by
    :meth:`Decomposition.shifts`.  Everything else the router needs —
    type-1 ancestors, shifted boxes, bridges — is arithmetic over these
    offsets and the mesh geometry.

    Examples
    --------
    >>> from repro.mesh.mesh import Mesh
    >>> t = build_node_table(Mesh((8, 8)), 13)
    >>> t.coords, t.scheme, t.shifts
    ((1, 5), 'paper2d', ((0,), (0, 2), (0, 1), (0,)))
    >>> CompactNodeTable.from_bytes(t.to_bytes()) == t
    True
    """

    coords: tuple[int, ...]
    sides: tuple[int, ...]
    torus: bool
    scheme: str
    shifts: tuple[tuple[int, ...], ...]

    def __post_init__(self):
        if self.scheme not in _SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if len(self.coords) != len(self.sides):
            raise ValueError("coords and sides must have equal dimension")
        if len(self.shifts) != self.k + 1:
            raise ValueError(
                f"need {self.k + 1} shift levels, got {len(self.shifts)}"
            )

    @property
    def d(self) -> int:
        return len(self.sides)

    @property
    def k(self) -> int:
        return (self.sides[0] - 1).bit_length()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Compact binary encoding (the measured routing state)."""
        flags = (1 if self.torus else 0) | (
            2 if self.scheme == "multishift" else 0
        )
        out = [struct.pack("<4sBBB", _MAGIC, self.d, self.k, flags)]
        out.append(struct.pack(f"<{self.d}I", *self.sides))
        out.append(struct.pack(f"<{self.d}I", *self.coords))
        for level_shifts in self.shifts:
            out.append(struct.pack("<B", len(level_shifts)))
            if level_shifts:
                out.append(struct.pack(f"<{len(level_shifts)}I", *level_shifts))
        return b"".join(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompactNodeTable":
        """Decode a table written by :meth:`to_bytes`."""
        magic, d, k, flags = struct.unpack_from("<4sBBB", blob, 0)
        if magic != _MAGIC:
            raise ValueError(f"bad compact-table magic {magic!r}")
        off = 7
        sides = struct.unpack_from(f"<{d}I", blob, off)
        off += 4 * d
        coords = struct.unpack_from(f"<{d}I", blob, off)
        off += 4 * d
        shifts = []
        for _ in range(k + 1):
            (count,) = struct.unpack_from("<B", blob, off)
            off += 1
            level = struct.unpack_from(f"<{count}I", blob, off)
            off += 4 * count
            shifts.append(tuple(int(x) for x in level))
        if off != len(blob):
            raise ValueError("trailing bytes in compact-table encoding")
        return cls(
            coords=tuple(int(c) for c in coords),
            sides=tuple(int(s) for s in sides),
            torus=bool(flags & 1),
            scheme="multishift" if flags & 2 else "paper2d",
            shifts=tuple(shifts),
        )

    def state_bits(self) -> int:
        """Exact size of the serialized state in bits (polylog in ``n``)."""
        return 8 * len(self.to_bytes())


def build_node_table(
    mesh: Mesh, node: int, scheme: str = "auto"
) -> CompactNodeTable:
    """Build one node's :class:`CompactNodeTable` (offline construction).

    The shift schedule is computed once through the reference
    :class:`~repro.core.decomposition.Decomposition` arithmetic — this is
    the *offline* step a deployment would run when programming the node;
    at route time only the table is consulted.
    """
    dec = Decomposition(mesh, scheme)
    return CompactNodeTable(
        coords=tuple(int(c) for c in mesh.flat_to_coords(int(node))),
        sides=tuple(int(s) for s in mesh.sides),
        torus=bool(mesh.torus),
        scheme=dec.scheme,
        shifts=tuple(
            tuple(int(s) for s in dec.shifts(level))
            for level in range(dec.k + 1)
        ),
    )


class _TableDecomposition(Decomposition):
    """A decomposition whose shift schedule comes from a node table.

    Every :class:`Decomposition` query is deterministic arithmetic over the
    mesh geometry and :meth:`shifts`; overriding the latter to read the
    stored schedule makes the table the single source of routable state
    while inheriting the reference arithmetic verbatim — which is exactly
    why the compact router is byte-identical to the global one.
    """

    def __init__(self, mesh: Mesh, table: CompactNodeTable):
        super().__init__(mesh, table.scheme)
        if table.sides != mesh.sides or table.torus != mesh.torus:
            raise ValueError(
                f"table geometry {table.sides} (torus={table.torus}) does "
                f"not match mesh {mesh.sides} (torus={mesh.torus})"
            )
        self._table_shifts = table.shifts

    def shifts(self, level: int) -> list[int]:
        self._check_level(level)
        return list(self._table_shifts[level])


class CompactHierarchicalRouter(HierarchicalRouter):
    """Algorithm ``H`` routed from compact per-node state only.

    Identical constructor and path distribution to
    :class:`HierarchicalRouter`; the differences are *where the routing
    state lives*:

    * :meth:`decomposition` returns a :class:`_TableDecomposition` rebuilt
      from a serialized :class:`CompactNodeTable` (round-tripped through
      ``to_bytes``/``from_bytes``), never the shared cache;
    * :meth:`batch_spec` constructs the engine's box arrays per packet from
      that local state instead of the global
      :class:`~repro.core.tables.SequenceTables`;
    * :meth:`state_bits_per_node` reports the exact serialized state size,
      pinned to a polylog envelope by the verify layer.
    """

    def __init__(self, *, name: str | None = None, **kwargs):
        super().__init__(name=name or "compact-hierarchical", **kwargs)
        #: per-mesh table-backed decompositions (stripped before pickling
        #: to workers — see :func:`repro.parallel.worker.prepare_router`)
        self._dec_cache: dict[Mesh, _TableDecomposition] = {}

    # ------------------------------------------------------------------
    # Local state
    # ------------------------------------------------------------------
    def node_table(self, mesh: Mesh, node: int) -> CompactNodeTable:
        """The compact state programmed into ``node`` for ``mesh``."""
        return build_node_table(mesh, node, self.scheme)

    def state_bits_per_node(self, mesh: Mesh) -> int:
        """Bits of routing state per node (exact serialized size)."""
        return self.node_table(mesh, 0).state_bits()

    def decomposition(self, mesh: Mesh) -> Decomposition:
        dec = self._dec_cache.get(mesh)
        if dec is None:
            # Round-trip through the byte encoding: route-time state is
            # provably what from_bytes can reconstruct.  The shift schedule
            # is shared by all nodes, so any node's table works here.
            table = CompactNodeTable.from_bytes(
                self.node_table(mesh, 0).to_bytes()
            )
            dec = _TableDecomposition(mesh, table)
            self._dec_cache[mesh] = dec
            if self.profiler is not None:
                self.profiler.count("compact.state_bits", table.state_bits())
        return dec

    def warmup_keys(self, problem: RoutingProblem) -> tuple:
        # Nothing in the shared cache to warm: state is per-instance.
        return ()

    # ------------------------------------------------------------------
    # Batched engine support (from local tables, not SequenceTables)
    # ------------------------------------------------------------------
    def batch_spec(self, problem: RoutingProblem):
        """Engine spec built per packet from the local decomposition.

        Same slot layout as :meth:`SequenceTables.batch_boxes` — ``S_max =
        max(2k-1, 1)`` inner slots, unused slots padded with the
        destination's single-node box — so the batched engine produces
        byte-identical paths to the global router's spec.
        """
        mesh = problem.mesh
        if self.bit_mode is not None or mesh.torus or not mesh.is_power_of_two_cube:
            return None
        from repro.routing.engine import BatchSpec

        k = mesh.k
        d = mesh.d
        S = max(2 * k - 1, 1)
        sources = np.atleast_1d(np.asarray(problem.sources))
        dests = np.atleast_1d(np.asarray(problem.dests))
        N = sources.size
        cs = np.atleast_2d(mesh.flat_to_coords(sources))
        ct = np.atleast_2d(mesh.flat_to_coords(dests))
        box_lo = np.broadcast_to(ct[:, None, :], (N, S, d)).copy()
        box_len = np.ones((N, S, d), dtype=np.int64)
        n_inner = np.zeros(N, dtype=np.int64)
        for i in range(N):
            s, t = int(sources[i]), int(dests[i])
            if s == t:
                continue
            seq, _ = self.submesh_sequence(mesh, s, t)
            inner = seq[1:-1]
            n_inner[i] = len(inner)
            for j, box in enumerate(inner):
                box_lo[i, j] = box.lo
                box_len[i, j] = box.sides
        return BatchSpec(
            mesh=mesh,
            coords_s=cs,
            coords_t=ct,
            box_lo=box_lo,
            box_len=box_len,
            dim_order=self.dim_order,
            fixed_order=tuple(range(d)) if self.dim_order == "fixed" else None,
            drop_cycles=self.drop_cycles,
            n_inner=n_inner,
        )

    # ------------------------------------------------------------------
    # Randomness-budget support
    # ------------------------------------------------------------------
    def planned_bits(self, problem: RoutingProblem, mode: str | None = None):
        """Planned bits via the local tables (no shared SequenceTables)."""
        from repro.core.budget import (
            sequence_fresh_bits,
            sequence_recycled_bits,
        )

        mesh = problem.mesh
        eff = mode or ("recycled" if self.bit_mode == "recycled" else "fresh")
        if eff not in ("fresh", "recycled"):
            raise ValueError(f"unknown planned-bits mode {mode!r}")
        out = np.zeros(problem.num_packets, dtype=np.int64)
        for i, (s, t) in enumerate(problem.pairs()):
            if s == t:
                continue
            seq, bridge_idx = self.submesh_sequence(mesh, s, t)
            if eff == "recycled":
                out[i] = sequence_recycled_bits(seq[bridge_idx].sides, mesh.d)
            else:
                out[i] = sequence_fresh_bits(seq[1:-1], self.dim_order, mesh.d)
        return out

    def budget_fallback_router(self) -> "CompactHierarchicalRouter":
        """A recycled-bit compact clone (degradation stays table-local)."""
        return CompactHierarchicalRouter(
            scheme=self.scheme,
            variant=self.variant,
            use_bridges=self.use_bridges,
            dim_order="shared",
            bit_mode="recycled",
            drop_cycles=self.drop_cycles,
        )
