"""Extension: hierarchical oblivious routing on *rectangular* meshes.

The paper's network model (Section 2) allows a different side length
``m_i`` per dimension, but its algorithm assumes equal sides ``2^k``.  This
module generalises the construction to any mesh whose sides are powers of
two (possibly unequal): the type-1 recursion halves every dimension that is
still larger than one node, so levels simply stop refining exhausted
dimensions, and the shifted grids translate by a per-dimension
``λ_i = max(1, side_i / 2^ceil(log2(d+1)))``.

Status: an engineering extension, not a theorem.  Path validity and the
bitonic structure carry over verbatim; the stretch/congestion *proofs* do
not (the pigeonhole of Lemma 4.1 needs equal sides), so the guarantees here
are empirical — the tests measure stretch against the cube bound and it
holds comfortably on every workload tried.  For proof-backed routing,
embed into the enclosing cube via :func:`repro.mesh.pad_to_power_of_two`.

Kept deliberately separate from :mod:`repro.core.decomposition` so the
certified equal-sided implementation stays untouched.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.decomposition import num_shift_slots
from repro.mesh.mesh import Mesh
from repro.mesh.paths import concatenate_paths, dimension_order_path, remove_cycles
from repro.mesh.submesh import Submesh
from repro.routing.base import Router

__all__ = ["RectDecomposition", "RectHierarchicalRouter"]


def _is_pow2(x: int) -> bool:
    return x >= 1 and (x & (x - 1)) == 0


class RectDecomposition:
    """Type-1 / shifted hierarchy of a rectangular power-of-two mesh."""

    def __init__(self, mesh: Mesh):
        if mesh.torus:
            raise ValueError("the rectangular extension supports meshes only")
        if not all(_is_pow2(s) for s in mesh.sides):
            raise ValueError(
                f"all sides must be powers of two, got {mesh.sides}"
            )
        self.mesh = mesh
        self.d = mesh.d
        #: number of levels: the largest dimension drives the recursion
        self.k = max(int(math.log2(s)) for s in mesh.sides)

    # ------------------------------------------------------------------
    def sides_at_level(self, level: int) -> tuple[int, ...]:
        """Per-dimension cell sides at ``level`` (floored at one node)."""
        self._check_level(level)
        return tuple(max(s >> level, 1) for s in self.mesh.sides)

    def height(self, level: int) -> int:
        return self.k - level

    def level_of_height(self, height: int) -> int:
        return self.k - height

    def _check_level(self, level: int) -> None:
        if not (0 <= level <= self.k):
            raise ValueError(f"level must be in 0..{self.k}, got {level}")

    def lam(self, level: int) -> tuple[int, ...]:
        """Per-dimension shift unit λ_i at ``level``."""
        slots = num_shift_slots(self.d)
        return tuple(max(1, s // slots) for s in self.sides_at_level(level))

    def num_types(self, level: int) -> int:
        """Types at ``level``: 1 (unshifted) + shifted translates.

        The shifted count is limited by the most-refined *active* dimension
        (dimensions already at a single node are never shifted).
        """
        self._check_level(level)
        if level == 0:
            return 1
        sides = self.sides_at_level(level)
        lam = self.lam(level)
        counts = [s // l for s, l in zip(sides, lam) if s > 1]
        return min(counts) if counts else 1

    def shift_vector(self, level: int, type_index: int) -> tuple[int, ...]:
        """Per-dimension translation of type ``type_index`` at ``level``."""
        if not (1 <= type_index <= self.num_types(level)):
            raise ValueError(
                f"type index {type_index} invalid at level {level}"
            )
        lam = self.lam(level)
        sides = self.sides_at_level(level)
        return tuple(
            (type_index - 1) * l if s > 1 else 0 for l, s in zip(lam, sides)
        )

    # ------------------------------------------------------------------
    def type1_cell(self, node: int, level: int) -> tuple[int, ...]:
        sides = self.sides_at_level(level)
        coords = self.mesh.flat_to_coords(node)
        return tuple(int(c) // s for c, s in zip(coords, sides))

    def type1_box(self, level: int, cell: Sequence[int]) -> Submesh:
        sides = self.sides_at_level(level)
        lo = tuple(c * s for c, s in zip(cell, sides))
        hi = tuple(
            min(c * s + s - 1, m - 1)
            for c, s, m in zip(cell, sides, self.mesh.sides)
        )
        return Submesh(self.mesh, lo, hi)

    def type1_ancestor(self, node: int, height: int) -> Submesh:
        level = self.level_of_height(height)
        return self.type1_box(level, self.type1_cell(node, level))

    def containing_regulars(self, box: Submesh, level: int) -> list[Submesh]:
        """Regular submeshes at ``level`` containing ``box`` (clipped)."""
        out: list[Submesh] = []
        sides = self.sides_at_level(level)
        m = self.mesh.sides
        for j in range(1, self.num_types(level) + 1):
            shift = self.shift_vector(level, j)
            lo, hi = [], []
            ok = True
            for a, b, s, sh, m_i in zip(box.lo, box.hi, sides, shift, m):
                ca = (a - sh) // s
                cb = (b - sh) // s
                if ca != cb:
                    ok = False
                    break
                lo.append(max(ca * s + sh, 0))
                hi.append(min(ca * s + sh + s - 1, m_i - 1))
            if not ok:
                continue
            candidate = Submesh(self.mesh, lo, hi)
            if candidate.contains_submesh(box) and candidate not in out:
                out.append(candidate)
        return out

    def find_bridge(
        self, box_s: Submesh, box_t: Submesh, min_height: int
    ) -> tuple[int, Submesh]:
        """Lowest regular submesh at height >= ``min_height`` containing both."""
        target = box_s.bounding_with(box_t)
        for h in range(min(min_height, self.k), self.k + 1):
            found = self.containing_regulars(target, self.level_of_height(h))
            if found:
                found.sort(key=lambda b: b.size)
                return h, found[0]
        raise AssertionError("unreachable: the root contains every box")


class RectHierarchicalRouter(Router):
    """Oblivious hierarchical routing on rectangular power-of-two meshes.

    Same algorithm shape as :class:`~repro.core.path_selection
    .HierarchicalRouter` (general variant): type-1 chains to height
    ``h' = ceil(log2 dist)``, a bridge above, chains back down; random
    waypoints; random-order dimension subpaths.  On cube meshes it runs the
    same construction as the proved router; the tests cross-check the two.
    """

    is_oblivious = True
    name = "rect-hierarchical"

    def __init__(self, *, drop_cycles: bool = True):
        self.drop_cycles = drop_cycles
        self._dec_cache: dict[Mesh, RectDecomposition] = {}

    def decomposition(self, mesh: Mesh) -> RectDecomposition:
        dec = self._dec_cache.get(mesh)
        if dec is None:
            dec = RectDecomposition(mesh)
            self._dec_cache[mesh] = dec
        return dec

    def submesh_sequence(self, mesh: Mesh, s: int, t: int) -> tuple[list[Submesh], int]:
        dec = self.decomposition(mesh)
        if s == t:
            return [Submesh.single(mesh, s)], 0
        dist = int(mesh.distance(s, t))
        h_prime = min(max(math.ceil(math.log2(dist)), 0), max(dec.k - 1, 0))
        m1 = dec.type1_ancestor(s, h_prime)
        m3 = dec.type1_ancestor(t, h_prime)
        if m1 == m3:
            # deepest common type-1 ancestor
            h = next(
                hh
                for hh in range(dec.k + 1)
                if dec.type1_cell(s, dec.level_of_height(hh))
                == dec.type1_cell(t, dec.level_of_height(hh))
            )
            up = [dec.type1_ancestor(s, i) for i in range(h)]
            down = [dec.type1_ancestor(t, i) for i in range(h - 1, -1, -1)]
            return up + [dec.type1_ancestor(s, h)] + down, h
        h_b, bridge = dec.find_bridge(m1, m3, h_prime + 1)
        up = [dec.type1_ancestor(s, i) for i in range(h_prime + 1)]
        down = [dec.type1_ancestor(t, i) for i in range(h_prime, -1, -1)]
        return up + [bridge] + down, h_prime + 1

    def select_path(self, mesh: Mesh, s: int, t: int, rng: np.random.Generator) -> np.ndarray:
        if s == t:
            return np.asarray([s], dtype=np.int64)
        seq, _ = self.submesh_sequence(mesh, s, t)
        waypoints = [s] + [box.sample_node(rng) for box in seq[1:-1]] + [t]
        pieces = [
            dimension_order_path(
                mesh, a, b, tuple(int(x) for x in rng.permutation(mesh.d))
            )
            for a, b in zip(waypoints, waypoints[1:])
        ]
        path = concatenate_paths(pieces)
        return remove_cycles(path) if self.drop_cycles else path
