"""Vectorised ancestor/bridge tables for batched path selection.

:class:`SequenceTables` re-derives the per-packet bitonic submesh sequence
of :class:`~repro.core.path_selection.HierarchicalRouter` — type-1 ancestor
chains plus the bridge search of Lemmas 3.3 / 4.1 — as numpy arithmetic
over *all* packets of a routing problem at once.  The scalar implementation
(:mod:`repro.core.bridges`) walks heights one packet at a time in Python;
this module walks heights once, carrying an ``(N, d)`` coordinate array,
which turns the dominant cost of ``HierarchicalRouter.route`` into a
handful of vectorised passes.

Key identities (power-of-two cube mesh, side ``m = 2^k``, non-torus):

* the type-1 cell of node coordinates ``c`` at height ``h`` is ``c >> h``
  and its box is ``[(c >> h) << h, ((c >> h) << h) + 2^h - 1]``;
* a box ``[lo, hi]`` fits in some cell of the type-``j`` grid (shift
  ``σ``) at cell side ``M`` iff ``(lo - σ) // M == (hi - σ) // M`` in every
  dimension (floor division; the extension layer is cell index ``-1``);
* under the ``paper2d`` scheme a shifted cell is discarded iff it is
  clipped by the mesh border in *every* dimension (a corner submesh).

``tests/test_engine.py`` certifies, per packet, that the arrays produced
here equal the boxes of ``HierarchicalRouter.submesh_sequence``.

Instances are shared process-wide through :mod:`repro.cache` (the
"derived tables" the cache exists for): build once per
``(mesh shape, scheme)``, reuse across routers, benchmarks, simulators.
"""

from __future__ import annotations

import numpy as np

from repro import cache as _cache
from repro import kernels
from repro.core.decomposition import Decomposition
from repro.mesh.mesh import Mesh

__all__ = ["SequenceTables", "bit_length"]


def bit_length(x: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for non-negative int64 arrays.

    Exact for values below ``2^53`` (mesh coordinates are far smaller):
    ``frexp`` returns the exponent ``e`` with ``x = mant * 2^e``,
    ``0.5 <= mant < 1``, which is precisely the bit length; ``x == 0``
    yields 0.
    """
    return np.frexp(np.asarray(x, dtype=np.float64))[1].astype(np.int64)


class SequenceTables:
    """Batched bitonic-sequence construction for one decomposition.

    Produces, for packet arrays ``(sources, dests)``:

    * ``u`` — the number of *up* inner submeshes (the sequence is
      ``anc_s(1..u), bridge, anc_t(u..1)`` between the two leaves);
    * the bridge box per packet;
    * dense padded ``(N, S_max, d)`` arrays of inner-box corners/lengths
      ready for the batch engine's stage-major random draws.

    Only the mesh variant is supported (no torus): wrapped boxes make the
    bounding-arc arithmetic modular, and the engine falls back to the
    per-packet loop there.
    """

    def __init__(self, dec: Decomposition):
        if dec.mesh.torus:
            raise ValueError("SequenceTables supports mesh (non-torus) only")
        self.dec = dec
        self.mesh = dec.mesh
        self.d = dec.d
        self.k = dec.k
        self.m = dec.m
        #: shift offsets per height ``h`` (level ``k - h``), type-1 first
        self.shifts_at_height: dict[int, list[int]] = {
            h: dec.shifts(dec.level_of_height(h)) for h in range(1, self.k + 1)
        }
        #: padded inner-sequence capacity: ``2u + 1 <= 2k - 1`` slots
        self.max_inner = max(2 * self.k - 1, 1)

    @classmethod
    def for_mesh(cls, mesh: Mesh, scheme: str = "auto") -> "SequenceTables":
        """The process-wide shared instance for ``(mesh shape, scheme)``."""
        resolved = _cache.resolve_scheme(mesh, scheme)
        key = (mesh.sides, mesh.torus, resolved)
        return _cache.memo(
            "tables",
            key,
            lambda: cls(_cache.get_decomposition(mesh, resolved)),
        )

    # ------------------------------------------------------------------
    # Vectorised bridge searches
    # ------------------------------------------------------------------
    def _fit_candidates(
        self,
        h: int,
        lo: np.ndarray,
        hi: np.ndarray,
        min_side: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """First regular submesh (by type index) at height ``h`` containing
        each target box ``[lo, hi]``.

        Returns ``(found, bridge_lo, bridge_hi)`` over the input rows.
        ``min_side`` (per-row) enforces the Appendix-A side condition
        "every side at least ``2 * 2^{h'}``" on *clipped* candidates;
        type-1 candidates at height ``h > h'`` satisfy it structurally.
        """
        n = lo.shape[0]
        M = 1 << h
        found = np.zeros(n, dtype=bool)
        blo = np.zeros_like(lo)
        bhi = np.zeros_like(hi)
        # type 1: cells of the unshifted grid (always full-size, in-range)
        c_lo = lo >> h
        fit = (c_lo == (hi >> h)).all(axis=1)
        if min_side is not None:
            fit &= M >= min_side  # scalar side vs per-row requirement
        blo[fit] = c_lo[fit] << h
        bhi[fit] = blo[fit] + (M - 1)
        found |= fit
        # shifted types, in type-index order (the scalar search's ordering)
        for sigma in self.shifts_at_height[h][1:]:
            rem = ~found
            if not rem.any():
                break
            alo = (lo[rem] - sigma) // M
            fit = (alo == (hi[rem] - sigma) // M).all(axis=1)
            start = alo * M + sigma
            end = start + M - 1
            clo = np.maximum(start, 0)
            chi = np.minimum(end, self.m - 1)
            if self.dec.scheme == "paper2d":
                clipped = (start < 0) | (end > self.m - 1)
                fit &= ~clipped.all(axis=1)
            if min_side is not None:
                fit &= (chi - clo + 1 >= min_side[rem, None]).all(axis=1)
            rows = np.flatnonzero(rem)[fit]
            blo[rows] = clo[fit]
            bhi[rows] = chi[fit]
            found[rows] = True
        return found, blo, bhi

    def _bridges_bitonic(
        self, cs: np.ndarray, ct: np.ndarray, alive: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :func:`~repro.core.bridges.common_ancestor_2d`."""
        N = cs.shape[0]
        u = np.zeros(N, dtype=np.int64)
        bridge_lo = np.zeros_like(cs)
        bridge_hi = np.zeros_like(cs)
        unresolved = alive.copy()
        for h in range(1, self.k + 1):
            idx = np.flatnonzero(unresolved)
            if idx.size == 0:
                break
            half = h - 1
            a = cs[idx] >> half
            b = ct[idx] >> half
            lo = np.minimum(a, b) << half
            hi = (np.maximum(a, b) << half) + ((1 << half) - 1)
            found, blo, bhi = self._fit_candidates(h, lo, hi)
            done = idx[found]
            u[done] = h - 1
            bridge_lo[done] = blo[found]
            bridge_hi[done] = bhi[found]
            unresolved[done] = False
        if unresolved.any():  # pragma: no cover - the root always contains
            raise AssertionError("unreachable: no bridge found below the root")
        return u, bridge_lo, bridge_hi

    def _tops_type1(
        self, cs: np.ndarray, ct: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Deepest common type-1 ancestor (vectorised
        :func:`~repro.core.path_selection.common_type1_height`): the first
        height where ``cs >> h == ct >> h`` in every dimension, i.e. the
        max per-dimension bit length of ``cs ^ ct``."""
        h = bit_length(cs ^ ct).max(axis=1)
        lo = (cs >> h[:, None]) << h[:, None]
        side = (np.int64(1) << h)[:, None]
        return h - 1, lo, lo + side - 1

    def _bridges_general(
        self,
        cs: np.ndarray,
        ct: np.ndarray,
        alive: np.ndarray,
        use_bridges: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised Section-4 sequence tops (``find_bridge`` with the
        Appendix-A double-side condition, or the pure type-1 meeting)."""
        N = cs.shape[0]
        u = np.zeros(N, dtype=np.int64)
        bridge_lo = np.zeros_like(cs)
        bridge_hi = np.zeros_like(cs)
        dist = np.abs(cs - ct).sum(axis=1)
        hp = np.clip(bit_length(np.maximum(dist - 1, 0)), 0, max(self.k - 1, 0))
        same_cell = ((cs >> hp[:, None]) == (ct >> hp[:, None])).all(axis=1)
        pure = alive & (same_cell | (not use_bridges))
        if pure.any():
            pu, plo, phi = self._tops_type1(cs[pure], ct[pure])
            u[pure] = pu
            bridge_lo[pure] = plo
            bridge_hi[pure] = phi
        bridged = alive & ~pure
        if bridged.any():
            u[bridged] = hp[bridged]
            side = (np.int64(1) << hp[:, None])
            lo1 = (cs >> hp[:, None]) << hp[:, None]
            lo3 = (ct >> hp[:, None]) << hp[:, None]
            lo = np.minimum(lo1, lo3)
            hi = np.maximum(lo1 + side - 1, lo3 + side - 1)
            min_side = np.int64(2) << hp  # 2 * 2^{h'}
            unresolved = bridged.copy()
            for h in range(1, self.k + 1):
                idx = np.flatnonzero(unresolved & (hp + 1 <= h))
                if idx.size == 0:
                    continue
                found, blo, bhi = self._fit_candidates(
                    h, lo[idx], hi[idx], min_side=min_side[idx]
                )
                done = idx[found]
                bridge_lo[done] = blo[found]
                bridge_hi[done] = bhi[found]
                unresolved[done] = False
            if unresolved.any():  # pragma: no cover - root qualifies
                raise AssertionError("unreachable: no general bridge found")
        return u, bridge_lo, bridge_hi

    # ------------------------------------------------------------------
    # Dense padded box arrays for the batch engine
    # ------------------------------------------------------------------
    def batch_boxes(
        self,
        sources: np.ndarray,
        dests: np.ndarray,
        *,
        variant: str,
        use_bridges: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inner-box arrays for every packet's bitonic sequence.

        Returns ``(box_lo, box_len, n_inner)`` with shapes
        ``(N, S_max, d)``, ``(N, S_max, d)``, ``(N,)``.  Slot layout per
        packet (``u`` up entries): slots ``0..u-1`` are the type-1
        ancestors of the source at heights ``1..u``, slot ``u`` is the
        bridge, slots ``u+1..2u`` are the destination's ancestors at
        heights ``u..1``.  Unused slots are the single-node box of the
        destination, so a waypoint drawn there is the destination itself
        and contributes no movement — padding keeps every packet's random
        consumption identical without changing its path.
        """
        mesh = self.mesh
        cs = np.atleast_2d(mesh.flat_to_coords(sources))
        ct = np.atleast_2d(mesh.flat_to_coords(dests))
        N = cs.shape[0]
        alive = (cs != ct).any(axis=1)
        if variant == "bitonic2d":
            if use_bridges:
                u, blo, bhi = self._bridges_bitonic(cs, ct, alive)
            else:
                u = np.zeros(N, dtype=np.int64)
                blo = np.zeros_like(cs)
                bhi = np.zeros_like(ct)
                if alive.any():
                    pu, plo, phi = self._tops_type1(cs[alive], ct[alive])
                    u[alive], blo[alive], bhi[alive] = pu, plo, phi
        elif variant == "general":
            u, blo, bhi = self._bridges_general(cs, ct, alive, use_bridges)
        else:
            raise ValueError(f"unknown variant {variant!r}")

        S = self.max_inner
        d = self.d
        box_lo = np.broadcast_to(ct[:, None, :], (N, S, d)).copy()
        box_len = np.ones((N, S, d), dtype=np.int64)
        n_inner = np.where(alive, 2 * u + 1, 0)
        kernels.fill_box_chains(box_lo, box_len, cs, ct, u, blo, bhi, alive, self.k)
        return box_lo, box_len, n_inner
