"""The columnar path representation: one CSR structure for every layer.

A path collection is ragged — ``P`` paths of different lengths — and the
seed implementation shipped it around as ``list[np.ndarray]``, forcing
every consumer (congestion accounting, stretch, the schedulers, the
``.npz`` persistence) to re-loop over paths in Python.  :class:`PathSet`
stores the whole collection in CSR form instead:

* ``nodes``   — ``int64[total]``: every path's nodes, concatenated;
* ``offsets`` — ``int64[P + 1]``: path ``i`` is ``nodes[offsets[i]:offsets[i+1]]``.

Everything downstream becomes an array pass over shared, lazily cached
views: the per-path edge counts (:attr:`lengths`), the flat edge endpoint
streams (:attr:`edge_tails` / :attr:`edge_heads`), the per-path slices of
the flat *edge* stream (:attr:`edge_offsets`), per-element path ids
(:attr:`node_path_ids` / :attr:`edge_path_ids`), and the dense undirected
edge ids of a mesh (:meth:`edge_ids`).  This is the same move that makes
compact/semi-oblivious routing schemes practical at scale: one shared
columnar structure, no per-path Python work.

Compatibility contract
----------------------
``PathSet`` implements the immutable ``Sequence[np.ndarray]`` protocol —
``len(ps)``, ``ps[i]`` (a read-only ``int64`` view of path ``i``),
iteration, and equality array-for-array — so call sites written against
``list[np.ndarray]`` keep working unchanged.  The arrays themselves are
frozen (``writeable=False``); build a new ``PathSet`` instead of mutating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mesh.mesh import Mesh

__all__ = ["PathSet", "SharedCSR"]


@dataclass(frozen=True)
class SharedCSR:
    """A picklable handle to a :class:`PathSet` parked in shared memory.

    Produced by :meth:`PathSet.to_shared`, consumed by
    :meth:`PathSet.from_shared`.  The handle is tiny (a segment name plus
    two counts) and crosses process boundaries for free — the CSR payload
    itself never goes through pickle.  Whoever holds the handle owns the
    segment (:mod:`repro.core.shm` ownership protocol) and must either
    consume it or :meth:`discard` it.
    """

    name: str
    num_paths: int
    num_nodes: int

    @property
    def nbytes(self) -> int:
        return 8 * (self.num_paths + 1 + self.num_nodes)

    def discard(self) -> bool:
        """Unlink the segment unconsumed (error-path cleanup)."""
        from repro.core import shm as _shm

        return _shm.discard(self.name)


def _frozen(arr: np.ndarray) -> np.ndarray:
    """A read-only int64 array that cannot alias writable caller memory.

    When the input is already contiguous ``int64``, ``ascontiguousarray``
    hands back the caller's own buffer (or a view into it); freezing a
    *view* would leave the underlying buffer writable, so a later in-place
    write through the source array could silently corrupt the CSR and
    every cached derived view.  Copy whenever any buffer the result shares
    memory with is still writable; wrap zero-copy only when the whole
    chain is already read-only.
    """
    out = np.ascontiguousarray(arr, dtype=np.int64)
    if out is arr or out.base is not None:
        root = out
        while isinstance(root.base, np.ndarray):
            root = root.base
        # A read-only memoryview root (``np.frombuffer(mv.toreadonly())``,
        # the shared-memory wrap) cannot be written through any alias, so
        # it is safe to reference zero-copy; any other non-ndarray base is
        # treated as a writable alias and copied.
        base = root.base
        base_safe = base is None or (
            isinstance(base, memoryview) and base.readonly
        )
        writable_alias = (
            out.flags.writeable or root.flags.writeable or not base_safe
        )
        out = out.copy() if writable_alias else out.view()
    out.setflags(write=False)
    return out


def _frozen_owned(arr: np.ndarray) -> np.ndarray:
    """Freeze a freshly computed array in place (no external references)."""
    arr.setflags(write=False)
    return arr


class PathSet(Sequence):
    """An immutable CSR collection of mesh paths.

    Construct with :meth:`from_paths` (any iterable of node arrays) or
    :meth:`from_arrays` (an already-flat ``nodes`` / ``offsets`` pair, the
    zero-copy path used by the batch engine and the ``.npz`` loader).
    """

    def __init__(self, nodes: np.ndarray, offsets: np.ndarray):
        nodes = _frozen(np.atleast_1d(np.asarray(nodes)))
        offsets = _frozen(np.atleast_1d(np.asarray(offsets)))
        if nodes.ndim != 1 or offsets.ndim != 1:
            raise ValueError("nodes and offsets must be 1-D arrays")
        if offsets.size == 0 or offsets[0] != 0 or offsets[-1] != nodes.size:
            raise ValueError(
                "offsets must run from 0 to nodes.size "
                f"(got {offsets[:1]}..{offsets[-1:]} over {nodes.size} nodes)"
            )
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        self.nodes = nodes
        self.offsets = offsets
        self._edge_id_cache: dict = {}

    # -- constructors --------------------------------------------------
    @classmethod
    def from_arrays(cls, nodes: np.ndarray, offsets: np.ndarray) -> "PathSet":
        """Wrap existing CSR arrays (no copy when already ``int64``)."""
        return cls(nodes, offsets)

    @classmethod
    def from_lengths(cls, nodes: np.ndarray, lengths: np.ndarray) -> "PathSet":
        """Wrap a flat node array plus per-path *node counts*."""
        lengths = np.asarray(lengths, dtype=np.int64)
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        offsets.setflags(write=False)  # freshly built: freeze for zero-copy wrap
        return cls(nodes, offsets)

    @classmethod
    def concatenate(cls, parts: Iterable["PathSet"]) -> "PathSet":
        """One CSR holding the paths of ``parts`` in order (shard merge).

        Path ``k`` of the result is byte-identical to the path it came
        from: node buffers concatenate verbatim and each part's offsets are
        shifted by the nodes preceding it.  Merging the per-shard results
        of a split problem therefore reproduces the serial CSR exactly.
        """
        parts = list(parts)
        if not parts:
            return cls.from_paths([])
        if len(parts) == 1:
            return parts[0]
        nodes = np.concatenate([p.nodes for p in parts])
        shifts = np.cumsum([0] + [p.total_nodes for p in parts[:-1]])
        offsets = np.concatenate(
            [parts[0].offsets[:1]]
            + [p.offsets[1:] + s for p, s in zip(parts, shifts.tolist())]
        )
        nodes.setflags(write=False)
        offsets.setflags(write=False)
        return cls(nodes, offsets)

    # -- shared-memory interchange -------------------------------------
    def to_shared(self) -> SharedCSR:
        """Park this CSR in a fresh shared-memory segment; hand off ownership.

        Layout: ``offsets`` (``num_paths + 1`` int64) then ``nodes``,
        little meta beyond the returned :class:`SharedCSR` handle.  The
        calling process gives up its claim immediately
        (:func:`repro.core.shm.handoff`), so the receiver of the handle —
        typically the other side of a process boundary — is the sole owner
        and must unlink after consuming (:meth:`from_shared` +
        :meth:`close_shared`, or :meth:`SharedCSR.discard`).
        """
        from repro.core import shm as _shm

        off, nod = self.offsets, self.nodes
        seg = _shm.create_segment(8 * (off.size + nod.size))
        buf = np.frombuffer(seg.buf, dtype=np.int64, count=off.size + nod.size)
        buf[: off.size] = off
        buf[off.size :] = nod
        desc = SharedCSR(seg.name, self.num_paths, self.total_nodes)
        del buf  # drop the buffer export before closing the mapping
        _shm.handoff(seg)
        return desc

    @classmethod
    def from_shared(cls, desc: SharedCSR, *, copy: bool = False) -> "PathSet":
        """Open a :class:`SharedCSR` handle as a PathSet.

        ``copy=False`` (the zero-copy path) wraps read-only views straight
        over the segment: no bytes move, but the PathSet now *owns* the
        segment and must be released with :meth:`close_shared` when done.
        ``copy=True`` copies out, closes the mapping immediately, and
        leaves the segment linked for other consumers (call
        :meth:`SharedCSR.discard` when the handle is retired).
        """
        from repro.core import shm as _shm

        seg = _shm.attach(desc.name)
        ro = seg.buf.toreadonly()
        off = np.frombuffer(ro, dtype=np.int64, count=desc.num_paths + 1)
        nod = np.frombuffer(
            ro, dtype=np.int64, count=desc.num_nodes, offset=8 * (desc.num_paths + 1)
        )
        if copy:
            ps = cls(nod.copy(), off.copy())
            del nod, off, ro
            seg.close()
            return ps
        ps = cls(nod, off)
        ps._shm = seg
        return ps

    def close_shared(self, *, unlink: bool = False) -> bool:
        """Release the shared segment backing this PathSet.

        Terminal: every array of the PathSet (and every cached derived
        view) is dropped so the mapping can actually be released — the
        object must not be used afterwards.  ``unlink=True`` additionally
        removes the segment itself, the final act of ownership.  Returns
        ``False`` (and does nothing) when this PathSet is not
        shared-memory backed, so unconditional cleanup is safe.
        """
        seg = self.__dict__.pop("_shm", None)
        if seg is None:
            return False
        self.__dict__.clear()  # nodes/offsets + caches alias the mapping
        self.nodes = _frozen_owned(np.empty(0, dtype=np.int64))
        self.offsets = _frozen_owned(np.zeros(1, dtype=np.int64))
        self._edge_id_cache = {}
        try:
            seg.close()
        except BufferError as exc:  # pragma: no cover - caller kept a view
            raise BufferError(
                "cannot release shared PathSet segment: views of its arrays "
                "escaped; copy them (or use from_shared(copy=True)) first"
            ) from exc
        if unlink:
            try:
                seg.unlink()
            except FileNotFoundError:
                # Already reclaimed — e.g. an orphan sweep unlinked the name
                # after this PathSet attached.  The mapping was still valid
                # (POSIX keeps unlinked segments alive while mapped), so
                # nothing was lost; unlink is simply done.
                pass
        return True

    @classmethod
    def from_paths(cls, paths: "PathSet" | Iterable[np.ndarray]) -> "PathSet":
        """Convert a list of per-path node arrays (idempotent on PathSet)."""
        if isinstance(paths, PathSet):
            return paths
        parts = [np.asarray(p, dtype=np.int64).reshape(-1) for p in paths]
        lengths = np.asarray([p.size for p in parts], dtype=np.int64)
        nodes = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        nodes.setflags(write=False)  # np.concatenate always copies: ours to freeze
        return cls.from_lengths(nodes, lengths)

    # -- shape ---------------------------------------------------------
    @property
    def num_paths(self) -> int:
        return self.offsets.size - 1

    @property
    def total_nodes(self) -> int:
        return self.nodes.size

    @property
    def nodes_per_path(self) -> np.ndarray:
        """``int64[P]``: node count of every path."""
        if not hasattr(self, "_nodes_per_path"):
            self._nodes_per_path = _frozen_owned(np.diff(self.offsets))
        return self._nodes_per_path

    @property
    def lengths(self) -> np.ndarray:
        """``int64[P]``: edge count ``|p_i|`` of every path (>= 0)."""
        if not hasattr(self, "_lengths"):
            self._lengths = _frozen_owned(np.maximum(self.nodes_per_path - 1, 0))
        return self._lengths

    @property
    def total_edges(self) -> int:
        return int(self.lengths.sum())

    # -- flat edge streams ---------------------------------------------
    @property
    def _edge_tail_idx(self) -> np.ndarray:
        """Indices into ``nodes`` of every edge's tail (path-order)."""
        if not hasattr(self, "_edge_tail_idx_"):
            mask = np.ones(self.total_nodes, dtype=bool)
            ends = self.offsets[1:] - 1
            mask[ends[self.nodes_per_path > 0]] = False
            self._edge_tail_idx_ = _frozen_owned(np.flatnonzero(mask))
        return self._edge_tail_idx_

    @property
    def edge_tails(self) -> np.ndarray:
        """``int64[total_edges]``: tail node of every edge, path-major."""
        if not hasattr(self, "_edge_tails"):
            self._edge_tails = _frozen_owned(self.nodes[self._edge_tail_idx])
        return self._edge_tails

    @property
    def edge_heads(self) -> np.ndarray:
        """``int64[total_edges]``: head node of every edge, path-major."""
        if not hasattr(self, "_edge_heads"):
            self._edge_heads = _frozen_owned(self.nodes[self._edge_tail_idx + 1])
        return self._edge_heads

    @property
    def edge_offsets(self) -> np.ndarray:
        """``int64[P + 1]``: path ``i``'s edges are the flat-edge-stream
        slice ``[edge_offsets[i], edge_offsets[i + 1])``."""
        if not hasattr(self, "_edge_offsets"):
            out = np.zeros(self.num_paths + 1, dtype=np.int64)
            np.cumsum(self.lengths, out=out[1:])
            self._edge_offsets = _frozen_owned(out)
        return self._edge_offsets

    @property
    def node_path_ids(self) -> np.ndarray:
        """``int64[total_nodes]``: owning path id of every node entry."""
        if not hasattr(self, "_node_path_ids"):
            self._node_path_ids = _frozen_owned(
                np.repeat(
                    np.arange(self.num_paths, dtype=np.int64),
                    self.nodes_per_path,
                )
            )
        return self._node_path_ids

    @property
    def edge_path_ids(self) -> np.ndarray:
        """``int64[total_edges]``: owning path id of every edge entry."""
        if not hasattr(self, "_edge_path_ids"):
            self._edge_path_ids = _frozen_owned(
                np.repeat(np.arange(self.num_paths, dtype=np.int64), self.lengths)
            )
        return self._edge_path_ids

    def edge_ids(self, mesh: "Mesh") -> np.ndarray:
        """Dense undirected edge ids of every edge on ``mesh`` (cached).

        Raises ``ValueError`` if any consecutive node pair is not a mesh
        link — the same validation contract as ``Mesh.edge_ids``.

        Keyed by the mesh object itself (``Mesh`` hashes by shape, a
        ``GeneralGraph`` by content digest), so same-shaped topologies with
        different edge tables never collide in the cache.
        """
        key = mesh
        ids = self._edge_id_cache.get(key)
        if ids is None:
            ids = _frozen_owned(mesh.edge_ids(self.edge_tails, self.edge_heads))
            self._edge_id_cache[key] = ids
        return ids

    # -- Sequence protocol ---------------------------------------------
    def __len__(self) -> int:
        return self.num_paths

    def __getitem__(self, i):
        if isinstance(i, slice):
            return PathSet.from_paths([self[j] for j in range(*i.indices(len(self)))])
        i = int(i)
        if i < 0:
            i += self.num_paths
        if not 0 <= i < self.num_paths:
            raise IndexError(f"path index {i} out of range for {self.num_paths} paths")
        return self.nodes[self.offsets[i] : self.offsets[i + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        nodes, offsets = self.nodes, self.offsets
        for i in range(self.num_paths):
            yield nodes[offsets[i] : offsets[i + 1]]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PathSet):
            return np.array_equal(self.offsets, other.offsets) and np.array_equal(
                self.nodes, other.nodes
            )
        return NotImplemented

    __hash__ = None  # mutable-adjacent semantics: equality is by content

    def to_list(self) -> list:
        """Materialise as ``list[np.ndarray]`` (fresh writable copies)."""
        return [np.array(p) for p in self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PathSet({self.num_paths} paths, {self.total_nodes} nodes, "
            f"{self.total_edges} edges)"
        )
