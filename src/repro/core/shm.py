"""POSIX shared-memory primitives with explicit ownership hand-off.

The service tier moves :class:`~repro.core.pathset.PathSet` CSR arrays
between processes through named ``multiprocessing.shared_memory`` segments
instead of pickling them.  That only works if ownership is explicit:
Python's resource tracker assumes *the creating process* owns a segment
and unlinks it (with a warning) when that process exits, which is exactly
wrong for a hand-off — the worker that produced a result dies long before
the parent has consumed it.

The ownership protocol, used everywhere in this repo:

1. The **producer** calls :func:`create_segment`, writes its payload, and
   calls :func:`handoff` — which *unregisters* the segment from the
   producer's resource tracker and closes the producer's mapping.  From
   that moment the producer holds nothing; the segment lives in the
   kernel, owned by whoever holds its descriptor.
2. The **consumer** calls :func:`attach` to map it, reads (zero-copy or
   by copy), then ``close()``\\ s its mapping and — as the terminal act of
   ownership — ``unlink()``\\ s the segment.

A consumer that forgets step 2 leaks kernel memory until reboot; the CI
service-smoke leg audits :func:`active_segments` after shutdown to catch
exactly that.  All repo-created segments carry the ``repro-`` name prefix
so the audit never flags foreign segments.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory
from pathlib import Path

__all__ = [
    "SEGMENT_PREFIX",
    "active_segments",
    "attach",
    "create_segment",
    "discard",
    "handoff",
]

#: every segment this repo creates is named ``repro-<pid>-<hex>`` so leak
#: audits can scan for ours and only ours
SEGMENT_PREFIX = "repro-"

_SHM_DIR = Path("/dev/shm")


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """A fresh named segment of ``nbytes`` (>= 1) bytes, prefix-named."""
    size = max(int(nbytes), 1)
    for _ in range(16):
        name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(6)}"
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:  # pragma: no cover - 48-bit collision
            continue
    raise RuntimeError("could not allocate a unique shared-memory name")


def handoff(seg: shared_memory.SharedMemory) -> None:
    """Give up this process's ownership of ``seg`` (producer's final act).

    Unregisters the segment from the local resource tracker — so this
    process exiting no longer auto-unlinks it out from under the consumer
    — and closes the local mapping.  After this call the *receiver* of the
    segment's name owns it and must eventually ``unlink``.
    """
    try:  # CPython keeps this private; degrade to a tracked segment if gone
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - non-CPython fallback
        pass
    seg.close()


def attach(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment by name (consumer side; never registers)."""
    return shared_memory.SharedMemory(name=name)


def discard(name: str) -> bool:
    """Close-and-unlink a segment by name; ``False`` if already gone."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    seg.unlink()
    return True


def active_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live repo-created segments (the leak audit).

    Reads ``/dev/shm`` directly on platforms that expose it; elsewhere
    returns ``[]`` (the audit is then a no-op rather than a false alarm).
    """
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in _SHM_DIR.iterdir() if p.name.startswith(prefix))
