"""Random-bit accounting and the recycled-bit scheme (Section 5).

The paper proves that oblivious algorithms with near-optimal congestion
*must* randomize — ``Ω((d / (1 + d/log n)) log(D/d))`` random bits per
packet — and that algorithm ``H`` needs only ``O(d log(D d))`` bits, which
is within ``O(d)`` of that lower bound (Theorem 5.5).  The saving over the
naive ``O(d log^2(D d))`` comes from two tricks (Section 5.3):

i.  pick the random dimension ordering *once* per path and reuse it in
    every step;
ii. draw two random "master" nodes ``v1``, ``v2`` in the *largest* submesh
    of the bitonic path and derive the random node of every smaller submesh
    from prefixes of their bits, alternating between ``v1`` (odd steps) and
    ``v2`` (even steps) so that consecutive subpath endpoints stay
    independent.

:class:`BitCounter` wraps a numpy generator and counts every bit drawn;
:class:`RecycledBits` implements trick (ii).  The routers accept either a
plain ``numpy.random.Generator`` or a :class:`BitCounter`, so accounting is
pay-for-use.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["BitCounter", "RecycledBits", "bits_for_range"]


def bits_for_range(extent: int) -> int:
    """Bits needed to cover ``extent`` outcomes: ``ceil(log2 extent)``."""
    if extent < 1:
        raise ValueError("extent must be >= 1")
    return (extent - 1).bit_length()


class BitCounter:
    """A bit-metered source of randomness.

    All randomness is drawn bit-by-bit from the wrapped generator and
    tallied in :attr:`bits_used`.  Sampling a uniform integer below a
    non-power-of-two bound uses rejection, so the tally is itself a random
    variable slightly above the entropy — exactly what an implementation
    consuming a physical bit stream would pay.
    """

    def __init__(self, rng: np.random.Generator | int | None = None):
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._rng = rng
        self.bits_used = 0

    def reset(self) -> None:
        self.bits_used = 0

    def bits(self, n: int) -> int:
        """Draw ``n`` random bits, returned as an integer in ``[0, 2^n)``."""
        if n < 0:
            raise ValueError("cannot draw a negative number of bits")
        if n == 0:
            return 0
        self.bits_used += n
        out = 0
        remaining = n
        while remaining > 0:
            chunk = min(remaining, 32)
            out = (out << chunk) | int(self._rng.integers(0, 1 << chunk))
            remaining -= chunk
        return out

    def integer_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound < 1:
            raise ValueError("bound must be >= 1")
        if bound == 1:
            return 0
        width = bits_for_range(bound)
        while True:
            x = self.bits(width)
            if x < bound:
                return x

    def permutation(self, d: int) -> tuple[int, ...]:
        """A uniformly random ordering of ``d`` dimensions (Fisher-Yates).

        Costs about ``log2(d!)`` bits — the ``O(d log d)`` term of
        Lemma 5.4.
        """
        order = list(range(d))
        for i in range(d - 1, 0, -1):
            j = self.integer_below(i + 1)
            order[i], order[j] = order[j], order[i]
        return tuple(order)

    def uniform_node(self, box) -> int:
        """A uniformly random node of ``box`` (step 5 of the algorithm).

        Works for plain and wrapped boxes via the shared ``sides`` /
        ``offset_node`` interface.
        """
        offsets = [self.integer_below(side) for side in box.sides]
        return box.offset_node(offsets)


class RecycledBits:
    """Derives all intermediate random nodes of one path from two masters.

    Parameters
    ----------
    source:
        The bit-metered randomness source.
    largest:
        The largest submesh of the bitonic path (the bridge); both master
        draws are sized to it.

    Each master stores, per dimension, a uniform ``ceil(log2 side)``-bit
    word ``W``.  The node for a smaller power-of-two-sided submesh takes the
    low bits of ``W`` — exactly uniform in its box.  The master's own
    coordinate is ``lo + (W mod side)``: exactly uniform when the bridge
    side is a power of two (every untruncated bridge), and at most a
    factor-2 biased on border-clipped bridges — the "minor technical details
    due to edge effects" the paper waves at in Lemma 3.3's proof.  Masters
    alternate by step parity, the paper's device for keeping the two
    endpoints of every subpath independent.
    """

    def __init__(self, source: BitCounter, largest):
        self.source = source
        self.largest = largest
        d = largest.mesh.d
        self._widths = [bits_for_range(side) for side in largest.sides]
        self._masters: list[list[int]] = [
            [source.bits(self._widths[i]) for i in range(d)] for _ in range(2)
        ]

    def master_node(self, which: int) -> int:
        """The flat id of master ``which`` (0 or 1) inside the largest box."""
        words = self._masters[which % 2]
        offsets = [w % side for side, w in zip(self.largest.sides, words)]
        return self.largest.offset_node(offsets)

    def node_for(self, step: int, box: Submesh) -> int:
        """Uniform node of ``box`` derived from master ``step % 2``.

        ``box`` must have power-of-two side lengths (type-1 submeshes always
        do); for the largest box itself the master node is returned.
        """
        if box == self.largest:
            return self.master_node(step)
        words = self._masters[step % 2]
        offsets = []
        for i, side in enumerate(box.sides):
            if side & (side - 1):
                raise ValueError(
                    "recycled bits require power-of-two sides for derived "
                    f"boxes, got side {side}"
                )
            need = bits_for_range(side)
            if need > self._widths[i]:
                raise ValueError("derived box is wider than the master box")
            offsets.append(words[i] & (side - 1))
        return box.offset_node(offsets)
