"""Random-bit accounting and the recycled-bit scheme (Section 5).

The paper proves that oblivious algorithms with near-optimal congestion
*must* randomize — ``Ω((d / (1 + d/log n)) log(D/d))`` random bits per
packet — and that algorithm ``H`` needs only ``O(d log(D d))`` bits, which
is within ``O(d)`` of that lower bound (Theorem 5.5).  The saving over the
naive ``O(d log^2(D d))`` comes from two tricks (Section 5.3):

i.  pick the random dimension ordering *once* per path and reuse it in
    every step;
ii. draw two random "master" nodes ``v1``, ``v2`` in the *largest* submesh
    of the bitonic path and derive the random node of every smaller submesh
    from prefixes of their bits, alternating between ``v1`` (odd steps) and
    ``v2`` (even steps) so that consecutive subpath endpoints stay
    independent.

:class:`BitCounter` wraps a numpy generator and counts every bit drawn;
:class:`RecycledBits` implements trick (ii).  The routers accept either a
plain ``numpy.random.Generator`` or a :class:`BitCounter`, so accounting is
pay-for-use.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "BitCounter",
    "RecycledBits",
    "bits_for_range",
    "resolve_entropy",
    "packet_seed_sequence",
    "packet_stream",
    "packet_streams",
    "spawn_state",
    "packet_uniforms",
    "SIM_ARRIVALS",
    "SIM_PATHS",
    "SIM_SCHED",
    "SIM_REROUTE",
    "SIM_TRAFFIC",
]

# ---------------------------------------------------------------------------
# Global-index seed derivation (the sharding contract)
# ---------------------------------------------------------------------------
#
# Every per-packet random stream is keyed by the packet's *global* index via
# ``np.random.SeedSequence(entropy, spawn_key=(*prefix, index))``.  Keying by
# global index (never by shard-local order) is what makes sharded execution
# byte-identical to serial execution for every shard count: worker ``k``
# routing packets ``[a, b)`` derives exactly the streams the serial engine
# would have derived for those packets.
#
# Two consumers share the contract:
#
# * the per-packet fallback loop builds a real ``Generator(PCG64(child))``
#   per packet (scalar ``select_path`` cannot be vectorised anyway);
# * the batched engine needs *vectorised* per-packet uniforms, so
#   :func:`spawn_state` re-implements SeedSequence's hash pipeline with the
#   per-index spawn-key word as the only vectorised input.  The replica is
#   exact — ``tests/test_parallel_properties.py`` asserts word-for-word
#   equality against ``SeedSequence.generate_state`` — so the engine's
#   uniforms are *defined* in terms of the public numpy primitive, not a
#   private scheme.
#
# Stream-name constants keep ``simulate_online``'s independent branches
# (arrivals, per-packet path selection, scheduler tie-breaks, mid-flight
# reroutes) from colliding with each other; ``Router.route`` uses the bare
# ``(index,)`` key.

#: ``simulate_online`` spawn-key branches (see :mod:`repro.simulation.online`).
SIM_ARRIVALS = 1
SIM_PATHS = 2
SIM_SCHED = 3
SIM_REROUTE = 4
#: traffic-process arrival streams (see :mod:`repro.workloads.traffic`);
#: keyed per *step*, not per packet, so arrival generation is independent
#: of batch/chunk boundaries.
SIM_TRAFFIC = 5

# SeedSequence hash constants (numpy's bit_generator.pyx, after the C++
# randutils lineage).  Note numpy's ``mix`` *subtracts* the two products —
# it does not XOR them — which tests pin by comparing against numpy itself.
_M32 = 0xFFFFFFFF
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_L = 0xCA01F9DD
_MIX_R = 0x4973F715
_XSHIFT = 16
_POOL = 4


def resolve_entropy(seed: int | str | None) -> int:
    """Resolve a user-facing seed to the concrete root entropy integer.

    ``None`` draws fresh OS entropy *once*; sharded execution resolves the
    seed in the parent and ships the same integer to every worker, so even
    unseeded runs are internally consistent across shard counts.  The
    resolved value is stored on :class:`~repro.routing.base.RoutingResult`
    so any run can be replayed exactly.

    Decimal strings are accepted as well — the on-disk convention from
    ``repro.io``, which stores the (up to 128-bit) resolved entropy as a
    decimal string because HDF5/int64 cannot hold it.  ``"42"`` and ``42``
    resolve identically, so replaying a saved result's seed field is a
    straight round-trip.
    """
    if seed is None:
        return int(np.random.SeedSequence().entropy)
    if isinstance(seed, str):
        text = seed.strip()
        if not text.isdigit():
            raise ValueError(
                f"string seeds must be non-negative decimal integers, got {seed!r}"
            )
        return int(text)
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError("seed must be non-negative")
        return int(seed)
    raise TypeError(
        f"seed must be an int, a decimal string, or None, got {type(seed).__name__}"
    )


def packet_seed_sequence(
    entropy: int, index: int, prefix: tuple[int, ...] = ()
) -> np.random.SeedSequence:
    """The canonical ``SeedSequence`` of one global packet index.

    With an empty ``prefix`` this is exactly the ``index``-th child that
    ``np.random.default_rng(entropy).spawn(n)`` would produce, for any
    ``n > index`` — the scheme is the old per-packet ``spawn`` keyed by
    global position instead of spawn order.

    Indices are bounded to 32 bits, matching :func:`spawn_state`'s guard:
    ``SeedSequence`` would silently split a wider index into *two*
    spawn-key words, so the scalar loop and the vectorised engine would
    derive different streams for the same packet.  Rejecting the index in
    both keeps the contract single-worded everywhere.
    """
    index = int(index)
    if not 0 <= index <= _M32:
        raise ValueError("packet indices must fit in 32 bits and be non-negative")
    return np.random.SeedSequence(entropy, spawn_key=(*prefix, index))


def packet_stream(
    entropy: int, index: int, prefix: tuple[int, ...] = ()
) -> np.random.Generator:
    """A fresh per-packet generator for global packet ``index``."""
    return np.random.default_rng(packet_seed_sequence(entropy, index, prefix))


def packet_streams(
    entropy: int, start: int, stop: int, prefix: tuple[int, ...] = ()
) -> list[np.random.Generator]:
    """Per-packet generators for the global index range ``[start, stop)``."""
    return [packet_stream(entropy, i, prefix) for i in range(start, stop)]


def _entropy_words(value: int) -> list[int]:
    """``value`` as little-endian uint32 words (at least one word)."""
    if value < 0:
        raise ValueError("entropy words must be non-negative")
    words = []
    while value:
        words.append(value & _M32)
        value >>= 32
    return words or [0]


def _hashmix_scalar(value: int, const: int) -> tuple[int, int]:
    value = (value ^ const) & _M32
    const = (const * _MULT_A) & _M32
    value = (value * const) & _M32
    value ^= value >> _XSHIFT
    return value, const


def _mix_scalar(x: int, y: int) -> int:
    result = ((x * _MIX_L) - (y * _MIX_R)) & _M32
    return result ^ (result >> _XSHIFT)


def spawn_state(
    entropy: int,
    indices: np.ndarray,
    n_words: int,
    prefix: tuple[int, ...] = (),
) -> np.ndarray:
    """Vectorised ``SeedSequence(entropy, spawn_key=(*prefix, i)).generate_state``.

    Returns a ``(len(indices), n_words)`` uint32 array whose row ``k``
    equals ``np.random.SeedSequence(entropy, spawn_key=(*prefix,
    indices[k])).generate_state(n_words)`` word for word.  Everything up to
    the final spawn-key word is index-independent and computed once; only
    the four pool-mixing rounds of the index word and the output pass run
    over the whole index array.
    """
    idx_in = np.asarray(indices)
    if idx_in.ndim != 1:
        raise ValueError("indices must be one-dimensional")
    # Validate *before* the unsigned cast: a negative index would wrap to a
    # huge uint64 and be rejected with a misleading width message (or, worse,
    # slip through on platforms whose cast saturates).
    if (
        idx_in.size
        and np.issubdtype(idx_in.dtype, np.signedinteger)
        and int(idx_in.min()) < 0
    ):
        raise ValueError("packet indices must fit in 32 bits and be non-negative")
    idx = np.ascontiguousarray(idx_in, dtype=np.uint64)
    if idx.size and int(idx.max()) > _M32:
        raise ValueError("packet indices must fit in 32 bits and be non-negative")
    # Assembled entropy: root words padded to the pool size (spawn keys are
    # always present here), then one word per prefix element.  The per-index
    # word is appended by the vectorised rounds below.
    head = _entropy_words(entropy)
    if len(head) < _POOL:
        head = head + [0] * (_POOL - len(head))
    for part in prefix:
        if not 0 <= int(part) <= _M32:
            raise ValueError("spawn-key prefix words must fit in 32 bits")
        head.extend(_entropy_words(int(part)))

    # Scalar phase: pool fill + inter-pool mixing + prefix words.
    const = _INIT_A
    pool = []
    for i in range(_POOL):
        value, const = _hashmix_scalar(head[i] if i < len(head) else 0, const)
        pool.append(value)
    for i_src in range(_POOL):
        for i_dst in range(_POOL):
            if i_src != i_dst:
                value, const = _hashmix_scalar(pool[i_src], const)
                pool[i_dst] = _mix_scalar(pool[i_dst], value)
    for i_src in range(_POOL, len(head)):
        for i_dst in range(_POOL):
            value, const = _hashmix_scalar(head[i_src], const)
            pool[i_dst] = _mix_scalar(pool[i_dst], value)

    # Vectorised phase: mix the per-index word into each pool lane.  uint64
    # wraparound then a 32-bit mask is exact mod-2^32 arithmetic.
    lanes = np.empty((_POOL, idx.size), dtype=np.uint64)
    for i_dst in range(_POOL):
        value = (idx ^ np.uint64(const)) & np.uint64(_M32)
        const = (const * _MULT_A) & _M32
        value = (value * np.uint64(const)) & np.uint64(_M32)
        value ^= value >> np.uint64(_XSHIFT)
        mixed = (
            np.uint64(pool[i_dst]) * np.uint64(_MIX_L) - value * np.uint64(_MIX_R)
        ) & np.uint64(_M32)
        lanes[i_dst] = mixed ^ (mixed >> np.uint64(_XSHIFT))

    # Output pass (generate_state): cycle through the pool lanes.
    out = np.empty((idx.size, n_words), dtype=np.uint32)
    const = _INIT_B
    for w in range(n_words):
        value = lanes[w % _POOL] ^ np.uint64(const)
        const = (const * _MULT_B) & _M32
        value = (value * np.uint64(const)) & np.uint64(_M32)
        value ^= value >> np.uint64(_XSHIFT)
        out[:, w] = value.astype(np.uint32)
    return out


def packet_uniforms(
    entropy: int,
    indices: np.ndarray,
    n_doubles: int,
    prefix: tuple[int, ...] = (),
) -> np.ndarray:
    """Per-packet uniforms in ``[0, 1)``, keyed by global packet index.

    Row ``k`` holds ``n_doubles`` uniforms derived from packet
    ``indices[k]``'s seed sequence: ``generate_state(n_doubles,
    dtype=np.uint64)`` mapped through the standard 53-bit conversion
    ``(word >> 11) * 2**-53``.  Packet ``i``'s values depend only on
    ``(entropy, prefix, i)`` — never on the batch it arrives in — which is
    the whole sharding story.
    """
    # No unsigned pre-cast here: hand the raw indices to spawn_state so its
    # sign/width validation sees them before any wraparound can occur.
    words = spawn_state(entropy, indices, 2 * n_doubles, prefix).astype(np.uint64)
    # generate_state(dtype=uint64) is the little-endian view of uint32
    # pairs: low word first.
    u64 = words[:, 0::2] | (words[:, 1::2] << np.uint64(32))
    return (u64 >> np.uint64(11)) * (2.0**-53)


def bits_for_range(extent: int) -> int:
    """Bits needed to cover ``extent`` outcomes: ``ceil(log2 extent)``."""
    if extent < 1:
        raise ValueError("extent must be >= 1")
    return (extent - 1).bit_length()


class BitCounter:
    """A bit-metered source of randomness.

    All randomness is drawn bit-by-bit from the wrapped generator and
    tallied in :attr:`bits_used`.  Sampling a uniform integer below a
    non-power-of-two bound uses rejection, so the tally is itself a random
    variable slightly above the entropy — exactly what an implementation
    consuming a physical bit stream would pay.
    """

    def __init__(self, rng: np.random.Generator | int | None = None):
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._rng = rng
        self.bits_used = 0

    def reset(self) -> None:
        self.bits_used = 0

    def bits(self, n: int) -> int:
        """Draw ``n`` random bits, returned as an integer in ``[0, 2^n)``."""
        if n < 0:
            raise ValueError("cannot draw a negative number of bits")
        if n == 0:
            return 0
        self.bits_used += n
        out = 0
        remaining = n
        while remaining > 0:
            chunk = min(remaining, 32)
            out = (out << chunk) | int(self._rng.integers(0, 1 << chunk))
            remaining -= chunk
        return out

    def integer_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound < 1:
            raise ValueError("bound must be >= 1")
        if bound == 1:
            return 0
        width = bits_for_range(bound)
        while True:
            x = self.bits(width)
            if x < bound:
                return x

    def permutation(self, d: int) -> tuple[int, ...]:
        """A uniformly random ordering of ``d`` dimensions (Fisher-Yates).

        Costs about ``log2(d!)`` bits — the ``O(d log d)`` term of
        Lemma 5.4.
        """
        order = list(range(d))
        for i in range(d - 1, 0, -1):
            j = self.integer_below(i + 1)
            order[i], order[j] = order[j], order[i]
        return tuple(order)

    def uniform_node(self, box) -> int:
        """A uniformly random node of ``box`` (step 5 of the algorithm).

        Works for plain and wrapped boxes via the shared ``sides`` /
        ``offset_node`` interface.
        """
        offsets = [self.integer_below(side) for side in box.sides]
        return box.offset_node(offsets)


class RecycledBits:
    """Derives all intermediate random nodes of one path from two masters.

    Parameters
    ----------
    source:
        The bit-metered randomness source.
    largest:
        The largest submesh of the bitonic path (the bridge); both master
        draws are sized to it.

    Each master stores, per dimension, a uniform ``ceil(log2 side)``-bit
    word ``W``.  The node for a smaller power-of-two-sided submesh takes the
    low bits of ``W`` — exactly uniform in its box.  The master's own
    coordinate is ``lo + (W mod side)``: exactly uniform when the bridge
    side is a power of two (every untruncated bridge), and at most a
    factor-2 biased on border-clipped bridges — the "minor technical details
    due to edge effects" the paper waves at in Lemma 3.3's proof.  Masters
    alternate by step parity, the paper's device for keeping the two
    endpoints of every subpath independent.
    """

    def __init__(self, source: BitCounter, largest):
        self.source = source
        self.largest = largest
        d = largest.mesh.d
        self._widths = [bits_for_range(side) for side in largest.sides]
        self._masters: list[list[int]] = [
            [source.bits(self._widths[i]) for i in range(d)] for _ in range(2)
        ]

    def master_node(self, which: int) -> int:
        """The flat id of master ``which`` (0 or 1) inside the largest box."""
        words = self._masters[which % 2]
        offsets = [w % side for side, w in zip(self.largest.sides, words)]
        return self.largest.offset_node(offsets)

    def node_for(self, step: int, box: Submesh) -> int:
        """Uniform node of ``box`` derived from master ``step % 2``.

        ``box`` must have power-of-two side lengths (type-1 submeshes always
        do); for the largest box itself the master node is returned.
        """
        if box == self.largest:
            return self.master_node(step)
        words = self._masters[step % 2]
        offsets = []
        for i, side in enumerate(box.sides):
            if side & (side - 1):
                raise ValueError(
                    "recycled bits require power-of-two sides for derived "
                    f"boxes, got side {side}"
                )
            need = bits_for_range(side)
            if need > self._widths[i]:
                raise ValueError("derived box is wider than the master box")
            offsets.append(words[i] & (side - 1))
        return box.offset_node(offsets)
