"""First-class randomness budgets (the engineering of Section 5).

The paper proves two sides of a coin: oblivious routing with near-optimal
congestion *must* spend ``Ω((d / (1 + d/log n)) log(D/d))`` random bits per
packet (Theorem 5.2), and algorithm ``H`` gets away with ``O(d log(D d))``
via bit recycling (Lemma 5.4, Theorem 5.5).  :mod:`repro.core.randomness`
reproduces the *schemes*; this module makes the budget a first-class,
enforceable routing parameter:

:class:`BudgetParams`
    The validated configuration — mode ``off | measure | enforce``, an
    optional per-packet bit ceiling, and an explicit ``valid`` guard.
    Follows the ``OBDParams`` idiom: an instance whose guard failed is
    *not* an error — it carries a ``reason`` and the run proceeds in a
    documented fallback mode (telemetry only, never enforcement).

:class:`BitBudget`
    The accounting ledger of one routing run: planned bits drawn, the
    per-packet maximum, fallback and unmetered counts.  Ledgers merge
    additively, which is how sharded workers report bits identically to
    the serial engine (:mod:`repro.parallel`).

Planned cost, not the rejection tally
-------------------------------------
All budget accounting uses the *planned* (information-theoretic) cost of
a packet's draws: ``bits_for_range(side)`` per waypoint dimension and
``perm_bits(d)`` per dimension ordering.  :class:`~repro.core.randomness.
BitCounter`'s ``bits_used`` is a random variable (rejection sampling pays
for misses); enforcement decisions must be deterministic functions of
``(mesh, s, t)`` so that the engine, the scalar loop, every shard worker,
and the verify oracle all reach the *same* verdict for a packet.

The degradation ladder (mode ``"enforce"``)
-------------------------------------------
A packet whose planned cost exceeds the budget is degraded
deterministically, never rejected:

1. **recycled** — the Section 5.3 scheme (one shared ordering + two
   master nodes sized to the bridge) costs
   ``perm_bits(d) + 2 * sum_i bits_for_range(bridge_side_i)``; if that
   fits, the packet routes with a recycled-bit clone of its router.
2. **dimension-order** — zero random bits.  Always fits.

With no explicit ``bits``, the enforced ceiling is
:func:`default_budget_bits` — the naive Lemma 5.4 structural maximum of
the fresh scheme, so enforcement is *armed* but nothing degrades: routes
stay byte-identical to the unbudgeted ones (``REPRO_BUDGET=enforce`` in
CI relies on this).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from repro.core.randomness import bits_for_range

__all__ = [
    "BUDGET_ENV",
    "MODES",
    "BudgetParams",
    "BitBudget",
    "perm_bits",
    "default_budget_bits",
    "planned_fresh_bits",
    "planned_recycled_bits",
    "sequence_fresh_bits",
    "sequence_recycled_bits",
    "degradation_plan",
    "note_budget",
]

#: environment variable supplying the default mode when ``route(budget=None)``
BUDGET_ENV = "REPRO_BUDGET"

#: accepted enforcement modes, weakest first
MODES = ("off", "measure", "enforce")


def perm_bits(d: int) -> int:
    """Information cost of one random ordering of ``d`` dimensions.

    ``sum_{i=2..d} bits_for_range(i)`` — the per-draw widths of the
    Fisher-Yates loop in :meth:`~repro.core.randomness.BitCounter.
    permutation` (the ``O(d log d)`` term of Lemma 5.4); 0 for ``d <= 1``.

    >>> perm_bits(1), perm_bits(2), perm_bits(3), perm_bits(4)
    (0, 1, 3, 5)
    """
    return sum(bits_for_range(i) for i in range(2, d + 1))


def _bit_length(x: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for non-negative int64 arrays.

    Local replica of :func:`repro.core.tables.bit_length` (exact below
    ``2^53``), kept here so this module imports nothing heavyweight.
    """
    return np.frexp(np.asarray(x, dtype=np.float64))[1].astype(np.int64)


def default_budget_bits(mesh) -> int:
    """The default ``"enforce"`` ceiling: the naive Lemma 5.4 maximum.

    The fresh scheme draws at most ``2k - 1`` inner waypoints (the padded
    bitonic capacity, ``k = ceil(log2 max_side)``) of at most ``d * k``
    bits each, plus at most ``2k`` per-subpath orderings of
    ``perm_bits(d)`` bits; ``+ 8`` slack keeps degenerate meshes off the
    boundary.  Every registry router's planned cost fits under this
    ceiling (pinned by ``tests/test_budget.py``), so enforcing the
    default budget never degrades a packet.
    """
    d = mesh.d
    k = max(int(s - 1).bit_length() for s in mesh.sides)
    slots = max(2 * k - 1, 1)
    return slots * d * k + 2 * k * perm_bits(d) + 8


@dataclass(frozen=True)
class BudgetParams:
    """Validated randomness-budget configuration.

    Parameters
    ----------
    mode:
        ``"off"`` — no accounting; ``"measure"`` — meter planned bits,
        never degrade; ``"enforce"`` — meter and degrade packets over the
        ceiling.
    bits:
        Per-packet ceiling for ``"enforce"``; ``None`` resolves to
        :func:`default_budget_bits` of the routed mesh.
    valid:
        Guard flag (the ``OBDParams`` idiom): ``False`` means the request
        could not be honoured as stated — :attr:`reason` says why — and
        the budget runs in **fallback mode**: telemetry only, no
        enforcement, no errors.

    Examples
    --------
    >>> BudgetParams(mode="enforce", bits=64).enforcing
    True
    >>> weak = BudgetParams(mode="enforce", bits=64).invalidated("demo")
    >>> weak.enforcing, weak.active
    (False, True)
    """

    mode: str = "off"
    bits: int | None = None
    valid: bool = True
    reason: str = ""

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"unknown budget mode {self.mode!r}; use one of {MODES}")
        if self.bits is not None:
            if isinstance(self.bits, bool) or not isinstance(
                self.bits, (int, np.integer)
            ):
                raise TypeError(f"budget bits must be an int, got {type(self.bits).__name__}")
            if self.bits < 0:
                raise ValueError("budget bits must be >= 0")
            object.__setattr__(self, "bits", int(self.bits))

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "BudgetParams":
        """The process default, from ``REPRO_BUDGET`` (off when unset).

        An unrecognised value is *not* an error: it yields an invalid
        instance (guard failed, reason recorded) so a typo in CI degrades
        to "no budget" loudly in telemetry rather than crashing runs.
        """
        raw = os.environ.get(BUDGET_ENV, "").strip().lower()
        if not raw:
            return cls()
        if raw in MODES:
            return cls(mode=raw)
        return cls(
            mode="off",
            valid=False,
            reason=f"unknown {BUDGET_ENV} value {raw!r}; budget disabled",
        )

    @classmethod
    def resolve(cls, budget) -> "BudgetParams":
        """Coerce a user-facing ``budget=`` argument to parameters.

        ``None`` → the environment default; a string → that mode; an int
        → ``enforce`` with that per-packet ceiling; params pass through.
        """
        if budget is None:
            return cls.from_env()
        if isinstance(budget, BudgetParams):
            return budget
        if isinstance(budget, str):
            return cls(mode=budget)
        if not isinstance(budget, bool) and isinstance(budget, (int, np.integer)):
            return cls(mode="enforce", bits=int(budget))
        raise TypeError(
            f"budget must be BudgetParams, a mode string, an int bit ceiling "
            f"or None, got {type(budget).__name__}"
        )

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any accounting happens at all."""
        return self.mode != "off"

    @property
    def enforcing(self) -> bool:
        """Whether packets over the ceiling are degraded (guard must hold)."""
        return self.valid and self.mode == "enforce"

    def limit_for(self, mesh) -> int:
        """The concrete per-packet ceiling on ``mesh``."""
        return self.bits if self.bits is not None else default_budget_bits(mesh)

    def invalidated(self, reason: str) -> "BudgetParams":
        """A copy with the guard tripped (fallback mode), keeping the mode."""
        return replace(self, valid=False, reason=reason)

    def make_ledger(self, mesh, packets: int) -> "BitBudget":
        """A fresh ledger for one run on ``mesh``.

        Enforce-mode ledgers always record the concrete ceiling — even
        when the router is unmetered and nothing can degrade — so a
        reader of the ledger can tell what the run enforced against
        (pinned by the ``budget.respected`` invariant).
        """
        limit = self.limit_for(mesh) if self.mode == "enforce" else self.bits
        return BitBudget(mode=self.mode, limit=limit, packets=packets)


@dataclass
class BitBudget:
    """Accounting ledger of one routing run under a :class:`BudgetParams`.

    All counts are in *planned* bits (see the module docstring).  Ledgers
    are picklable plain data so shard workers can return them, and
    :meth:`merge` folds them additively — the sharded totals equal the
    serial totals for every worker count because planned costs are
    per-packet deterministic.
    """

    mode: str = "off"
    #: concrete ceiling under ``enforce`` (``None`` in measure mode with
    #: no explicit bits)
    limit: int | None = None
    packets: int = 0
    #: packets whose router supplied a planned cost
    metered: int = 0
    #: packets routed by a router with no cost model (fallback accounting)
    unmetered: int = 0
    bits_drawn: int = 0
    max_bits: int = 0
    fallbacks_recycled: int = 0
    fallbacks_dimorder: int = 0

    @property
    def fallbacks(self) -> int:
        return self.fallbacks_recycled + self.fallbacks_dimorder

    @property
    def bits_per_packet(self) -> float:
        """Mean planned bits over the metered packets."""
        return self.bits_drawn / self.metered if self.metered else 0.0

    def merge(self, other: "BitBudget") -> "BitBudget":
        """Fold another shard's ledger into this one (in place)."""
        self.packets += other.packets
        self.metered += other.metered
        self.unmetered += other.unmetered
        self.bits_drawn += other.bits_drawn
        self.max_bits = max(self.max_bits, other.max_bits)
        self.fallbacks_recycled += other.fallbacks_recycled
        self.fallbacks_dimorder += other.fallbacks_dimorder
        if self.limit is None:
            self.limit = other.limit
        return self

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "limit": self.limit,
            "packets": self.packets,
            "metered": self.metered,
            "unmetered": self.unmetered,
            "bits_drawn": self.bits_drawn,
            "max_bits": self.max_bits,
            "bits_per_packet": round(self.bits_per_packet, 3),
            "fallbacks_recycled": self.fallbacks_recycled,
            "fallbacks_dimorder": self.fallbacks_dimorder,
        }


# ---------------------------------------------------------------------------
# Planned (deterministic) per-packet costs
# ---------------------------------------------------------------------------

def planned_fresh_bits(
    box_len: np.ndarray,
    dim_order: str,
    alive: np.ndarray,
    n_inner: np.ndarray | None = None,
) -> np.ndarray:
    """Planned bits per packet of the fresh scheme, vectorised.

    ``box_len`` is the engine's ``(N, S, d)`` inner-box side array;
    padded slots are single-node boxes and cost 0 bits structurally
    (``bits_for_range(1) == 0``).  ``alive`` flags packets with
    ``s != t``; dead packets cost 0.  ``n_inner`` (when the router
    supplies it) is the real inner-box count per packet; otherwise real
    slots are recognised by having some side ``> 1``, which holds for
    every regular inner submesh above the leaves.

    Order cost: ``"random"`` pays :func:`perm_bits` per real subpath
    (``n_inner + 1`` of them), ``"shared"`` pays it once per alive
    packet, ``"fixed"`` pays nothing.
    """
    box_len = np.asarray(box_len)
    N, S, d = box_len.shape
    per_slot = _bit_length(box_len - 1).sum(axis=2)  # (N, S)
    way = per_slot.sum(axis=1) if S else np.zeros(N, dtype=np.int64)
    if n_inner is not None:
        real = np.asarray(n_inner, dtype=np.int64)
    elif S:
        real = (box_len.max(axis=2) > 1).sum(axis=1)
    else:
        real = np.zeros(N, dtype=np.int64)
    alive = np.asarray(alive, dtype=bool)
    pb = perm_bits(d)
    if dim_order == "random":
        order = np.where(alive, real + 1, 0) * pb
    elif dim_order == "shared":
        order = np.where(alive, pb, 0)
    elif dim_order == "fixed":
        order = np.zeros(N, dtype=np.int64)
    else:  # pragma: no cover - BatchSpec validates first
        raise ValueError(f"unknown dim_order {dim_order!r}")
    return np.where(alive, way + order, 0).astype(np.int64)


def planned_recycled_bits(box_len: np.ndarray, alive: np.ndarray) -> np.ndarray:
    """Planned bits per packet of the Section 5.3 recycled scheme.

    One shared ordering plus two master nodes sized to the largest box of
    the packet's sequence.  The bitonic chains nest inside the bridge, so
    the per-dimension maximum over the slots *is* the bridge's side.
    """
    box_len = np.asarray(box_len)
    N, S, d = box_len.shape
    if S == 0:
        masters = np.zeros(N, dtype=np.int64)
    else:
        masters = 2 * _bit_length(box_len.max(axis=1) - 1).sum(axis=1)
    return np.where(np.asarray(alive, dtype=bool), masters + perm_bits(d), 0).astype(
        np.int64
    )


def sequence_fresh_bits(inner_boxes, dim_order: str, d: int) -> int:
    """Scalar planned fresh cost of one alive packet's inner-box sequence.

    ``inner_boxes`` are the sequence's inner submeshes (endpoints
    excluded) — anything with a ``sides`` tuple, including wrapped
    :class:`~repro.mesh.torus_box.TorusBox` pieces.
    """
    way = sum(bits_for_range(side) for box in inner_boxes for side in box.sides)
    if dim_order == "random":
        return way + (len(inner_boxes) + 1) * perm_bits(d)
    if dim_order == "shared":
        return way + perm_bits(d)
    if dim_order == "fixed":
        return way
    raise ValueError(f"unknown dim_order {dim_order!r}")


def sequence_recycled_bits(bridge_sides, d: int) -> int:
    """Scalar planned recycled cost of one alive packet: Lemma 5.4."""
    return perm_bits(d) + 2 * sum(bits_for_range(side) for side in bridge_sides)


def note_budget(profiler, ledger: "BitBudget | None") -> None:
    """Mirror a ledger into ``budget.*`` profiler counters (no-op safe)."""
    if profiler is None or ledger is None:
        return
    profiler.count("budget.packets", ledger.packets)
    if ledger.bits_drawn:
        profiler.count("budget.bits_drawn", ledger.bits_drawn)
    if ledger.fallbacks:
        profiler.count("budget.fallbacks", ledger.fallbacks)
    if ledger.unmetered:
        profiler.count("budget.unmetered", ledger.unmetered)


def degradation_plan(
    fresh: np.ndarray,
    recycled: np.ndarray | None,
    limit: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The deterministic degradation ladder, as three disjoint masks.

    Returns ``(ok, use_recycled, use_dimorder)``: within budget, degraded
    to the recycled scheme, degraded to dimension-order.  ``recycled``
    may be ``None`` (router has no recycled fallback) in which case every
    over-budget packet goes straight to dimension-order.
    """
    fresh = np.asarray(fresh)
    ok = fresh <= limit
    over = ~ok
    if recycled is None:
        use_rec = np.zeros_like(over)
    else:
        use_rec = over & (np.asarray(recycled) <= limit)
    return ok, use_rec, over & ~use_rec
