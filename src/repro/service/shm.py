"""Request-side shared-memory transport and the orphan-segment sweep.

Replies travel as :class:`~repro.core.pathset.SharedCSR` (built into
``PathSet``); this module covers the *request* direction — a batch's
source/destination pairs parked in one segment per request — plus the
sweep that reclaims segments left behind by a worker the kernel killed
mid-request.

Ownership follows the repo-wide protocol of :mod:`repro.core.shm`: the
server creates and hands off, the worker :meth:`SharedPairs.take`\\ s
(read + close + unlink).  A worker that dies before taking leaves the
segment linked; the dispatch retry path discards it explicitly, and
:func:`sweep_worker_segments` catches anything a dead worker *produced*
but never delivered (reply segments are pid-named, so a dead pid's
segments are orphans by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import shm as core_shm

__all__ = ["SharedPairs", "share_pairs", "sweep_worker_segments"]


@dataclass(frozen=True)
class SharedPairs:
    """Handle to one request's ``[sources | dests]`` int64 segment."""

    name: str
    n: int  #: packets — the segment holds ``2 * n`` int64 values

    @property
    def nbytes(self) -> int:
        return 16 * self.n

    def take(self) -> tuple[np.ndarray, np.ndarray]:
        """Copy the pairs out, then close and unlink (consumer's last act)."""
        seg = core_shm.attach(self.name)
        try:
            flat = np.frombuffer(
                seg.buf, dtype=np.int64, count=2 * self.n
            ).copy()
        finally:
            seg.close()
        seg.unlink()
        return flat[: self.n], flat[self.n :]

    def discard(self) -> bool:
        """Unlink without reading; ``False`` if already consumed/gone."""
        return core_shm.discard(self.name)


def share_pairs(sources: np.ndarray, dests: np.ndarray) -> SharedPairs:
    """Park ``sources``/``dests`` in a fresh segment and hand it off."""
    s = np.ascontiguousarray(sources, dtype=np.int64)
    d = np.ascontiguousarray(dests, dtype=np.int64)
    if s.shape != d.shape or s.ndim != 1:
        raise ValueError("sources and dests must be 1-D arrays of equal length")
    n = int(s.size)
    seg = core_shm.create_segment(16 * n)
    flat = np.frombuffer(seg.buf, dtype=np.int64, count=2 * n)
    flat[:n] = s
    flat[n:] = d
    del flat
    core_shm.handoff(seg)
    return SharedPairs(name=seg.name, n=n)


def sweep_worker_segments(pids) -> list[str]:
    """Discard every live segment created by the given (dead) worker pids.

    Segments are named ``repro-<pid>-<hex>`` precisely so this sweep can
    target one producer without touching anything a live process may
    still deliver.  Returns the names it removed.
    """
    removed: list[str] = []
    for pid in pids:
        prefix = f"{core_shm.SEGMENT_PREFIX}{int(pid)}-"
        for name in core_shm.active_segments(prefix):
            if core_shm.discard(name):
                removed.append(name)
    return removed
