"""Deadline-flushed admission queue for small routing requests.

Small requests are individually cheap but dispatch-dominated: shipping
each one to a pool worker alone pays the full submit/pickle/wake cost per
request.  The :class:`MicroBatcher` coalesces them — the first request
opens a batch, the collector then waits up to ``flush_ms`` (the deadline)
for more, and flushes early when ``max_batch`` fills.  A flushed batch is
dispatched on a small thread pool so several batches can be in flight
across the warm workers at once.

Batching is a *transport* optimisation only: the dispatch function routes
each request of a batch independently (own entropy, ``packet_offset=0``),
so batch composition never changes any request's bytes.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

__all__ = ["MicroBatcher", "PendingRequest"]

_STOP = object()


@dataclass
class PendingRequest:
    """One admitted request waiting for its reply.

    The handler thread creates it, submits it, and blocks on ``done``;
    the dispatch thread calls :meth:`finish` or :meth:`fail`.  A handler
    that gives up (client gone, deadline passed) calls :meth:`abandon`,
    after which a late ``finish`` releases the reply's resources instead
    of stranding them.
    """

    payload: object  #: opaque to the batcher; the dispatch fn interprets it
    enqueued: float = field(default_factory=time.monotonic)
    done: threading.Event = field(default_factory=threading.Event)
    reply: object = None
    error: str | None = None
    _cleanup: object = None
    _abandoned: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def finish(self, reply, cleanup=None) -> None:
        """Deliver ``reply``; ``cleanup()`` releases its resources."""
        with self._lock:
            if self._abandoned:
                if cleanup is not None:
                    cleanup()
                return
            self.reply = reply
            self._cleanup = cleanup
        self.done.set()

    def fail(self, error: str) -> None:
        with self._lock:
            if self._abandoned:
                return
            self.error = error
        self.done.set()

    def abandon(self) -> None:
        """Renounce the reply (handler timed out / client disconnected)."""
        with self._lock:
            self._abandoned = True
            cleanup, self._cleanup = self._cleanup, None
        if cleanup is not None:
            cleanup()

    def release(self) -> None:
        """Run the reply's cleanup (handler's final act after replying)."""
        with self._lock:
            cleanup, self._cleanup = self._cleanup, None
        if cleanup is not None:
            cleanup()


class MicroBatcher:
    """Collects :class:`PendingRequest`\\ s into deadline-flushed batches.

    ``dispatch(batch)`` runs on a dispatcher thread and must resolve every
    pending in the batch (finish or fail); an exception from it fails the
    whole batch rather than hanging the handlers.
    """

    def __init__(
        self,
        dispatch,
        *,
        max_batch: int = 16,
        flush_ms: float = 2.0,
        max_inflight: int = 4,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.dispatch = dispatch
        self.max_batch = int(max_batch)
        self.flush_s = float(flush_ms) / 1000.0
        self._queue: queue.Queue = queue.Queue()
        self._dispatchers = ThreadPoolExecutor(
            max_workers=max(1, int(max_inflight)),
            thread_name_prefix="repro-dispatch",
        )
        self._stopping = False
        self._collector = threading.Thread(
            target=self._collect, name="repro-batcher", daemon=True
        )
        self._collector.start()

    def submit(self, pending: PendingRequest) -> PendingRequest:
        """Admit one request; returns it so callers can wait on ``done``."""
        if self._stopping:
            pending.fail("service is shutting down")
            return pending
        self._queue.put(pending)
        return pending

    def qsize(self) -> int:
        """Requests admitted but not yet collected into a batch."""
        return self._queue.qsize()

    def _collect(self) -> None:
        while True:
            head = self._queue.get()
            if head is _STOP:
                return
            batch = [head]
            deadline = time.monotonic() + self.flush_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _STOP:
                    self._dispatchers.submit(self._run_batch, batch)
                    return
                batch.append(nxt)
            self._dispatchers.submit(self._run_batch, batch)

    def _run_batch(self, batch: list) -> None:
        try:
            self.dispatch(batch)
        except Exception as exc:  # noqa: BLE001 - handlers must not hang
            msg = f"{type(exc).__name__}: {exc}"
            for pending in batch:
                pending.fail(msg)

    def stop(self) -> None:
        """Flush what is queued, dispatch it, and stop accepting work."""
        if self._stopping:
            return
        self._stopping = True
        self._queue.put(_STOP)
        self._collector.join(timeout=30)
        self._dispatchers.shutdown(wait=True)
        while True:  # anything that raced in after the sentinel
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not _STOP:
                leftover.fail("service stopped before dispatch")
