"""Wire protocol: length-prefixed JSON headers plus raw int64 frames.

Every message is::

    [4-byte big-endian header length] [JSON header] [array frames...]

The header's ``"arrays"`` entry lists ``[name, count]`` pairs; each frame
is exactly ``8 * count`` bytes of little-endian int64 (numpy's native
layout on every platform this repo targets).  Arrays therefore cross the
socket without pickling — and without version skew, since the header is
plain JSON.

Used by :mod:`repro.service.server` and
:class:`~repro.service.client.ServiceClient`; both ends of any repo
socket speak only this.
"""

from __future__ import annotations

import json
import struct

import numpy as np

__all__ = ["ProtocolError", "recv_msg", "send_msg"]

#: sanity bound on the JSON header — a desynchronised stream otherwise
#: asks us to allocate whatever garbage the first four bytes decode to
MAX_HEADER_BYTES = 1 << 20

_LEN = struct.Struct(">I")


class ProtocolError(ConnectionError):
    """The peer sent bytes that do not parse as a protocol message."""


def send_msg(sock, header: dict, arrays: dict | None = None) -> None:
    """Send one message: ``header`` (JSON-able) plus named int64 arrays."""
    frames: list[bytes] = []
    meta: list[list] = []
    for name, arr in (arrays or {}).items():
        a = np.ascontiguousarray(arr, dtype=np.int64)
        meta.append([name, int(a.size)])
        frames.append(a.tobytes())
    h = dict(header)
    h["arrays"] = meta
    payload = json.dumps(h, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header too large ({len(payload)} bytes)")
    sock.sendall(_LEN.pack(len(payload)) + payload)
    for frame in frames:
        sock.sendall(frame)


def _recv_exact(sock, n: int) -> bytes | None:
    """Exactly ``n`` bytes, or ``None`` on a clean EOF before any byte."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        k = sock.recv_into(view[got:])
        if k == 0:
            if got == 0:
                return None
            raise ProtocolError(f"connection closed mid-message ({got}/{n} bytes)")
        got += k
    return bytes(buf)


def recv_msg(sock) -> tuple[dict, dict] | None:
    """Receive one message; ``None`` when the peer closed cleanly.

    Returns ``(header, arrays)`` with each array a fresh int64 ndarray.
    """
    raw_len = _recv_exact(sock, _LEN.size)
    if raw_len is None:
        return None
    (hlen,) = _LEN.unpack(raw_len)
    if hlen > MAX_HEADER_BYTES:
        raise ProtocolError(f"header length {hlen} exceeds protocol bound")
    payload = _recv_exact(sock, hlen)
    if payload is None:
        raise ProtocolError("connection closed before header")
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad header: {exc}") from exc
    arrays: dict[str, np.ndarray] = {}
    for name, count in header.pop("arrays", []):
        blob = _recv_exact(sock, 8 * int(count))
        if blob is None and count:
            raise ProtocolError(f"connection closed before array {name!r}")
        arrays[name] = np.frombuffer(blob or b"", dtype=np.int64).copy()
    return header, arrays
