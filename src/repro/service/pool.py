"""The warm, self-healing worker pool behind the routing service.

:class:`WarmPool` wraps :func:`repro.parallel.executor.make_executor`
(so it inherits the warm-up initializer, spawn support and the serial
degradation warning) and adds what a *persistent* pool needs:

- **Eager warm-up** — :meth:`prewarm` forces every worker process to
  exist and finish its initializer before the first request arrives, so
  the first request pays warm-dispatch latency, not pool-boot latency.
- **Crash recovery** — a worker the kernel kills breaks the whole
  ``ProcessPoolExecutor``; :meth:`map` catches that, rebuilds the pool
  (counting ``service.worker_restarts``), sweeps shared-memory segments
  the dead workers produced but never delivered, and retries.  Routing
  is deterministic in ``(entropy, index, s, t)``, so a retried task
  returns byte-identical results.
- **Executor protocol** — ``map``/``shutdown``/``is_process_pool``, so
  :func:`~repro.parallel.api.route_sharded` accepts a ``WarmPool`` as its
  injected executor and oversized requests shard across the warm workers.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import BrokenExecutor

from repro.parallel.executor import make_executor, resolve_workers
from repro.service.shm import sweep_worker_segments

__all__ = ["WarmPool"]


def _probe(delay: float) -> int:
    """No-op task used only to force worker processes to spawn."""
    time.sleep(delay)
    return os.getpid()


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid reused by another user
        return True
    # A SIGKILLed worker lingers as a zombie until its pool reaps it;
    # signal 0 still succeeds then, but a zombie will never deliver its
    # segments — treat it as dead so the orphan sweep is not racy.
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            return fh.read().rpartition(b")")[2].split()[0] != b"Z"
    except OSError:  # pragma: no cover - no procfs (non-Linux)
        return True


class WarmPool:
    """A process pool that stays warm and survives worker crashes.

    Tasks retried after a crash are re-submitted *as given*; callers whose
    tasks embed consumed resources (request shm segments) pass ``rebuild``
    to :meth:`map` to regenerate them per attempt.
    """

    def __init__(
        self,
        workers: int | None = 2,
        *,
        context: str = "auto",
        warm_keys: tuple = (),
        kernels_backend: str | None = None,
        profiler=None,
        max_retries: int = 2,
    ):
        self.workers = resolve_workers(workers)
        self.context = context
        self.warm_keys = tuple(warm_keys)
        self.kernels_backend = kernels_backend
        self.profiler = profiler
        self.max_retries = int(max_retries)
        self.worker_restarts = 0
        self._lock = threading.Lock()
        self._generation = 0
        self._build()

    def _build(self) -> None:
        # force_pool: the service wants process isolation (and a warm,
        # crash-replaceable worker) even at workers=1, where the sharding
        # layer would prefer its in-process executor.
        self._adapter = make_executor(
            self.workers,
            context=self.context,
            warm_keys=self.warm_keys,
            kernels_backend=self.kernels_backend,
            force_pool=self.context != "serial",
        )

    @property
    def is_process_pool(self) -> bool:
        return bool(getattr(self._adapter, "is_process_pool", False))

    def pids(self) -> tuple[int, ...]:
        """Live worker pids (empty for the serial fallback)."""
        pool = getattr(self._adapter, "pool", None)
        procs = getattr(pool, "_processes", None) or {}
        return tuple(int(p) for p in procs)

    def prewarm(self) -> None:
        """Spawn and initialise every worker before the first request.

        ``ProcessPoolExecutor`` starts processes lazily; parking one brief
        probe per worker makes the executor spawn its full complement, and
        each process runs the warm-up initializer before its probe — so
        after this returns, the kernels backend is pinned and the
        decomposition cache resident in every worker.
        """
        if not self.is_process_pool:
            return
        self._adapter.map(_probe, [0.05] * self.workers)

    def map(self, fn, tasks, *, rebuild=None) -> list:
        """Ordered ``map`` with broken-pool recovery.

        On ``BrokenExecutor`` (a worker died): rebuild the pool, sweep the
        dead workers' orphaned segments, bump ``worker_restarts``, and
        retry — with ``rebuild()``'s fresh tasks when given, else the same
        tasks.  Raises after ``max_retries`` consecutive failures.
        """
        tasks = list(tasks)
        for attempt in range(self.max_retries + 1):
            adapter, generation = self._adapter, self._generation
            pids_before = self.pids()
            try:
                return adapter.map(fn, tasks)
            except BrokenExecutor:
                if attempt >= self.max_retries:
                    raise
                self._restart(generation, pids_before)
                if rebuild is not None:
                    tasks = list(rebuild())
        raise AssertionError("unreachable")  # pragma: no cover

    def _restart(self, generation: int, pids_before: tuple[int, ...]) -> None:
        """Replace a broken executor exactly once per generation."""
        with self._lock:
            if self._generation == generation:
                try:
                    # wait: join the broken pool so its workers are fully
                    # reaped before the sweep below judges them dead
                    self._adapter.shutdown(wait=True)
                except Exception:  # pragma: no cover - already broken
                    pass
                self._build()
                self._generation += 1
                self.worker_restarts += 1
                if self.profiler is not None:
                    self.profiler.count("service.worker_restarts", 1)
            # Dead workers' undelivered reply segments are orphans by
            # construction (pid-named); reclaim them whether or not this
            # thread performed the rebuild.  A SIGKILLed worker can linger
            # briefly (signal delivered, death not yet scheduled), so give
            # each old pid a short grace window to actually die.
            deadline = time.monotonic() + 5.0
            pending = list(pids_before)
            dead: list[int] = []
            while pending and time.monotonic() < deadline:
                still = []
                for p in pending:
                    (dead if not _alive(p) else still).append(p)
                pending = still
                if pending:
                    time.sleep(0.05)
            sweep_worker_segments(dead)

    def sweep_orphans(self) -> list[str]:
        """Reclaim segments of workers that are gone (shutdown-time audit)."""
        return sweep_worker_segments(
            [p for p in self.pids() if not _alive(p)]
        )

    def shutdown(self, wait: bool = True) -> None:
        pids = self.pids()
        self._adapter.shutdown(wait=wait)
        if wait:
            sweep_worker_segments([p for p in pids if not _alive(p)])

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
