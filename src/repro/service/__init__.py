"""Long-lived routing service: warm worker pool behind a unix socket.

``python -m repro serve --socket /tmp/repro.sock`` boots a daemon whose
worker processes pre-resolve the kernels backend and hold the
decomposition cache resident, so a small routing request costs a warm
dispatch instead of a pool boot plus a cold cache build.  Requests and
results cross process boundaries through named shared-memory segments
(:mod:`repro.core.shm`), never by pickling CSR arrays.

Layering: ``core``/``routing``/``parallel`` know nothing about the
service; the service composes them.  Clients talk the length-prefixed
protocol of :mod:`repro.service.proto` — most simply via
:class:`~repro.service.client.ServiceClient`.

The determinism guarantee (documented in ``docs/SERVICE.md``): a request
routed through the service is byte-identical to ``router.route(problem,
seed)`` in-process, for any worker count, batch composition or restart
history.
"""

from __future__ import annotations

__all__ = [
    "MicroBatcher",
    "RoutingService",
    "ServiceClient",
    "WarmPool",
    "serve",
]


def __getattr__(name: str):
    if name == "RoutingService" or name == "serve":
        from repro.service import server

        return getattr(server, name)
    if name == "ServiceClient":
        from repro.service.client import ServiceClient

        return ServiceClient
    if name == "WarmPool":
        from repro.service.pool import WarmPool

        return WarmPool
    if name == "MicroBatcher":
        from repro.service.batching import MicroBatcher

        return MicroBatcher
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
