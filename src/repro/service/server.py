"""The routing daemon: unix-socket front end over the warm pool.

``repro serve`` boots a :class:`RoutingService`: a listener thread
accepts connections, a handler thread per connection speaks
:mod:`repro.service.proto`, and routing requests flow through the
:class:`~repro.service.batching.MicroBatcher` to the
:class:`~repro.service.pool.WarmPool`.  Oversized requests bypass the
batcher and shard across the warm workers via
:func:`~repro.parallel.api.route_sharded` (with the pool injected, so no
per-request pool boot there either).

Observability: the service profiler counts ``service.requests``,
``service.batches``, ``service.batched_requests``,
``service.sharded_requests`` and ``service.worker_restarts``, observes
``service.queue_depth`` (at admission), ``service.batch_size`` and
``service.request_s`` (admission-to-reply latency), and brackets pool
dispatches in the ``service.worker_batch`` / ``service.sharded`` stages.
``op=stats`` returns a full snapshot.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass

import numpy as np

import repro.cache as cache
from repro.core.pathset import PathSet
from repro.core.randomness import resolve_entropy
from repro.obs import Profiler
from repro.service.batching import MicroBatcher, PendingRequest
from repro.service.pool import WarmPool
from repro.service.proto import ProtocolError, recv_msg, send_msg
from repro.service.shm import share_pairs
from repro.service.worker import RouteRequest, route_request_batch

__all__ = ["RoutingService", "serve"]


@dataclass
class _RoutePayload:
    """One admitted request's parameters, parent-side."""

    sides: tuple
    torus: bool
    router: str
    entropy: int
    batch: bool | str
    sources: np.ndarray
    dests: np.ndarray

    @property
    def n(self) -> int:
        return int(self.sources.size)


def _parse_prewarm(spec: str):
    """``"16x16"`` / ``"8x8x8:torus"`` → a warm-up handshake key."""
    from repro.cli import parse_mesh

    base, _, flag = spec.partition(":")
    torus = flag == "torus"
    if flag and not torus:
        raise ValueError(f"bad prewarm spec {spec!r} (suffix must be ':torus')")
    return cache.warmup_key(parse_mesh(base, torus))


class RoutingService:
    """A persistent routing daemon on a unix socket.

    Determinism guarantee: every request is routed with its own resolved
    entropy and ``packet_offset=0`` — never merged into a batch-mate's
    engine call — so the reply is byte-identical to
    ``make_router(name).route(problem, seed)`` run locally, regardless of
    batching, worker count, or crash/restart history.
    """

    def __init__(
        self,
        socket_path: str,
        *,
        workers: int | None = 2,
        context: str = "auto",
        max_batch: int = 16,
        flush_ms: float = 2.0,
        shard_threshold: int = 1 << 16,
        pairs_shm_min: int = 2048,
        prewarm: tuple = (),
        kernels_backend: str | None = None,
        profiler: Profiler | None = None,
        request_timeout_s: float = 120.0,
    ):
        from repro import kernels

        self.socket_path = str(socket_path)
        self.profiler = profiler if profiler is not None else Profiler()
        self.shard_threshold = int(shard_threshold)
        self.pairs_shm_min = int(pairs_shm_min)
        self.request_timeout_s = float(request_timeout_s)
        self.warm_keys = tuple(_parse_prewarm(s) for s in prewarm)
        self.pool = WarmPool(
            workers,
            context=context,
            warm_keys=self.warm_keys,
            kernels_backend=kernels_backend or kernels.backend(),
            profiler=self.profiler,
        )
        self.batcher = MicroBatcher(
            self._dispatch_batch,
            max_batch=max_batch,
            flush_ms=flush_ms,
            max_inflight=max(2, self.pool.workers),
        )
        self._sock: socket.socket | None = None
        self._stop = threading.Event()
        self._stop_lock = threading.Lock()
        self._stopped = False
        self._accept_thread: threading.Thread | None = None
        self._started = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "RoutingService":
        """Prewarm the pool, bind the socket, begin accepting."""
        if self._started:
            return self
        self.pool.prewarm()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(self.socket_path)
        sock.listen(64)
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        self._accept_thread.start()
        self._started = True
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (or Ctrl-C, which stops cleanly)."""
        self.start()
        try:
            while not self._stop.wait(0.5):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Stop accepting, drain the batcher, shut the pool down.

        Blocking and idempotent: every caller returns only after teardown
        has fully completed, even when another thread started it first.
        """
        self._stop.set()
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
            self._teardown()

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10)
        self.batcher.stop()
        self.pool.shutdown()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    close = stop

    def __enter__(self) -> "RoutingService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection handling -------------------------------------------

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:  # listener closed by stop()
                return
            threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="repro-handler",
                daemon=True,
            ).start()

    def _handle_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                try:
                    msg = recv_msg(conn)
                except (ProtocolError, OSError):
                    return
                if msg is None:
                    return
                header, arrays = msg
                op = header.get("op")
                try:
                    if op == "ping":
                        send_msg(conn, {"ok": True, "pid": os.getpid()})
                    elif op == "stats":
                        send_msg(conn, {"ok": True, **self._stats()})
                    elif op == "shutdown":
                        send_msg(conn, {"ok": True})
                        threading.Thread(target=self.stop, daemon=True).start()
                        return
                    elif op == "route":
                        self._handle_route(conn, header, arrays)
                    else:
                        send_msg(
                            conn, {"ok": False, "error": f"unknown op {op!r}"}
                        )
                except (BrokenPipeError, ConnectionError, OSError):
                    return
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    try:
                        send_msg(
                            conn,
                            {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                        )
                    except OSError:
                        return

    def _stats(self) -> dict:
        return {
            "workers": self.pool.workers,
            "is_process_pool": self.pool.is_process_pool,
            "worker_restarts": self.pool.worker_restarts,
            "pids": list(self.pool.pids()),
            "queue_depth": self.batcher.qsize(),
            "profile": self.profiler.snapshot(),
        }

    # -- routing -------------------------------------------------------

    def _handle_route(self, conn, header: dict, arrays: dict) -> None:
        sources = arrays.get("sources")
        dests = arrays.get("dests")
        if sources is None or dests is None or sources.size != dests.size:
            send_msg(
                conn,
                {"ok": False, "error": "route needs equal-length sources/dests"},
            )
            return
        payload = _RoutePayload(
            sides=tuple(int(s) for s in header.get("mesh", ())),
            torus=bool(header.get("torus", False)),
            router=str(header.get("router", "hierarchical")),
            entropy=resolve_entropy(header.get("seed")),
            batch=header.get("batch", True),
            sources=sources,
            dests=dests,
        )
        self.profiler.count("service.requests", 1)
        if payload.n >= self.shard_threshold and self.pool.is_process_pool:
            self._route_sharded(conn, payload)
            return
        self.profiler.observe("service.queue_depth", self.batcher.qsize())
        pending = self.batcher.submit(PendingRequest(payload=payload))
        if not pending.done.wait(timeout=self.request_timeout_s):
            pending.abandon()
            send_msg(
                conn,
                {"ok": False, "error": "request timed out in the service"},
            )
            return
        if pending.error is not None:
            send_msg(conn, {"ok": False, "error": pending.error})
            return
        reply = pending.reply
        try:
            send_msg(
                conn,
                {
                    "ok": True,
                    "entropy": reply["entropy"],
                    "num_packets": reply["num_packets"],
                    "elapsed_s": reply["elapsed_s"],
                },
                {"nodes": reply["nodes"], "offsets": reply["offsets"]},
            )
        finally:
            pending.release()

    def _route_sharded(self, conn, payload: _RoutePayload) -> None:
        """Oversized request: shard across the warm pool, skip the batcher."""
        from repro.mesh.mesh import Mesh
        from repro.parallel.api import route_sharded
        from repro.routing.base import RoutingProblem
        from repro.routing.registry import make_router

        t0 = time.perf_counter()
        mesh = Mesh(payload.sides, torus=payload.torus)
        problem = RoutingProblem(
            mesh, payload.sources, payload.dests, name="service"
        )
        router = make_router(payload.router)
        router.profiler = self.profiler
        with self.profiler.stage("service.sharded"):
            result = route_sharded(
                router,
                problem,
                payload.entropy,
                workers=self.pool.workers,
                batch=payload.batch,
                executor=self.pool,
            )
        self.profiler.count("service.sharded_requests", 1)
        self.profiler.observe("service.request_s", time.perf_counter() - t0)
        send_msg(
            conn,
            {
                "ok": True,
                "entropy": payload.entropy,
                "num_packets": problem.num_packets,
                "elapsed_s": time.perf_counter() - t0,
            },
            {"nodes": result.paths.nodes, "offsets": result.paths.offsets},
        )

    def _dispatch_batch(self, batch: list) -> None:
        """Ship one micro-batch to a warm worker; resolve every pending."""
        self.profiler.count("service.batches", 1)
        self.profiler.count("service.batched_requests", len(batch))
        self.profiler.observe("service.batch_size", len(batch))
        use_shm = self.pool.is_process_pool

        def build() -> list[RouteRequest]:
            reqs = []
            for i, pending in enumerate(batch):
                p = pending.payload
                pairs = None
                sources, dests = p.sources, p.dests
                if use_shm and p.n >= self.pairs_shm_min:
                    pairs = share_pairs(sources, dests)
                    sources = dests = None
                reqs.append(
                    RouteRequest(
                        req_id=i,
                        sides=p.sides,
                        torus=p.torus,
                        router=p.router,
                        entropy=p.entropy,
                        batch=p.batch,
                        sources=sources,
                        dests=dests,
                        pairs=pairs,
                        reply_shm=use_shm,
                    )
                )
            return reqs

        reqs = build()

        def rebuild() -> list:
            # A retry after a worker crash must not reuse request segments
            # the dead worker may have consumed — discard leftovers and
            # park fresh ones.
            nonlocal reqs
            for r in reqs:
                if r.pairs is not None:
                    r.pairs.discard()
            reqs = build()
            return [reqs]

        try:
            with self.profiler.stage("service.worker_batch"):
                replies = self.pool.map(
                    route_request_batch, [reqs], rebuild=rebuild
                )[0]
        finally:
            # Workers consume request segments as their first act; anything
            # still linked here (crash before take, exhausted retries) is
            # an orphan.  discard() is a no-op for consumed segments.
            for r in reqs:
                if r.pairs is not None:
                    r.pairs.discard()

        by_id = {r.req_id: r for r in replies}
        now = time.monotonic()
        for i, pending in enumerate(batch):
            r = by_id.get(i)
            if r is None or not r.ok:
                pending.fail(r.error if r is not None else "no reply from worker")
                continue
            if r.shared is not None:
                # Attach promptly (the parent owns the segment from this
                # instant), copy the CSR out, and release before the reply
                # can escape to a handler thread — so the segment's
                # lifetime never depends on who reads the reply when.
                ps = PathSet.from_shared(r.shared)
                nodes, offsets = np.array(ps.nodes), np.array(ps.offsets)
                ps.close_shared(unlink=True)
            else:
                nodes, offsets = r.nodes, r.offsets
            self.profiler.observe("service.request_s", now - pending.enqueued)
            pending.finish(
                {
                    "entropy": r.entropy,
                    "num_packets": r.num_packets,
                    "elapsed_s": r.elapsed_s,
                    "nodes": nodes,
                    "offsets": offsets,
                }
            )


def serve(socket_path: str, **kwargs) -> RoutingService:
    """Build, start and return a :class:`RoutingService` (non-blocking)."""
    return RoutingService(socket_path, **kwargs).start()
