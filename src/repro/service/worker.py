"""Worker-side request specs and the batch entry point.

A micro-batch crosses to the pool as ONE task — a list of
:class:`RouteRequest` — and comes back as a list of :class:`RouteReply`.
The worker loops :meth:`Router.route` *per request*, each with its own
resolved entropy and ``packet_offset=0``: requests are never merged into
a single engine call, which is precisely what makes a service route
byte-identical to the same route run locally, regardless of which other
requests happened to share its batch.

Per-request failures are caught and shipped back as ``ok=False`` replies
so one malformed request cannot poison its batch-mates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.service.shm import SharedPairs

__all__ = ["RouteReply", "RouteRequest", "route_request_batch"]


@dataclass
class RouteRequest:
    """One routing request, picklable, with pairs inline or in shm."""

    req_id: int
    sides: tuple
    torus: bool
    router: str
    entropy: int  #: resolved by the server — never ``None`` here
    batch: bool | str = True
    #: exactly one of (``sources``/``dests``, ``pairs``) carries the pairs
    sources: np.ndarray | None = None
    dests: np.ndarray | None = None
    pairs: SharedPairs | None = None
    #: ship the reply CSR through a shared segment instead of pickling
    reply_shm: bool = True


@dataclass
class RouteReply:
    """One routed request: CSR inline or as a :class:`SharedCSR` handle."""

    req_id: int
    ok: bool
    num_packets: int = 0
    entropy: int = 0
    nodes: np.ndarray | None = None
    offsets: np.ndarray | None = None
    shared: object | None = None
    error: str | None = None
    elapsed_s: float = 0.0


def _route_one(req: RouteRequest) -> RouteReply:
    from repro.mesh.mesh import Mesh
    from repro.routing.base import RoutingProblem
    from repro.routing.registry import make_router

    t0 = time.perf_counter()
    if req.pairs is not None:
        sources, dests = req.pairs.take()
    else:
        sources, dests = req.sources, req.dests
    mesh = Mesh(tuple(req.sides), torus=req.torus)
    problem = RoutingProblem(mesh, sources, dests, name="service")
    router = make_router(req.router)
    result = router.route(problem, req.entropy, batch=req.batch, workers=1)
    shared = None
    nodes: np.ndarray | None = result.paths.nodes
    offsets: np.ndarray | None = result.paths.offsets
    if req.reply_shm:
        shared = result.paths.to_shared()
        nodes = offsets = None
    return RouteReply(
        req_id=req.req_id,
        ok=True,
        num_packets=problem.num_packets,
        entropy=req.entropy,
        nodes=nodes,
        offsets=offsets,
        shared=shared,
        elapsed_s=time.perf_counter() - t0,
    )


def route_request_batch(requests: list) -> list:
    """Route every request of one micro-batch in this worker process."""
    replies: list[RouteReply] = []
    for req in requests:
        try:
            replies.append(_route_one(req))
        except Exception as exc:  # noqa: BLE001 - shipped back per-request
            replies.append(
                RouteReply(
                    req_id=req.req_id,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    return replies
