"""The client: routes over a socket, returns a real :class:`RoutingResult`.

:class:`ServiceClient` builds the :class:`RoutingProblem` locally (so
workload generation and validation stay client-side), ships only the
pairs and parameters, and rehydrates the reply CSR into a
:class:`~repro.routing.base.RoutingResult` — callers get the same object
``router.route`` would have returned, with all lazy metrics working.

One client holds one connection; it is serialised with a lock, so a
client instance is thread-safe but concurrent requests want one client
per thread.
"""

from __future__ import annotations

import socket
import threading

import numpy as np

from repro.core.pathset import PathSet
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem, RoutingResult
from repro.service.proto import ProtocolError, recv_msg, send_msg

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service replied ``ok=False`` (the server-side error message)."""


class ServiceClient:
    """Talks to a :class:`~repro.service.server.RoutingService` socket."""

    def __init__(self, socket_path: str, *, timeout: float = 120.0):
        self.socket_path = str(socket_path)
        self._lock = threading.Lock()
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)

    def _rpc(self, header: dict, arrays: dict | None = None):
        with self._lock:
            send_msg(self._sock, header, arrays)
            msg = recv_msg(self._sock)
        if msg is None:
            raise ProtocolError("service closed the connection")
        reply, reply_arrays = msg
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "unknown service error"))
        return reply, reply_arrays

    # -- ops -----------------------------------------------------------

    def ping(self) -> dict:
        return self._rpc({"op": "ping"})[0]

    def stats(self) -> dict:
        return self._rpc({"op": "stats"})[0]

    def shutdown_server(self) -> None:
        """Ask the daemon to stop (replies before stopping)."""
        self._rpc({"op": "shutdown"})

    def route(
        self,
        mesh: RoutingProblem | Mesh | str,
        sources: np.ndarray | None = None,
        dests: np.ndarray | None = None,
        *,
        torus: bool = False,
        router: str = "hierarchical",
        seed: int | None = 0,
        batch: bool | str = True,
        workload: str | None = None,
        workload_seed: int = 0,
    ) -> RoutingResult:
        """Route through the service; byte-identical to a local route.

        The first argument is a ready :class:`RoutingProblem`, or a
        :class:`Mesh` / spec string (``"16x16"``) combined with either
        ``sources``/``dests`` arrays or a named ``workload`` (generated
        locally with ``workload_seed``).
        """
        if isinstance(mesh, RoutingProblem):
            if sources is not None or dests is not None or workload is not None:
                raise ValueError(
                    "pass a RoutingProblem alone, without sources/dests/workload"
                )
            problem = mesh
            mesh = problem.mesh
        else:
            if isinstance(mesh, str):
                from repro.cli import parse_mesh

                mesh = parse_mesh(mesh, torus)
            if workload is not None:
                if sources is not None or dests is not None:
                    raise ValueError(
                        "pass either sources/dests or workload, not both"
                    )
                from repro.cli import build_workload

                generated = build_workload(workload, mesh, workload_seed)
                sources, dests = generated.sources, generated.dests
            problem = RoutingProblem(
                mesh,
                np.asarray(sources, dtype=np.int64),
                np.asarray(dests, dtype=np.int64),
                name=workload or "service",
            )
        reply, arrays = self._rpc(
            {
                "op": "route",
                "mesh": list(mesh.sides),
                "torus": mesh.torus,
                "router": router,
                "seed": seed,
                "batch": batch,
            },
            {"sources": problem.sources, "dests": problem.dests},
        )
        paths = PathSet.from_arrays(arrays["nodes"], arrays["offsets"])
        if len(paths) != problem.num_packets:
            raise ServiceError(
                f"service returned {len(paths)} paths for "
                f"{problem.num_packets} packets"
            )
        return RoutingResult(
            problem, paths, router_name=router, seed=int(reply["entropy"])
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
