"""Process-wide keyed caches for decomposition-derived state.

Building a :class:`~repro.core.decomposition.Decomposition` is cheap, but
the *derived* state — vectorised ancestor/bridge tables
(:class:`~repro.core.tables.SequenceTables`), networkx graph views, and
anything else keyed by ``(mesh shape, scheme)`` — is not, and before this
module every router instance, benchmark and simulator rebuilt its own
copy.  Compact oblivious routing (Räcke & Schmid 2018) makes the point
that the *state footprint* of a routing scheme is what decides whether it
deploys; here we make that footprint explicit, shared and measurable.

The cache is a flat keyed store:

* :func:`get_decomposition` — the canonical entry point: one
  ``Decomposition`` per ``(sides, torus, resolved scheme)`` for the whole
  process, shared by routers, benchmarks and the online simulator.
* :func:`memo` — generic ``(kind, key) -> factory()`` memoisation for any
  derived table; ``repro.core.tables`` and the batch engine use it.
* :func:`stats` — hit/miss/entry accounting (the ``repro.cache`` stats
  API); :func:`invalidate` — explicit invalidation, all or by kind.
* :func:`configure` — disable to force rebuild-per-call (benchmarks use
  this to measure the cache's own contribution).

Doctest::

    >>> import repro.cache as cache
    >>> from repro.mesh.mesh import Mesh
    >>> _ = cache.invalidate()
    >>> d1 = cache.get_decomposition(Mesh((8, 8)))
    >>> d2 = cache.get_decomposition(Mesh((8, 8)))
    >>> d1 is d2
    True
    >>> cache.stats().hits >= 1
    True

Thread-safety: reads and writes go through a lock, so concurrent routers
share one build instead of racing to duplicate it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.mesh.mesh import Mesh

__all__ = [
    "CacheStats",
    "absorb_worker_stats",
    "configure",
    "enabled",
    "epoch",
    "get_decomposition",
    "invalidate",
    "memo",
    "resolve_scheme",
    "stats",
    "warm",
    "warmup_key",
    "worker_stats",
]


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of the cache's accounting counters.

    ``invalidations`` counts :func:`invalidate` *calls*; ``dropped`` counts
    the total number of entries those calls removed (one call that clears
    three entries is ``invalidations += 1``, ``dropped += 3``).
    """

    hits: int
    misses: int
    entries: int
    invalidations: int
    dropped: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "invalidations": self.invalidations,
            "dropped": self.dropped,
            "hit_rate": self.hit_rate,
        }


_lock = threading.Lock()
_store: dict[tuple, Any] = {}
_enabled = True
_hits = 0
_misses = 0
_invalidations = 0
_dropped = 0
#: bumped by every :func:`invalidate` call — the warm-up handshake uses it
#: to detect an invalidation that landed while a warm() pass was in flight
_epoch = 0


def configure(*, enabled: bool = True) -> None:
    """Enable or disable the cache process-wide.

    Disabling makes every :func:`memo` call a miss that is *not* stored,
    so each caller gets a fresh build — the rebuild-per-router behaviour
    the codebase had before the cache existed.  Existing entries are kept
    (and ignored) so re-enabling restores them.
    """
    global _enabled
    with _lock:
        _enabled = bool(enabled)


def enabled() -> bool:
    return _enabled


def memo(kind: str, key: Hashable, factory: Callable[[], Any]) -> Any:
    """Return the cached value for ``(kind, key)``, building it on miss.

    ``kind`` namespaces independent derived-state families
    (``"decomposition"``, ``"tables"``, ``"mesh-graph"``, ...), so
    :func:`invalidate` can drop one family without touching the others.
    The factory runs outside the lock-held fast path but inside a
    per-process lock overall, so concurrent callers see one build.
    """
    global _hits, _misses
    full_key = (kind, key)
    with _lock:
        # One enabled snapshot, taken under the lock: deciding to store
        # from an unlocked re-read after the factory runs would let a call
        # racing ``configure(enabled=False)`` insert after the disable.
        enabled_now = _enabled
        if enabled_now and full_key in _store:
            _hits += 1
            return _store[full_key]
        _misses += 1
    value = factory()
    if enabled_now:
        with _lock:
            # Re-check under the lock: a configure(enabled=False) that
            # completed while the factory ran wins — nothing is inserted
            # after it returns.  Another thread may also have raced us;
            # keep the first build.
            if _enabled:
                value = _store.setdefault(full_key, value)
    return value


def invalidate(kind: str | None = None) -> int:
    """Drop cached entries (all, or only one ``kind``); returns the count.

    Accounting: each call bumps ``stats().invalidations`` by one; the
    number of entries removed accumulates in ``stats().dropped``.
    """
    global _invalidations, _dropped, _epoch
    with _lock:
        _epoch += 1
        if kind is None:
            dropped = len(_store)
            _store.clear()
        else:
            doomed = [k for k in _store if k[0] == kind]
            for k in doomed:
                del _store[k]
            dropped = len(doomed)
        _invalidations += 1
        _dropped += dropped
    return dropped


def epoch() -> int:
    """Monotonic invalidation counter.

    Every :func:`invalidate` call bumps it, whatever it dropped.  Multi-step
    consumers (the :func:`warm` handshake) snapshot the epoch before a pass
    and re-check it after: an unchanged epoch proves no invalidation raced
    the pass, so everything the pass built is still resident.
    """
    with _lock:
        return _epoch


def stats() -> CacheStats:
    """Current hit/miss/entry counters (process-wide)."""
    with _lock:
        return CacheStats(
            hits=_hits,
            misses=_misses,
            entries=len(_store),
            invalidations=_invalidations,
            dropped=_dropped,
        )


def reset_stats() -> None:
    """Zero the counters without touching the entries (test helper)."""
    global _hits, _misses, _invalidations, _dropped
    with _lock:
        _hits = 0
        _misses = 0
        _invalidations = 0
        _dropped = 0


# ----------------------------------------------------------------------
# Decomposition-specific entry points
# ----------------------------------------------------------------------
def resolve_scheme(mesh: Mesh, scheme: str) -> str:
    """The concrete scheme ``"auto"`` resolves to for this mesh.

    Mirrors :class:`~repro.core.decomposition.Decomposition`'s rule so two
    routers asking for ``"auto"`` and the resolved name share one entry.
    """
    if scheme == "auto":
        return "paper2d" if mesh.d <= 2 else "multishift"
    return scheme


def get_decomposition(mesh: Mesh, scheme: str = "auto"):
    """The shared :class:`Decomposition` for ``(mesh shape, scheme)``.

    Keyed by ``(sides, torus, resolved scheme)`` — mesh objects with equal
    shape share one decomposition even when the instances differ.
    """
    from repro.core.decomposition import Decomposition

    resolved = resolve_scheme(mesh, scheme)
    key = (mesh.sides, mesh.torus, resolved)
    return memo("decomposition", key, lambda: Decomposition(mesh, resolved))


# ----------------------------------------------------------------------
# Worker handshake (sharded execution)
# ----------------------------------------------------------------------
# The cache is process-wide, so a worker process starts cold (or, under
# fork, with a copy-on-write snapshot of the parent's entries).  The parent
# ships each worker the *keys* it will need — plain picklable tuples, never
# the decompositions themselves — and the worker warms its own cache once
# before routing.  Worker stat snapshots travel the other way and accumulate
# in a parent-side rollup so the parent's ``stats()`` (its own process) and
# ``worker_stats()`` (the fleet) stay distinguishable.

_worker_hits = 0
_worker_misses = 0
_worker_entries = 0


def warmup_key(mesh: Mesh, scheme: str = "auto") -> tuple:
    """The picklable handshake key for one decomposition: ship this to a
    worker and :func:`warm` rebuilds (or confirms) the entry there."""
    return (tuple(mesh.sides), bool(mesh.torus), resolve_scheme(mesh, scheme))


def warm(keys, *, max_retries: int = 4) -> int:
    """Build the decompositions named by ``keys`` in *this* process.

    Returns the number of keys that were cold (a cache miss here).  Called
    by shard workers before routing so the build cost is paid once per
    process, not once per shard task.

    The handshake is epoch-checked: an :func:`invalidate` that lands while
    a pass is in flight can drop entries the pass already built, which
    would let ``warm`` return with some of its keys cold again — the exact
    stale-``warmup_key`` race this guard exists for.  Each pass snapshots
    :func:`epoch` first and re-runs (up to ``max_retries`` times) whenever
    the epoch moved mid-pass, so on a clean return every key is resident.
    Under a sustained invalidation storm the last pass's count is returned
    best-effort rather than livelocking.
    """
    keys = list(keys)
    cold = 0
    for _attempt in range(max_retries + 1):
        e0 = epoch()
        cold = 0
        for sides, torus, scheme in keys:
            before = stats().misses
            get_decomposition(Mesh(tuple(sides), torus=bool(torus)), scheme)
            cold += int(stats().misses > before)
        if epoch() == e0:
            break
    return cold


def absorb_worker_stats(snapshot: CacheStats | dict) -> None:
    """Fold one worker's :func:`stats` snapshot into the parent rollup."""
    global _worker_hits, _worker_misses, _worker_entries
    if isinstance(snapshot, CacheStats):
        snapshot = snapshot.to_dict()
    with _lock:
        _worker_hits += int(snapshot.get("hits", 0))
        _worker_misses += int(snapshot.get("misses", 0))
        _worker_entries = max(_worker_entries, int(snapshot.get("entries", 0)))


def worker_stats() -> CacheStats:
    """Accumulated cache accounting across absorbed worker snapshots.

    ``entries`` is the largest single worker's entry count (entries are
    per-process state, so summing them would double-count shared builds).
    """
    with _lock:
        return CacheStats(
            hits=_worker_hits,
            misses=_worker_misses,
            entries=_worker_entries,
            invalidations=0,
        )


def reset_worker_stats() -> None:
    """Zero the worker rollup (test helper)."""
    global _worker_hits, _worker_misses, _worker_entries
    with _lock:
        _worker_hits = 0
        _worker_misses = 0
        _worker_entries = 0
