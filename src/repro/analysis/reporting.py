"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value) -> str:
    """Human-friendly scalar formatting (floats to 3 significant decimals)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:.3g}" if abs(value) < 0.01 or abs(value) >= 1000 else f"{value:.2f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Fixed-width table of dict rows; columns default to first row's keys."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(cell[i]) for cell in cells))
        for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell[i].rjust(widths[i]) for i in range(len(columns)))
        for cell in cells
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, sep, body])
    return "\n".join(parts)
