"""Plain-text visualisation of 2-D meshes: load heatmaps and path drawings.

No plotting dependencies — figures render as ASCII, which keeps them usable
in terminals, logs, doctests and CI output.  Only 2-D meshes are drawable.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh

__all__ = ["edge_load_heatmap", "node_load_heatmap", "draw_path"]

_SHADES = " .:-=+*#%@"


def _shade(value: float, peak: float) -> str:
    if peak <= 0:
        return _SHADES[0]
    idx = int(round(value / peak * (len(_SHADES) - 1)))
    return _SHADES[max(0, min(idx, len(_SHADES) - 1))]


def node_load_heatmap(mesh: Mesh, node_values: np.ndarray, *, legend: bool = True) -> str:
    """Render per-node scalars as a character grid (dim 0 = rows)."""
    if mesh.d != 2:
        raise ValueError("heatmaps require a 2-D mesh")
    values = np.asarray(node_values, dtype=np.float64)
    if values.shape != (mesh.n,):
        raise ValueError(f"expected {mesh.n} node values")
    peak = float(values.max()) if values.size else 0.0
    grid = values.reshape(mesh.sides)
    lines = ["".join(_shade(v, peak) for v in row) for row in grid]
    if legend:
        lines.append(f"scale: ' '=0 .. '@'={peak:g}")
    return "\n".join(lines)


def edge_load_heatmap(mesh: Mesh, edge_values: np.ndarray, *, legend: bool = True) -> str:
    """Render per-edge scalars on an interleaved grid.

    Nodes sit at even (row, col) positions; the character between two nodes
    shades the load of the connecting edge.  Wrap (torus) edges are not
    drawn.
    """
    if mesh.d != 2:
        raise ValueError("heatmaps require a 2-D mesh")
    values = np.asarray(edge_values, dtype=np.float64)
    if values.shape != (mesh.num_edges,):
        raise ValueError(f"expected {mesh.num_edges} edge values")
    peak = float(values.max()) if values.size else 0.0
    rows, cols = mesh.sides
    canvas = np.full((2 * rows - 1, 2 * cols - 1), " ", dtype="<U1")
    canvas[0::2, 0::2] = "o"
    for e in range(mesh.num_edges):
        u, v = mesh.edge_id_to_endpoints(e)
        cu = mesh.flat_to_coords(u)
        cv = mesh.flat_to_coords(v)
        if np.abs(cu - cv).sum() != 1:
            continue  # wrap edge: skip
        r = cu[0] + cv[0]
        c = cu[1] + cv[1]
        canvas[r, c] = _shade(values[e], peak)
    lines = ["".join(row) for row in canvas]
    if legend:
        lines.append(f"scale: ' '=0 .. '@'={peak:g}  ('o' = node)")
    return "\n".join(lines)


def draw_path(mesh: Mesh, path: np.ndarray, *, mark_ends: bool = True) -> str:
    """Draw one path on the node grid: 'S' source, 'T' target, '*' interior."""
    if mesh.d != 2:
        raise ValueError("path drawing requires a 2-D mesh")
    path = np.asarray(path, dtype=np.int64)
    grid = np.full(mesh.sides, ".", dtype="<U1")
    for v in path:
        c = mesh.flat_to_coords(int(v))
        grid[c[0], c[1]] = "*"
    if mark_ends and path.size:
        cs = mesh.flat_to_coords(int(path[0]))
        ct = mesh.flat_to_coords(int(path[-1]))
        grid[cs[0], cs[1]] = "S"
        grid[ct[0], ct[1]] = "T"
    return "\n".join("".join(row) for row in grid)
