"""Adversarial workload search: probing the oblivious competitive ratio.

Maggs et al. [9] prove a worst-case ``Ω(C* log n)`` lower bound on the
congestion of *any* oblivious algorithm on the mesh, which is what makes
Theorem 3.9's ``O(C* log n)`` optimal.  The hard instances behind that
bound are not spelled out in this paper, so we probe the ratio
empirically: a hill-climbing adversary mutates a permutation workload
(destination swaps), keeping mutations that increase the router's expected
congestion relative to the boundary-congestion lower bound.

The search result is a certificate of robustness, not a proof: the ratio
the adversary reaches after a search budget stays a small multiple of
``log n``, i.e. no easily-findable workload breaks the router — and,
conversely, the adversary *does* find a Θ(m)-ratio instance for the
deterministic dimension-order router within the same budget, confirming the
search has teeth.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.bounds import average_load_lower_bound, boundary_congestion
from repro.routing.base import Router, RoutingProblem

__all__ = ["adversarial_ratio_search"]


def _ratio(router: Router, problem: RoutingProblem, seeds) -> float:
    bound = max(
        boundary_congestion(problem.mesh, problem.sources, problem.dests),
        average_load_lower_bound(problem.mesh, problem.sources, problem.dests),
        1.0,
    )
    mean_c = float(
        np.mean([router.route(problem, seed=s).congestion for s in seeds])
    )
    return mean_c / bound


def adversarial_ratio_search(
    router: Router,
    mesh,
    *,
    iterations: int = 60,
    seeds=(0, 1),
    rng_seed: int = 0,
    mutations_per_step: int = 4,
    mode: str = "free",
) -> dict:
    """Hill-climb a workload maximising ``E[C] / C*-lower-bound``.

    Two mutation modes:

    * ``"permutation"`` — start from a random permutation, swap destination
      pairs (the workload stays a permutation);
    * ``"free"`` (default) — one packet per source node, destinations
      mutate freely.  This space contains the corner-turn-style traps
      (ratio Θ(m) for deterministic routers), so it is the mode with teeth.

    The ratio self-normalises: piling destinations on one node raises the
    lower bound just as fast as the congestion, so the adversary must find
    genuine routing pathologies rather than hotspots.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if mode not in ("free", "permutation"):
        raise ValueError(f"unknown mode {mode!r}")
    rng = np.random.default_rng(rng_seed)
    dests = rng.permutation(mesh.n).astype(np.int64)
    sources = np.arange(mesh.n, dtype=np.int64)

    def build(d):
        keep = sources != d
        return RoutingProblem(mesh, sources[keep], d[keep], "adversary-search")

    def mutate(d):
        cand = d.copy()
        for _ in range(mutations_per_step):
            if mode == "permutation":
                i, j = rng.integers(mesh.n, size=2)
                cand[i], cand[j] = cand[j], cand[i]
            else:
                i = int(rng.integers(mesh.n))
                cand[i] = int(rng.integers(mesh.n))
        return cand

    best_problem = build(dests)
    best = _ratio(router, best_problem, seeds)
    trajectory = [best]
    for _ in range(iterations):
        cand = mutate(dests)
        cand_problem = build(cand)
        val = _ratio(router, cand_problem, seeds)
        if val >= best:
            best, dests, best_problem = val, cand, cand_problem
        trajectory.append(best)
    return {
        "router": router.name,
        "best_ratio": best,
        "trajectory": trajectory,
        "problem": best_problem,
        "log2n": float(np.log2(mesh.n)),
    }
