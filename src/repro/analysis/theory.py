"""Theoretical reference values from the paper's theorems.

These are the "paper side" of every EXPERIMENTS.md row: measured quantities
are compared against the bounds below.  Where a constant is explicit in the
paper (Theorem 3.4's 64, Lemma 3.8's ``16 C* (log D + 3)``) we use it; where
the available text is damaged (the random-bit formulas of Section 5) we use
shape-faithful reconstructions and say so — the experiments only check
growth shape against those curves, never constants.
"""

from __future__ import annotations

import math

__all__ = [
    "stretch_bound_2d",
    "stretch_bound_general",
    "congestion_bound_2d",
    "congestion_bound_general",
    "bridge_height_bound",
    "random_bits_upper_curve",
    "random_bits_lower_curve",
]


def stretch_bound_2d() -> float:
    """Theorem 3.4: the 2-D algorithm's stretch is at most 64."""
    return 64.0


def stretch_bound_general(d: int, dist: int = 1) -> float:
    """Theorem 4.2's explicit ``O(d^2)`` constant, as a per-packet ceiling.

    Following the proof: ``|r_1| = |r_3| <= 2 d (2 * 2^{h'} ) <= 8 d dist``
    and ``|r_2| <= 2 d 2^{h_b + 1} <= 2 d * 16 (d+1) dist`` (the bridge side
    is at most ``8 (d+1) dist`` and two subpaths cross it), giving

        ``stretch <= 32 d (d + 1) + 16 d``.

    This is an upper envelope — measured stretch sits far below it — but it
    is a *hard* ceiling our tests assert path-by-path.
    """
    if d < 1:
        raise ValueError("dimension must be >= 1")
    return 32.0 * d * (d + 1) + 16.0 * d


def congestion_bound_2d(c_star: float, max_distance: int) -> float:
    """Lemma 3.8: expected per-edge congestion ``<= 16 C* (log2 D + 3)``."""
    if max_distance < 1:
        return 0.0
    return 16.0 * c_star * (math.log2(max_distance) + 3.0)


def congestion_bound_general(c_star: float, d: int, max_distance: int) -> float:
    """Section 4.2: ``E[C(e)] = O(d^2 C* log(D d))``, with the constants of
    Lemma A.3 (``4 d C*`` per charged submesh) and ``O(d log(D d))`` charged
    submeshes: ``4 d C* * 2 (d+1) * (log2(D d) + 3)``."""
    if max_distance < 1:
        return 0.0
    return 8.0 * d * (d + 1) * c_star * (math.log2(max_distance * d) + 3.0)


def bridge_height_bound(dist: int) -> int:
    """Lemma 3.3 (2-D): common-ancestor height ``<= ceil(log2 dist) + 2``."""
    if dist < 1:
        raise ValueError("distinct endpoints required")
    return (math.ceil(math.log2(dist)) if dist > 1 else 0) + 2


def random_bits_upper_curve(d: int, max_distance: int) -> float:
    """Lemma 5.4 shape: ``O(d log(D d))`` bits per packet (unit constant)."""
    return d * math.log2(max(max_distance * d, 2))


def random_bits_lower_curve(d: int, max_distance: int, n: int) -> float:
    """Lemma 5.3 shape (reconstructed from OCR-damaged text).

    The abstract states the lower bound ``Ω((d / (1 + d^2 / log n)) log(D/d))``
    random bits per packet for any algorithm whose congestion matches
    algorithm ``H``; Theorem 5.5 then says ``H`` is within ``O(d)`` of it.
    Unit-constant curve for shape comparison only.
    """
    if n < 2:
        return 0.0
    denom = 1.0 + d * d / math.log2(n)
    return (d / denom) * math.log2(max(max_distance / d, 2.0))
