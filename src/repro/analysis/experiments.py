"""Sweep runners shared by the benchmark harness and the examples.

An *evaluation row* is a plain dict (router, workload, mesh parameters,
measured metrics, lower bounds, ratios) so results can be tabulated,
aggregated across seeds, or dumped as CSV without any framework.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.metrics.bounds import (
    average_load_lower_bound,
    boundary_congestion,
)
from repro.routing.base import Router, RoutingProblem

__all__ = ["evaluate", "sweep", "aggregate"]


def evaluate(
    router: Router,
    problem: RoutingProblem,
    seed: int | None = 0,
    *,
    bound: float | None = None,
) -> dict:
    """Route ``problem`` and return one evaluation row.

    ``bound`` (a lower bound on ``C*``) may be precomputed and shared
    across routers; otherwise the boundary-congestion/average-load bound is
    computed here.
    """
    mesh = problem.mesh
    if bound is None:
        bound = max(
            boundary_congestion(mesh, problem.sources, problem.dests),
            average_load_lower_bound(mesh, problem.sources, problem.dests),
            1.0 if problem.num_packets else 0.0,
        )
    result = router.route(problem, seed=seed)
    row = {
        "router": router.name,
        "workload": problem.name,
        "d": mesh.d,
        "n": mesh.n,
        "side": mesh.sides[0],
        "packets": problem.num_packets,
        "seed": seed,
        "C": result.congestion,
        "D": result.dilation,
        "stretch": result.stretch,
        "C_lower": bound,
        "C_ratio": result.congestion / bound if bound else float("nan"),
        "C+D": result.congestion + result.dilation,
    }
    return row


def sweep(
    routers: Sequence[Router],
    problems: Sequence[RoutingProblem],
    seeds: Sequence[int] = (0,),
) -> list[dict]:
    """Cross product of routers x problems x seeds, one row each.

    The ``C*`` lower bound is computed once per problem and shared.
    """
    rows = []
    for problem in problems:
        bound = max(
            boundary_congestion(problem.mesh, problem.sources, problem.dests),
            average_load_lower_bound(problem.mesh, problem.sources, problem.dests),
            1.0 if problem.num_packets else 0.0,
        )
        for router in routers:
            for seed in seeds:
                rows.append(evaluate(router, problem, seed, bound=bound))
    return rows


def aggregate(
    rows: Iterable[Mapping],
    group_by: Sequence[str],
    fields: Sequence[str],
    how: str = "mean",
) -> list[dict]:
    """Aggregate rows over seeds (or any other residual key).

    ``how`` is ``"mean"``, ``"max"`` or ``"min"``; grouped keys are kept,
    aggregated fields are replaced by their statistic, and a ``count``
    column records group sizes.
    """
    reducer = {"mean": np.mean, "max": np.max, "min": np.min}[how]
    groups: dict[tuple, list[Mapping]] = {}
    for row in rows:
        key = tuple(row[k] for k in group_by)
        groups.setdefault(key, []).append(row)
    out = []
    for key, members in groups.items():
        agg = dict(zip(group_by, key))
        for f in fields:
            agg[f] = float(reducer([m[f] for m in members]))
        agg["count"] = len(members)
        out.append(agg)
    return out
