"""Worst-case certificates: Theorem 3.4 / 4.2 without sampling.

Random tests can only sample the router's choices; a *certificate* bounds
every possible outcome.  Given a packet (s, t), the submesh sequence is
deterministic — only waypoints and dimension orders are random — and a
dimension-by-dimension path between any two nodes of boxes ``A`` and ``B``
has length at most the L1 diameter of their bounding box.  Summing those
diameters over the sequence therefore upper-bounds the length of **every**
path the router could ever select for the packet:

    ``worst_case_path_length(router, mesh, s, t) >= |p|``  for all coins.

Dividing by ``dist(s, t)`` certifies the stretch.  The T1 experiments and
tests run this over dense pair sets, turning Theorem 3.4's "for any two
distinct nodes" into an executable, exhaustive check on small meshes.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh

__all__ = ["worst_case_path_length", "worst_case_stretch", "certify_stretch"]


def _l1_diameter(mesh: Mesh, box_a, box_b) -> int:
    """Max L1 distance between any node of ``box_a`` and any node of ``box_b``.

    On the mesh this is the bounding box's L1 extent; on the torus each
    dimension contributes the larger arc distance, capped at ``m_i // 2``.
    """
    total = 0
    sides_a = box_a.sides
    sides_b = box_b.sides
    if mesh.torus:
        from repro.mesh.torus_box import TorusBox, torus_bounding

        bb = torus_bounding(box_a, box_b)
        for ln, m in zip(bb.lengths, mesh.sides):
            total += min(ln - 1, m // 2)
        return total
    del sides_a, sides_b
    for a_lo, a_hi, b_lo, b_hi in zip(box_a.lo, box_a.hi, box_b.lo, box_b.hi):
        total += max(a_hi, b_hi) - min(a_lo, b_lo)
    return total


def worst_case_path_length(router, mesh: Mesh, s: int, t: int) -> int:
    """Deterministic upper bound on the length of any selected path.

    ``router`` must expose ``submesh_sequence`` (the hierarchical routers
    do).  Holds for every realisation of waypoints and dimension orders;
    cycle removal only shortens paths further.
    """
    if s == t:
        return 0
    seq, _ = router.submesh_sequence(mesh, s, t)
    return sum(_l1_diameter(mesh, a, b) for a, b in zip(seq, seq[1:]))


def worst_case_stretch(router, mesh: Mesh, s: int, t: int) -> float:
    """Certified stretch ceiling for one packet."""
    dist = int(mesh.distance(s, t))
    if dist == 0:
        return 0.0
    return worst_case_path_length(router, mesh, s, t) / dist


def certify_stretch(
    router,
    mesh: Mesh,
    *,
    pairs=None,
    exhaustive_limit: int = 4096,
) -> dict:
    """Certify the stretch over a pair set (all ordered pairs by default).

    Returns the worst certified stretch, its witnessing pair, and the pair
    count.  Exhaustive enumeration is refused above ``exhaustive_limit``
    pairs unless an explicit ``pairs`` iterable is given.
    """
    if pairs is None:
        if mesh.n * (mesh.n - 1) > exhaustive_limit:
            raise ValueError(
                f"{mesh.n * (mesh.n - 1)} ordered pairs exceed the exhaustive "
                "limit; pass an explicit pair set"
            )
        pairs = [
            (s, t) for s in range(mesh.n) for t in range(mesh.n) if s != t
        ]
    worst = 0.0
    witness = None
    count = 0
    for s, t in pairs:
        val = worst_case_stretch(router, mesh, int(s), int(t))
        count += 1
        if val > worst:
            worst = val
            witness = (int(s), int(t))
    return {"worst_stretch": worst, "witness": witness, "pairs": count}
