"""Empirical concentration of the congestion (the "whp" in Theorem 3.9).

Theorem 3.9 is a *high-probability* statement: because every packet selects
its path independently, per-edge loads are sums of independent indicators
and Chernoff bounds make the maximum concentrate tightly around its
expectation.  :func:`congestion_distribution` routes a problem many times
and summarises the distribution of ``C``; the experiments check that the
observed spread (max/median, relative standard deviation) is small — the
empirical face of the union-bound argument in the paper's proof.
"""

from __future__ import annotations

import numpy as np

from repro.routing.base import Router, RoutingProblem

__all__ = ["congestion_distribution", "tail_fraction"]


def congestion_distribution(
    router: Router, problem: RoutingProblem, num_seeds: int = 50, *, seed0: int = 0
) -> dict:
    """Distribution summary of ``C`` over independent routing runs.

    Returns min / median / mean / max / std plus the raw sample, all under
    seeds ``seed0 .. seed0 + num_seeds - 1``.
    """
    if num_seeds < 1:
        raise ValueError("need at least one seed")
    samples = np.asarray(
        [router.route(problem, seed=seed0 + s).congestion for s in range(num_seeds)],
        dtype=np.float64,
    )
    return {
        "router": router.name,
        "workload": problem.name,
        "runs": num_seeds,
        "min": float(samples.min()),
        "median": float(np.median(samples)),
        "mean": float(samples.mean()),
        "max": float(samples.max()),
        "std": float(samples.std()),
        "max/median": float(samples.max() / max(np.median(samples), 1e-12)),
        "samples": samples,
    }


def tail_fraction(samples: np.ndarray, threshold: float) -> float:
    """Fraction of runs whose congestion exceeded ``threshold``."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return 0.0
    return float(np.mean(samples > threshold))
