"""Exact expected edge loads of the hierarchical router (closed forms).

The congestion analysis of Section 3.3 bounds, for every edge ``e``, the
probability that one subpath of the bitonic construction uses ``e`` (Lemma
3.5) and sums the bounds (Lemmas 3.6-3.8).  Because the submesh *sequence*
of a packet is deterministic given (s, t) — only the waypoints and the
dimension order are random — those probabilities have closed forms in two
dimensions, and we can compute ``E[C(e)]`` exactly:

For a subpath from ``u`` uniform in box ``A`` to ``v`` uniform in box ``B``
with dimension order XY or YX equally likely (the at-most-one-bend paths of
step 7):

* under XY order, the horizontal edge ``(x, y)-(x+1, y)`` is used iff
  ``u_y = y`` and ``x`` lies in ``[min(u_x, v_x), max(u_x, v_x))``;
  by independence ``P = P[u_y = y] * (P[u_x <= x] P[v_x > x] +
  P[v_x <= x] P[u_x > x])`` — products of uniform CDFs;
* the vertical edge ``(x, y)-(x, y+1)`` is used iff ``v_x = x`` and ``y``
  lies between ``u_y`` and ``v_y``; YX order is symmetric.

Summing over the packet's subpaths and all packets yields the exact
expected load vector, against which Lemma 3.8's
``E[C(e)] <= 16 C* (log2 D + 3)`` ceiling — and Monte-Carlo agreement — is
tested.  Exact analysis assumes ``drop_cycles=False`` (the paper removes
cycles only *after* bounding the expectation, which can only lower loads).
"""

from __future__ import annotations

import numpy as np

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh
from repro.routing.base import RoutingProblem

__all__ = [
    "expected_edge_loads",
    "subpath_edge_probabilities",
    "subpath_edge_probabilities_general",
]


def _uniform_cdf(lo: int, hi: int, xs: np.ndarray) -> np.ndarray:
    """``P[U <= x]`` for ``U`` uniform on the integers ``[lo, hi]``."""
    return np.clip((xs - lo + 1) / (hi - lo + 1), 0.0, 1.0)


def _between_prob(
    a_lo: int, a_hi: int, b_lo: int, b_hi: int, xs: np.ndarray
) -> np.ndarray:
    """``P[min(U,V) <= x < max(U,V)]`` for independent uniforms U on A, V on B."""
    fu = _uniform_cdf(a_lo, a_hi, xs)
    fv = _uniform_cdf(b_lo, b_hi, xs)
    return fu * (1.0 - fv) + fv * (1.0 - fu)


def _point_prob(lo: int, hi: int, xs: np.ndarray) -> np.ndarray:
    """``P[U = x]`` for ``U`` uniform on ``[lo, hi]``."""
    inside = (xs >= lo) & (xs <= hi)
    return inside / (hi - lo + 1)


def subpath_edge_probabilities(
    mesh: Mesh, box_a: Submesh, box_b: Submesh
) -> np.ndarray:
    """Per-edge use probability of one subpath from ``box_a`` to ``box_b``.

    Returns a dense ``(E,)`` vector.  Two-dimensional one-bend closed form;
    :func:`subpath_edge_probabilities_general` covers any dimension.
    """
    if mesh.d != 2:
        raise ValueError("closed-form subpath probabilities require d = 2")
    if mesh.torus:
        raise ValueError("closed forms assume non-wrapping paths (mesh only)")
    probs = np.zeros(mesh.num_edges)
    (a_x0, a_y0), (a_x1, a_y1) = box_a.lo, box_a.hi
    (b_x0, b_y0), (b_x1, b_y1) = box_b.lo, box_b.hi
    lo_x, hi_x = min(a_x0, b_x0), max(a_x1, b_x1)
    lo_y, hi_y = min(a_y0, b_y0), max(a_y1, b_y1)

    # --- horizontal edges (dim 0): (x, y) - (x+1, y), x in [lo_x, hi_x) ---
    if hi_x > lo_x:
        xs = np.arange(lo_x, hi_x)
        ys = np.arange(lo_y, hi_y + 1)
        travel = _between_prob(a_x0, a_x1, b_x0, b_x1, xs)  # (X,)
        # XY order: the row is the start's y; YX order: the end's y.
        row_xy = _point_prob(a_y0, a_y1, ys)  # (Y,)
        row_yx = _point_prob(b_y0, b_y1, ys)
        grid = 0.5 * travel[:, None] * (row_xy + row_yx)[None, :]  # (X, Y)
        tails = (xs[:, None] * mesh.strides[0] + ys[None, :] * mesh.strides[1]).ravel()
        heads = tails + mesh.strides[0]
        probs[mesh.edge_ids(tails, heads)] += grid.ravel()

    # --- vertical edges (dim 1): (x, y) - (x, y+1), y in [lo_y, hi_y) ---
    if hi_y > lo_y:
        xs = np.arange(lo_x, hi_x + 1)
        ys = np.arange(lo_y, hi_y)
        travel = _between_prob(a_y0, a_y1, b_y0, b_y1, ys)  # (Y,)
        col_xy = _point_prob(b_x0, b_x1, xs)  # XY: column is the end's x
        col_yx = _point_prob(a_x0, a_x1, xs)  # YX: column is the start's x
        grid = 0.5 * (col_xy + col_yx)[:, None] * travel[None, :]  # (X, Y)
        tails = (xs[:, None] * mesh.strides[0] + ys[None, :] * mesh.strides[1]).ravel()
        heads = tails + mesh.strides[1]
        probs[mesh.edge_ids(tails, heads)] += grid.ravel()

    return probs


def subpath_edge_probabilities_general(
    mesh: Mesh, box_a: Submesh, box_b: Submesh
) -> np.ndarray:
    """Per-edge use probability of one subpath, any dimension.

    This is exactly the probability structure behind Lemma A.1: under a
    uniformly random dimension ordering, the edge ``e`` along dimension
    ``l`` at position ``x`` is used iff every dimension corrected *before*
    ``l`` already matches the endpoint ``v``'s coordinate at ``x``, every
    dimension corrected *after* still matches ``u``'s, and the dimension-
    ``l`` sweep crosses the edge.  Averaging over orderings reduces to
    position-weighted elementary symmetric sums of the per-dimension point
    probabilities, computed by a small DP (O(d^2) per edge) instead of
    enumerating all ``d!`` orderings.

    Agrees with :func:`subpath_edge_probabilities` for ``d = 2`` and with
    Monte Carlo in any dimension.  Mesh only (no wrap).
    """
    if mesh.torus:
        raise ValueError("closed forms assume non-wrapping paths (mesh only)")
    d = mesh.d
    probs = np.zeros(mesh.num_edges)
    lo = [min(a, b) for a, b in zip(box_a.lo, box_b.lo)]
    hi = [max(a, b) for a, b in zip(box_a.hi, box_b.hi)]
    # Position weights: P[exactly k of the other dims precede dim l]
    # = k! (d-1-k)! / d! summed over the relevant orderings.
    fact = [1.0] * (d + 1)
    for i in range(1, d + 1):
        fact[i] = fact[i - 1] * i
    weights = [fact[k] * fact[d - 1 - k] / fact[d] for k in range(d)]

    for l in range(d):
        if hi[l] <= lo[l]:
            continue
        xs_l = np.arange(lo[l], hi[l])
        travel = _between_prob(box_a.lo[l], box_a.hi[l], box_b.lo[l], box_b.hi[l], xs_l)
        other_dims = [j for j in range(d) if j != l]
        ranges = [np.arange(lo[j], hi[j] + 1) for j in other_dims]
        grids = np.meshgrid(xs_l, *ranges, indexing="ij")
        shape = grids[0].shape
        # Per other dim: a_j = P[v_j = x_j] (before-l factor), b_j = P[u_j = x_j].
        factor_pairs = []
        for idx, j in enumerate(other_dims):
            xj = grids[1 + idx]
            a_j = _point_prob(box_b.lo[j], box_b.hi[j], xj)
            b_j = _point_prob(box_a.lo[j], box_a.hi[j], xj)
            factor_pairs.append((a_j, b_j))
        # DP over the polynomial prod_j (b_j + a_j t); coeff of t^k is the
        # sum over k-subsets preceding dim l.
        coeffs = [np.ones(shape)] + [np.zeros(shape) for _ in range(d - 1)]
        for a_j, b_j in factor_pairs:
            for k in range(len(coeffs) - 1, 0, -1):
                coeffs[k] = coeffs[k] * b_j + coeffs[k - 1] * a_j
            coeffs[0] = coeffs[0] * b_j
        mix = sum(w * c for w, c in zip(weights, coeffs))
        prob_grid = travel.reshape((-1,) + (1,) * (d - 1)) * mix
        # Edge ids: tails at coordinate x (dim l), heads one step up.
        coord_arrays = [None] * d
        coord_arrays[l] = grids[0]
        for idx, j in enumerate(other_dims):
            coord_arrays[j] = grids[1 + idx]
        tails = sum(
            coord_arrays[j].ravel() * int(mesh.strides[j]) for j in range(d)
        )
        heads = tails + int(mesh.strides[l])
        np.add.at(probs, mesh.edge_ids(tails, heads), prob_grid.ravel())
    return probs


def expected_edge_loads(
    router: HierarchicalRouter, problem: RoutingProblem
) -> np.ndarray:
    """Exact ``E[C(e)]`` vector for the hierarchical router (any d, mesh).

    Sums the closed-form subpath probabilities over every packet's
    (deterministic) submesh sequence; the 2-D one-bend specialisation is
    used when available.  Matches Monte-Carlo loads of the router run with
    ``dim_order="random"`` and ``drop_cycles=False``.
    """
    mesh = problem.mesh
    if mesh.torus:
        raise ValueError("exact expected loads require a non-torus mesh")
    if router.dim_order != "random":
        raise ValueError('exact analysis assumes dim_order="random"')
    per_subpath = (
        subpath_edge_probabilities if mesh.d == 2 else subpath_edge_probabilities_general
    )
    expected = np.zeros(mesh.num_edges)
    for s, t in problem.pairs():
        if s == t:
            continue
        seq, _ = router.submesh_sequence(mesh, s, t)
        for box_a, box_b in zip(seq, seq[1:]):
            expected += per_subpath(mesh, box_a, box_b)
    return expected
