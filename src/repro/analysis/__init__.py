"""Experiment harness: theoretical reference curves, sweep runners and
plain-text table rendering shared by the benchmarks and examples."""

from repro.analysis.theory import (
    congestion_bound_2d,
    random_bits_lower_curve,
    random_bits_upper_curve,
    stretch_bound_2d,
    stretch_bound_general,
)
from repro.analysis.adversary_search import adversarial_ratio_search
from repro.analysis.certificates import (
    certify_stretch,
    worst_case_path_length,
    worst_case_stretch,
)
from repro.analysis.concentration import congestion_distribution, tail_fraction
from repro.analysis.experiments import aggregate, evaluate, sweep
from repro.analysis.expected_congestion import (
    expected_edge_loads,
    subpath_edge_probabilities,
)
from repro.analysis.reporting import format_table

__all__ = [
    "adversarial_ratio_search",
    "certify_stretch",
    "worst_case_path_length",
    "worst_case_stretch",
    "congestion_distribution",
    "tail_fraction",
    "expected_edge_loads",
    "subpath_edge_probabilities",
    "stretch_bound_2d",
    "stretch_bound_general",
    "congestion_bound_2d",
    "random_bits_upper_curve",
    "random_bits_lower_curve",
    "evaluate",
    "sweep",
    "aggregate",
    "format_table",
]
