"""Mesh substrate: d-dimensional mesh/torus model, submesh algebra, paths.

This subpackage provides the network model the paper routes on:

* :class:`~repro.mesh.mesh.Mesh` — the ``d``-dimensional mesh (optionally a
  torus) with side lengths ``m_1, ..., m_d``.  Nodes are flat integer ids in
  C order; all coordinate arithmetic is vectorised.
* :class:`~repro.mesh.submesh.Submesh` — an axis-aligned box of nodes with
  the containment / intersection / partition algebra the decomposition
  needs, plus ``out(M')`` (the number of boundary edges, Section 2).
* :mod:`~repro.mesh.paths` — path construction and validation, including the
  dimension-by-dimension ("one-bend" in 2-D) shortest paths of the paper's
  path-selection algorithm (Section 3.3, step 7).
"""

from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh
from repro.mesh.torus_box import TorusBox, torus_bounding
from repro.mesh.paths import (
    dimension_order_path,
    is_valid_path,
    path_length,
    remove_cycles,
)

__all__ = [
    "Mesh",
    "Submesh",
    "TorusBox",
    "torus_bounding",
    "dimension_order_path",
    "is_valid_path",
    "path_length",
    "remove_cycles",
]
