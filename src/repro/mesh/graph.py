"""General weighted graphs behind the :class:`~repro.mesh.mesh.Mesh` contract.

The paper routes on meshes, but its successors (semi-oblivious routing,
Räcke-style tree routing — see ``docs/COMPETITORS.md``) are stated for
arbitrary weighted graphs.  :class:`GeneralGraph` lifts the repo's topology
substrate to that setting while duck-typing the parts of the ``Mesh``
surface the topology-agnostic layers consume:

* ``n`` / ``d`` / ``sides`` / ``torus`` — shape metadata (``d = 1`` and
  ``sides = (n,)`` so flat ids round-trip through coordinate helpers and
  the default randomness budget stays well defined);
* ``distance`` / ``diameter`` — vectorised **hop** distances from an
  unweighted all-pairs BFS (metrics such as stretch and dilation compare
  against hop counts, exactly as on the mesh);
* ``edge_endpoints`` / ``edge_ids`` / ``edge_id_to_endpoints`` /
  ``adjacency_csr(edge_mask)`` / ``all_edges`` — the edge-id table and CSR
  adjacency contracts :class:`~repro.core.pathset.PathSet`, the metrics
  kernels, and the fault detour search are written against.

Edges additionally carry positive float ``weights`` (length, not
capacity); :meth:`weighted_distance` exposes the Dijkstra metric the
competitor routers optimise.  Instances hash by content digest, so they
work as process-stable :mod:`repro.cache` keys and survive pickling into
shard workers unchanged.

>>> g = GeneralGraph([(0, 1), (1, 2), (0, 2)], weights=[1.0, 1.0, 2.5])
>>> g.n, g.num_edges, g.sides, g.torus
(3, 3, (3,), False)
>>> int(g.distance(0, 2)), float(g.weighted_distance(0, 2))
(1, 2.0)
>>> g.neighbors(1)
[0, 2]
"""

from __future__ import annotations

import hashlib
from functools import cached_property
from typing import Iterator

import numpy as np

__all__ = [
    "GeneralGraph",
    "from_mesh",
    "random_regular",
    "dumbbell",
    "named_graph",
    "NAMED_GRAPHS",
]


class GeneralGraph:
    """An undirected, connected, positively weighted simple graph.

    ``edges`` is an ``(E, 2)`` array-like of node-id pairs; ``weights`` an
    optional matching array of positive edge lengths (default all 1.0).
    Edge ids are assigned by sorting the canonical ``(min, max)`` endpoint
    pairs lexicographically, so the id table is a pure function of the edge
    *set* — independent of input order.
    """

    def __init__(
        self,
        edges,
        weights=None,
        *,
        n: int | None = None,
        name: str = "general-graph",
    ):
        ep = np.asarray(edges, dtype=np.int64)
        if ep.ndim != 2 or ep.shape[1] != 2 or ep.shape[0] == 0:
            raise ValueError("edges must be a non-empty (E, 2) array of node pairs")
        if ep.min() < 0:
            raise ValueError("node ids must be non-negative")
        if np.any(ep[:, 0] == ep[:, 1]):
            raise ValueError("self-loops are not allowed")
        w = (
            np.ones(ep.shape[0], dtype=np.float64)
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        if w.shape != (ep.shape[0],):
            raise ValueError("weights must align with edges")
        if not np.all(w > 0):
            raise ValueError("edge weights must be positive")
        lo = np.minimum(ep[:, 0], ep[:, 1])
        hi = np.maximum(ep[:, 0], ep[:, 1])
        self.n = int(hi.max()) + 1 if n is None else int(n)
        if self.n < 2:
            raise ValueError("need at least two nodes")
        if int(hi.max()) >= self.n:
            raise ValueError("edge endpoint out of range")
        keys = lo * self.n + hi
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        if np.any(np.diff(keys) == 0):
            raise ValueError("duplicate edges are not allowed")
        self._edge_keys = keys
        endpoints = np.stack((lo[order], hi[order]), axis=1)
        endpoints.setflags(write=False)
        self.edge_endpoints = endpoints
        weights_sorted = np.ascontiguousarray(w[order])
        weights_sorted.setflags(write=False)
        self.weights = weights_sorted
        self.num_edges = int(endpoints.shape[0])
        # Mesh-compatible shape metadata: a general graph is "1-dimensional"
        # with a single side of length n, which keeps flat-id round-trips
        # and the default bit-budget ceiling meaningful.
        self.d = 1
        self.sides = (self.n,)
        self.torus = False
        self.name = name
        if not self._connected():
            raise ValueError("graph must be connected")

    # ------------------------------------------------------------------
    # Identity: content digest, stable across processes
    # ------------------------------------------------------------------
    @cached_property
    def _digest(self) -> bytes:
        h = hashlib.sha256()
        h.update(self.n.to_bytes(8, "little"))
        h.update(np.ascontiguousarray(self.edge_endpoints).tobytes())
        h.update(np.ascontiguousarray(self.weights).tobytes())
        return h.digest()

    def __hash__(self) -> int:
        return int.from_bytes(self._digest[:8], "little")

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, GeneralGraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.edge_endpoints, other.edge_endpoints)
            and np.array_equal(self.weights, other.weights)
        )

    def __repr__(self) -> str:
        return f"GeneralGraph({self.name!r}, n={self.n}, E={self.num_edges})"

    def _connected(self) -> bool:
        indptr, heads, _ = self.adjacency_csr()
        seen = np.zeros(self.n, dtype=bool)
        seen[0] = True
        frontier = [0]
        while frontier:
            nxt = []
            for u in frontier:
                for v in heads[indptr[u] : indptr[u + 1]].tolist():
                    if not seen[v]:
                        seen[v] = True
                        nxt.append(v)
            frontier = nxt
        return bool(seen.all())

    # ------------------------------------------------------------------
    # Distances (hop metric, matching Mesh.distance semantics)
    # ------------------------------------------------------------------
    @cached_property
    def _hop_matrix(self) -> np.ndarray:
        from scipy.sparse.csgraph import shortest_path

        dm = shortest_path(self._sparse(unit=True), method="D", unweighted=True)
        out = dm.astype(np.int64)
        out.setflags(write=False)
        return out

    @cached_property
    def _weighted_matrix(self) -> np.ndarray:
        from scipy.sparse.csgraph import dijkstra

        dm = dijkstra(self._sparse())
        dm.setflags(write=False)
        return dm

    def _sparse(self, unit: bool = False):
        from scipy.sparse import csr_matrix

        ep = self.edge_endpoints
        w = np.ones(self.num_edges) if unit else self.weights
        data = np.concatenate((w, w))
        rows = np.concatenate((ep[:, 0], ep[:, 1]))
        cols = np.concatenate((ep[:, 1], ep[:, 0]))
        return csr_matrix((data, (rows, cols)), shape=(self.n, self.n))

    def distance(self, u, v):
        """Hop distance (fewest edges); scalar in, scalar out."""
        scalar = np.isscalar(u) and np.isscalar(v)
        d = self._hop_matrix[np.asarray(u, dtype=np.int64), np.asarray(v, dtype=np.int64)]
        return int(d) if scalar else d

    def weighted_distance(self, u, v):
        """Shortest-path distance under the edge ``weights`` metric."""
        scalar = np.isscalar(u) and np.isscalar(v)
        d = self._weighted_matrix[
            np.asarray(u, dtype=np.int64), np.asarray(v, dtype=np.int64)
        ]
        return float(d) if scalar else d

    @cached_property
    def diameter(self) -> int:
        return int(self._hop_matrix.max())

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> list[int]:
        indptr, heads, _ = self._csr
        return sorted(heads[indptr[u] : indptr[u + 1]].tolist())

    def degree(self, u: int) -> int:
        indptr, _, _ = self._csr
        return int(indptr[u + 1] - indptr[u])

    def iter_nodes(self) -> Iterator[int]:
        return iter(range(self.n))

    @cached_property
    def _csr(self):
        return self.adjacency_csr()

    def edge_ids(self, tails: np.ndarray, heads: np.ndarray) -> np.ndarray:
        """Edge ids of the links ``(tails[i], heads[i])``; raises on non-links."""
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        if tails.shape != heads.shape:
            raise ValueError("tails and heads must have the same shape")
        bad = (
            (tails < 0)
            | (tails >= self.n)
            | (heads < 0)
            | (heads >= self.n)
            | (tails == heads)
        )
        if bad.any():
            raise ValueError("consecutive nodes are not mesh neighbors")
        keys = np.minimum(tails, heads) * self.n + np.maximum(tails, heads)
        idx = np.searchsorted(self._edge_keys, keys)
        idx = np.minimum(idx, self.num_edges - 1)
        if not np.array_equal(self._edge_keys[idx], keys):
            raise ValueError("consecutive nodes are not mesh neighbors")
        return idx.astype(np.int64)

    def edge_id_to_endpoints(self, edge_id: int) -> tuple[int, int]:
        if not (0 <= edge_id < self.num_edges):
            raise ValueError("edge id out of range")
        u, v = self.edge_endpoints[edge_id]
        return (int(u), int(v))

    def adjacency_csr(self, edge_mask: np.ndarray | None = None):
        """CSR adjacency ``(indptr, heads, eids)``; same contract as Mesh."""
        ep = self.edge_endpoints
        if edge_mask is not None:
            mask = np.asarray(edge_mask, dtype=bool)
            if mask.shape != (self.num_edges,):
                raise ValueError(
                    f"edge_mask must have shape ({self.num_edges},), got {mask.shape}"
                )
            ep = ep[mask]
            kept = np.flatnonzero(mask)
        else:
            kept = np.arange(self.num_edges, dtype=np.int64)
        tails = np.concatenate((ep[:, 0], ep[:, 1]))
        heads = np.concatenate((ep[:, 1], ep[:, 0]))
        eids = np.concatenate((kept, kept))
        order = np.argsort(tails, kind="stable")
        counts = np.bincount(tails, minlength=self.n)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, heads[order], eids[order]

    def all_edges(self) -> np.ndarray:
        return self.edge_endpoints.copy()

    # ------------------------------------------------------------------
    # Interop + paper-specific gates
    # ------------------------------------------------------------------
    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for e in range(self.num_edges):
            u, v = self.edge_id_to_endpoints(e)
            g.add_edge(u, v, edge_id=e, weight=float(self.weights[e]))
        return g

    @property
    def is_power_of_two_cube(self) -> bool:
        """Always False: the paper's decomposition gates never apply here."""
        return False


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def from_mesh(mesh) -> GeneralGraph:
    """The unit-weight :class:`GeneralGraph` with the same links as ``mesh``.

    Edge *ids* are renumbered (lexicographic endpoint order), but the node
    set, links, hop distances and CSR adjacency semantics agree — the
    property tests cross-check the two implementations on grid instances.
    """
    label = "x".join(str(s) for s in mesh.sides) + ("t" if mesh.torus else "")
    return GeneralGraph(
        mesh.edge_endpoints.copy(), n=mesh.n, name=f"grid-{label}"
    )


def random_regular(
    n: int, degree: int, seed: int = 0, *, weighted: bool = False
) -> GeneralGraph:
    """A connected random ``degree``-regular graph (expander-ish for d>=3).

    Deterministic in ``seed``: built by repeated seeded stub matching until
    the pairing is simple and connected.  ``weighted=True`` additionally
    draws edge weights from ``{0.75, 1.0, ..., 2.25}`` (exact quarter
    multiples, so float arithmetic stays reproducible).
    """
    if n * degree % 2 or degree >= n:
        raise ValueError("need degree < n and n*degree even")
    for attempt in range(1000):
        rng = np.random.default_rng((seed, attempt))
        stubs = rng.permutation(np.repeat(np.arange(n, dtype=np.int64), degree))
        pairs = stubs.reshape(-1, 2)
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        if np.any(lo == hi):
            continue
        keys = lo * n + hi
        if np.unique(keys).size != keys.size:
            continue
        weights = None
        if weighted:
            weights = 0.75 + 0.25 * rng.integers(0, 7, size=keys.size)
        try:
            return GeneralGraph(
                pairs, weights, n=n, name=f"random-regular-{n}"
            )
        except ValueError:
            continue  # disconnected pairing: redraw
    raise RuntimeError("could not sample a connected simple regular graph")


def dumbbell(side: int, *, bridge_weight: float = 0.5) -> GeneralGraph:
    """Two ``side``-cliques joined by one bridge edge: the congestion stress
    case — all cross traffic must use the single bridge."""
    if side < 2:
        raise ValueError("side must be >= 2")
    edges = []
    weights = []
    for block in (0, side):
        for i in range(side):
            for j in range(i + 1, side):
                edges.append((block + i, block + j))
                weights.append(1.0)
    edges.append((side - 1, side))
    weights.append(bridge_weight)
    return GeneralGraph(edges, weights, n=2 * side, name=f"dumbbell-{2 * side}")


# Named instances: fixed, fully deterministic graphs usable as golden /
# verify-case topologies.  ``named_graph`` memoises through repro.cache so
# every caller in a process shares one object (and its lazy caches).
NAMED_GRAPHS = {
    "random-regular-24": lambda: random_regular(24, 4, seed=7, weighted=True),
    "dumbbell-16": lambda: dumbbell(8),
}


def named_graph(name: str) -> GeneralGraph:
    """Build (or fetch the cached) named deterministic graph instance."""
    from repro import cache

    if name not in NAMED_GRAPHS:
        raise KeyError(
            f"unknown graph {name!r}; choose from {sorted(NAMED_GRAPHS)}"
        )
    return cache.memo("named-graph", name, NAMED_GRAPHS[name])
