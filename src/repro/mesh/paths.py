"""Path construction and validation on the mesh.

The paper's path-selection algorithm builds each packet path by
concatenating *subpaths*, each of which is a "dimension by dimension
shortest path (an at most one-bend path), according to a random ordering of
the dimensions" (Section 3.3, step 7).  :func:`dimension_order_path`
implements that primitive; the higher-level concatenation lives in
:mod:`repro.core.path_selection`.

Paths are numpy ``int64`` arrays of flat node ids, including both endpoints;
a path visiting ``L+1`` nodes has length (number of edges) ``L``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mesh.mesh import Mesh

__all__ = [
    "dimension_order_path",
    "concatenate_paths",
    "is_valid_path",
    "path_length",
    "path_edge_endpoints",
    "remove_cycles",
]


def dimension_order_path(
    mesh: Mesh,
    src: int,
    dst: int,
    order: Sequence[int] | None = None,
) -> np.ndarray:
    """Shortest path from ``src`` to ``dst`` correcting one dimension at a time.

    Parameters
    ----------
    mesh:
        The mesh to route on.
    src, dst:
        Flat node ids.
    order:
        Permutation of ``range(mesh.d)`` giving the order in which
        dimensions are corrected.  Defaults to ``(0, 1, ..., d-1)`` —
        classic XY / e-cube routing.  In two dimensions any order yields an
        at-most-one-bend path.

    On a torus each dimension takes the shorter way around (positive
    direction on ties).

    Returns the path as an array of flat node ids; ``src == dst`` yields the
    single-node path ``[src]``.
    """
    d = mesh.d
    if order is None:
        order = tuple(range(d))
    else:
        order = tuple(int(i) for i in order)
        if sorted(order) != list(range(d)):
            raise ValueError(f"order must be a permutation of 0..{d - 1}, got {order}")
    cs = mesh.flat_to_coords(src)
    ct = mesh.flat_to_coords(dst)
    segments: list[np.ndarray] = []
    cur = cs.astype(np.int64).copy()
    cur_flat = int(src)
    total = [cur_flat]
    for dim in order:
        m_i = mesh.sides[dim]
        delta = int(ct[dim] - cur[dim])
        if delta == 0:
            continue
        if mesh.torus and m_i >= 3:
            # Choose the shorter way around; ties go positive.
            fwd = delta % m_i
            back = m_i - fwd
            steps = fwd if fwd <= back else -back
        else:
            steps = delta
        sign = 1 if steps > 0 else -1
        for _ in range(abs(steps)):
            cur[dim] = (cur[dim] + sign) % m_i
            cur_flat = int(cur @ mesh.strides)
            total.append(cur_flat)
    del segments
    return np.asarray(total, dtype=np.int64)


def concatenate_paths(pieces: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate subpaths ``r_0 r_1 ... r_l`` (Section 3.3, step 8).

    Consecutive pieces must share their junction node, which is dropped from
    the later piece so it appears once.
    """
    pieces = [np.asarray(p, dtype=np.int64) for p in pieces if len(p) > 0]
    if not pieces:
        raise ValueError("cannot concatenate zero subpaths")
    out = [pieces[0]]
    for prev, nxt in zip(pieces, pieces[1:]):
        if prev[-1] != nxt[0]:
            raise ValueError(
                f"subpaths do not chain: ...{int(prev[-1])} then {int(nxt[0])}..."
            )
        out.append(nxt[1:])
    return np.concatenate(out)


def path_length(path: np.ndarray) -> int:
    """Number of edges ``|p|`` used by the path."""
    return max(len(path) - 1, 0)


def path_edge_endpoints(path: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The (tails, heads) arrays of the path's consecutive node pairs."""
    path = np.asarray(path, dtype=np.int64)
    return path[:-1], path[1:]


def is_valid_path(mesh: Mesh, path: np.ndarray, src: int | None = None, dst: int | None = None) -> bool:
    """Whether ``path`` is a walk along mesh links (endpoints optional)."""
    path = np.asarray(path, dtype=np.int64)
    if path.ndim != 1 or path.size == 0:
        return False
    if np.any(path < 0) or np.any(path >= mesh.n):
        return False
    if src is not None and path[0] != src:
        return False
    if dst is not None and path[-1] != dst:
        return False
    if path.size == 1:
        return True
    tails, heads = path_edge_endpoints(path)
    try:
        mesh.edge_ids(tails, heads)
    except ValueError:
        return False
    return True


def remove_cycles(path: np.ndarray) -> np.ndarray:
    """Shortcut any revisited node out of the path.

    The paper notes (before Theorem 3.9) that removing cycles never
    increases congestion, so selected paths may be assumed acyclic.  Keeps
    the earliest visit of every retained node.
    """
    path = np.asarray(path, dtype=np.int64)
    seen: dict[int, int] = {}
    out: list[int] = []
    for node in path.tolist():
        if node in seen:
            # Rewind to the first visit of `node`, dropping the loop.
            keep = seen[node] + 1
            for dropped in out[keep:]:
                del seen[dropped]
            out = out[:keep]
        else:
            seen[node] = len(out)
            out.append(node)
    return np.asarray(out, dtype=np.int64)
