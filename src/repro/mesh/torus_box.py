"""Wrapped (torus) boxes.

The paper's proofs repeatedly "assume, for simplicity, that we are on the
torus": there every shifted submesh is full-size — translation wraps around
instead of clipping against the border, so no corner/edge pieces exist and
all the constants are clean.  A :class:`TorusBox` is the wrap-around
analogue of :class:`~repro.mesh.submesh.Submesh`: per dimension it occupies
the ``length_i`` consecutive coordinates starting at ``start_i``, modulo
the mesh side.

Only the operations the decomposition and router need are provided:
membership, containment of (possibly wrapped) boxes, sampling, node
enumeration, and ``offset_node`` for the recycled-bit scheme.  A
``TorusBox`` that happens not to wrap converts to a plain ``Submesh``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh

__all__ = ["TorusBox", "torus_bounding"]


class TorusBox:
    """A wrap-around box on a torus mesh.

    ``start_i`` is the first coordinate of the occupied arc in dimension
    ``i`` and ``length_i`` its extent (``1 <= length_i <= m_i``).
    """

    __slots__ = ("mesh", "start", "lengths", "_hash")

    def __init__(self, mesh: Mesh, start: Sequence[int], lengths: Sequence[int]):
        start_t = tuple(int(s) % mesh.sides[i] for i, s in enumerate(start))
        lengths_t = tuple(int(x) for x in lengths)
        if len(start_t) != mesh.d or len(lengths_t) != mesh.d:
            raise ValueError(f"need {mesh.d} coordinates")
        for i, ln in enumerate(lengths_t):
            if not (1 <= ln <= mesh.sides[i]):
                raise ValueError(
                    f"length {ln} invalid in dim {i} (side {mesh.sides[i]})"
                )
        object.__setattr__(self, "mesh", mesh)
        object.__setattr__(self, "start", start_t)
        object.__setattr__(self, "lengths", lengths_t)
        object.__setattr__(
            self, "_hash", hash((mesh.sides, mesh.torus, start_t, lengths_t))
        )

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("TorusBox instances are immutable")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        spans = "".join(
            f"[{s}:+{l}]" for s, l in zip(self.start, self.lengths)
        )
        return f"TorusBox{spans}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TorusBox)
            and self.mesh == other.mesh
            and self.start == other.start
            and self.lengths == other.lengths
        )

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    @property
    def sides(self) -> tuple[int, ...]:
        return self.lengths

    @property
    def size(self) -> int:
        out = 1
        for ln in self.lengths:
            out *= ln
        return out

    @property
    def is_single_node(self) -> bool:
        return all(ln == 1 for ln in self.lengths)

    def wraps(self) -> bool:
        """Whether any dimension actually wraps past the mesh border."""
        return any(
            s + ln > m for s, ln, m in zip(self.start, self.lengths, self.mesh.sides)
        )

    def to_submesh(self) -> Submesh:
        """Convert to a plain box; requires no dimension to wrap."""
        if self.wraps():
            raise ValueError(f"{self!r} wraps and has no Submesh equivalent")
        lo = self.start
        hi = tuple(s + ln - 1 for s, ln in zip(self.start, self.lengths))
        return Submesh(self.mesh, lo, hi)

    @classmethod
    def from_submesh(cls, box: Submesh) -> "TorusBox":
        return cls(box.mesh, box.lo, box.sides)

    # ------------------------------------------------------------------
    def _offsets(self, coords: np.ndarray) -> np.ndarray:
        sides = np.asarray(self.mesh.sides, dtype=np.int64)
        start = np.asarray(self.start, dtype=np.int64)
        return (coords - start) % sides

    def contains_coords(self, coords: np.ndarray | Sequence[int]) -> bool | np.ndarray:
        arr = np.asarray(coords, dtype=np.int64)
        scalar = arr.ndim == 1
        arr = np.atleast_2d(arr)
        off = self._offsets(arr)
        inside = np.all(off < np.asarray(self.lengths, dtype=np.int64), axis=1)
        return bool(inside[0]) if scalar else inside

    def contains_node(self, node: int | np.ndarray) -> bool | np.ndarray:
        return self.contains_coords(self.mesh.flat_to_coords(node))

    def contains_box(self, other: "TorusBox | Submesh") -> bool:
        """Whether ``other``'s arc lies inside this arc in every dimension."""
        if isinstance(other, Submesh):
            other = TorusBox.from_submesh(other)
        for i, m in enumerate(self.mesh.sides):
            if self.lengths[i] == m:
                continue  # covers the whole ring in this dimension
            rel = (other.start[i] - self.start[i]) % m
            if rel + other.lengths[i] > self.lengths[i]:
                return False
        return True

    # alias so Submesh-consuming code can duck-type
    contains_submesh = contains_box

    # ------------------------------------------------------------------
    def nodes(self) -> np.ndarray:
        ranges = [
            (np.arange(s, s + ln) % m)
            for s, ln, m in zip(self.start, self.lengths, self.mesh.sides)
        ]
        grids = np.meshgrid(*ranges, indexing="ij")
        coords = np.stack([g.ravel() for g in grids], axis=1)
        return coords @ self.mesh.strides

    def offset_node(self, offsets: Sequence[int]) -> int:
        """Flat id of the node at the given in-box offsets (wrapping)."""
        coords = [
            (s + int(o)) % m
            for s, o, m in zip(self.start, offsets, self.mesh.sides)
        ]
        for o, ln in zip(offsets, self.lengths):
            if not (0 <= int(o) < ln):
                raise ValueError(f"offset {o} outside box extent {ln}")
        return int(np.asarray(coords, dtype=np.int64) @ self.mesh.strides)

    def sample_node(self, rng: np.random.Generator) -> int:
        offsets = [int(rng.integers(ln)) for ln in self.lengths]
        return self.offset_node(offsets)


def torus_bounding(a: Submesh | TorusBox, b: Submesh | TorusBox) -> TorusBox:
    """Smallest wrapped box containing both arguments, preferring per
    dimension the shorter way around the torus.

    For each dimension the candidate arcs are "start at a, run to the end
    of b" and "start at b, run to the end of a"; the shorter is kept.
    """
    if isinstance(a, Submesh):
        a = TorusBox.from_submesh(a)
    if isinstance(b, Submesh):
        b = TorusBox.from_submesh(b)
    mesh = a.mesh
    start, lengths = [], []
    for i, m in enumerate(mesh.sides):
        sa, la = a.start[i], a.lengths[i]
        sb, lb = b.start[i], b.lengths[i]
        # arc from a's start covering b
        len_ab = max(la, (sb - sa) % m + lb)
        len_ba = max(lb, (sa - sb) % m + la)
        if min(len_ab, len_ba) >= m:
            start.append(0)
            lengths.append(m)
        elif len_ab <= len_ba:
            start.append(sa)
            lengths.append(len_ab)
        else:
            start.append(sb)
            lengths.append(len_ba)
    return TorusBox(mesh, start, lengths)
