"""The ``d``-dimensional mesh network model (Section 2 of the paper).

The mesh ``M`` is a ``d``-dimensional grid of nodes with side length ``m_i``
in dimension ``i``.  A link connects a node with each of its (up to) ``2d``
neighbors.  We additionally support the torus variant (wrap-around links),
which the paper uses inside proofs "for simplicity"; all routing experiments
run on the mesh.

Nodes are represented as flat integer ids in C order (row-major), i.e. the
node with coordinate vector ``c`` has id ``sum(c[i] * strides[i])`` where
``strides[i] = prod(sides[i+1:])``.  All conversions are vectorised so that
congestion accounting over millions of path edges stays in numpy.

Edges get dense integer ids so that edge loads can be accumulated with
``np.bincount``:  edges along dimension ``i`` are numbered contiguously in a
block starting at ``edge_offsets[i]``; within the block an edge is identified
by the coordinates of its lower endpoint (with dimension ``i``'s range
shortened by one on the mesh).
"""

from __future__ import annotations

import math
from functools import cached_property
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Mesh"]


def _as_coord_array(coords: np.ndarray | Sequence[Sequence[int]], d: int) -> np.ndarray:
    """Coerce ``coords`` to a 2-D ``(k, d)`` int64 array."""
    arr = np.asarray(coords, dtype=np.int64)
    if arr.ndim == 1:
        arr = arr.reshape(1, d)
    if arr.ndim != 2 or arr.shape[1] != d:
        raise ValueError(f"expected coordinates of shape (k, {d}), got {arr.shape}")
    return arr


class Mesh:
    """A ``d``-dimensional mesh (or torus) with side lengths ``sides``.

    Parameters
    ----------
    sides:
        Sequence of per-dimension side lengths ``m_1, ..., m_d`` (each >= 1).
    torus:
        If true, add wrap-around links in every dimension with ``m_i >= 3``
        (a wrap link on a side-2 ring would duplicate an existing link).

    Examples
    --------
    >>> m = Mesh((4, 4))
    >>> m.n, m.num_edges
    (16, 24)
    >>> m.flat_to_coords(5)
    array([1, 1])
    >>> int(m.distance(0, 15))
    6
    """

    def __init__(self, sides: Sequence[int], *, torus: bool = False):
        sides = tuple(int(s) for s in sides)
        if len(sides) == 0:
            raise ValueError("mesh needs at least one dimension")
        if any(s < 1 for s in sides):
            raise ValueError(f"side lengths must be >= 1, got {sides}")
        self.sides: tuple[int, ...] = sides
        self.d: int = len(sides)
        self.torus: bool = bool(torus)
        self.n: int = int(np.prod(np.asarray(sides, dtype=np.int64)))
        # C-order strides: strides[-1] == 1.
        strides = np.ones(self.d, dtype=np.int64)
        for i in range(self.d - 2, -1, -1):
            strides[i] = strides[i + 1] * sides[i + 1]
        self.strides: np.ndarray = strides
        self._sides_arr = np.asarray(sides, dtype=np.int64)
        # Per-dimension number of edges and block offsets for edge ids.
        edge_counts = []
        for i, m_i in enumerate(sides):
            if m_i == 1:
                per_line = 0
            elif self.torus and m_i >= 3:
                per_line = m_i
            else:
                per_line = m_i - 1
            edge_counts.append(self.n // m_i * per_line)
        self._edge_counts = np.asarray(edge_counts, dtype=np.int64)
        self.edge_offsets: np.ndarray = np.concatenate(
            ([0], np.cumsum(self._edge_counts)[:-1])
        )
        self.num_edges: int = int(self._edge_counts.sum())

    # ------------------------------------------------------------------
    # Basic identity / repr
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "Torus" if self.torus else "Mesh"
        return f"{kind}{self.sides}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Mesh)
            and self.sides == other.sides
            and self.torus == other.torus
        )

    def __hash__(self) -> int:
        return hash((self.sides, self.torus))

    # ------------------------------------------------------------------
    # Coordinate arithmetic
    # ------------------------------------------------------------------
    def coords_to_flat(self, coords: np.ndarray | Sequence[Sequence[int]]) -> np.ndarray:
        """Convert ``(k, d)`` coordinates to ``(k,)`` flat node ids."""
        arr = _as_coord_array(coords, self.d)
        if np.any(arr < 0) or np.any(arr >= self._sides_arr):
            raise ValueError("coordinates out of mesh bounds")
        return arr @ self.strides

    def flat_to_coords(self, flat: np.ndarray | int | Sequence[int]) -> np.ndarray:
        """Convert flat node ids to coordinates.

        A scalar id yields a ``(d,)`` vector; an array of ids yields a
        ``(k, d)`` array.
        """
        scalar = np.isscalar(flat)
        ids = np.atleast_1d(np.asarray(flat, dtype=np.int64))
        if np.any(ids < 0) or np.any(ids >= self.n):
            raise ValueError("node id out of range")
        out = (ids[:, None] // self.strides[None, :]) % self._sides_arr[None, :]
        return out[0] if scalar else out

    def node(self, *coords: int) -> int:
        """Flat id of the node at the given coordinates (scalar helper)."""
        if len(coords) != self.d:
            raise ValueError(f"expected {self.d} coordinates, got {len(coords)}")
        return int(self.coords_to_flat([list(coords)])[0])

    def contains_coords(self, coords: np.ndarray | Sequence[Sequence[int]]) -> np.ndarray:
        """Vectorised bounds check; returns a boolean mask."""
        arr = _as_coord_array(coords, self.d)
        return np.all((arr >= 0) & (arr < self._sides_arr), axis=1)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    @cached_property
    def _pow2_decode(self) -> list[tuple[int, int]] | None:
        """Per-dimension ``(shift, mask)`` pairs when every side is a power
        of two (then every stride is too), else ``None``.  Lets hot paths
        decode coordinates with shifts instead of 64-bit div/mod.
        """
        if any(s & (s - 1) for s in self.sides):
            return None
        return [
            (int(stride).bit_length() - 1, side - 1)
            for stride, side in zip(self.strides.tolist(), self.sides)
        ]

    def distance(self, u: int | np.ndarray, v: int | np.ndarray) -> np.ndarray | int:
        """Shortest-path (L1) distance ``dist(u, v)``, vectorised.

        On the torus the per-dimension distance is the shorter way around.
        """
        scalar = np.isscalar(u) and np.isscalar(v)
        decode = self._pow2_decode
        if decode is not None:
            uu = np.atleast_1d(np.asarray(u, dtype=np.int64))
            vv = np.atleast_1d(np.asarray(v, dtype=np.int64))
            for ids in (uu, vv):
                if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= self.n):
                    raise ValueError("node id out of range")
            dist = np.zeros(max(uu.size, vv.size), dtype=np.int64)
            for (shift, mask), side in zip(decode, self.sides):
                term = np.abs(((uu >> shift) & mask) - ((vv >> shift) & mask))
                if self.torus:
                    np.minimum(term, side - term, out=term)
                dist += term
            return int(dist[0]) if scalar else dist
        cu = np.atleast_2d(self.flat_to_coords(u))
        cv = np.atleast_2d(self.flat_to_coords(v))
        diff = np.abs(cu - cv)
        if self.torus:
            diff = np.minimum(diff, self._sides_arr[None, :] - diff)
        dist = diff.sum(axis=1)
        return int(dist[0]) if scalar else dist

    @property
    def diameter(self) -> int:
        """Maximum shortest-path distance between any two nodes."""
        if self.torus:
            return int(sum(s // 2 for s in self.sides))
        return int(sum(s - 1 for s in self.sides))

    # ------------------------------------------------------------------
    # Neighbors / edges
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> list[int]:
        """Flat ids of the (up to ``2d``) neighbors of node ``u``."""
        c = self.flat_to_coords(u)
        out: list[int] = []
        for i, m_i in enumerate(self.sides):
            if m_i == 1:
                continue
            for delta in (-1, 1):
                ci = c[i] + delta
                if 0 <= ci < m_i:
                    out.append(int(u + delta * self.strides[i]))
                elif self.torus and m_i >= 3:
                    wrapped = ci % m_i
                    out.append(int(u + (wrapped - c[i]) * self.strides[i]))
        return sorted(set(out))

    def degree(self, u: int) -> int:
        """Number of links incident to node ``u``."""
        return len(self.neighbors(u))

    def iter_nodes(self) -> Iterator[int]:
        """Iterate over all flat node ids."""
        return iter(range(self.n))

    def edge_ids(self, tails: np.ndarray, heads: np.ndarray) -> np.ndarray:
        """Dense undirected edge ids for node-id pairs ``(tails, heads)``.

        Each pair must be a mesh link.  The id layout groups edges by
        dimension (block ``i`` starts at ``edge_offsets[i]``) and within a
        block enumerates the *lower* endpoint's coordinates in C order, with
        dimension ``i``'s extent shortened to ``m_i - 1`` on the mesh (or
        kept at ``m_i`` on the torus, where the wrap edge has lower-endpoint
        coordinate ``m_i - 1``).

        Raises ``ValueError`` if any pair is not a link.
        """
        tails = np.asarray(tails, dtype=np.int64)
        heads = np.asarray(heads, dtype=np.int64)
        if tails.shape != heads.shape:
            raise ValueError("tails and heads must have the same shape")
        if tails.size == 0:
            return np.empty(0, dtype=np.int64)
        ct = self.flat_to_coords(tails)
        ch = self.flat_to_coords(heads)
        diff = ch - ct
        nz = diff != 0
        if np.any(nz.sum(axis=1) != 1):
            raise ValueError("some pairs differ in != 1 dimension (not links)")
        dims = np.argmax(nz, axis=1)
        step = diff[np.arange(diff.shape[0]), dims]
        m_dim = self._sides_arr[dims]
        plain = np.abs(step) == 1
        wrap = np.abs(step) == (m_dim - 1)
        if self.torus:
            ok = plain | (wrap & (m_dim >= 3))
        else:
            ok = plain
        if not np.all(ok):
            raise ValueError("some pairs are not mesh links")
        # Lower endpoint along the edge's dimension.  For a wrap edge the
        # "lower" endpoint is the one at coordinate m_i - 1.
        lower = np.where(
            (plain & (step > 0)) | (~plain & (step < 0)),
            ct[np.arange(ct.shape[0]), dims],
            ch[np.arange(ch.shape[0]), dims],
        )
        low_coords = ct.copy()
        low_coords[np.arange(ct.shape[0]), dims] = lower
        ids = np.zeros(tails.shape[0], dtype=np.int64)
        for i, m_i in enumerate(self.sides):
            mask = dims == i
            if not np.any(mask):
                continue
            extent = self._sides_arr.copy()
            if not (self.torus and m_i >= 3):
                extent[i] = m_i - 1
            stride = np.ones(self.d, dtype=np.int64)
            for j in range(self.d - 2, -1, -1):
                stride[j] = stride[j + 1] * extent[j + 1]
            ids[mask] = self.edge_offsets[i] + low_coords[mask] @ stride
        return ids

    def edge_id_to_endpoints(self, edge_id: int) -> tuple[int, int]:
        """Inverse of :meth:`edge_ids` for a single edge id."""
        if not (0 <= edge_id < self.num_edges):
            raise ValueError("edge id out of range")
        dim = int(np.searchsorted(self.edge_offsets, edge_id, side="right") - 1)
        rem = edge_id - int(self.edge_offsets[dim])
        extent = list(self.sides)
        m_i = self.sides[dim]
        wrap_dim = self.torus and m_i >= 3
        if not wrap_dim:
            extent[dim] = m_i - 1
        coords = []
        for j in range(self.d - 1, -1, -1):
            coords.append(rem % extent[j])
            rem //= extent[j]
        low = np.asarray(coords[::-1], dtype=np.int64)
        high = low.copy()
        high[dim] = (low[dim] + 1) % m_i
        u = int(low @ self.strides)
        v = int(high @ self.strides)
        return (u, v)

    @cached_property
    def edge_endpoints(self) -> np.ndarray:
        """Canonical endpoints of every edge: a read-only ``(E, 2)`` table.

        Row ``e`` is ``edge_id_to_endpoints(e)`` — column 0 the canonical
        *lower* endpoint, column 1 the higher (for a wrap edge, the node at
        coordinate 0).  Built with one vectorised pass per dimension block,
        so orientation lookups (``directed_edge_loads``) and CSR adjacency
        construction never loop over edge ids in Python.
        """
        out = np.empty((self.num_edges, 2), dtype=np.int64)
        for i, m_i in enumerate(self.sides):
            cnt = int(self._edge_counts[i])
            if cnt == 0:
                continue
            extent = self._sides_arr.copy()
            if not (self.torus and m_i >= 3):
                extent[i] = m_i - 1
            rem = np.arange(cnt, dtype=np.int64)
            coords = np.empty((cnt, self.d), dtype=np.int64)
            for j in range(self.d - 1, -1, -1):
                coords[:, j] = rem % extent[j]
                rem //= extent[j]
            off = int(self.edge_offsets[i])
            out[off : off + cnt, 0] = coords @ self.strides
            coords[:, i] = (coords[:, i] + 1) % m_i
            out[off : off + cnt, 1] = coords @ self.strides
        out.setflags(write=False)
        return out

    def adjacency_csr(
        self, edge_mask: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR adjacency ``(indptr, heads, eids)`` over a subset of edges.

        ``edge_mask`` is a boolean ``(num_edges,)`` mask selecting the edges
        to keep (``None`` keeps all).  Node ``u``'s neighbors are
        ``heads[indptr[u]:indptr[u + 1]]`` and the connecting undirected
        edge ids are the matching slice of ``eids``.  Built in a few array
        passes — the fault-aware detour search runs BFS on this structure
        rather than calling :meth:`neighbors` per node.
        """
        ep = self.edge_endpoints
        if edge_mask is not None:
            mask = np.asarray(edge_mask, dtype=bool)
            if mask.shape != (self.num_edges,):
                raise ValueError(
                    f"edge_mask must have shape ({self.num_edges},), got {mask.shape}"
                )
            ep = ep[mask]
            kept = np.flatnonzero(mask)
        else:
            kept = np.arange(self.num_edges, dtype=np.int64)
        tails = np.concatenate((ep[:, 0], ep[:, 1]))
        heads = np.concatenate((ep[:, 1], ep[:, 0]))
        eids = np.concatenate((kept, kept))
        order = np.argsort(tails, kind="stable")
        counts = np.bincount(tails, minlength=self.n)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, heads[order], eids[order]

    def all_edges(self) -> np.ndarray:
        """All edges as an ``(E, 2)`` array of endpoint node ids.

        Row ``e`` holds the endpoints of the edge with id ``e``; a writable
        copy of :attr:`edge_endpoints`.
        """
        return self.edge_endpoints.copy()

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Build a ``networkx.Graph`` view of the mesh (small meshes only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for e in range(self.num_edges):
            u, v = self.edge_id_to_endpoints(e)
            g.add_edge(u, v, edge_id=e)
        return g

    # ------------------------------------------------------------------
    # Paper-specific helpers
    # ------------------------------------------------------------------
    @property
    def is_power_of_two_cube(self) -> bool:
        """True iff all sides are equal and a power of two (paper's setting)."""
        m = self.sides[0]
        return all(s == m for s in self.sides) and (m & (m - 1)) == 0

    @property
    def k(self) -> int:
        """``log2`` of the side length, for power-of-two cube meshes."""
        if not self.is_power_of_two_cube:
            raise ValueError("k is only defined for equal power-of-two sides")
        return int(math.log2(self.sides[0]))


def pad_to_power_of_two(mesh: Mesh) -> Mesh:
    """Smallest equal-sided power-of-two mesh containing ``mesh``.

    The paper's hierarchical algorithm assumes equal side lengths ``2^k``.
    Problems on arbitrary meshes can be embedded: node coordinates are
    unchanged, so any (s, t) pair of the original mesh is a valid pair of the
    padded mesh.  Selected paths may leave the original mesh, which is why
    this is an embedding helper rather than a transparent fallback.
    """
    m = max(mesh.sides)
    m = 1 << (m - 1).bit_length()
    return Mesh((m,) * mesh.d, torus=mesh.torus)


__all__.append("pad_to_power_of_two")
