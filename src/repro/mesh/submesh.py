"""Axis-aligned submeshes and their algebra (Section 2 of the paper).

A submesh ``M' ⊆ M`` is a box of nodes, denoted in the paper by its end
points in every dimension, e.g. ``[0,3][2,5]`` is the 4x4 submesh with x in
0..3 and y in 2..5.  We mirror that convention: a :class:`Submesh` stores
inclusive lower/upper corners ``lo`` / ``hi``.

The decomposition (Section 3.1 / 4.1), the access graph (Section 3.2), and
the boundary-congestion lower bound (Section 2) are all built on this
algebra; ``out(M')`` — the number of edges crossing the boundary of ``M'`` —
is the denominator of the boundary congestion ``B(M', Π) = |Π'| / out(M')``.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.mesh.mesh import Mesh

__all__ = ["Submesh"]


class Submesh:
    """A box of nodes ``[lo_1, hi_1] x ... x [lo_d, hi_d]`` inside ``mesh``.

    Corners are inclusive.  Instances are immutable and hashable so they can
    serve as access-graph node keys.

    Examples
    --------
    >>> m = Mesh((8, 8))
    >>> s = Submesh(m, (0, 2), (3, 5))
    >>> s.sides, s.size
    ((4, 4), 16)
    >>> s.contains_node(m.node(1, 3))
    True
    """

    __slots__ = ("mesh", "lo", "hi", "_hash")

    def __init__(self, mesh: Mesh, lo: Sequence[int], hi: Sequence[int]):
        lo_t = tuple(int(x) for x in lo)
        hi_t = tuple(int(x) for x in hi)
        if len(lo_t) != mesh.d or len(hi_t) != mesh.d:
            raise ValueError(f"corners must have {mesh.d} coordinates")
        for i in range(mesh.d):
            if not (0 <= lo_t[i] <= hi_t[i] < mesh.sides[i]):
                raise ValueError(
                    f"invalid extent [{lo_t[i]}, {hi_t[i]}] in dim {i} "
                    f"for side {mesh.sides[i]}"
                )
        object.__setattr__(self, "mesh", mesh)
        object.__setattr__(self, "lo", lo_t)
        object.__setattr__(self, "hi", hi_t)
        object.__setattr__(self, "_hash", hash((mesh.sides, mesh.torus, lo_t, hi_t)))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Submesh instances are immutable")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        spans = "".join(f"[{a},{b}]" for a, b in zip(self.lo, self.hi))
        return f"Submesh{spans}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Submesh)
            and self.mesh == other.mesh
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def sides(self) -> tuple[int, ...]:
        """Per-dimension side lengths (in nodes)."""
        return tuple(h - l + 1 for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        """Number of nodes, ``size(M') = prod_i m'_i``."""
        out = 1
        for s in self.sides:
            out *= s
        return out

    @property
    def is_single_node(self) -> bool:
        return self.lo == self.hi

    @classmethod
    def whole(cls, mesh: Mesh) -> "Submesh":
        """The submesh covering all of ``mesh``."""
        return cls(mesh, (0,) * mesh.d, tuple(s - 1 for s in mesh.sides))

    @classmethod
    def single(cls, mesh: Mesh, node: int) -> "Submesh":
        """The single-node submesh ``{node}`` (an access-graph leaf)."""
        c = mesh.flat_to_coords(node)
        return cls(mesh, c, c)

    # ------------------------------------------------------------------
    # Membership / containment
    # ------------------------------------------------------------------
    def contains_coords(self, coords: np.ndarray | Sequence[int]) -> bool | np.ndarray:
        """Whether coordinate vector(s) lie inside the box."""
        arr = np.asarray(coords, dtype=np.int64)
        scalar = arr.ndim == 1
        arr = np.atleast_2d(arr)
        lo = np.asarray(self.lo, dtype=np.int64)
        hi = np.asarray(self.hi, dtype=np.int64)
        inside = np.all((arr >= lo) & (arr <= hi), axis=1)
        return bool(inside[0]) if scalar else inside

    def contains_node(self, node: int | np.ndarray) -> bool | np.ndarray:
        """Whether flat node id(s) lie inside the box."""
        return self.contains_coords(self.mesh.flat_to_coords(node))

    def contains_submesh(self, other: "Submesh") -> bool:
        """Whether ``other`` is completely contained in ``self``."""
        return all(
            sl <= ol and oh <= sh
            for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi)
        )

    def intersect(self, other: "Submesh") -> "Submesh | None":
        """Intersection box, or ``None`` when disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(l > h for l, h in zip(lo, hi)):
            return None
        return Submesh(self.mesh, lo, hi)

    def overlaps(self, other: "Submesh") -> bool:
        return self.intersect(other) is not None

    # ------------------------------------------------------------------
    # Node enumeration / sampling
    # ------------------------------------------------------------------
    def nodes(self) -> np.ndarray:
        """All flat node ids inside the box (C order), vectorised."""
        ranges = [np.arange(l, h + 1, dtype=np.int64) for l, h in zip(self.lo, self.hi)]
        grids = np.meshgrid(*ranges, indexing="ij")
        coords = np.stack([g.ravel() for g in grids], axis=1)
        return coords @ self.mesh.strides

    def iter_coords(self) -> Iterator[tuple[int, ...]]:
        """Iterate coordinates inside the box (C order)."""
        from itertools import product

        yield from product(*(range(l, h + 1) for l, h in zip(self.lo, self.hi)))

    def sample_node(self, rng: np.random.Generator) -> int:
        """A uniformly random node of the box (step 5 of the algorithm)."""
        coords = [int(rng.integers(l, h + 1)) for l, h in zip(self.lo, self.hi)]
        return int(np.asarray(coords, dtype=np.int64) @ self.mesh.strides)

    def offset_node(self, offsets: Sequence[int]) -> int:
        """Flat id of the node at the given in-box offsets.

        Shared interface with :class:`~repro.mesh.torus_box.TorusBox` so
        samplers (notably the recycled-bit scheme) can address nodes of
        either box kind uniformly.
        """
        coords = []
        for lo, hi, o in zip(self.lo, self.hi, offsets):
            o = int(o)
            if not (0 <= o <= hi - lo):
                raise ValueError(f"offset {o} outside box extent {hi - lo + 1}")
            coords.append(lo + o)
        return int(np.asarray(coords, dtype=np.int64) @ self.mesh.strides)

    def clamp_coords(self, coords: Sequence[int]) -> tuple[int, ...]:
        """Project a coordinate vector onto the box (used by bit recycling)."""
        return tuple(
            min(max(int(c), l), h) for c, l, h in zip(coords, self.lo, self.hi)
        )

    # ------------------------------------------------------------------
    # Boundary edges: out(M')
    # ------------------------------------------------------------------
    def out(self) -> int:
        """Number of edges crossing the boundary of the box, ``out(M')``.

        On the mesh, dimension ``i`` contributes one *face* of area
        ``size / m'_i`` for each of its two sides that is not flush with the
        mesh border.  On the torus every face counts unless the box spans
        the whole dimension (then there is no boundary in that dimension).

        Lemma A.4 of the paper shows ``out(M') >= (n')^{(d-1)/d}`` whenever
        every dimension keeps at least one interior face.
        """
        total = 0
        size = self.size
        for i, m_i in enumerate(self.mesh.sides):
            if self.lo[i] == 0 and self.hi[i] == m_i - 1:
                continue  # spans the whole dimension: no boundary faces
            face = size // (self.hi[i] - self.lo[i] + 1)
            if self.mesh.torus and m_i >= 3:
                total += 2 * face
            else:
                if self.lo[i] > 0:
                    total += face
                if self.hi[i] < m_i - 1:
                    total += face
        return total

    def boundary_edge_ids(self) -> np.ndarray:
        """Edge ids of all boundary edges (for cross-checking :meth:`out`)."""
        ids: list[np.ndarray] = []
        mesh = self.mesh
        for i, m_i in enumerate(mesh.sides):
            if self.lo[i] == 0 and self.hi[i] == m_i - 1:
                continue
            face_ranges = [
                np.arange(l, h + 1, dtype=np.int64) for l, h in zip(self.lo, self.hi)
            ]
            for side, coord, nbr in (
                ("lo", self.lo[i], self.lo[i] - 1),
                ("hi", self.hi[i], self.hi[i] + 1),
            ):
                wrap = mesh.torus and m_i >= 3
                if not (0 <= nbr < m_i) and not wrap:
                    continue
                nbr %= m_i
                ranges = list(face_ranges)
                ranges[i] = np.asarray([coord], dtype=np.int64)
                grids = np.meshgrid(*ranges, indexing="ij")
                inside = np.stack([g.ravel() for g in grids], axis=1)
                outside = inside.copy()
                outside[:, i] = nbr
                tails = inside @ mesh.strides
                heads = outside @ mesh.strides
                ids.append(mesh.edge_ids(tails, heads))
        if not ids:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(ids))

    # ------------------------------------------------------------------
    # Decomposition helpers
    # ------------------------------------------------------------------
    def halve(self) -> list["Submesh"]:
        """Partition into ``2^d`` children by dividing each side by 2.

        This is the type-1 refinement step of Section 3.1 ("Every submesh at
        level l can be partitioned into 4 submeshes by dividing each side by
        2").  Requires all sides even.
        """
        from itertools import product

        sides = self.sides
        if any(s % 2 for s in sides):
            raise ValueError(f"cannot halve submesh with odd sides {sides}")
        halves = [s // 2 for s in sides]
        children = []
        for picks in product((0, 1), repeat=self.mesh.d):
            lo = tuple(self.lo[i] + picks[i] * halves[i] for i in range(self.mesh.d))
            hi = tuple(lo[i] + halves[i] - 1 for i in range(self.mesh.d))
            children.append(Submesh(self.mesh, lo, hi))
        return children

    def bounding_with(self, other: "Submesh") -> "Submesh":
        """Smallest box containing both ``self`` and ``other``."""
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Submesh(self.mesh, lo, hi)

    @classmethod
    def bounding_box(cls, mesh: Mesh, s: int, t: int) -> "Submesh":
        """The region ``R`` of Section 4.1: the box spanned by nodes s, t."""
        cs = mesh.flat_to_coords(s)
        ct = mesh.flat_to_coords(t)
        return cls(mesh, np.minimum(cs, ct), np.maximum(cs, ct))
