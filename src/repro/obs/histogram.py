"""Fixed-bin streaming histogram with *exact* shard merges.

The SLO layer (``repro.simulation.slo``) needs latency percentiles
(p50/p99/p999) over tens of millions of samples, computed incrementally
and merged across worker shards without approximation.  Sketches
(t-digest, DDSketch) merge approximately; a fixed-bin histogram merges
*exactly* — bin counts add — at the price of a bounded quantisation
error of at most one ``bin_width``.

The intended use is integer step latencies with ``bin_width=1``: every
sample lands on a bin edge, quantisation error is zero, and every
percentile equals ``numpy.percentile(raw, q, method="inverted_cdf")``
on the raw sample array (the nearest-rank definition).  Tests pin both
the exact integer case and the ≤ one-bin bound for fractional samples.

Bins are kept sparse (``dict`` keyed by bin index), so memory is
O(distinct latencies), not O(max latency).

Examples
--------
>>> h = Histogram()
>>> for v in [1, 2, 2, 3, 100]:
...     h.add(v)
>>> h.count, h.min, h.max
(5, 1.0, 100.0)
>>> h.percentile(50)
2.0
>>> other = Histogram(); other.add(7)
>>> h.merge(other); h.count
6
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["Histogram"]


@dataclass
class Histogram:
    """Sparse fixed-bin histogram; counts merge exactly across shards.

    A value ``v`` lands in bin ``floor(v / bin_width)`` and is reported
    back as that bin's lower edge — exact whenever samples are multiples
    of ``bin_width`` (integer latencies with the default width), and at
    most one bin low otherwise.
    """

    bin_width: float = 1.0
    bins: dict[int, int] = field(default_factory=dict)
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if not (self.bin_width > 0):
            raise ValueError("bin_width must be positive")

    # ------------------------------------------------------------------
    # Recording + merging
    # ------------------------------------------------------------------
    def add(self, value: float, count: int = 1) -> None:
        """Record ``count`` samples of ``value``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        value = float(value)
        if not math.isfinite(value):
            raise ValueError("histogram samples must be finite")
        idx = math.floor(value / self.bin_width)
        self.bins[idx] = self.bins.get(idx, 0) + int(count)
        self.count += int(count)
        self.total += value * count
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def add_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in; bin counts add, so the merge is
        exact — shard-order and shard-count invariant."""
        self.merge_dict(other.to_dict())

    def merge_dict(self, snapshot: Mapping) -> None:
        """Fold a :meth:`to_dict` snapshot in (the picklable wire format
        between worker processes and the parent)."""
        if float(snapshot["bin_width"]) != float(self.bin_width):
            raise ValueError(
                "cannot merge histograms with different bin widths: "
                f"{self.bin_width} vs {snapshot['bin_width']}"
            )
        for idx, c in snapshot["bins"].items():
            idx = int(idx)  # JSON round-trips keys as strings
            self.bins[idx] = self.bins.get(idx, 0) + int(c)
        self.count += int(snapshot["count"])
        self.total += float(snapshot["total"])
        self.min = min(self.min, float(snapshot["min"]))
        self.max = max(self.max, float(snapshot["max"]))

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``numpy``'s ``method="inverted_cdf"``).

        Returns the lower edge of the bin holding the ``ceil(q/100 * n)``-th
        smallest sample (``q=0`` returns the minimum bin edge).  ``nan`` on
        an empty histogram — there is no sample to report.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return float("nan")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        acc = 0
        for idx in sorted(self.bins):
            acc += self.bins[idx]
            if acc >= rank:
                return idx * self.bin_width
        # Unreachable when counts are consistent; guard for safety.
        return max(self.bins) * self.bin_width  # pragma: no cover

    def percentiles(self, qs: Iterable[float]) -> list[float]:
        """Several percentiles in one sorted pass over the bins."""
        qs = list(qs)
        if self.count == 0:
            return [float("nan")] * len(qs)
        order = sorted(range(len(qs)), key=lambda i: qs[i])
        out = [0.0] * len(qs)
        ranks = []
        for i in order:
            q = qs[i]
            if not 0 <= q <= 100:
                raise ValueError("percentile must be in [0, 100]")
            ranks.append(max(1, math.ceil(q / 100.0 * self.count)))
        acc = 0
        pos = 0
        for idx in sorted(self.bins):
            acc += self.bins[idx]
            while pos < len(order) and acc >= ranks[pos]:
                out[order[pos]] = idx * self.bin_width
                pos += 1
            if pos == len(order):
                break
        return out

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain picklable/JSON-able snapshot (merged by :meth:`merge_dict`)."""
        return {
            "bin_width": self.bin_width,
            "bins": dict(self.bins),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, snapshot: Mapping) -> "Histogram":
        h = cls(bin_width=float(snapshot["bin_width"]))
        h.merge_dict(snapshot)
        return h
