"""The :class:`Profiler`: stage timers, counters and JSONL trace emission.

Design constraints, in order:

1. **Zero cost when absent** — every instrumentation site guards with
   ``if profiler is not None``; no global state, no monkey-patching.
2. **Cheap when present** — a stage is two ``perf_counter`` calls and a
   dict update; counters are a dict ``+=``.
3. **Composable** — one profiler can span several ``route`` calls (stage
   times accumulate), and :meth:`Profiler.merge` folds a child profiler
   into a parent (used by sweep-style harnesses).

JSONL trace schema (one JSON object per line, see docs/PERFORMANCE.md):

``{"event": "stage", "name": str, "wall_s": float, "seq": int}``
    Emitted when a stage context exits (only when a trace sink is set).
``{"event": "counter", "name": str, "delta": int, "seq": int}``
    Emitted on every :meth:`Profiler.count` call with a trace sink.
``{"event": "annotation", "key": str, "value": ..., "seq": int}``
    Emitted on every :meth:`Profiler.annotate` call with a trace sink.
``{"event": "observation", "name": str, "value": float, "seq": int}``
    Emitted on every :meth:`Profiler.observe` call with a trace sink.
``{"event": "summary", "stages": {...}, "counters": {...}, "annotations": {...}}``
    Emitted by :meth:`write_trace` / :meth:`write_summary`; ``stages``
    maps stage name to ``{"calls": int, "wall_s": float}``;
    ``annotations`` carries run facts such as ``kernels.backend``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Iterator, Mapping

from repro.obs.histogram import Histogram

__all__ = ["Profiler", "StageStats", "NULL_PROFILER"]


@dataclass
class ObservationStats:
    """Streaming summary of one named observation series (no samples kept).

    Backs :meth:`Profiler.observe` — per-request latencies, queue depths
    and other *measured values* that are neither monotone counters nor
    stage wall times.  Mergeable across workers: count/total/min/max fold
    exactly, so fleet-level summaries stay correct.
    """

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class StageStats:
    """Accumulated wall time and call count of one named stage."""

    calls: int = 0
    wall_s: float = 0.0

    def add(self, wall_s: float) -> None:
        self.calls += 1
        self.wall_s += wall_s

    def to_dict(self) -> dict:
        return {"calls": self.calls, "wall_s": self.wall_s}


@dataclass
class Profiler:
    """Accumulates per-stage wall times and named counters.

    Parameters
    ----------
    trace:
        Optional sink for JSONL events: a path (opened lazily, line
        buffered) or an open text file object.  Without a sink, stages and
        counters are only accumulated in memory.

    Examples
    --------
    >>> prof = Profiler()
    >>> with prof.stage("demo"):
    ...     _ = sum(range(100))
    >>> prof.count("packets", 42)
    >>> prof.stages["demo"].calls
    1
    >>> prof.counters["packets"]
    42
    """

    trace: str | IO[str] | None = None
    stages: dict[str, StageStats] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    #: run facts, not measurements — e.g. ``kernels.backend`` (last writer
    #: wins on merge; workers report through snapshots like counters do)
    annotations: dict[str, object] = field(default_factory=dict)
    #: streaming value summaries (:meth:`observe`) — e.g. per-request
    #: latency ``service.request_s``, sampled queue depth
    observations: dict[str, ObservationStats] = field(default_factory=dict)
    #: fixed-bin distributions (:meth:`record_hist`) — e.g. per-packet
    #: step latency; bin counts add, so shard merges are exact
    histograms: dict[str, Histogram] = field(default_factory=dict)
    _seq: int = field(default=0, repr=False)
    _sink: IO[str] | None = field(default=None, repr=False)
    _owns_sink: bool = field(default=False, repr=False)
    # One profiler may be shared by several threads (sharded execution's
    # merge path, threaded harnesses); dict read-modify-write is not atomic,
    # so every mutation takes this lock.
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a named stage; nests and accumulates across calls."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            with self._lock:
                self.stages.setdefault(name, StageStats()).add(dt)
                self._emit({"event": "stage", "name": name, "wall_s": dt})

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to the named counter (thread-safe)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + int(delta)
            self._emit({"event": "counter", "name": name, "delta": int(delta)})

    def annotate(self, key: str, value) -> None:
        """Record a run fact (e.g. ``kernels.backend``); last writer wins."""
        with self._lock:
            self.annotations[key] = value
            self._emit({"event": "annotation", "key": key, "value": value})

    def observe(self, name: str, value: float) -> None:
        """Record one sample of a measured value (latency, queue depth).

        Unlike :meth:`count` these are *values*, not increments: the
        profiler keeps a streaming count/total/min/max summary per name
        (:class:`ObservationStats`), never the raw samples.
        """
        with self._lock:
            self.observations.setdefault(name, ObservationStats()).add(float(value))
            self._emit({"event": "observation", "name": name, "value": float(value)})

    def record_hist(
        self, name: str, value: float, count: int = 1, bin_width: float = 1.0
    ) -> None:
        """Record ``count`` samples of ``value`` into the named histogram.

        Like :meth:`observe` but keeps the full fixed-bin distribution
        (:class:`~repro.obs.histogram.Histogram`), so percentiles survive
        worker-shard merges exactly.  ``bin_width`` only matters on the
        call that creates the histogram; later calls must agree.
        """
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram(bin_width=bin_width)
            hist.add(value, count)

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's stages and counters into this one."""
        self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` dict into this profiler.

        Snapshots are plain picklable dicts, so this is how per-worker
        profiles cross the process boundary: each worker snapshots its own
        profiler and the parent folds the dicts in shard order.
        """
        stages = snapshot.get("stages", {})
        counters = snapshot.get("counters", {})
        annotations = snapshot.get("annotations", {})
        observations = snapshot.get("observations", {})
        histograms = snapshot.get("histograms", {})
        with self._lock:
            for name, st in stages.items():
                mine = self.stages.setdefault(name, StageStats())
                mine.calls += int(st["calls"])
                mine.wall_s += float(st["wall_s"])
            for name, v in counters.items():
                self.counters[name] = self.counters.get(name, 0) + int(v)
            self.annotations.update(annotations)
            for name, ob in observations.items():
                mine = self.observations.setdefault(name, ObservationStats())
                mine.count += int(ob["count"])
                mine.total += float(ob["total"])
                mine.min = min(mine.min, float(ob["min"]))
                mine.max = max(mine.max, float(ob["max"]))
            for name, hd in histograms.items():
                mine_h = self.histograms.get(name)
                if mine_h is None:
                    mine_h = self.histograms[name] = Histogram(
                        bin_width=float(hd["bin_width"])
                    )
                mine_h.merge_dict(hd)

    def reset(self) -> None:
        with self._lock:
            self.stages.clear()
            self.counters.clear()
            self.annotations.clear()
            self.observations.clear()
            self.histograms.clear()
            self._seq = 0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict view: ``{"stages": {...}, "counters": {...}}``.

        Picklable and mergeable (:meth:`merge_snapshot`): the wire format
        between worker processes and the parent profiler.
        """
        with self._lock:
            return {
                "stages": {k: v.to_dict() for k, v in self.stages.items()},
                "counters": dict(self.counters),
                "annotations": dict(self.annotations),
                "observations": {
                    k: v.to_dict() for k, v in self.observations.items()
                },
                "histograms": {
                    k: v.to_dict() for k, v in self.histograms.items()
                },
            }

    def stage_rows(self) -> list[dict]:
        """One row per stage (sorted by wall time, descending)."""
        total = sum(s.wall_s for s in self.stages.values()) or 1.0
        rows = [
            {
                "stage": name,
                "calls": st.calls,
                "wall_s": st.wall_s,
                "share": st.wall_s / total,
            }
            for name, st in self.stages.items()
        ]
        rows.sort(key=lambda r: -r["wall_s"])
        return rows

    def format(self) -> str:
        """Human-readable per-stage table plus the counter inventory."""
        lines = [f"{'stage':<24} {'calls':>7} {'wall_s':>10} {'share':>7}"]
        for r in self.stage_rows():
            lines.append(
                f"{r['stage']:<24} {r['calls']:>7} {r['wall_s']:>10.4f} "
                f"{r['share']:>6.1%}"
            )
        if self.counters:
            lines.append("counters: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.counters.items())
            ))
        if self.observations:
            lines.append("observations: " + ", ".join(
                f"{k}: n={o.count} mean={o.mean:.4g} max={o.max:.4g}"
                for k, o in sorted(self.observations.items())
            ))
        if self.histograms:
            lines.append("histograms: " + ", ".join(
                f"{k}: n={h.count} p50={h.percentile(50):.4g} "
                f"p99={h.percentile(99):.4g}"
                for k, h in sorted(self.histograms.items())
            ))
        if self.annotations:
            lines.append("annotations: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.annotations.items())
            ))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSONL trace
    # ------------------------------------------------------------------
    def _ensure_sink(self) -> IO[str] | None:
        if self._sink is not None:
            return self._sink
        if self.trace is None:
            return None
        if isinstance(self.trace, str):
            self._sink = open(self.trace, "w", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = self.trace
        return self._sink

    def _emit(self, event: Mapping) -> None:
        sink = self._ensure_sink()
        if sink is None:
            return
        record = dict(event)
        record["seq"] = self._seq
        self._seq += 1
        sink.write(json.dumps(record) + "\n")

    def write_summary(self) -> None:
        """Emit the summary event to the trace sink (no-op without one)."""
        sink = self._ensure_sink()
        if sink is None:
            return
        sink.write(json.dumps({"event": "summary", **self.snapshot()}) + "\n")
        sink.flush()

    def write_trace(self, path: str) -> None:
        """Write the accumulated summary to ``path`` as a one-line JSONL.

        For live per-event traces, construct the profiler with ``trace=``
        instead; this helper is for after-the-fact dumps.
        """
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"event": "summary", **self.snapshot()}) + "\n")

    def close(self) -> None:
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None
        self._owns_sink = False


#: Shared do-nothing sentinel some call sites use instead of ``None`` checks.
NULL_PROFILER: Profiler | None = None
