"""Observability: per-stage wall-time timers, counters, JSONL tracing.

The routing engine, the online simulator and the benchmark harness all
accept an optional :class:`Profiler`.  When one is attached, every pipeline
stage (sequence construction, random draws, path assembly, cycle removal,
metric accumulation, ...) is timed with ``time.perf_counter`` and every
quantity of interest (packets routed, path edges produced, random values
drawn, cache hits) is counted.  When no profiler is attached the
instrumented code paths cost a single ``is None`` check.

Why this exists: the congestion-scaling benchmarks (T3/T5/X4) previously
reported only end-to-end wall time, so "make routing faster" had no
denominator.  Sparse semi-oblivious routing (Zuzic et al. 2023) and compact
oblivious routing (Räcke & Schmid 2018) both argue that *per-packet work*
and *routing-state footprint* are what make oblivious schemes deployable;
the profiler measures the first and ``repro.cache`` bounds the second.

Quick use::

    from repro.obs import Profiler
    prof = Profiler()
    router = repro.HierarchicalRouter(profiler=prof)
    router.route(problem, seed=0)
    print(prof.format())            # per-stage table + counters
    prof.write_trace("run.jsonl")   # machine-readable trace

See ``docs/PERFORMANCE.md`` for the JSONL schema.
"""

from repro.obs.histogram import Histogram
from repro.obs.profiler import NULL_PROFILER, Profiler, StageStats

__all__ = ["Histogram", "Profiler", "StageStats", "NULL_PROFILER"]
