#!/usr/bin/env python
"""Scenario: capacity planning with exact expected load maps.

A network architect wants per-link utilisation forecasts for a routing
scheme *before* deploying it — not Monte-Carlo estimates with error bars,
but the exact expectation.  Because the hierarchical algorithm's submesh
sequence is deterministic per (source, destination), its per-edge load
expectation has a closed form (the Lemma 3.5 / A.1 algebra); this example
computes it for a workload, renders the map as an ASCII heatmap, and
validates it against an empirical run.

Run:  python examples/expected_congestion_map.py [side]
"""

import sys

import numpy as np

import repro
from repro.analysis.expected_congestion import expected_edge_loads
from repro.analysis.visualize import edge_load_heatmap


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    mesh = repro.Mesh((side, side))
    problem = repro.bit_complement(mesh)
    router = repro.HierarchicalRouter(drop_cycles=False)

    exact = expected_edge_loads(router, problem)
    print(f"Exact expected edge loads for {problem.describe()}")
    print(f"max_e E[C(e)] = {exact.max():.2f}  "
          f"(total expected edge-hops {exact.sum():.0f})")
    print()
    print("Expected-load heatmap (exact, no sampling):")
    print(edge_load_heatmap(mesh, exact))
    print()

    trials = 60
    acc = np.zeros(mesh.num_edges)
    for seed in range(trials):
        acc += router.route(problem, seed=seed).edge_loads
    empirical = acc / trials
    print(f"Empirical mean over {trials} runs:")
    print(edge_load_heatmap(mesh, empirical))
    print()
    loaded = exact > 0.25
    rel = np.abs(exact[loaded] - empirical[loaded]) / exact[loaded]
    print(f"agreement on loaded edges: max relative deviation "
          f"{rel.max():.1%} (sampling noise)")
    ceiling = repro.congestion_bound_2d(
        repro.congestion_lower_bound(mesh, problem.sources, problem.dests,
                                     use_lp=mesh.n <= 64),
        problem.max_distance,
    )
    print(f"Lemma 3.8 ceiling: 16 C* (log2 D + 3) >= {ceiling:.0f} "
          f"-- measured max {exact.max():.2f} sits far below it.")


if __name__ == "__main__":
    main()
