#!/usr/bin/env python
"""Quickstart: route a workload obliviously and inspect path quality.

Demonstrates the core loop of the library:

1. build a mesh (the paper's network: equal power-of-two sides);
2. pick a workload (here: matrix transpose — every node (x, y) sends one
   packet to (y, x));
3. route it with the paper's hierarchical algorithm, fully obliviously —
   each packet chooses its path independently;
4. measure congestion C, dilation D and stretch, and compare congestion
   against a certified lower bound on the optimum C*;
5. schedule the packets synchronously to see delivery time ~ C + D.

Run:  python examples/quickstart.py [side]
"""

import sys

import repro


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    mesh = repro.Mesh((side, side))
    print(f"Mesh: {mesh!r} with {mesh.n} nodes and {mesh.num_edges} links")

    problem = repro.transpose(mesh)
    print(f"Workload: {problem.describe()}")

    router = repro.HierarchicalRouter()
    result = router.route(problem, seed=0)
    assert result.validate()

    bound = repro.congestion_lower_bound(
        mesh, problem.sources, problem.dests, use_lp=False
    )
    print()
    print(f"congestion C          = {result.congestion}")
    print(f"C* lower bound        = {bound:.2f}")
    print(f"C / C*-bound          = {result.congestion / bound:.2f}"
          f"   (Theorem 3.9: O(log n); log2 n = {mesh.n.bit_length() - 1})")
    print(f"dilation D            = {result.dilation}")
    print(f"stretch               = {result.stretch:.2f}   (Theorem 3.4: <= 64)")

    sim = repro.simulate(mesh, result)
    print()
    print(f"scheduled delivery    : {sim.summary()}")
    print()

    rows = [
        repro.evaluate(r, problem, seed=0, bound=bound)
        for r in (
            router,
            repro.AccessTreeRouter(),
            repro.DimensionOrderRouter(),
            repro.ValiantRouter(),
        )
    ]
    print(repro.format_table(
        rows, columns=["router", "C", "D", "stretch", "C_ratio"],
        title="Router comparison on transpose",
    ))


if __name__ == "__main__":
    main()
