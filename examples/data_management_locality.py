#!/usr/bin/env python
"""Scenario: locality-sensitive data management on a mesh of workstations.

The line of work the paper builds on (Maggs et al., "Exploiting locality in
data management in systems of limited bandwidth") models a cluster as a
mesh where nodes exchange objects with *mostly nearby* peers, plus a tail
of long-haul transfers.  A router with unbounded stretch ruins exactly this
workload: a request to the rack next door may cross the whole machine.

This example builds such a mixed workload (90% local within radius r, 10%
global), routes it with four oblivious strategies, and reports:

* stretch — how badly local requests are inflated;
* congestion vs the C* lower bound — how balanced the load stays;
* scheduled delivery time — the end-to-end cost (one packet per link per
  cycle).

Expected outcome (the paper's headline): only the bridge-based hierarchical
scheme keeps BOTH numbers small.

Run:  python examples/data_management_locality.py [side] [radius]
"""

import sys

import numpy as np

import repro


def mixed_locality_workload(
    mesh: repro.Mesh, radius: int, global_fraction: float, seed: int
) -> repro.RoutingProblem:
    """90/10 local/global traffic, one packet per node."""
    local = repro.local_traffic(mesh, radius=radius, seed=seed)
    rng = np.random.default_rng(seed + 1)
    dests = local.dests.copy()
    n_global = int(global_fraction * mesh.n)
    chosen = rng.choice(mesh.n, size=n_global, replace=False)
    for v in chosen:
        t = int(rng.integers(mesh.n))
        while t == v:
            t = int(rng.integers(mesh.n))
        dests[v] = t
    return repro.RoutingProblem(
        mesh, local.sources, dests, f"mixed-local-r{radius}"
    )


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    radius = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    mesh = repro.Mesh((side, side))
    problem = mixed_locality_workload(mesh, radius, 0.1, seed=7)
    print(problem.describe())

    bound = repro.congestion_lower_bound(
        mesh, problem.sources, problem.dests, use_lp=False
    )
    routers = [
        repro.HierarchicalRouter(),
        repro.AccessTreeRouter(),
        repro.ValiantRouter(),
        repro.RandomDimOrderRouter(),
    ]
    rows = []
    for router in routers:
        result = router.route(problem, seed=1)
        sim = repro.simulate(mesh, result, seed=2)
        # delay experienced by the local packets only
        local_mask = problem.distances <= radius
        local_stretch = float(np.nanmax(result.stretches[local_mask]))
        rows.append(
            {
                "router": router.name,
                "C": result.congestion,
                "C/C*": result.congestion / bound,
                "stretch(all)": result.stretch,
                "stretch(local)": local_stretch,
                "delivery": sim.makespan,
            }
        )
    print()
    print(repro.format_table(rows, title="Locality-sensitive data management"))
    print()
    print("Reading: the access tree and Valiant keep congestion low but "
          "inflate local requests by ~the mesh side; dimension-order keeps "
          "stretch 1 but has no congestion guarantee. The bridge-based "
          "hierarchy (paper) controls both.")


if __name__ == "__main__":
    main()
