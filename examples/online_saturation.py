#!/usr/bin/env python
"""Scenario: sizing an interconnect for dynamic traffic.

A network architect wants to know how hard each routing strategy can be
driven before latency departs from the light-load baseline.  Because
oblivious routers pick paths without global state, they are the only
candidates for this online setting (the paper's Section 1 argument) — but
they differ sharply in *which* load they handle:

* dimension-order routing has minimal paths (great light-load latency) but
  no congestion guarantee;
* Valiant balances any load but inflates every packet to ~2 crossings of
  the mesh;
* the paper's hierarchical router keeps light-load latency near the
  distance AND balances load.

This example sweeps the injection rate for uniform and neighbor traffic
and prints the saturation tables.

Run:  python examples/online_saturation.py [side]
"""

import sys

import repro
from repro.simulation.online import latency_vs_load


def neighbor_dest(mesh, src, rng):
    nbrs = mesh.neighbors(src)
    return int(nbrs[int(rng.integers(len(nbrs)))])


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    mesh = repro.Mesh((side, side))
    routers = [
        repro.HierarchicalRouter(),
        repro.RandomDimOrderRouter(),
        repro.ValiantRouter(),
    ]
    rates = [0.01, 0.05, 0.1, 0.2]

    print(f"Uniform random destinations on {mesh!r}:")
    rows = []
    for router in routers:
        rows += latency_vs_load(router, mesh, rates, steps=200, seed=3)
    print(repro.format_table(
        rows, columns=["router", "rate", "mean_latency", "p95_latency",
                       "mean_slowdown", "max_queue"]))

    print()
    print("Nearest-neighbor destinations (locality traffic):")
    rows = []
    for router in routers:
        rows += latency_vs_load(
            router, mesh, rates, steps=200, seed=3, dest_fn=neighbor_dest
        )
    print(repro.format_table(
        rows, columns=["router", "rate", "mean_latency", "p95_latency",
                       "mean_slowdown", "max_queue"]))
    print()
    print("Reading: on neighbor traffic Valiant's latency is ~the mesh side "
          "even at 1% load (its stretch), while the hierarchical router "
          "stays within a small factor of the distance at every load — the "
          "online payoff of bounding stretch and congestion together.")


if __name__ == "__main__":
    main()
