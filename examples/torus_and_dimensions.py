#!/usr/bin/env python
"""Scenario: higher-dimensional interconnects (3-D / 4-D torus-class HPC).

HPC interconnects (Cray/BlueGene-style) are 3-D meshes and tori.  The
paper's Section 4 algorithm keeps stretch O(d^2) and congestion
O(d^2 C* log n) in any dimension.  This example:

1. sweeps d = 1..4 at comparable node counts, reporting measured stretch
   against the paper's d^2 envelope;
2. contrasts mesh vs torus distances for the same traffic (the torus is
   what the paper's proofs use internally);
3. shows the multishift decomposition's type table for d = 3 (Figure 2).

Run:  python examples/torus_and_dimensions.py
"""

import numpy as np

import repro
from repro.core.decomposition import Decomposition


def stretch_sweep() -> list[dict]:
    rows = []
    for d, m in ((1, 64), (2, 16), (3, 8), (4, 4)):
        mesh = repro.Mesh((m,) * d)
        prob = repro.random_permutation(mesh, seed=d)
        res = repro.HierarchicalRouter(variant="general").route(prob, seed=0)
        vals = res.stretches[np.isfinite(res.stretches)]
        rows.append(
            {
                "d": d,
                "mesh": f"{m}^{d}",
                "n": mesh.n,
                "max_stretch": float(vals.max()),
                "mean_stretch": float(vals.mean()),
                "paper_envelope": repro.stretch_bound_general(d),
            }
        )
    return rows


def torus_contrast() -> list[dict]:
    rows = []
    for torus in (False, True):
        mesh = repro.Mesh((16, 16), torus=torus)
        prob = repro.tornado(mesh)
        rows.append(
            {
                "network": "torus" if torus else "mesh",
                "tornado max dist": int(prob.max_distance),
                "diameter": mesh.diameter,
                "edges": mesh.num_edges,
            }
        )
    return rows


def main() -> None:
    print(repro.format_table(stretch_sweep(), title="Stretch across dimensions (Theorem 4.2)"))
    print()
    print(repro.format_table(torus_contrast(), title="Mesh vs torus model (Section 2)"))
    print()
    dec = Decomposition(repro.Mesh((16, 16, 16)), scheme="multishift")
    print("Multishift decomposition (d = 3, Figure 2):")
    rows = [
        {
            "level": level,
            "cell side": dec.side(level),
            "lambda": dec.lam(level) if level else 0,
            "types": dec.num_types(level),
        }
        for level in range(dec.k + 1)
    ]
    print(repro.format_table(rows))


if __name__ == "__main__":
    main()
