#!/usr/bin/env python
"""Scenario: an online adversary probes a deterministic router.

Oblivious routing is meant for *online* settings where traffic is not known
in advance.  Section 5 of the paper shows why determinism is fatal there:
an adversary who knows the (deterministic) path function can construct a
permutation-with-distance-l whose packets all share one edge.

This example plays that game end to end:

1. the adversary builds ``Π_A`` against deterministic XY routing for a
   sweep of distances ``l`` (Section 5.1 construction);
2. the deterministic router is forced to congestion ``|Π_A| >= l/d``;
3. the randomized hierarchical router routes the *same* hostile instance
   with congestion ~ ``B log n`` — and we show how many random bits per
   packet that protection costs (Lemma 5.4).

Run:  python examples/online_adversary.py [side]
"""

import sys

import numpy as np

import repro


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    mesh = repro.Mesh((side, side))
    victim = repro.DimensionOrderRouter()
    defender = repro.HierarchicalRouter(bit_mode="recycled")

    rows = []
    l = 2
    while l <= side // 2:
        hostile, hot_edge = repro.adversarial_for_router(victim, mesh, l)
        forced = victim.route(hostile, seed=0).congestion
        results = [defender.route(hostile, seed=s) for s in range(3)]
        randomized = float(np.mean([r.congestion for r in results]))
        bits = float(np.mean(defender.bits_log))
        b = repro.boundary_congestion(mesh, hostile.sources, hostile.dests)
        rows.append(
            {
                "l": l,
                "|Pi_A|": hostile.num_packets,
                "forced_C(XY)": forced,
                "C(hierarchical)": randomized,
                "B(Pi_A)": b,
                "bits/packet": bits,
            }
        )
        l *= 2
    u, v = mesh.edge_id_to_endpoints(hot_edge)
    cu = tuple(int(x) for x in mesh.flat_to_coords(u))
    cv = tuple(int(x) for x in mesh.flat_to_coords(v))
    print(f"Adversary on {mesh!r}; last hot edge: {cu} - {cv}")
    print()
    print(repro.format_table(rows, title="Online adversary vs deterministic routing"))
    print()
    print("Reading: the adversary's leverage over the deterministic router "
          "grows linearly with l (Lemma 5.1, kappa = 1); randomization caps "
          "the damage at ~B log n (Lemma 5.2) for a few dozen random bits "
          "per packet (Lemma 5.4).")


if __name__ == "__main__":
    main()
