"""The invariant registry must FIRE on doctored results, not just pass.

A verification net that never catches anything is indistinguishable from
one that is broken.  For every registered invariant these tests build a
clean context (which must pass) and a deliberately corrupted one (which
must produce a violation naming the right invariant).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.core.randomness import resolve_entropy
from repro.mesh.paths import dimension_order_path
from repro.routing.base import RoutingResult
from repro.routing.registry import make_router
from repro.verify.invariants import (
    REGISTRY,
    VerifyContext,
    check_invariants,
    invariant_table,
    register,
)
from repro.workloads import random_pairs
from repro.workloads.permutations import transpose

EXPECTED_INVARIANTS = {
    "paths.valid-walk",
    "paths.bitonic-envelope",
    "paths.stretch-bound",
    "seed.replay-determinism",
    "seed.obliviousness",
    "pathset.csr-wellformed",
    "metrics.consistent",
    "bounds.lower-bound-holds",
    "online.conservation",
    "budget.respected",
    "budget.envelope",
    "compact.state-equivalent",
    "competitors.path-oracle",
}


def make_ctx(mesh8, router_name="hierarchical", packets=4, seed=0, **overrides):
    # four packets so the sample_limit=4 sampled invariants see every row
    router = make_router(router_name)
    problem = random_pairs(mesh8, packets, seed=seed)
    entropy = resolve_entropy(seed)
    result = router.route(problem, entropy)
    kwargs = dict(
        result=result,
        router=router,
        entropy=entropy,
        original_problem=problem,
        route_fn=lambda workers: router.route(problem, entropy, workers=workers),
        rng=np.random.default_rng(seed),
    )
    kwargs.update(overrides)
    return VerifyContext(**kwargs)


def doctored(result: RoutingResult, paths) -> RoutingResult:
    """A copy of ``result`` with its paths replaced (caches reset)."""
    return RoutingResult(
        result.problem,
        [np.asarray(p, dtype=np.int64) for p in paths],
        result.router_name,
        result.seed,
        kept_indices=result.kept_indices,
    )


# ---------------------------------------------------------------------------
# Registry shape
# ---------------------------------------------------------------------------

def test_registry_contains_exactly_the_documented_invariants():
    assert set(REGISTRY) == EXPECTED_INVARIANTS
    assert {name for name, _desc in invariant_table()} == EXPECTED_INVARIANTS
    for inv in REGISTRY.values():
        assert inv.description  # every invariant explains itself


def test_register_decorator_round_trips():
    @register("test.always-fails", "fixture invariant for this test")
    def _always(ctx):
        return ["boom"]

    try:
        ctx = SimpleNamespace(result=None)
        out = check_invariants(ctx, names=("test.always-fails",))
        assert out == {"test.always-fails": ["boom"]}
    finally:
        del REGISTRY["test.always-fails"]
    assert "test.always-fails" not in REGISTRY


def test_crashing_invariant_reported_as_violation():
    @register("test.crashes", "fixture invariant that raises")
    def _crash(ctx):
        raise RuntimeError("kaboom")

    try:
        out = check_invariants(SimpleNamespace(), names=("test.crashes",))
        assert "kaboom" in out["test.crashes"][0]
    finally:
        del REGISTRY["test.crashes"]


def test_clean_result_passes_all_invariants(mesh8):
    assert check_invariants(make_ctx(mesh8)) == {}


# ---------------------------------------------------------------------------
# Each invariant fires on a corruption it was built to catch
# ---------------------------------------------------------------------------

def test_valid_walk_fires_on_wrong_endpoint(mesh8):
    ctx = make_ctx(mesh8)
    paths = [np.asarray(p) for p in ctx.result.paths]
    bad = paths[0].copy()
    bad[-1] = (bad[-1] + 1) % mesh8.n  # wrong destination
    paths[0] = bad
    ctx.result = doctored(ctx.result, paths)
    out = check_invariants(ctx, names=("paths.valid-walk",))
    assert out["paths.valid-walk"]


def test_valid_walk_fires_on_teleport_hop(mesh8):
    ctx = make_ctx(mesh8, router_name="dim-order")
    paths = [np.asarray(p) for p in ctx.result.paths]
    row = next(i for i, p in enumerate(paths) if len(p) >= 3)
    bad = paths[row].copy()
    # teleport through a non-adjacent node, keeping the endpoints
    bad[1] = (bad[1] + 2 * mesh8.sides[-1]) % mesh8.n
    paths[row] = bad
    ctx.result = doctored(ctx.result, paths)
    out = check_invariants(ctx, names=("paths.valid-walk",))
    assert any("not a mesh link" in msg for msg in out["paths.valid-walk"])


def test_bitonic_envelope_fires_on_escaping_path(mesh8):
    # two adjacent nodes sit in a small bridge submesh; a path that takes
    # the long way around the mesh must leave that envelope
    from repro.routing.base import RoutingProblem

    problem = RoutingProblem(mesh8, np.asarray([0]), np.asarray([1]), "pair")
    router = make_router("hierarchical")
    entropy = resolve_entropy(0)
    result = router.route(problem, entropy)
    detour = dimension_order_path(mesh8, 0, 63, order=(0, 1))
    back = dimension_order_path(mesh8, 63, 1, order=(1, 0))
    escape = np.concatenate([detour, back[1:]])
    ctx = VerifyContext(
        result=doctored(result, [escape]),
        router=router,
        entropy=entropy,
        original_problem=problem,
    )
    out = check_invariants(ctx, names=("paths.bitonic-envelope",))
    assert any("envelope" in msg for msg in out["paths.bitonic-envelope"])


def test_stretch_bound_fires_on_inflated_path(mesh8):
    ctx = make_ctx(mesh8, router_name="dim-order")
    paths = [np.asarray(p) for p in ctx.result.paths]
    row = next(i for i, p in enumerate(paths) if len(p) >= 2)
    p = paths[row]
    # stutter: walk to the first hop and back before continuing (stretch > 1)
    paths[row] = np.concatenate([p[:2], p[:2][::-1], p[1:]])
    ctx.result = doctored(ctx.result, paths)
    out = check_invariants(ctx, names=("paths.stretch-bound",))
    assert any("exceeds bound" in msg for msg in out["paths.stretch-bound"])


def test_replay_determinism_fires_on_entropy_drift(mesh8):
    router = make_router("valiant")
    problem = random_pairs(mesh8, 12, seed=0)
    result = router.route(problem, resolve_entropy(0))
    ctx = VerifyContext(
        result=result,
        router=router,
        entropy=resolve_entropy(0),
        original_problem=problem,
        # a re-route that silently uses different entropy: the exact bug
        # this invariant exists to catch
        route_fn=lambda workers: router.route(problem, resolve_entropy(1)),
    )
    out = check_invariants(ctx, names=("seed.replay-determinism",))
    assert any("differ" in msg for msg in out["seed.replay-determinism"])


def test_obliviousness_fires_on_batch_dependent_paths(mesh8):
    ctx = make_ctx(mesh8, router_name="valiant")
    paths = [np.asarray(p) for p in ctx.result.paths]
    # stutter packet 0's start: routed alone it cannot reproduce that path
    paths[0] = np.concatenate([paths[0][:1], paths[0]])
    ctx.result = doctored(ctx.result, paths)
    out = check_invariants(ctx, names=("seed.obliviousness",))
    assert any("routes differently" in msg for msg in out["seed.obliviousness"])


def test_csr_wellformed_fires_on_writable_buffers(mesh8):
    ctx = make_ctx(mesh8)
    ctx.result.paths.nodes = ctx.result.paths.nodes.copy()  # writable again
    out = check_invariants(ctx, names=("pathset.csr-wellformed",))
    assert any("writable" in msg for msg in out["pathset.csr-wellformed"])


def test_metrics_consistent_fires_on_poisoned_cache(mesh8):
    ctx = make_ctx(mesh8)
    loads = ctx.result.edge_loads
    ctx.result._cache["congestion"] = int(loads.max()) + 1
    out = check_invariants(ctx, names=("metrics.consistent",))
    assert any("congestion" in msg for msg in out["metrics.consistent"])


def test_lower_bound_fires_on_impossibly_light_loads(mesh8):
    # single-node "paths" carry no edges at all: C = 0 < C* for transpose
    router = make_router("hierarchical")
    problem = transpose(mesh8)
    result = router.route(problem, resolve_entropy(0))
    fake = doctored(result, [np.asarray([int(s)]) for s in problem.sources])
    ctx = VerifyContext(
        result=fake,
        router=router,
        entropy=resolve_entropy(0),
        original_problem=problem,
    )
    out = check_invariants(ctx, names=("bounds.lower-bound-holds",))
    assert any("lower bound" in msg for msg in out["bounds.lower-bound-holds"])


def test_online_conservation_fires_on_leaky_accounting():
    stats = SimpleNamespace(
        injected=10,
        delivered=9,
        dropped=3,  # 9 + 3 > 10
        steps=50,
        latencies=np.asarray([5.0] * 9),
        distances=np.asarray([6.0] * 9),  # latency < distance too
        delivery_ratio=0.9,
    )
    ctx = VerifyContext(
        result=None,
        router=None,
        entropy=0,
        original_problem=None,
        online=stats,
    )
    out = check_invariants(ctx, names=("online.conservation",))
    msgs = out["online.conservation"]
    assert any("exceeds" in m for m in msgs)
    assert any("beat its shortest-path distance" in m for m in msgs)


def test_online_conservation_passes_on_clean_accounting():
    stats = SimpleNamespace(
        injected=10,
        delivered=8,
        dropped=2,
        steps=50,
        latencies=np.asarray([7.0] * 8),
        distances=np.asarray([6.0] * 8),
        delivery_ratio=0.8,
    )
    ctx = VerifyContext(
        result=None,
        router=None,
        entropy=0,
        original_problem=None,
        online=stats,
        online_params={"total_steps": 100},
    )
    assert check_invariants(ctx, names=("online.conservation",)) == {}


# ---------------------------------------------------------------------------
# applies() gating
# ---------------------------------------------------------------------------

def test_stretch_bound_skips_unpromised_routers(mesh8):
    ctx = make_ctx(mesh8, router_name="valiant")
    assert not REGISTRY["paths.stretch-bound"].applies(ctx)


def test_stretch_bound_binds_dim_order_in_3d():
    from repro.mesh.mesh import Mesh

    mesh = Mesh((4, 4, 4))
    router = make_router("dim-order")
    problem = random_pairs(mesh, 4, seed=0)
    result = router.route(problem, resolve_entropy(0))
    ctx = VerifyContext(
        result=result, router=router, entropy=0, original_problem=problem
    )
    # dim-order promises stretch 1 in any dimension count...
    assert REGISTRY["paths.stretch-bound"].applies(ctx)
    # ...but Theorem 3.4's constant-64 ceiling is proved for 2-D only
    hier = make_router("hierarchical")
    hier_result = hier.route(problem, resolve_entropy(0))
    hier_ctx = VerifyContext(
        result=hier_result, router=hier, entropy=0, original_problem=problem
    )
    assert not REGISTRY["paths.stretch-bound"].applies(hier_ctx)


def test_bitonic_envelope_skips_torus():
    from repro.mesh.mesh import Mesh

    mesh = Mesh((8, 8), torus=True)
    router = make_router("hierarchical")
    problem = random_pairs(mesh, 4, seed=0)
    result = router.route(problem, resolve_entropy(0))
    ctx = VerifyContext(
        result=result, router=router, entropy=0, original_problem=problem
    )
    assert not REGISTRY["paths.bitonic-envelope"].applies(ctx)


def test_names_filter_runs_before_applies(mesh8):
    # an online-only context must be safe to pass through the full filter
    ctx = VerifyContext(
        result=None,
        router=None,
        entropy=0,
        original_problem=None,
        online=None,
    )
    assert check_invariants(ctx, names=()) == {}
