"""Tests for compact per-node routing state (Section 5; Theorem 5.5).

The claims under test:

* a :class:`CompactNodeTable` round-trips its byte encoding exactly and
  measures a *polylog* number of bits — ``O(d log^2 n)``, never a global
  table;
* :class:`CompactHierarchicalRouter` routes byte-identically to the
  global :class:`HierarchicalRouter` from that serialized state alone,
  across schemes, variants, bit modes, torus wrap and both engine modes
  (batch and scalar are separate pinned contracts — equality is checked
  within each mode);
* its planned-bit cost model agrees with the global router's, so budget
  enforcement degrades exactly the same packets.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.compact import (
    CompactHierarchicalRouter,
    CompactNodeTable,
    build_node_table,
)
from repro.core.compact import _TableDecomposition
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.registry import available_routers, make_router
from repro.workloads.generators import random_pairs
from repro.workloads.permutations import transpose

MESHES = [
    Mesh((8, 8)),
    Mesh((16, 16)),
    Mesh((8, 8), torus=True),
    Mesh((4, 4, 4)),
    Mesh((8, 8, 8)),
    Mesh((4, 4, 4), torus=True),
]


def digest(paths) -> str:
    h = hashlib.sha256()
    h.update(paths.nodes.tobytes())
    h.update(paths.offsets.tobytes())
    return h.hexdigest()


def _problem(mesh):
    return random_pairs(mesh, 40, seed=9)


# ---------------------------------------------------------------------------
# The serialized table.
# ---------------------------------------------------------------------------

class TestCompactNodeTable:
    @pytest.mark.parametrize("mesh", MESHES, ids=str)
    @pytest.mark.parametrize("scheme", ["auto", "multishift"])
    def test_round_trip(self, mesh, scheme):
        for node in (0, mesh.n // 2, mesh.n - 1):
            t = build_node_table(mesh, node, scheme)
            assert CompactNodeTable.from_bytes(t.to_bytes()) == t

    def test_table_records_the_node_itself(self, mesh8):
        t = build_node_table(mesh8, 13)
        assert t.coords == tuple(int(c) for c in mesh8.flat_to_coords(13))
        assert t.sides == (8, 8) and not t.torus
        assert t.d == 2 and t.k == 3

    def test_bad_magic_rejected(self, mesh8):
        blob = build_node_table(mesh8, 0).to_bytes()
        with pytest.raises(ValueError, match="magic"):
            CompactNodeTable.from_bytes(b"XXXX" + blob[4:])

    def test_trailing_bytes_rejected(self, mesh8):
        blob = build_node_table(mesh8, 0).to_bytes()
        with pytest.raises(ValueError, match="trailing"):
            CompactNodeTable.from_bytes(blob + b"\x00")

    def test_validation(self, mesh8):
        t = build_node_table(mesh8, 0)
        with pytest.raises(ValueError, match="unknown scheme"):
            CompactNodeTable(t.coords, t.sides, t.torus, "global", t.shifts)
        with pytest.raises(ValueError, match="equal dimension"):
            CompactNodeTable((1,), t.sides, t.torus, t.scheme, t.shifts)
        with pytest.raises(ValueError, match="shift levels"):
            CompactNodeTable(t.coords, t.sides, t.torus, t.scheme, t.shifts[:-1])

    @pytest.mark.parametrize("mesh", MESHES, ids=str)
    def test_state_is_polylog(self, mesh):
        """The Section 5 point: per-node state is O(d log^2 n) bits, and
        the constant is small — far below one row of a global table
        (num_nodes * d coordinates)."""
        t = build_node_table(mesh, 0)
        bits = t.state_bits()
        assert bits == 8 * len(t.to_bytes())
        assert bits <= 512 * (mesh.k + 1) * (mesh.d + 1) + 1024
        global_table_bits = mesh.n * mesh.d * 32
        assert bits < global_table_bits

    def test_state_grows_logarithmically_not_linearly(self):
        small = build_node_table(Mesh((8, 8)), 0).state_bits()
        big = build_node_table(Mesh((64, 64)), 0).state_bits()
        # 64x as many nodes, state grows by a factor ~ log ratio, not 64x
        assert big < 4 * small


# ---------------------------------------------------------------------------
# The table-backed decomposition.
# ---------------------------------------------------------------------------

class TestTableDecomposition:
    def test_geometry_mismatch_rejected(self, mesh8):
        table = build_node_table(mesh8, 0)
        with pytest.raises(ValueError, match="does not match"):
            _TableDecomposition(Mesh((16, 16)), table)
        with pytest.raises(ValueError, match="does not match"):
            _TableDecomposition(Mesh((8, 8), torus=True), table)

    @pytest.mark.parametrize("mesh", MESHES, ids=str)
    def test_shift_schedule_matches_reference(self, mesh):
        from repro.core.decomposition import Decomposition

        ref = Decomposition(mesh, "auto")
        table = build_node_table(mesh, 0)
        local = _TableDecomposition(mesh, table)
        for level in range(ref.k + 1):
            assert local.shifts(level) == ref.shifts(level)


# ---------------------------------------------------------------------------
# The compact router: byte-identity and state independence.
# ---------------------------------------------------------------------------

class TestCompactRouter:
    def test_registered(self):
        assert "compact-hierarchical" in available_routers()
        router = make_router("compact-hierarchical")
        assert isinstance(router, CompactHierarchicalRouter)
        assert router.name == "compact-hierarchical"
        assert router.is_oblivious

    @pytest.mark.parametrize("mesh", MESHES, ids=str)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_byte_identical_to_global_router(self, mesh, seed):
        problem = _problem(mesh)
        for batch in (True, False):
            a = HierarchicalRouter().route(problem, seed=seed, batch=batch)
            b = CompactHierarchicalRouter().route(problem, seed=seed, batch=batch)
            assert digest(a.paths) == digest(b.paths), (mesh, seed, batch)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scheme": "multishift"},
            {"variant": "general"},
            {"dim_order": "shared"},
            {"dim_order": "fixed"},
            {"bit_mode": "fresh"},
            {"bit_mode": "recycled"},
            {"use_bridges": False},
        ],
        ids=lambda kw: "+".join(f"{k}={v}" for k, v in kw.items()),
    )
    def test_byte_identical_across_configs(self, mesh8, kwargs):
        problem = _problem(mesh8)
        a = HierarchicalRouter(**kwargs).route(problem, seed=3)
        b = CompactHierarchicalRouter(**kwargs).route(problem, seed=3)
        assert digest(a.paths) == digest(b.paths)

    def test_state_bits_reported(self, mesh8):
        router = CompactHierarchicalRouter()
        bits = router.state_bits_per_node(mesh8)
        assert bits == router.node_table(mesh8, 0).state_bits()

    def test_state_bits_counter(self, mesh8):
        from repro.obs import Profiler

        prof = Profiler()
        router = CompactHierarchicalRouter(profiler=prof)
        router.route(_problem(mesh8), seed=0)
        assert prof.counters["compact.state_bits"] == router.state_bits_per_node(
            mesh8
        )

    def test_no_shared_cache_warmup(self, mesh8):
        router = CompactHierarchicalRouter()
        assert router.warmup_keys(_problem(mesh8)) == ()

    def test_planned_bits_match_global_router(self):
        for mesh in MESHES:
            problem = _problem(mesh)
            a = HierarchicalRouter()
            b = CompactHierarchicalRouter()
            for mode in (None, "recycled"):
                np.testing.assert_array_equal(
                    a.planned_bits(problem, mode),
                    b.planned_bits(problem, mode),
                    err_msg=f"{mesh} mode={mode}",
                )

    def test_budget_fallback_is_compact(self):
        fallback = CompactHierarchicalRouter().budget_fallback_router()
        assert isinstance(fallback, CompactHierarchicalRouter)
        assert fallback.bit_mode == "recycled"

    def test_budget_enforcement_matches_global_router(self, mesh8):
        """Same planned costs → the same packets degrade: ledgers agree."""
        problem = transpose(mesh8)
        a = HierarchicalRouter().route(problem, seed=0, budget=16)
        b = CompactHierarchicalRouter().route(problem, seed=0, budget=16)
        assert b.budget.to_dict() == a.budget.to_dict()
        assert b.budget.fallbacks_recycled > 0

    def test_sharded_routing_matches_serial(self, mesh8):
        from repro.parallel import SerialExecutor, route_sharded

        problem = _problem(mesh8)
        router = CompactHierarchicalRouter()
        serial = router.route(problem, seed=5, workers=1)
        sharded = route_sharded(
            router, problem, seed=5, workers=3, executor=SerialExecutor()
        )
        assert digest(sharded.paths) == digest(serial.paths)

    def test_batch_spec_matches_sequence_tables_layout(self, mesh8):
        """The compact spec replicates SequenceTables.batch_boxes exactly:
        same slot count, same padding, same dtypes."""
        problem = _problem(mesh8)
        ref = HierarchicalRouter().batch_spec(problem)
        got = CompactHierarchicalRouter().batch_spec(problem)
        assert got is not None and ref is not None
        np.testing.assert_array_equal(got.box_lo, ref.box_lo)
        np.testing.assert_array_equal(got.box_len, ref.box_len)
        np.testing.assert_array_equal(got.n_inner, ref.n_inner)
        assert got.box_len.dtype == ref.box_len.dtype

    def test_batch_spec_ineligible_cases(self):
        router = CompactHierarchicalRouter()
        assert router.batch_spec(_problem(Mesh((8, 8), torus=True))) is None
        assert CompactHierarchicalRouter(bit_mode="fresh").batch_spec(
            _problem(Mesh((8, 8)))
        ) is None
