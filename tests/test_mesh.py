"""Unit tests for the d-dimensional mesh model."""

import math

import numpy as np
import pytest

from repro.mesh.mesh import Mesh, pad_to_power_of_two


class TestConstruction:
    def test_basic_2d(self):
        m = Mesh((4, 4))
        assert m.d == 2
        assert m.n == 16
        assert m.sides == (4, 4)
        assert not m.torus

    def test_strides_c_order(self):
        m = Mesh((3, 4, 5))
        assert m.strides.tolist() == [20, 5, 1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Mesh(())

    def test_rejects_nonpositive_side(self):
        with pytest.raises(ValueError):
            Mesh((4, 0))

    def test_single_node_mesh(self):
        m = Mesh((1,))
        assert m.n == 1
        assert m.num_edges == 0
        assert m.neighbors(0) == []

    def test_1d_mesh(self):
        m = Mesh((5,))
        assert m.num_edges == 4
        assert m.neighbors(2) == [1, 3]

    def test_equality_and_hash(self):
        assert Mesh((4, 4)) == Mesh((4, 4))
        assert Mesh((4, 4)) != Mesh((4, 4), torus=True)
        assert Mesh((4, 4)) != Mesh((4, 8))
        assert hash(Mesh((2, 2))) == hash(Mesh((2, 2)))

    def test_edge_count_formula_mesh(self):
        # d-dim mesh edges: sum_i n/m_i * (m_i - 1)
        m = Mesh((3, 4, 5))
        expected = sum(m.n // s * (s - 1) for s in m.sides)
        assert m.num_edges == expected

    def test_edge_count_torus(self):
        t = Mesh((4, 4), torus=True)
        assert t.num_edges == 2 * 16  # every dim contributes n edges

    def test_torus_side2_no_duplicate_wrap(self):
        t = Mesh((2, 2), torus=True)
        # wrap links on side-2 rings would duplicate mesh links
        assert t.num_edges == Mesh((2, 2)).num_edges


class TestCoordinates:
    def test_roundtrip_scalar(self):
        m = Mesh((4, 6))
        for v in range(m.n):
            c = m.flat_to_coords(v)
            assert int(m.coords_to_flat([c])[0]) == v

    def test_node_helper(self):
        m = Mesh((8, 8))
        assert m.node(0, 0) == 0
        assert m.node(1, 1) == 9
        assert m.node(7, 7) == 63

    def test_node_wrong_arity(self):
        with pytest.raises(ValueError):
            Mesh((4, 4)).node(1)

    def test_out_of_bounds_coords(self):
        m = Mesh((4, 4))
        with pytest.raises(ValueError):
            m.coords_to_flat([(4, 0)])
        with pytest.raises(ValueError):
            m.coords_to_flat([(-1, 0)])

    def test_out_of_range_flat(self):
        with pytest.raises(ValueError):
            Mesh((4, 4)).flat_to_coords(16)

    def test_vectorized_conversion(self):
        m = Mesh((5, 7))
        ids = np.arange(m.n)
        coords = m.flat_to_coords(ids)
        assert coords.shape == (m.n, 2)
        np.testing.assert_array_equal(m.coords_to_flat(coords), ids)

    def test_contains_coords(self):
        m = Mesh((4, 4))
        mask = m.contains_coords([(0, 0), (3, 3), (4, 0), (-1, 2)])
        assert mask.tolist() == [True, True, False, False]


class TestDistance:
    def test_l1_distance(self):
        m = Mesh((8, 8))
        assert m.distance(m.node(0, 0), m.node(3, 4)) == 7

    def test_distance_symmetric(self):
        m = Mesh((5, 5))
        a, b = m.node(1, 2), m.node(4, 0)
        assert m.distance(a, b) == m.distance(b, a)

    def test_torus_distance_wraps(self):
        t = Mesh((8, 8), torus=True)
        assert t.distance(t.node(0, 0), t.node(7, 0)) == 1
        assert t.distance(t.node(0, 0), t.node(4, 0)) == 4

    def test_diameter(self):
        assert Mesh((8, 8)).diameter == 14
        assert Mesh((8, 8), torus=True).diameter == 8
        assert Mesh((4, 4, 4)).diameter == 9

    def test_vectorized_distance(self):
        m = Mesh((4, 4))
        u = np.asarray([0, 0, 5])
        v = np.asarray([15, 0, 10])
        np.testing.assert_array_equal(m.distance(u, v), [6, 0, 2])


class TestNeighbors:
    def test_interior_degree(self):
        m = Mesh((5, 5))
        assert m.degree(m.node(2, 2)) == 4

    def test_corner_degree(self):
        m = Mesh((5, 5))
        assert m.degree(m.node(0, 0)) == 2

    def test_torus_degree_uniform(self):
        t = Mesh((5, 5), torus=True)
        assert all(t.degree(v) == 4 for v in range(t.n))

    def test_neighbors_symmetric(self):
        m = Mesh((4, 3))
        for u in range(m.n):
            for v in m.neighbors(u):
                assert u in m.neighbors(v)

    def test_neighbors_are_distance_one(self):
        m = Mesh((4, 4, 2))
        for u in [0, 5, 17, 31]:
            for v in m.neighbors(u):
                assert m.distance(u, v) == 1

    def test_3d_interior_degree(self):
        m = Mesh((4, 4, 4))
        center = m.node(2, 2, 2)
        assert m.degree(center) == 6


class TestEdgeIds:
    def test_bijection_mesh(self):
        m = Mesh((4, 5))
        seen = set()
        for e in range(m.num_edges):
            u, v = m.edge_id_to_endpoints(e)
            eid = int(m.edge_ids(np.asarray([u]), np.asarray([v]))[0])
            assert eid == e
            seen.add((min(u, v), max(u, v)))
        assert len(seen) == m.num_edges

    def test_direction_invariant(self):
        m = Mesh((4, 4))
        u, v = 0, 1
        a = m.edge_ids(np.asarray([u]), np.asarray([v]))
        b = m.edge_ids(np.asarray([v]), np.asarray([u]))
        assert a[0] == b[0]

    def test_bijection_torus(self):
        t = Mesh((4, 4), torus=True)
        for e in range(t.num_edges):
            u, v = t.edge_id_to_endpoints(e)
            assert int(t.edge_ids(np.asarray([u]), np.asarray([v]))[0]) == e

    def test_wrap_edge_identified(self):
        t = Mesh((4,), torus=True)
        eid = t.edge_ids(np.asarray([3]), np.asarray([0]))
        assert 0 <= eid[0] < t.num_edges

    def test_non_adjacent_raises(self):
        m = Mesh((4, 4))
        with pytest.raises(ValueError):
            m.edge_ids(np.asarray([0]), np.asarray([2]))

    def test_diagonal_raises(self):
        m = Mesh((4, 4))
        with pytest.raises(ValueError):
            m.edge_ids(np.asarray([0]), np.asarray([5]))

    def test_empty_input(self):
        m = Mesh((4, 4))
        assert m.edge_ids(np.empty(0), np.empty(0)).size == 0

    def test_all_edges_shape(self):
        m = Mesh((3, 3))
        edges = m.all_edges()
        assert edges.shape == (m.num_edges, 2)

    def test_3d_bijection(self):
        m = Mesh((2, 3, 2))
        for e in range(m.num_edges):
            u, v = m.edge_id_to_endpoints(e)
            assert m.distance(u, v) == 1
            assert int(m.edge_ids(np.asarray([u]), np.asarray([v]))[0]) == e

    def test_edge_id_out_of_range(self):
        m = Mesh((3, 3))
        with pytest.raises(ValueError):
            m.edge_id_to_endpoints(m.num_edges)


class TestNetworkx:
    def test_graph_matches_mesh(self):
        m = Mesh((4, 4))
        g = m.to_networkx()
        assert g.number_of_nodes() == m.n
        assert g.number_of_edges() == m.num_edges
        for u in range(m.n):
            assert sorted(g.neighbors(u)) == m.neighbors(u)

    def test_torus_graph(self):
        t = Mesh((4, 4), torus=True)
        g = t.to_networkx()
        assert g.number_of_edges() == t.num_edges
        assert all(d == 4 for _, d in g.degree())


class TestPaperHelpers:
    def test_is_power_of_two_cube(self):
        assert Mesh((8, 8)).is_power_of_two_cube
        assert Mesh((1, 1)).is_power_of_two_cube
        assert not Mesh((8, 4)).is_power_of_two_cube
        assert not Mesh((6, 6)).is_power_of_two_cube

    def test_k(self):
        assert Mesh((8, 8)).k == 3
        assert Mesh((16, 16, 16)).k == 4
        with pytest.raises(ValueError):
            _ = Mesh((6, 6)).k

    def test_pad_to_power_of_two(self):
        padded = pad_to_power_of_two(Mesh((5, 7)))
        assert padded.sides == (8, 8)
        assert pad_to_power_of_two(Mesh((8, 8))).sides == (8, 8)
        assert math.log2(padded.sides[0]).is_integer()
