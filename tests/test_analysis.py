"""Tests for theory curves, sweep helpers and table rendering."""

import math

import pytest

from repro.analysis.experiments import aggregate, evaluate, sweep
from repro.analysis.reporting import format_table, format_value
from repro.analysis.theory import (
    bridge_height_bound,
    congestion_bound_2d,
    congestion_bound_general,
    random_bits_lower_curve,
    random_bits_upper_curve,
    stretch_bound_2d,
    stretch_bound_general,
)
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.baselines import DimensionOrderRouter
from repro.workloads.generators import random_pairs


class TestTheory:
    def test_2d_constant(self):
        assert stretch_bound_2d() == 64.0

    def test_general_grows_quadratically(self):
        vals = [stretch_bound_general(d) for d in (1, 2, 4, 8)]
        assert vals == sorted(vals)
        # doubling d roughly quadruples the bound for large d
        assert vals[3] / vals[2] > 3

    def test_general_rejects_bad_d(self):
        with pytest.raises(ValueError):
            stretch_bound_general(0)

    def test_congestion_bound_monotone_in_distance(self):
        assert congestion_bound_2d(1.0, 16) > congestion_bound_2d(1.0, 2)
        assert congestion_bound_2d(1.0, 0) == 0.0
        assert congestion_bound_2d(2.0, 8) == 2 * congestion_bound_2d(1.0, 8)

    def test_congestion_bound_general(self):
        assert congestion_bound_general(1.0, 3, 16) > congestion_bound_general(
            1.0, 2, 16
        )
        assert congestion_bound_general(1.0, 2, 0) == 0.0

    def test_bridge_height_bound(self):
        assert bridge_height_bound(1) == 2
        assert bridge_height_bound(8) == 5
        with pytest.raises(ValueError):
            bridge_height_bound(0)

    def test_bits_curves_shapes(self):
        assert random_bits_upper_curve(2, 16) == 2 * math.log2(32)
        # the lower curve never exceeds the upper curve (Theorem 5.5)
        for d in (1, 2, 3, 4):
            for dist in (4, 16, 64):
                lo = random_bits_lower_curve(d, dist, n=1 << 12)
                hi = random_bits_upper_curve(d, dist)
                assert lo <= hi
        assert random_bits_lower_curve(2, 16, n=1) == 0.0


class TestExperiments:
    @pytest.fixture
    def mesh(self):
        return Mesh((8, 8))

    def test_evaluate_row_fields(self, mesh):
        row = evaluate(HierarchicalRouter(), random_pairs(mesh, 20, seed=0), seed=1)
        for key in ("router", "workload", "C", "D", "stretch", "C_lower", "C_ratio"):
            assert key in row
        assert row["C_ratio"] >= 1.0 - 1e-9

    def test_evaluate_shared_bound(self, mesh):
        prob = random_pairs(mesh, 20, seed=0)
        row = evaluate(HierarchicalRouter(), prob, seed=1, bound=2.0)
        assert row["C_lower"] == 2.0
        assert row["C_ratio"] == row["C"] / 2.0

    def test_sweep_cross_product(self, mesh):
        routers = [HierarchicalRouter(), DimensionOrderRouter()]
        problems = [random_pairs(mesh, 10, seed=s) for s in (0, 1)]
        rows = sweep(routers, problems, seeds=(0, 1, 2))
        assert len(rows) == 2 * 2 * 3

    def test_aggregate_mean(self):
        rows = [
            {"router": "a", "C": 2},
            {"router": "a", "C": 4},
            {"router": "b", "C": 10},
        ]
        agg = aggregate(rows, group_by=["router"], fields=["C"])
        by_name = {r["router"]: r for r in agg}
        assert by_name["a"]["C"] == 3.0
        assert by_name["a"]["count"] == 2
        assert by_name["b"]["C"] == 10.0

    def test_aggregate_max_min(self):
        rows = [{"g": 1, "x": 1.0}, {"g": 1, "x": 5.0}]
        assert aggregate(rows, ["g"], ["x"], how="max")[0]["x"] == 5.0
        assert aggregate(rows, ["g"], ["x"], how="min")[0]["x"] == 1.0


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(3.0) == "3"
        assert format_value(float("nan")) == "-"
        assert format_value(3.14159) == "3.14"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len({len(l) for l in lines[1:]}) == 1  # aligned widths

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]
