"""Tests for the exact expected-congestion analyzer (Lemmas 3.5-3.8)."""

import numpy as np
import pytest

from repro.analysis.expected_congestion import (
    expected_edge_loads,
    subpath_edge_probabilities,
)
from repro.analysis.theory import congestion_bound_2d
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.mesh.paths import dimension_order_path
from repro.mesh.submesh import Submesh
from repro.metrics.bounds import lp_congestion_lower_bound
from repro.metrics.congestion import edge_loads
from repro.routing.base import RoutingProblem


@pytest.fixture
def mesh():
    return Mesh((8, 8))


def _monte_carlo_subpath(mesh, box_a, box_b, trials, seed):
    rng = np.random.default_rng(seed)
    acc = np.zeros(mesh.num_edges)
    for _ in range(trials):
        u = box_a.sample_node(rng)
        v = box_b.sample_node(rng)
        order = tuple(int(x) for x in rng.permutation(2))
        p = dimension_order_path(mesh, u, v, order)
        acc += edge_loads(mesh, [p])
    return acc / trials


class TestSubpathProbabilities:
    def test_requires_2d(self):
        m3 = Mesh((4, 4, 4))
        with pytest.raises(ValueError):
            subpath_edge_probabilities(
                m3, Submesh.whole(m3), Submesh.whole(m3)
            )

    def test_point_to_point_is_indicator(self, mesh):
        """Two single-node boxes: the probability mass is 1/2 per staircase."""
        a = Submesh.single(mesh, mesh.node(1, 1))
        b = Submesh.single(mesh, mesh.node(3, 4))
        probs = subpath_edge_probabilities(mesh, a, b)
        # total expected edges = distance (both orders have the same length)
        assert probs.sum() == pytest.approx(mesh.distance(a.nodes()[0], b.nodes()[0]))
        # the two bend edges at the corners have probability exactly 1/2
        assert np.isclose(probs[probs > 0], 0.5).any()

    def test_total_mass_is_expected_length(self, mesh):
        """Sum over edges of P[use] = E[path length]."""
        a = Submesh(mesh, (0, 0), (1, 1))
        b = Submesh(mesh, (0, 0), (3, 3))
        probs = subpath_edge_probabilities(mesh, a, b)
        mc = _monte_carlo_subpath(mesh, a, b, 4000, seed=0)
        assert probs.sum() == pytest.approx(mc.sum(), rel=0.05)

    @pytest.mark.parametrize(
        "a_corners,b_corners",
        [
            (((0, 0), (1, 1)), ((0, 0), (3, 3))),  # nested (up-chain step)
            (((2, 2), (3, 3)), ((0, 0), (7, 7))),  # nested interior
            (((0, 0), (0, 0)), ((0, 0), (1, 1))),  # leaf to parent
            (((2, 0), (5, 3)), ((2, 0), (5, 3))),  # same box both sides
        ],
    )
    def test_matches_monte_carlo(self, mesh, a_corners, b_corners):
        a = Submesh(mesh, *a_corners)
        b = Submesh(mesh, *b_corners)
        exact = subpath_edge_probabilities(mesh, a, b)
        mc = _monte_carlo_subpath(mesh, a, b, 6000, seed=1)
        # compare where either is non-negligible
        mask = (exact > 0.01) | (mc > 0.01)
        assert np.allclose(exact[mask], mc[mask], atol=0.03)

    def test_probabilities_bounded(self, mesh):
        a = Submesh(mesh, (0, 0), (3, 3))
        b = Submesh(mesh, (0, 0), (7, 7))
        probs = subpath_edge_probabilities(mesh, a, b)
        assert np.all(probs >= 0) and np.all(probs <= 1.0 + 1e-12)

    def test_lemma_3_5_bound(self, mesh):
        """Lemma 3.5: a subpath from type-1 M' (side m_l) into a containing
        box uses any fixed edge with probability at most 2 / m_l."""
        a = Submesh(mesh, (0, 0), (3, 3))  # side 4
        b = Submesh(mesh, (0, 0), (7, 7))
        probs = subpath_edge_probabilities(mesh, a, b)
        assert probs.max() <= 2 / 4 + 1e-12


class TestExpectedLoads:
    def test_matches_monte_carlo_router(self, mesh):
        """Exact E[C(e)] equals the empirical mean of the actual router."""
        from repro.workloads.generators import random_pairs

        problem = random_pairs(mesh, 12, seed=3)
        router = HierarchicalRouter(drop_cycles=False)
        exact = expected_edge_loads(router, problem)
        acc = np.zeros(mesh.num_edges)
        trials = 600
        for seed in range(trials):
            res = router.route(problem, seed=seed)
            acc += res.edge_loads
        mc = acc / trials
        mask = (exact > 0.05) | (mc > 0.05)
        assert np.allclose(exact[mask], mc[mask], rtol=0.25, atol=0.08)

    def test_lemma_3_8_ceiling(self, mesh):
        """max_e E[C(e)] <= 16 C* (log2 D + 3) with the LP bound for C*."""
        from repro.workloads.permutations import transpose

        problem = transpose(mesh)
        router = HierarchicalRouter(drop_cycles=False)
        exact = expected_edge_loads(router, problem)
        c_star_lb = lp_congestion_lower_bound(mesh, problem.sources, problem.dests)
        ceiling = congestion_bound_2d(c_star_lb, problem.max_distance)
        assert exact.max() <= ceiling

    def test_self_packets_contribute_nothing(self, mesh):
        problem = RoutingProblem(mesh, np.asarray([3]), np.asarray([3]))
        router = HierarchicalRouter()
        assert expected_edge_loads(router, problem).sum() == 0.0

    def test_requires_random_dim_order(self, mesh):
        router = HierarchicalRouter(dim_order="fixed")
        problem = RoutingProblem(mesh, np.asarray([0]), np.asarray([9]))
        with pytest.raises(ValueError):
            expected_edge_loads(router, problem)

    def test_requires_non_torus(self):
        t = Mesh((8, 8), torus=True)
        problem = RoutingProblem(t, np.asarray([0]), np.asarray([9]))
        with pytest.raises(ValueError):
            expected_edge_loads(HierarchicalRouter(), problem)

    def test_total_mass_is_expected_total_length(self, mesh):
        from repro.workloads.generators import random_pairs

        problem = random_pairs(mesh, 10, seed=4)
        router = HierarchicalRouter(drop_cycles=False)
        exact_total = expected_edge_loads(router, problem).sum()
        totals = [
            router.route(problem, seed=s).total_path_length for s in range(300)
        ]
        assert exact_total == pytest.approx(np.mean(totals), rel=0.05)


class TestGeneralDimension:
    def test_agrees_with_2d_closed_form(self, mesh):
        from repro.analysis.expected_congestion import (
            subpath_edge_probabilities_general,
        )

        cases = [
            (Submesh(mesh, (1, 2), (2, 5)), Submesh(mesh, (0, 0), (7, 7))),
            (Submesh(mesh, (0, 0), (0, 0)), Submesh(mesh, (0, 0), (3, 3))),
            (Submesh(mesh, (2, 2), (5, 5)), Submesh(mesh, (2, 2), (5, 5))),
        ]
        for a, b in cases:
            p2 = subpath_edge_probabilities(mesh, a, b)
            pg = subpath_edge_probabilities_general(mesh, a, b)
            np.testing.assert_allclose(p2, pg, atol=1e-12)

    def test_matches_monte_carlo_3d(self):
        from repro.analysis.expected_congestion import (
            subpath_edge_probabilities_general,
        )

        m3 = Mesh((4, 4, 4))
        a = Submesh(m3, (0, 1, 0), (1, 2, 1))
        b = Submesh(m3, (0, 0, 0), (3, 3, 3))
        exact = subpath_edge_probabilities_general(m3, a, b)
        rng = np.random.default_rng(0)
        acc = np.zeros(m3.num_edges)
        trials = 5000
        for _ in range(trials):
            u = a.sample_node(rng)
            v = b.sample_node(rng)
            order = tuple(int(x) for x in rng.permutation(3))
            p = dimension_order_path(m3, u, v, order)
            acc += edge_loads(m3, [p])
        mc = acc / trials
        mask = (exact > 0.02) | (mc > 0.02)
        assert np.allclose(exact[mask], mc[mask], atol=0.03)

    def test_lemma_a1_bound(self):
        """Lemma A.1: a subpath from type-1 M1 (sides a) into M2 with
        sides >= 2a uses any edge with probability <= 2/a."""
        from repro.analysis.expected_congestion import (
            subpath_edge_probabilities_general,
        )

        m3 = Mesh((8, 8, 8))
        a_box = Submesh(m3, (0, 0, 0), (1, 1, 1))  # a = 2
        b_box = Submesh(m3, (0, 0, 0), (7, 7, 7))
        probs = subpath_edge_probabilities_general(m3, a_box, b_box)
        assert probs.max() <= 2 / 2 + 1e-12

    def test_expected_loads_3d_router(self):
        """End-to-end exact E[C(e)] matches Monte Carlo for the 3-D router."""
        from repro.analysis.expected_congestion import expected_edge_loads
        from repro.workloads.generators import random_pairs

        m3 = Mesh((8, 8, 8))
        problem = random_pairs(m3, 6, seed=1)
        router = HierarchicalRouter(drop_cycles=False)
        exact = expected_edge_loads(router, problem)
        acc = np.zeros(m3.num_edges)
        trials = 400
        for seed in range(trials):
            acc += router.route(problem, seed=seed).edge_loads
        mc = acc / trials
        mask = (exact > 0.1) | (mc > 0.1)
        assert np.allclose(exact[mask], mc[mask], rtol=0.35, atol=0.1)

    def test_torus_rejected(self):
        from repro.analysis.expected_congestion import (
            subpath_edge_probabilities_general,
        )

        t = Mesh((4, 4), torus=True)
        with pytest.raises(ValueError):
            subpath_edge_probabilities_general(
                t, Submesh.whole(t), Submesh.whole(t)
            )


class TestValiantAnalyzer:
    def test_valiant_sequence_shape(self, mesh):
        from repro.routing.baselines import ValiantRouter

        seq, peak = ValiantRouter().submesh_sequence(mesh, 3, 40)
        assert len(seq) == 3 and peak == 1
        assert seq[0].is_single_node and seq[2].is_single_node
        assert seq[1].size == mesh.n

    def test_valiant_exact_matches_monte_carlo(self, mesh):
        from repro.routing.baselines import ValiantRouter
        from repro.workloads.generators import random_pairs

        prob = random_pairs(mesh, 8, seed=5)
        v = ValiantRouter(drop_cycles=False)
        exact = expected_edge_loads(v, prob)
        acc = np.zeros(mesh.num_edges)
        trials = 500
        for seed in range(trials):
            acc += v.route(prob, seed=seed).edge_loads
        mc = acc / trials
        mask = (exact > 0.05) | (mc > 0.05)
        assert np.allclose(exact[mask], mc[mask], rtol=0.3, atol=0.1)

    def test_valiant_spreads_load_on_hotspot_pairs(self, mesh):
        """Analytical comparison: for packets sharing one XY staircase,
        Valiant's exact expected max load beats deterministic XY's 1-per-
        packet pileup."""
        from repro.routing.base import RoutingProblem
        from repro.routing.baselines import ValiantRouter

        sources = np.asarray([mesh.node(i, 0) for i in range(1, 8)])
        dests = np.asarray([mesh.node(0, i) for i in range(1, 8)])
        prob = RoutingProblem(mesh, sources, dests, "corner-turn")
        exact = expected_edge_loads(ValiantRouter(drop_cycles=False), prob)
        assert exact.max() < 7  # deterministic XY would pile all 7 on one edge
