"""Property-based tests for submesh algebra."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from tests.conftest import meshes, submesh_pairs, submeshes

from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh


SMALL = meshes(max_d=3, max_side=6, min_side=2)


@settings(max_examples=60)
@given(submeshes(mesh_strategy=SMALL))
def test_out_matches_boundary_enumeration(box):
    assert box.out() == box.boundary_edge_ids().size


@settings(max_examples=60)
@given(submeshes(mesh_strategy=meshes(max_d=2, max_side=6, min_side=2, torus=True)))
def test_out_matches_boundary_enumeration_torus(box):
    assert box.out() == box.boundary_edge_ids().size


@given(submeshes(mesh_strategy=SMALL))
def test_size_matches_node_count(box):
    assert box.nodes().size == box.size


@given(submesh_pairs(mesh_strategy=SMALL))
def test_intersection_commutative(pair):
    a, b = pair
    assert a.intersect(b) == b.intersect(a)


@given(submesh_pairs(mesh_strategy=SMALL))
def test_intersection_is_contained(pair):
    a, b = pair
    i = a.intersect(b)
    if i is not None:
        assert a.contains_submesh(i)
        assert b.contains_submesh(i)


@given(submesh_pairs(mesh_strategy=SMALL))
def test_intersection_exact_membership(pair):
    a, b = pair
    nodes_a = set(a.nodes().tolist())
    nodes_b = set(b.nodes().tolist())
    i = a.intersect(b)
    expected = nodes_a & nodes_b
    if i is None:
        assert not expected
    else:
        assert set(i.nodes().tolist()) == expected


@given(submeshes(mesh_strategy=SMALL))
def test_bounding_with_self_is_identity(box):
    assert box.bounding_with(box) == box


@given(submesh_pairs(mesh_strategy=SMALL))
def test_bounding_contains_both(pair):
    a, b = pair
    bb = a.bounding_with(b)
    assert bb.contains_submesh(a) and bb.contains_submesh(b)


@settings(max_examples=40)
@given(st.integers(1, 3), st.integers(1, 3))
def test_halve_partitions_pow2_cubes(d, k):
    mesh = Mesh(((1 << k),) * d)
    whole = Submesh.whole(mesh)
    children = whole.halve()
    assert len(children) == 2**d
    nodes = np.concatenate([c.nodes() for c in children])
    assert np.unique(nodes).size == mesh.n


@settings(max_examples=60)
@given(submeshes(mesh_strategy=meshes(max_d=3, max_side=8, min_side=4)))
def test_lemma_a4_lower_bound(box):
    """Lemma A.4: out(M') >= (n')^{(d-1)/d}, given an interior face per dim."""
    mesh = box.mesh
    for i in range(mesh.d):
        assume(box.lo[i] > 0 or box.hi[i] < mesh.sides[i] - 1)
    d = mesh.d
    assert box.out() >= box.size ** ((d - 1) / d) - 1e-9


@given(submeshes(mesh_strategy=SMALL))
def test_sample_node_always_inside(box):
    rng = np.random.default_rng(7)
    for _ in range(10):
        assert box.contains_node(box.sample_node(rng))
