"""Property-based tests for path construction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import mesh_and_pair, meshes

from repro.mesh.paths import (
    dimension_order_path,
    is_valid_path,
    path_length,
    remove_cycles,
)


@given(mesh_and_pair(mesh_strategy=meshes(max_d=3, max_side=8, torus=None)), st.randoms())
def test_dim_order_path_is_shortest_valid(case, pyrandom):
    mesh, s, t = case
    order = list(range(mesh.d))
    pyrandom.shuffle(order)
    p = dimension_order_path(mesh, s, t, order)
    assert is_valid_path(mesh, p, s, t)
    assert path_length(p) == mesh.distance(s, t)


@given(mesh_and_pair(mesh_strategy=meshes(max_d=3, max_side=8)))
def test_dim_order_path_monotone_progress(case):
    """Every step of a dimension-order path decreases the distance to t."""
    mesh, s, t = case
    p = dimension_order_path(mesh, s, t)
    dists = mesh.distance(p, np.full(p.size, t))
    assert np.all(np.diff(np.atleast_1d(dists)) == -1) or p.size == 1


@settings(max_examples=50)
@given(st.lists(st.integers(0, 15), min_size=1, max_size=30))
def test_remove_cycles_no_repeats_and_endpoints(raw):
    p = np.asarray(raw, dtype=np.int64)
    out = remove_cycles(p)
    assert len(set(out.tolist())) == len(out)
    assert out[0] == p[0]
    assert out[-1] == p[-1]


@settings(max_examples=50)
@given(st.lists(st.integers(0, 15), min_size=1, max_size=30))
def test_remove_cycles_idempotent(raw):
    p = np.asarray(raw, dtype=np.int64)
    once = remove_cycles(p)
    np.testing.assert_array_equal(remove_cycles(once), once)


@settings(max_examples=50)
@given(mesh_and_pair(mesh_strategy=meshes(max_d=2, max_side=6)), st.integers(0, 10**9))
def test_remove_cycles_preserves_walk_validity(case, seed):
    """Cycle removal of a random valid walk yields a valid path."""
    mesh, s, _ = case
    rng = np.random.default_rng(seed)
    walk = [s]
    cur = s
    for _ in range(15):
        nbrs = mesh.neighbors(cur)
        if not nbrs:
            break
        cur = int(nbrs[int(rng.integers(len(nbrs)))])
        walk.append(cur)
    p = np.asarray(walk, dtype=np.int64)
    out = remove_cycles(p)
    assert is_valid_path(mesh, out, int(p[0]), int(p[-1]))
    assert path_length(out) <= path_length(p)
