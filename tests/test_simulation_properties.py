"""Simulator invariants, checked across every policy of both simulators:

* physicality — a delivered packet's latency is at least its shortest
  distance (one hop per step, no teleporting);
* conservation — every injected packet is exactly one of delivered,
  dropped, or still in flight when the run ends;
* determinism — a fixed seed reproduces the run bit-for-bit.
"""

import numpy as np
import pytest

from repro.core.path_selection import HierarchicalRouter
from repro.faults import FaultModel
from repro.mesh.mesh import Mesh
from repro.routing.baselines import ValiantRouter
from repro.simulation.online import simulate_online
from repro.simulation.scheduler import simulate
from repro.workloads.generators import random_pairs
from repro.workloads.permutations import transpose

OFFLINE_POLICIES = ["farthest-first", "fifo", "random", "random-delay"]
ONLINE_POLICIES = ["fifo", "random"]


def _routed(mesh, seed=0):
    problem = random_pairs(mesh, 80, seed=seed)
    return problem, HierarchicalRouter().route(problem, seed=seed)


class TestOfflineInvariants:
    @pytest.mark.parametrize("policy", OFFLINE_POLICIES)
    def test_latency_at_least_distance(self, policy):
        mesh = Mesh((16, 16))
        problem, result = _routed(mesh)
        out = simulate(mesh, result, policy=policy, seed=1)
        dists = problem.distances
        delivered = out.delivery_times >= 0
        assert delivered.all()  # fault-free: everything arrives
        assert (out.delivery_times[delivered] >= dists[delivered]).all()
        # random-delay legitimately idles before moving; the others can't
        # beat the makespan bound either
        assert out.makespan == int(out.delivery_times.max())

    @pytest.mark.parametrize("policy", OFFLINE_POLICIES)
    def test_delivery_conservation(self, policy):
        mesh = Mesh((16, 16))
        _, result = _routed(mesh)
        out = simulate(mesh, result, policy=policy, seed=1)
        assert out.num_packets == len(result.paths)
        assert out.delivered + out.dropped == out.num_packets
        assert out.delivery_ratio == 1.0

    @pytest.mark.parametrize("policy", OFFLINE_POLICIES)
    def test_fixed_seed_reproduces(self, policy):
        mesh = Mesh((16, 16))
        _, result = _routed(mesh)
        a = simulate(mesh, result, policy=policy, seed=7)
        b = simulate(mesh, result, policy=policy, seed=7)
        assert a.makespan == b.makespan
        np.testing.assert_array_equal(a.delivery_times, b.delivery_times)

    @pytest.mark.parametrize("policy", OFFLINE_POLICIES)
    def test_invariants_hold_under_faults(self, policy):
        mesh = Mesh((16, 16))
        problem = transpose(mesh)
        result = HierarchicalRouter().route(problem, seed=0)
        fm = FaultModel.static(mesh, p=0.01, seed=5)
        out = simulate(mesh, result, policy=policy, seed=1, faults=fm)
        delivered = out.delivery_times >= 0
        dists = result.problem.distances
        assert (out.delivery_times[delivered] >= dists[delivered]).all()
        assert out.delivered == int(delivered.sum())
        assert out.delivered + (out.num_packets - out.delivered) == out.num_packets

    def test_empty_pathset(self):
        mesh = Mesh((8, 8))
        out = simulate(mesh, [], seed=0)
        assert out.makespan == 0 and out.num_packets == 0
        assert out.delivery_ratio == 1.0


class TestOnlineInvariants:
    @pytest.mark.parametrize("policy", ONLINE_POLICIES)
    def test_latency_at_least_distance(self, policy):
        mesh = Mesh((8, 8))
        s = simulate_online(
            HierarchicalRouter(), mesh, rate=0.05, steps=40, seed=2, policy=policy
        )
        assert s.latencies.size == s.distances.size == s.delivered
        assert (s.latencies >= s.distances).all()
        assert (s.distances >= 1).all()  # dest_fn never picks the source

    @pytest.mark.parametrize("policy", ONLINE_POLICIES)
    def test_delivery_conservation(self, policy):
        mesh = Mesh((8, 8))
        s = simulate_online(
            HierarchicalRouter(), mesh, rate=0.05, steps=40, seed=2, policy=policy
        )
        # fault-free with a full drain phase: everything injected arrives
        assert s.delivered == s.injected
        assert s.delivery_ratio == 1.0

    @pytest.mark.parametrize("policy", ONLINE_POLICIES)
    def test_fixed_seed_reproduces(self, policy):
        mesh = Mesh((8, 8))
        runs = [
            simulate_online(
                HierarchicalRouter(), mesh, rate=0.05, steps=40, seed=9, policy=policy
            )
            for _ in range(2)
        ]
        assert runs[0].injected == runs[1].injected
        assert runs[0].steps == runs[1].steps
        np.testing.assert_array_equal(runs[0].latencies, runs[1].latencies)
        np.testing.assert_array_equal(runs[0].distances, runs[1].distances)

    @pytest.mark.parametrize("policy", ONLINE_POLICIES)
    def test_invariants_hold_under_faults(self, policy):
        mesh = Mesh((8, 8))
        fd = FaultModel.dynamic(mesh, p=0.01, repair_delay=4, seed=3)
        s = simulate_online(
            HierarchicalRouter(), mesh, rate=0.05, steps=40, seed=2,
            policy=policy, faults=fd,
        )
        assert (s.latencies >= s.distances).all()
        assert s.delivered + s.dropped <= s.injected
        assert 0.0 <= s.delivery_ratio <= 1.0

    def test_other_router_same_invariants(self):
        mesh = Mesh((8, 8))
        s = simulate_online(ValiantRouter(), mesh, rate=0.05, steps=30, seed=2)
        assert (s.latencies >= s.distances).all()
        assert s.delivered == s.injected


# ---------------------------------------------------------------------------
# Nightly-only exhaustive sweeps (the `deep` marker)
# ---------------------------------------------------------------------------

@pytest.mark.deep
class TestOnlineInvariantsDeep:
    """Wide rate x policy x fault sweep, checked through the verify registry."""

    @pytest.mark.parametrize("policy", ONLINE_POLICIES)
    @pytest.mark.parametrize("rate", [0.02, 0.1, 0.3, 0.6])
    @pytest.mark.parametrize(
        "fault", [None, ("static", 0.02), ("dynamic", 0.01)]
    )
    def test_conservation_across_the_load_curve(self, policy, rate, fault):
        from repro.verify.invariants import VerifyContext, check_invariants

        mesh = Mesh((8, 8))
        fm = None
        if fault is not None:
            mode, p = fault
            fm = (
                FaultModel.static(mesh, p=p, seed=3)
                if mode == "static"
                else FaultModel.dynamic(mesh, p=p, repair_delay=4, seed=3)
            )
        steps = 60
        stats = simulate_online(
            HierarchicalRouter(), mesh, rate=rate, steps=steps, seed=11,
            policy=policy, faults=fm,
        )
        ctx = VerifyContext(
            result=None,
            router=None,
            entropy=11,
            original_problem=None,
            online=stats,
            online_params={"total_steps": steps + 8 * steps + 200},
            faults=fm,
        )
        assert check_invariants(ctx, names=("online.conservation",)) == {}
