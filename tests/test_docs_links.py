"""The docs must not rot against each other: every intra-doc link resolves.

The checker itself lives in ``tools/check_doc_links.py`` (runnable
standalone); this test is the tier-1/CI gate over it.
"""

import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_doc_links  # noqa: E402


def test_doc_set_is_nonempty_and_present():
    docs = check_doc_links.doc_files()
    assert any(d.name == "README.md" for d in docs)
    assert any(d.name == "KERNELS.md" for d in docs)
    for doc in docs:
        assert doc.exists(), doc


def test_no_broken_intra_doc_links():
    problems = check_doc_links.broken_links()
    assert not problems, "\n".join(problems)


def test_docs_actually_contain_links():
    total = sum(
        1 for doc in check_doc_links.doc_files()
        for _ in check_doc_links.iter_links(doc)
    )
    assert total >= 10, f"only {total} links found; checker may be blind"


@pytest.mark.parametrize(
    "heading,slug",
    [
        ("The kernel tier (`repro.kernels`)", "the-kernel-tier-reprokernels"),
        ("Backend selection", "backend-selection"),
        ("API reference", "api-reference"),
    ],
)
def test_github_slugging(heading, slug):
    assert check_doc_links.github_slug(heading) == slug


def test_checker_catches_a_planted_break(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [missing](docs/NOPE.md) and [ok](docs/OK.md#real)\n"
    )
    (tmp_path / "docs" / "OK.md").write_text("# Real\n[bad](OK.md#fake)\n")
    problems = check_doc_links.broken_links(tmp_path)
    assert len(problems) == 2
    assert any("NOPE.md" in p for p in problems)
    assert any("'fake'" in p for p in problems)
