"""Service-tier tests: determinism, recovery, admission edges, leaks.

The contract under test is the one ``docs/SERVICE.md`` documents: a
request routed through ``repro serve`` is byte-identical to the same
route run locally — regardless of micro-batch composition, worker count,
shared-memory transport, or worker crash/restart history — and a stopped
service leaves nothing behind: no child processes, no ``/dev/shm``
segments, no socket file.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_workload, parse_mesh
from repro.core import shm as core_shm
from repro.routing.registry import make_router
from repro.service.client import ServiceClient, ServiceError
from repro.service.pool import WarmPool
from repro.service.server import RoutingService
from repro.service.shm import SharedPairs, share_pairs, sweep_worker_segments
from repro.workloads import random_pairs

GOLDEN_PATH = Path(__file__).parent / "golden" / "path_hashes.json"


def _local_bytes(problem, router: str, seed: int) -> tuple[bytes, bytes]:
    result = make_router(router).route(problem, seed)
    return result.paths.nodes.tobytes(), result.paths.offsets.tobytes()


def _live_children() -> list[int]:
    """Child pids of this process, excluding multiprocessing's trackers."""
    out = subprocess.run(
        ["ps", "--ppid", str(os.getpid()), "-o", "pid=,cmd="],
        capture_output=True,
        text=True,
    ).stdout
    pids = []
    for line in out.splitlines():
        pid, _, cmd = line.strip().partition(" ")
        if "resource_tracker" in cmd or cmd.strip().startswith("ps"):
            continue
        pids.append(int(pid))
    return pids


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One warm daemon shared by the read-only tests of this module."""
    sock = str(tmp_path_factory.mktemp("svc") / "repro.sock")
    svc = RoutingService(
        sock,
        workers=2,
        flush_ms=1.0,
        shard_threshold=2000,
        pairs_shm_min=32,
        prewarm=("8x8",),
    ).start()
    yield svc
    svc.stop()


class TestServiceDeterminism:
    def test_small_request_byte_identical(self, service):
        mesh = parse_mesh("8x8")
        problem = build_workload("transpose", mesh, 0)
        with ServiceClient(service.socket_path) as client:
            via = client.route(problem, router="hierarchical", seed=7)
        nodes, offsets = _local_bytes(problem, "hierarchical", 7)
        assert via.paths.nodes.tobytes() == nodes
        assert via.paths.offsets.tobytes() == offsets
        assert via.seed == 7

    def test_unseeded_request_echoes_resolved_entropy(self, service):
        mesh = parse_mesh("8x8")
        problem = build_workload("transpose", mesh, 0)
        with ServiceClient(service.socket_path) as client:
            via = client.route(problem, router="hierarchical", seed=None)
        # replaying the echoed entropy locally reproduces the bytes
        local = make_router("hierarchical").route(problem, via.seed)
        assert via.paths.nodes.tobytes() == local.paths.nodes.tobytes()

    def test_concurrent_clients_each_byte_identical(self, service):
        """Batch composition must be invisible: concurrent requests with
        different seeds land in shared micro-batches, yet each reply
        matches its own serial route."""
        mesh = parse_mesh("8x8")
        problem = build_workload("transpose", mesh, 0)
        results: dict[int, bytes] = {}
        errors: list[Exception] = []

        def one(seed: int) -> None:
            try:
                with ServiceClient(service.socket_path) as client:
                    r = client.route(problem, router="hierarchical", seed=seed)
                results[seed] = r.paths.nodes.tobytes()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=one, args=(s,)) for s in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(results) == 10
        for seed, nodes in results.items():
            assert nodes == _local_bytes(problem, "hierarchical", seed)[0]

    def test_golden_matrix_sample_through_service(self, service):
        """A sample of committed golden cells, recomputed via the daemon."""
        from tests.golden.regenerate_goldens import _workload, cell_hash

        golden = json.loads(GOLDEN_PATH.read_text())
        sample = [
            k
            for k in golden
            if "|8x8|" in k and "+" not in k.split("|")[0]
        ][:8]
        assert sample, "golden matrix has no plain 8x8 cells?"
        mesh = parse_mesh("8x8")
        problem = _workload(mesh)
        with ServiceClient(service.socket_path) as client:
            for key in sample:
                router, _label, seed_part = key.split("|")
                seed = int(seed_part.removeprefix("seed="))
                via = client.route(problem, router=router, seed=seed)
                assert cell_hash(via) == golden[key], f"cell {key} differs"


class TestAdmissionEdges:
    def test_zero_packet_request(self, service):
        mesh = parse_mesh("8x8")
        empty = np.empty(0, dtype=np.int64)
        with ServiceClient(service.socket_path) as client:
            r = client.route(mesh, empty, empty, seed=1)
        assert len(r.paths) == 0
        assert r.paths.offsets.tolist() == [0]

    def test_oversized_request_shards_across_pool(self, service):
        """Requests at the shard threshold bypass the batcher and still
        produce serial bytes."""
        mesh = parse_mesh("16x16")
        problem = random_pairs(mesh, 2500, seed=3)  # above shard_threshold
        with ServiceClient(service.socket_path) as client:
            before = client.stats()["profile"]["counters"].get(
                "service.sharded_requests", 0
            )
            via = client.route(problem, router="hierarchical", seed=5)
            after = client.stats()["profile"]["counters"]["service.sharded_requests"]
        assert after == before + 1
        nodes, offsets = _local_bytes(problem, "hierarchical", 5)
        assert via.paths.nodes.tobytes() == nodes
        assert via.paths.offsets.tobytes() == offsets

    def test_mismatched_arrays_rejected(self, service):
        # the client validates first, so probe the server's own guard raw
        with ServiceClient(service.socket_path) as client:
            with pytest.raises(ServiceError, match="equal-length"):
                client._rpc(
                    {"op": "route", "mesh": [8, 8], "router": "hierarchical"},
                    {
                        "sources": np.zeros(3, np.int64),
                        "dests": np.zeros(2, np.int64),
                    },
                )

    def test_unknown_router_fails_that_request_only(self, service):
        mesh = parse_mesh("8x8")
        problem = build_workload("transpose", mesh, 0)
        with ServiceClient(service.socket_path) as client:
            with pytest.raises(ServiceError):
                client.route(problem, router="no-such-router")
            ok = client.route(problem, router="hierarchical", seed=2)
        assert ok.paths.nodes.tobytes() == _local_bytes(problem, "hierarchical", 2)[0]

    def test_unknown_op_and_ping_and_stats(self, service):
        with ServiceClient(service.socket_path) as client:
            assert client.ping()["ok"]
            stats = client.stats()
            assert stats["workers"] == 2
            assert "service.requests" in stats["profile"]["counters"]
            with pytest.raises(ServiceError, match="unknown op"):
                client._rpc({"op": "bogus"})


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------

_SENTINELS = {}


def _die_once_then_pid(sentinel: str) -> int:
    """Worker task: SIGKILL ourselves the first time, return pid after."""
    if os.path.exists(sentinel):
        os.unlink(sentinel)
        os.kill(os.getpid(), signal.SIGKILL)
    return os.getpid()


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="needs fork pools",
)
class TestCrashRecovery:
    def test_warmpool_retries_task_killed_mid_request(self, tmp_path):
        """A worker killed *while running the task* breaks the pool; the
        retried task runs on a fresh worker and succeeds."""
        sentinel = str(tmp_path / "die-once")
        open(sentinel, "w").close()
        pool = WarmPool(2, context="fork")
        try:
            pids = pool.map(_die_once_then_pid, [sentinel])
            assert len(pids) == 1 and pids[0] > 0
            assert pool.worker_restarts == 1
        finally:
            pool.shutdown()
        assert not os.path.exists(sentinel)

    def test_warmpool_rebuild_hook_regenerates_tasks(self, tmp_path):
        sentinel = str(tmp_path / "die-once-2")
        open(sentinel, "w").close()
        calls = []

        def rebuild():
            calls.append(1)
            return [sentinel]

        pool = WarmPool(2, context="fork")
        try:
            pool.map(_die_once_then_pid, [sentinel], rebuild=rebuild)
        finally:
            pool.shutdown()
        assert calls == [1]

    def test_service_survives_worker_kill_byte_identical(self, tmp_path):
        """Kill a warm worker; the next request is retried on a fresh
        worker, returns serial bytes, and the restart is counted."""
        sock = str(tmp_path / "crash.sock")
        svc = RoutingService(sock, workers=1, context="fork").start()
        try:
            mesh = parse_mesh("8x8")
            problem = build_workload("transpose", mesh, 0)
            with ServiceClient(sock) as client:
                first = client.route(problem, seed=4)
                victims = client.stats()["pids"]
                assert victims
                for pid in victims:
                    os.kill(pid, signal.SIGKILL)
                time.sleep(0.2)
                second = client.route(problem, seed=4)
                stats = client.stats()
            assert first.paths.nodes.tobytes() == second.paths.nodes.tobytes()
            assert stats["worker_restarts"] >= 1
            assert (
                stats["profile"]["counters"]["service.worker_restarts"] >= 1
            )
        finally:
            svc.stop()

    def test_dead_worker_segments_swept_on_restart(self, tmp_path):
        """Segments a dead worker produced but never delivered are
        reclaimed by the restart sweep."""
        pool = WarmPool(1, context="fork")
        try:
            pool.prewarm()
            (victim,) = pool.pids()
            # a segment the victim "produced": same name shape the sweep keys on
            seg = core_shm.create_segment(64)
            orphan = seg.name.replace(str(os.getpid()), str(victim), 1)
            core_shm.handoff(seg)
            src = Path("/dev/shm") / seg.name
            src.rename(Path("/dev/shm") / orphan)
            os.kill(victim, signal.SIGKILL)
            # next dispatch hits the broken pool, rebuilds, retries fine
            (pid,) = pool.map(_die_once_then_pid, ["/nonexistent-sentinel"])
            assert pid != victim
            assert pool.worker_restarts >= 1
            # ... and the dead pid's undelivered segment was swept
            assert orphan not in core_shm.active_segments()
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# Lifecycle hygiene
# ---------------------------------------------------------------------------

class TestLifecycleHygiene:
    def test_full_lifecycle_leaks_nothing(self, tmp_path):
        """Boot, route (batched + sharded + shm pairs), stop: no children,
        no segments, no socket file."""
        before_children = set(_live_children())
        before_segments = set(core_shm.active_segments())
        sock = str(tmp_path / "clean.sock")
        svc = RoutingService(
            sock, workers=2, shard_threshold=500, pairs_shm_min=16
        ).start()
        mesh = parse_mesh("8x8")
        small = build_workload("transpose", mesh, 0)
        big = random_pairs(mesh, 800, seed=1)
        with ServiceClient(sock) as client:
            client.route(small, seed=0)
            client.route(big, seed=0)
        svc.stop()
        assert set(core_shm.active_segments()) - before_segments == set()
        assert not os.path.exists(sock)
        leaked = set(_live_children()) - before_children
        assert not leaked, f"service left children behind: {leaked}"

    def test_stop_is_idempotent_and_blocking(self, tmp_path):
        sock = str(tmp_path / "stop.sock")
        svc = RoutingService(sock, workers=1).start()
        svc.stop()
        svc.stop()  # second call returns immediately, no error
        assert not os.path.exists(sock)

    def test_shutdown_op_stops_the_daemon(self, tmp_path):
        sock = str(tmp_path / "op.sock")
        svc = RoutingService(sock, workers=1).start()
        with ServiceClient(sock) as client:
            client.shutdown_server()
        deadline = time.monotonic() + 10
        while os.path.exists(sock) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not os.path.exists(sock)
        svc.stop()  # idempotent with the op-initiated stop


# ---------------------------------------------------------------------------
# Shared-memory request transport units
# ---------------------------------------------------------------------------

class TestSharedPairs:
    def test_roundtrip_consumes_segment(self):
        s = np.arange(10, dtype=np.int64)
        d = s[::-1].copy()
        pairs = share_pairs(s, d)
        assert pairs.name in core_shm.active_segments()
        s2, d2 = pairs.take()
        assert np.array_equal(s, s2) and np.array_equal(d, d2)
        assert pairs.name not in core_shm.active_segments()
        assert pairs.discard() is False  # already consumed

    def test_discard_unconsumed(self):
        pairs = share_pairs(
            np.zeros(4, dtype=np.int64), np.ones(4, dtype=np.int64)
        )
        assert pairs.discard() is True
        assert pairs.name not in core_shm.active_segments()

    def test_sweep_targets_only_named_pids(self):
        keep = share_pairs(
            np.zeros(2, dtype=np.int64), np.zeros(2, dtype=np.int64)
        )
        try:
            removed = sweep_worker_segments([999999999])
            assert removed == []
            assert keep.name in core_shm.active_segments()
            removed = sweep_worker_segments([os.getpid()])
            assert keep.name in removed
        finally:
            keep.discard()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            share_pairs(
                np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64)
            )
        assert SharedPairs("x", 5).nbytes == 80
