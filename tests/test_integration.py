"""Integration tests: the paper's claims exercised end-to-end.

Each test routes whole workloads through the public API and checks the
paper's qualitative claims — who wins on which metric — rather than
absolute constants.
"""

import numpy as np
import pytest

import repro


@pytest.fixture(scope="module")
def mesh():
    return repro.Mesh((16, 16))


class TestHeadlineClaim:
    """Congestion AND stretch controlled simultaneously (the paper's title)."""

    def test_stretch_bounded_on_every_workload(self, mesh):
        router = repro.HierarchicalRouter()
        workloads = [
            repro.transpose(mesh),
            repro.bit_complement(mesh),
            repro.tornado(mesh),
            repro.nearest_neighbor(mesh, seed=0),
            repro.random_permutation(mesh, seed=0),
            repro.local_traffic(mesh, radius=2, seed=0),
        ]
        for prob in workloads:
            result = router.route(prob, seed=1)
            assert result.validate()
            assert result.stretch <= repro.stretch_bound_2d(), prob.name

    def test_congestion_near_optimal(self, mesh):
        """C <= 16 (log2 D + 3) * C_lower on permutations (Lemma 3.8 with
        the measured lower bound standing in for C*)."""
        router = repro.HierarchicalRouter()
        for prob in (repro.transpose(mesh), repro.random_permutation(mesh, seed=1)):
            bound = repro.congestion_lower_bound(
                mesh, prob.sources, prob.dests, use_lp=False
            )
            result = router.route(prob, seed=2)
            ceiling = repro.congestion_bound_2d(bound, prob.max_distance)
            assert result.congestion <= ceiling

    def test_tree_has_unbounded_stretch_graph_does_not(self, mesh):
        """The ablation that motivates the paper: same machinery, bridges
        on/off; only the bridge version keeps stretch constant."""
        nn = repro.nearest_neighbor(mesh, seed=3)
        with_bridges = repro.HierarchicalRouter().route(nn, seed=4)
        without = repro.AccessTreeRouter().route(nn, seed=4)
        assert with_bridges.stretch <= 64
        assert without.stretch > 64 / 4  # tree pays ~m on straddling pairs
        assert without.stretch > 2 * with_bridges.stretch

    def test_valiant_good_congestion_bad_stretch(self, mesh):
        nn = repro.nearest_neighbor(mesh, seed=5)
        valiant = repro.ValiantRouter().route(nn, seed=6)
        ours = repro.HierarchicalRouter().route(nn, seed=6)
        assert valiant.stretch > 4 * ours.stretch

    def test_xy_good_stretch_bad_congestion(self, mesh):
        """Corner-turn traffic (column 0 -> row 0): C* = O(1) via disjoint
        staircases, but deterministic XY funnels every packet through the
        corner node, congestion Theta(m)."""
        import numpy as np

        m = mesh.sides[0]
        sources = np.asarray([mesh.node(i, 0) for i in range(1, m)])
        dests = np.asarray([mesh.node(0, i) for i in range(1, m)])
        prob = repro.RoutingProblem(mesh, sources, dests, "corner-turn")
        xy = repro.DimensionOrderRouter().route(prob, seed=0)
        ours = repro.HierarchicalRouter().route(prob, seed=0)
        assert xy.stretch == 1.0
        assert xy.congestion == m - 1  # all paths share the corner edge
        assert ours.congestion < xy.congestion / 1.5


class TestDDimensional:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_stretch_scaling(self, d):
        mesh = repro.Mesh((8 if d < 4 else 4,) * d)
        prob = repro.random_permutation(mesh, seed=d)
        result = repro.HierarchicalRouter().route(prob, seed=0)
        assert result.validate()
        assert result.stretch <= repro.stretch_bound_general(d)

    def test_3d_congestion_vs_bound(self):
        mesh = repro.Mesh((8, 8, 8))
        prob = repro.random_permutation(mesh, seed=9)
        bound = repro.congestion_lower_bound(
            mesh, prob.sources, prob.dests, use_lp=False
        )
        result = repro.HierarchicalRouter().route(prob, seed=1)
        from repro.analysis.theory import congestion_bound_general

        assert result.congestion <= congestion_bound_general(
            bound, 3, prob.max_distance
        )


class TestEndToEndScheduling:
    def test_routing_time_tracks_c_plus_d(self, mesh):
        prob = repro.random_permutation(mesh, seed=11)
        result = repro.HierarchicalRouter().route(prob, seed=2)
        sim = repro.simulate(mesh, result)
        assert max(sim.congestion, sim.dilation) <= sim.makespan
        assert sim.makespan <= 3 * sim.cd_bound

    def test_sweep_pipeline(self, mesh):
        routers = [repro.HierarchicalRouter(), repro.RandomDimOrderRouter()]
        problems = [repro.transpose(mesh)]
        rows = repro.sweep(routers, problems, seeds=(0, 1))
        agg = repro.aggregate(
            rows, group_by=["router", "workload"], fields=["C", "stretch"]
        )
        assert len(agg) == 2
        table = repro.format_table(agg)
        assert "hierarchical" in table


class TestRandomizationSection5:
    def test_deterministic_router_forced_congestion(self):
        """Sweep l: congestion of the deterministic router on its own Pi_A
        grows linearly with l (Lemma 5.1 with kappa = 1)."""
        mesh = repro.Mesh((16, 16))
        router = repro.DimensionOrderRouter()
        sizes = []
        for l in (2, 4, 8):
            sub, _ = repro.adversarial_for_router(router, mesh, l)
            forced = router.route(sub, seed=0).congestion
            assert forced == sub.num_packets
            sizes.append(forced)
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_hierarchical_beats_forced_congestion(self):
        """On the adversarial instance built for XY routing, the randomized
        hierarchical router spreads the load."""
        mesh = repro.Mesh((32, 32))
        router = repro.DimensionOrderRouter()
        sub, _ = repro.adversarial_for_router(router, mesh, l=16)
        forced = router.route(sub, seed=0).congestion
        ours = min(
            repro.HierarchicalRouter().route(sub, seed=s).congestion
            for s in range(3)
        )
        assert ours < forced

    def test_bits_between_curves(self):
        """Measured recycled bits sit between the paper's lower and a
        constant multiple of its upper curve."""
        mesh = repro.Mesh((32, 32))
        prob = repro.random_pairs(mesh, 100, seed=13)
        router = repro.HierarchicalRouter(bit_mode="recycled")
        router.route(prob, seed=3)
        mean_bits = float(np.mean(router.bits_log))
        lo = repro.random_bits_lower_curve(2, prob.max_distance, mesh.n)
        hi = repro.random_bits_upper_curve(2, prob.max_distance)
        assert lo <= mean_bits <= 8 * hi
