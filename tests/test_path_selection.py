"""Tests for the paper's oblivious path-selection algorithm (Sections 3-4)."""

import numpy as np
import pytest

from repro.analysis.theory import stretch_bound_2d, stretch_bound_general
from repro.core.path_selection import HierarchicalRouter, common_type1_height
from repro.mesh.mesh import Mesh
from repro.mesh.paths import is_valid_path, path_length
from repro.routing.base import RoutingProblem
from repro.workloads.generators import random_pairs


@pytest.fixture
def mesh16():
    return Mesh((16, 16))


def _pairs(mesh, count, seed):
    rng = np.random.default_rng(seed)
    out = []
    while len(out) < count:
        s, t = (int(x) for x in rng.integers(mesh.n, size=2))
        if s != t:
            out.append((s, t))
    return out


class TestCommonType1Height:
    def test_same_node(self):
        dec = HierarchicalRouter().decomposition(Mesh((8, 8)))
        assert common_type1_height(dec, 5, 5) == 0

    def test_same_cell(self):
        mesh = Mesh((8, 8))
        dec = HierarchicalRouter().decomposition(mesh)
        assert common_type1_height(dec, mesh.node(0, 0), mesh.node(1, 1)) == 1

    def test_straddling_center_meets_at_root(self):
        mesh = Mesh((8, 8))
        dec = HierarchicalRouter().decomposition(mesh)
        s, t = mesh.node(3, 0), mesh.node(4, 0)
        assert common_type1_height(dec, s, t) == dec.k


class TestPathValidity:
    def test_paths_valid_2d(self, mesh16):
        router = HierarchicalRouter()
        rng = np.random.default_rng(0)
        for s, t in _pairs(mesh16, 200, 1):
            p = router.select_path(mesh16, s, t, rng)
            assert is_valid_path(mesh16, p, s, t)

    def test_paths_valid_3d(self):
        mesh = Mesh((8, 8, 8))
        router = HierarchicalRouter()
        rng = np.random.default_rng(0)
        for s, t in _pairs(mesh, 100, 2):
            p = router.select_path(mesh, s, t, rng)
            assert is_valid_path(mesh, p, s, t)

    def test_paths_valid_1d(self):
        mesh = Mesh((16,))
        router = HierarchicalRouter()
        rng = np.random.default_rng(0)
        for s, t in _pairs(mesh, 50, 3):
            p = router.select_path(mesh, s, t, rng)
            assert is_valid_path(mesh, p, s, t)

    def test_trivial_packet(self, mesh16):
        router = HierarchicalRouter()
        p = router.select_path(mesh16, 7, 7, np.random.default_rng(0))
        assert p.tolist() == [7]

    def test_acyclic_by_default(self, mesh16):
        router = HierarchicalRouter()
        rng = np.random.default_rng(4)
        for s, t in _pairs(mesh16, 100, 5):
            p = router.select_path(mesh16, s, t, rng)
            assert len(set(p.tolist())) == len(p)

    def test_tiny_mesh(self):
        mesh = Mesh((2, 2))
        router = HierarchicalRouter()
        rng = np.random.default_rng(0)
        for s in range(4):
            for t in range(4):
                p = router.select_path(mesh, s, t, rng)
                assert is_valid_path(mesh, p, s, t)


class TestStretchTheorem34:
    """Theorem 3.4: stretch <= 64 in two dimensions, path by path."""

    @pytest.mark.parametrize("m", [8, 16, 32])
    def test_random_pairs(self, m):
        mesh = Mesh((m, m))
        router = HierarchicalRouter()
        rng = np.random.default_rng(10)
        for s, t in _pairs(mesh, 150, m):
            p = router.select_path(mesh, s, t, rng)
            dist = mesh.distance(s, t)
            assert path_length(p) <= stretch_bound_2d() * dist

    def test_adversarial_boundary_pairs(self):
        """Adjacent pairs straddling every power-of-two cut — the worst
        cases for hierarchical schemes."""
        mesh = Mesh((32, 32))
        router = HierarchicalRouter()
        rng = np.random.default_rng(11)
        cuts = [1, 2, 4, 8, 16]
        for c in cuts:
            for y in (0, 13, 31):
                s, t = mesh.node(c - 1, y), mesh.node(c, y)
                for _ in range(20):
                    p = router.select_path(mesh, s, t, rng)
                    assert path_length(p) <= 64

    def test_exhaustive_8x8_sampled_randomness(self):
        mesh = Mesh((8, 8))
        router = HierarchicalRouter()
        rng = np.random.default_rng(12)
        for s in range(0, mesh.n, 3):
            for t in range(0, mesh.n, 5):
                if s == t:
                    continue
                p = router.select_path(mesh, s, t, rng)
                assert path_length(p) <= 64 * mesh.distance(s, t)


class TestStretchTheorem42:
    """Theorem 4.2: stretch O(d^2), against the explicit proof constant."""

    @pytest.mark.parametrize("d,m", [(3, 8), (4, 8), (5, 4)])
    def test_general_variant(self, d, m):
        mesh = Mesh((m,) * d)
        router = HierarchicalRouter()
        bound = stretch_bound_general(d)
        rng = np.random.default_rng(13)
        for s, t in _pairs(mesh, 80, d):
            p = router.select_path(mesh, s, t, rng)
            assert path_length(p) <= bound * mesh.distance(s, t)

    def test_adjacent_pairs_3d(self):
        mesh = Mesh((8, 8, 8))
        router = HierarchicalRouter()
        rng = np.random.default_rng(14)
        s, t = mesh.node(3, 4, 4), mesh.node(4, 4, 4)  # straddle the center
        for _ in range(30):
            p = router.select_path(mesh, s, t, rng)
            assert path_length(p) <= stretch_bound_general(3)


class TestSubmeshSequence:
    def test_sequence_nested_to_bridge(self, mesh16):
        router = HierarchicalRouter()
        for s, t in _pairs(mesh16, 50, 15):
            seq, peak = router.submesh_sequence(mesh16, s, t)
            assert seq[0].is_single_node and seq[0].contains_node(s)
            assert seq[-1].is_single_node and seq[-1].contains_node(t)
            for i in range(peak):
                assert seq[i + 1].contains_submesh(seq[i])
            for i in range(peak, len(seq) - 1):
                assert seq[i].contains_submesh(seq[i + 1])

    def test_bridge_is_largest(self, mesh16):
        router = HierarchicalRouter()
        for s, t in _pairs(mesh16, 50, 16):
            seq, peak = router.submesh_sequence(mesh16, s, t)
            assert seq[peak].size == max(b.size for b in seq)

    def test_general_variant_sequence(self):
        mesh = Mesh((8, 8, 8))
        router = HierarchicalRouter(variant="general")
        for s, t in _pairs(mesh, 50, 17):
            seq, peak = router.submesh_sequence(mesh, s, t)
            for i in range(peak):
                assert seq[i + 1].contains_submesh(seq[i])
            for i in range(peak, len(seq) - 1):
                assert seq[i].contains_submesh(seq[i + 1])

    def test_nobridge_sequence_all_type1_aligned(self, mesh16):
        router = HierarchicalRouter(use_bridges=False)
        dec = router.decomposition(mesh16)
        s, t = mesh16.node(7, 3), mesh16.node(8, 3)
        seq, peak = router.submesh_sequence(mesh16, s, t)
        # without bridges the meeting point is the root for this pair
        assert seq[peak].size == mesh16.n


class TestOptions:
    def test_variants_explicit(self, mesh16):
        for variant in ("bitonic2d", "general"):
            router = HierarchicalRouter(variant=variant)
            rng = np.random.default_rng(20)
            for s, t in _pairs(mesh16, 40, 21):
                p = router.select_path(mesh16, s, t, rng)
                assert is_valid_path(mesh16, p, s, t)

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            HierarchicalRouter(variant="nope")
        with pytest.raises(ValueError):
            HierarchicalRouter(dim_order="nope")
        with pytest.raises(ValueError):
            HierarchicalRouter(bit_mode="nope")

    def test_dim_order_modes(self, mesh16):
        for mode in ("random", "shared", "fixed"):
            router = HierarchicalRouter(dim_order=mode)
            rng = np.random.default_rng(22)
            p = router.select_path(mesh16, 3, 200, rng)
            assert is_valid_path(mesh16, p, 3, 200)

    def test_recycled_forces_shared_order(self):
        router = HierarchicalRouter(bit_mode="recycled", dim_order="random")
        assert router.dim_order == "shared"

    def test_keep_cycles_option(self, mesh16):
        router = HierarchicalRouter(drop_cycles=False)
        rng = np.random.default_rng(23)
        for s, t in _pairs(mesh16, 30, 24):
            p = router.select_path(mesh16, s, t, rng)
            assert is_valid_path(mesh16, p, s, t)

    def test_custom_name(self):
        assert HierarchicalRouter(name="algoH").name == "algoH"
        assert HierarchicalRouter(use_bridges=False).name == "hierarchical-nobridge"

    def test_decomposition_cached(self, mesh16):
        router = HierarchicalRouter()
        assert router.decomposition(mesh16) is router.decomposition(mesh16)

    def test_rejects_non_pow2_mesh(self):
        router = HierarchicalRouter()
        with pytest.raises(ValueError):
            router.select_path(Mesh((6, 6)), 0, 5, np.random.default_rng(0))


class TestBitsAccounting:
    def test_bits_logged_per_packet(self, mesh16):
        router = HierarchicalRouter(bit_mode="fresh")
        problem = random_pairs(mesh16, 20, seed=0)
        router.route(problem, seed=1)
        assert len(router.bits_log) == 20
        assert all(b > 0 for b in router.bits_log)

    def test_recycled_uses_fewer_bits(self, mesh16):
        problem = random_pairs(mesh16, 60, seed=1)
        fresh = HierarchicalRouter(bit_mode="fresh")
        fresh.route(problem, seed=2)
        recycled = HierarchicalRouter(bit_mode="recycled")
        recycled.route(problem, seed=2)
        assert np.mean(recycled.bits_log) < np.mean(fresh.bits_log)

    def test_recycled_upper_bound_shape(self):
        """Lemma 5.4: O(d log(D d)) bits per packet — generous constant 8."""
        from repro.analysis.theory import random_bits_upper_curve

        for d, m in ((2, 16), (3, 8)):
            mesh = Mesh((m,) * d)
            problem = random_pairs(mesh, 40, seed=3)
            router = HierarchicalRouter(bit_mode="recycled")
            router.route(problem, seed=4)
            ceiling = 8 * random_bits_upper_curve(d, problem.max_distance)
            assert max(router.bits_log) <= ceiling

    def test_trivial_packet_costs_nothing(self, mesh16):
        router = HierarchicalRouter(bit_mode="fresh")
        problem = RoutingProblem(
            mesh16, np.asarray([5]), np.asarray([5]), "self"
        )
        router.route(problem, seed=0)
        assert router.bits_log == [0]

    def test_no_accounting_by_default(self, mesh16):
        router = HierarchicalRouter()
        router.route(random_pairs(mesh16, 5, seed=5), seed=0)
        assert router.bits_log == []

    def test_recycled_paths_valid(self, mesh16):
        router = HierarchicalRouter(bit_mode="recycled")
        result = router.route(random_pairs(mesh16, 50, seed=6), seed=7)
        assert result.validate()

    def test_recycled_paths_valid_3d(self):
        mesh = Mesh((8, 8, 8))
        router = HierarchicalRouter(bit_mode="recycled")
        result = router.route(random_pairs(mesh, 50, seed=7), seed=8)
        assert result.validate()


class TestDeterminism:
    def test_same_seed_same_paths(self, mesh16):
        router = HierarchicalRouter()
        problem = random_pairs(mesh16, 30, seed=9)
        a = router.route(problem, seed=42)
        b = router.route(problem, seed=42)
        for pa, pb in zip(a.paths, b.paths):
            np.testing.assert_array_equal(pa, pb)

    def test_different_seeds_differ(self, mesh16):
        router = HierarchicalRouter()
        problem = random_pairs(mesh16, 30, seed=9)
        a = router.route(problem, seed=42)
        b = router.route(problem, seed=43)
        assert any(
            len(pa) != len(pb) or not np.array_equal(pa, pb)
            for pa, pb in zip(a.paths, b.paths)
        )
