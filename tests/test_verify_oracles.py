"""Oracle-vs-fast-path equivalence: the foundation of `repro verify`.

Every oracle in :mod:`repro.verify.oracles` is a deliberately slow scalar
restatement of an optimised code path.  These tests pin the equivalences
directly — uniforms, cycle removal, fault masks, BFS detours, full route
replay, and the metric loops — so a drift in either side surfaces here
before the differential runner ever has to shrink anything.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.randomness import packet_uniforms, resolve_entropy
from repro.faults.model import FaultModel
from repro.faults.router import FaultAwareRouter, shortest_alive_path
from repro.mesh.mesh import Mesh
from repro.mesh.paths import remove_cycles
from repro.metrics.congestion import edge_loads, node_loads
from repro.routing.registry import make_router
from repro.verify.oracles import (
    oracle_alive_bfs,
    oracle_dilation,
    oracle_distance,
    oracle_edge_loads,
    oracle_fault_mask,
    oracle_node_loads,
    oracle_remove_cycles,
    oracle_route,
    oracle_stretches,
    oracle_uniforms,
    replay_hash,
    result_hash,
)
from repro.workloads import random_pairs
from repro.workloads.permutations import transpose


# ---------------------------------------------------------------------------
# Randomness primitive
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("prefix", [(), (2,), (3, 5)])
def test_oracle_uniforms_match_packet_uniforms(prefix):
    entropy = resolve_entropy(1234)
    indices = np.asarray([0, 1, 7, 63, 1000], dtype=np.int64)
    fast = packet_uniforms(entropy, indices, 6, prefix)
    for row, idx in enumerate(indices):
        slow = oracle_uniforms(entropy, int(idx), 6, prefix)
        assert fast[row].tolist() == slow


def test_oracle_uniforms_are_per_index_not_per_row():
    # the same global index yields the same uniforms regardless of which
    # batch row it occupies — the sharding contract, stated scalar-side
    entropy = resolve_entropy(9)
    assert oracle_uniforms(entropy, 42, 4) == oracle_uniforms(entropy, 42, 4)
    assert oracle_uniforms(entropy, 42, 4) != oracle_uniforms(entropy, 43, 4)


# ---------------------------------------------------------------------------
# Scalar path helpers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "path",
    [
        [0],
        [0, 1, 2, 3],
        [0, 1, 0, 1, 2],
        [5, 4, 3, 4, 5, 6],
        [1, 2, 3, 1, 2, 3, 4],
    ],
)
def test_oracle_remove_cycles_matches_fast(path):
    fast = remove_cycles(np.asarray(path, dtype=np.int64))
    assert oracle_remove_cycles(path) == fast.tolist()


def test_oracle_distance_torus_wraps(mesh8):
    torus = Mesh((8, 8), torus=True)
    # corner to corner: 14 on the grid, 2 around the torus
    assert oracle_distance(mesh8, 0, 63) == 14
    assert oracle_distance(torus, 0, 63) == 2


# ---------------------------------------------------------------------------
# Fault masks
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "make",
    [
        lambda m: FaultModel.static(m, p=0.1, seed=3),
        lambda m: FaultModel.static(m, p=0.05, node_p=0.05, seed=4),
        lambda m: FaultModel.blocks(m, num_blocks=2, seed=5),
    ],
)
def test_oracle_fault_mask_static_modes(mesh8, make):
    model = make(mesh8)
    assert np.array_equal(oracle_fault_mask(model), model.edge_alive())


@pytest.mark.parametrize("step", [0, 1, 3, 9])
def test_oracle_fault_mask_dynamic_steps(mesh8, step):
    model = FaultModel.dynamic(mesh8, p=0.04, seed=6)
    assert np.array_equal(oracle_fault_mask(model, step), model.edge_alive(step))


def test_oracle_fault_mask_dynamic_repair_then_refail(mesh8):
    # walk far enough that repaired edges get a chance to fail again —
    # the eligibility rule (down_until <= t, not t-1) is what this pins
    model = FaultModel.dynamic(mesh8, p=0.15, seed=7)
    horizon = model.repair_delay + 4
    for step in range(horizon + 1):
        assert np.array_equal(
            oracle_fault_mask(model, step), model.edge_alive(step)
        ), f"dynamic mask diverged at step {step}"


def test_oracle_alive_bfs_matches_fast_ties(mesh8):
    model = FaultModel.static(mesh8, p=0.2, seed=11)
    alive = model.edge_alive()
    rng = np.random.default_rng(0)
    for _ in range(20):
        s, t = (int(x) for x in rng.integers(0, mesh8.n, size=2))
        fast = shortest_alive_path(mesh8, s, t, alive)
        slow = oracle_alive_bfs(mesh8, s, t, alive)
        if fast is None:
            assert slow is None
        else:
            # not just same length: the deterministic tie-break must agree
            assert slow == fast.tolist()


# ---------------------------------------------------------------------------
# Full route replay
# ---------------------------------------------------------------------------

ROUTE_CASES = [
    ("hierarchical", (8, 8), False),
    ("hierarchical-general", (8, 8), False),
    ("access-tree", (8, 8), False),
    ("rect-hierarchical", (8, 4), False),
    ("valiant", (6, 5), False),
    ("dim-order", (8, 8), True),
    ("random-dim-order", (4, 4, 4), False),
    ("shortest-path", (8, 8), False),
]


@pytest.mark.parametrize("name,sides,torus", ROUTE_CASES)
def test_oracle_route_byte_equals_fast(name, sides, torus):
    mesh = Mesh(sides, torus=torus)
    problem = random_pairs(mesh, 24, seed=2)
    router = make_router(name)
    entropy = resolve_entropy(5)
    fast = router.route(problem, entropy)
    oracle_ps, oracle_kept = oracle_route(router, problem, entropy)
    assert np.array_equal(fast.paths.offsets, oracle_ps.offsets)
    assert np.array_equal(fast.paths.nodes, oracle_ps.nodes)
    assert oracle_kept is None and fast.kept_indices is None


def test_oracle_route_respects_packet_offset(mesh8):
    # rows routed at offset k must replay packets k.. of the zero-offset run
    router = make_router("valiant")
    problem = random_pairs(mesh8, 12, seed=3)
    entropy = resolve_entropy(8)
    full, _ = oracle_route(router, problem, entropy)
    tail, _ = oracle_route(
        router, problem.subproblem(range(4, 12)), entropy, packet_offset=4
    )
    for row in range(8):
        assert np.array_equal(np.asarray(tail[row]), np.asarray(full[4 + row]))


def test_oracle_route_fault_aware_matches_fast(mesh8):
    model = FaultModel.static(mesh8, p=0.08, seed=13)
    router = FaultAwareRouter(make_router("hierarchical"), model)
    problem = random_pairs(mesh8, 32, seed=4)
    entropy = resolve_entropy(21)
    fast = router.route(problem, entropy)
    oracle_ps, oracle_kept = oracle_route(router, problem, entropy)
    assert np.array_equal(fast.paths.offsets, oracle_ps.offsets)
    assert np.array_equal(fast.paths.nodes, oracle_ps.nodes)
    assert np.array_equal(fast.kept_indices, oracle_kept)


# ---------------------------------------------------------------------------
# Metric loops
# ---------------------------------------------------------------------------

@pytest.fixture
def routed(mesh8):
    router = make_router("hierarchical")
    return router.route(transpose(mesh8), seed=0)


def test_oracle_metrics_match_vectorised(routed, mesh8):
    paths = list(routed.paths)
    assert np.array_equal(oracle_edge_loads(mesh8, paths), edge_loads(mesh8, routed.paths))
    assert np.array_equal(oracle_node_loads(mesh8, paths), node_loads(mesh8, routed.paths))
    slow = oracle_stretches(
        mesh8, routed.problem.sources, routed.problem.dests, paths
    )
    both_nan = np.isnan(slow) & np.isnan(routed.stretches)
    assert np.all(both_nan | np.isclose(slow, routed.stretches, rtol=0, atol=0))
    assert oracle_dilation(paths) == routed.dilation


def test_oracle_stretches_nan_at_self_loops(mesh8):
    slow = oracle_stretches(mesh8, [3], [3], [np.asarray([3])])
    assert np.isnan(slow[0])


def test_result_and_replay_hash_agree(routed, mesh8):
    router = make_router("hierarchical")
    entropy = resolve_entropy(0)
    fresh = router.route(transpose(mesh8), entropy)
    assert result_hash(fresh) == replay_hash(
        router, transpose(mesh8), entropy
    )
    # a different seed must produce different bytes for a randomized router
    assert result_hash(fresh) != replay_hash(
        router, transpose(mesh8), resolve_entropy(1)
    )
