"""Tests for the torus model: wrapped boxes, decomposition and routing.

The paper's proofs "assume, for simplicity, that we are on the torus",
where all shifted submeshes are full-size.  These tests exercise that model
end to end, including the characteristic torus-only behaviour: pairs
adjacent *across the wrap-around border* meet at constant height through a
wrapped bridge.
"""

import numpy as np
import pytest

from repro.core.bridges import common_ancestor_2d
from repro.core.decomposition import Decomposition
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh
from repro.mesh.torus_box import TorusBox, torus_bounding


@pytest.fixture
def torus():
    return Mesh((16, 16), torus=True)


class TestTorusBox:
    def test_basic_geometry(self, torus):
        b = TorusBox(torus, (14, 3), (4, 2))
        assert b.sides == (4, 2)
        assert b.size == 8
        assert b.wraps()

    def test_start_normalised(self, torus):
        assert TorusBox(torus, (-2, 0), (4, 2)).start == (14, 0)

    def test_invalid_lengths(self, torus):
        with pytest.raises(ValueError):
            TorusBox(torus, (0, 0), (17, 2))
        with pytest.raises(ValueError):
            TorusBox(torus, (0, 0), (0, 2))

    def test_contains_wrapped_nodes(self, torus):
        b = TorusBox(torus, (14, 0), (4, 4))
        assert b.contains_node(torus.node(15, 2))
        assert b.contains_node(torus.node(1, 0))
        assert not b.contains_node(torus.node(4, 0))

    def test_nodes_count_and_membership(self, torus):
        b = TorusBox(torus, (14, 14), (4, 4))
        nodes = b.nodes()
        assert nodes.size == 16
        assert np.all(b.contains_node(nodes))

    def test_to_submesh_roundtrip(self, torus):
        plain = Submesh(torus, (2, 3), (5, 6))
        tb = TorusBox.from_submesh(plain)
        assert not tb.wraps()
        assert tb.to_submesh() == plain

    def test_to_submesh_rejects_wrapped(self, torus):
        with pytest.raises(ValueError):
            TorusBox(torus, (14, 0), (4, 4)).to_submesh()

    def test_contains_box_wrapped(self, torus):
        outer = TorusBox(torus, (12, 12), (8, 8))
        inner = TorusBox(torus, (14, 15), (2, 2))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_contains_box_matches_node_sets(self, torus):
        rng = np.random.default_rng(0)
        for _ in range(40):
            a = TorusBox(
                torus,
                rng.integers(0, 16, size=2),
                rng.integers(1, 9, size=2),
            )
            b = TorusBox(
                torus,
                rng.integers(0, 16, size=2),
                rng.integers(1, 17, size=2),
            )
            set_a = set(a.nodes().tolist())
            set_b = set(b.nodes().tolist())
            assert b.contains_box(a) == (set_a <= set_b)

    def test_whole_ring_contains_everything(self, torus):
        whole = TorusBox(torus, (5, 9), (16, 16))
        assert whole.contains_box(TorusBox(torus, (13, 2), (7, 7)))

    def test_offset_node_wraps(self, torus):
        b = TorusBox(torus, (15, 15), (2, 2))
        assert b.offset_node((1, 1)) == torus.node(0, 0)
        with pytest.raises(ValueError):
            b.offset_node((2, 0))

    def test_sample_node_inside(self, torus):
        b = TorusBox(torus, (14, 14), (4, 4))
        rng = np.random.default_rng(1)
        for _ in range(50):
            assert b.contains_node(b.sample_node(rng))

    def test_equality_and_hash(self, torus):
        a = TorusBox(torus, (1, 2), (3, 4))
        b = TorusBox(torus, (1, 2), (3, 4))
        assert a == b and hash(a) == hash(b)
        assert a != TorusBox(torus, (1, 2), (3, 5))


class TestTorusBounding:
    def test_prefers_short_way_around(self, torus):
        a = Submesh(torus, (0, 0), (1, 1))
        b = Submesh(torus, (14, 0), (15, 1))
        bb = torus_bounding(a, b)
        assert bb.lengths[0] == 4  # via the wrap, not 16
        assert bb.contains_box(TorusBox.from_submesh(a))
        assert bb.contains_box(TorusBox.from_submesh(b))

    def test_interior_matches_plain_bounding(self, torus):
        a = Submesh(torus, (2, 3), (4, 5))
        b = Submesh(torus, (6, 1), (8, 2))
        bb = torus_bounding(a, b)
        plain = a.bounding_with(b)
        assert not bb.wraps()
        assert bb.to_submesh() == plain

    def test_contains_both_randomised(self, torus):
        rng = np.random.default_rng(2)
        for _ in range(50):
            a = TorusBox(torus, rng.integers(0, 16, size=2), rng.integers(1, 8, size=2))
            b = TorusBox(torus, rng.integers(0, 16, size=2), rng.integers(1, 8, size=2))
            bb = torus_bounding(a, b)
            assert bb.contains_box(a)
            assert bb.contains_box(b)


class TestTorusDecomposition:
    def test_all_pieces_full_size(self, torus):
        dec = Decomposition(torus)
        for level in range(1, dec.k + 1):
            m_l = dec.side(level)
            for j in range(2, dec.num_types(level) + 1):
                regs = dec.shifted_at_level(level, j)
                assert len(regs) == dec.num_cells(level) ** 2
                for reg in regs:
                    assert reg.box.sides == (m_l, m_l)
                    assert not reg.truncated

    def test_shifted_grid_tiles_torus(self, torus):
        dec = Decomposition(torus)
        for level in (1, 2):
            covered = np.zeros(torus.n, dtype=int)
            for reg in dec.shifted_at_level(level, 2):
                covered[reg.box.nodes()] += 1
            assert np.all(covered == 1)

    def test_wrapped_pieces_exist(self, torus):
        dec = Decomposition(torus)
        wrapped = [
            r for r in dec.shifted_at_level(1, 2) if isinstance(r.box, TorusBox)
        ]
        assert wrapped, "translation must wrap on the torus"

    def test_containing_regulars_accepts_wrapped_target(self, torus):
        dec = Decomposition(torus)
        target = TorusBox(torus, (15, 15), (2, 2))
        found = dec.containing_regulars(target, 1)
        assert found
        for reg in found:
            assert reg.box.contains_box(target) if isinstance(
                reg.box, TorusBox
            ) else TorusBox.from_submesh(reg.box).contains_box(target)

    def test_root_contains_everything(self, torus):
        dec = Decomposition(torus)
        target = TorusBox(torus, (9, 11), (14, 14))
        assert dec.containing_regulars(target, 0)


class TestTorusRouting:
    def test_border_straddling_pair_meets_low(self, torus):
        """(0, y) and (m-1, y) are adjacent on the torus; the wrapped
        type-2 submeshes give them a constant-height bridge."""
        dec = Decomposition(torus)
        s, t = torus.node(0, 5), torus.node(15, 5)
        h, bridge = common_ancestor_2d(dec, s, t)
        assert h <= 3  # Lemma 3.3 with dist = 1

    def test_stretch_bounded_on_torus(self, torus):
        from repro.workloads.generators import random_pairs

        router = HierarchicalRouter()
        prob = random_pairs(torus, 300, seed=1)
        res = router.route(prob, seed=2)
        assert res.validate()
        assert res.stretch <= 64

    def test_wraparound_neighbors_stay_local(self, torus):
        from repro.mesh.paths import path_length

        router = HierarchicalRouter()
        rng = np.random.default_rng(3)
        for y in (0, 7, 15):
            s, t = torus.node(15, y), torus.node(0, y)
            for _ in range(10):
                p = router.select_path(torus, s, t, rng)
                assert path_length(p) <= 64

    def test_3d_torus_routing(self):
        from repro.workloads.permutations import random_permutation

        mesh = Mesh((8, 8, 8), torus=True)
        router = HierarchicalRouter()
        res = router.route(random_permutation(mesh, seed=4), seed=5)
        assert res.validate()
        from repro.analysis.theory import stretch_bound_general

        assert res.stretch <= stretch_bound_general(3)

    def test_recycled_bits_on_torus(self, torus):
        from repro.workloads.generators import random_pairs

        router = HierarchicalRouter(bit_mode="recycled")
        res = router.route(random_pairs(torus, 60, seed=6), seed=7)
        assert res.validate()
        assert all(b > 0 for b in router.bits_log)

    def test_torus_vs_mesh_border_stretch(self):
        """Border-wrap traffic: the mesh sees distance 15, the torus
        distance 1 — both must keep their own stretch bounded."""
        from repro.mesh.paths import path_length

        for torus_flag in (False, True):
            mesh = Mesh((16, 16), torus=torus_flag)
            router = HierarchicalRouter()
            rng = np.random.default_rng(8)
            s, t = mesh.node(0, 8), mesh.node(15, 8)
            dist = mesh.distance(s, t)
            for _ in range(10):
                p = router.select_path(mesh, s, t, rng)
                assert path_length(p) <= 64 * dist
