"""PathSet conformance suite: CSR construction, the ``Sequence`` protocol,
derived views, metric equivalence against the pre-refactor list-of-arrays
implementations, and a hypothesis fuzz layer over construction
round-trips and shard concatenation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.path_selection import HierarchicalRouter
from repro.core.pathset import PathSet
from repro.mesh.mesh import Mesh
from repro.mesh.paths import path_edge_endpoints, path_length
from repro.metrics.congestion import (
    congestion,
    directed_edge_loads,
    edge_loads,
    node_loads,
)
from repro.metrics.stretch import dilation, stretch, stretches
from repro.routing.baselines import ValiantRouter
from repro.workloads.generators import random_pairs


# ---------------------------------------------------------------------------
# Pre-refactor reference implementations (the seed's list-of-arrays loops),
# kept here verbatim as the behavioural contract for the columnar versions.
# ---------------------------------------------------------------------------

def _gather_edges_ref(mesh, paths):
    tails_parts, heads_parts = [], []
    for p in paths:
        p = np.asarray(p, dtype=np.int64)
        if p.size < 2:
            continue
        t, h = path_edge_endpoints(p)
        tails_parts.append(t)
        heads_parts.append(h)
    if not tails_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(tails_parts), np.concatenate(heads_parts)


def edge_loads_ref(mesh, paths):
    tails, heads = _gather_edges_ref(mesh, paths)
    if tails.size == 0:
        return np.zeros(mesh.num_edges, dtype=np.int64)
    ids = mesh.edge_ids(tails, heads)
    return np.bincount(ids, minlength=mesh.num_edges).astype(np.int64)


def node_loads_ref(mesh, paths):
    counts = np.zeros(mesh.n, dtype=np.int64)
    for p in paths:
        p = np.asarray(p, dtype=np.int64)
        if p.size:
            counts += np.bincount(np.unique(p), minlength=mesh.n)
    return counts


def directed_edge_loads_ref(mesh, paths):
    """Brute-force orientation count via the scalar endpoint decoder."""
    out = np.zeros((mesh.num_edges, 2), dtype=np.int64)
    for p in paths:
        p = np.asarray(p, dtype=np.int64)
        for a, b in zip(p[:-1].tolist(), p[1:].tolist()):
            eid = int(mesh.edge_ids(np.asarray([a]), np.asarray([b]))[0])
            low, _high = mesh.edge_id_to_endpoints(eid)
            out[eid, 0 if a == low else 1] += 1
    return out


def dilation_ref(paths):
    return max((path_length(p) for p in paths), default=0)


def stretches_ref(mesh, sources, dests, paths):
    lengths = np.asarray([path_length(p) for p in paths], dtype=np.float64)
    dists = np.asarray(
        mesh.distance(np.asarray(sources), np.asarray(dests)), dtype=np.float64
    )
    out = np.full(len(paths), np.nan)
    nonzero = dists > 0
    out[nonzero] = lengths[nonzero] / dists[nonzero]
    return out


class TestConstruction:
    def test_from_paths_round_trip(self):
        paths = [np.asarray([0, 1, 2]), np.asarray([7]), np.asarray([3, 4])]
        ps = PathSet.from_paths(paths)
        back = ps.to_list()
        assert len(back) == 3
        for a, b in zip(paths, back):
            np.testing.assert_array_equal(a, b)

    def test_from_paths_idempotent(self):
        ps = PathSet.from_paths([np.asarray([0, 1])])
        assert PathSet.from_paths(ps) is ps

    def test_from_arrays_zero_copy_layout(self):
        nodes = np.asarray([5, 6, 7, 2], dtype=np.int64)
        offsets = np.asarray([0, 3, 4], dtype=np.int64)
        ps = PathSet.from_arrays(nodes, offsets)
        assert ps[0].tolist() == [5, 6, 7]
        assert ps[1].tolist() == [2]

    def test_from_lengths(self):
        ps = PathSet.from_lengths(np.asarray([1, 2, 3]), np.asarray([2, 0, 1]))
        assert ps[0].tolist() == [1, 2]
        assert ps[1].tolist() == []
        assert ps[2].tolist() == [3]

    def test_empty_collection(self):
        ps = PathSet.from_paths([])
        assert len(ps) == 0
        assert ps.total_nodes == 0
        assert ps.total_edges == 0
        assert ps.edge_tails.size == 0

    def test_bad_offsets_rejected(self):
        with pytest.raises(ValueError):
            PathSet(np.asarray([1, 2]), np.asarray([0, 1]))  # doesn't cover nodes
        with pytest.raises(ValueError):
            PathSet(np.asarray([1, 2]), np.asarray([0, 2, 1, 2]))  # decreasing

    def test_from_arrays_does_not_alias_writable_source(self):
        """Regression: when the inputs are already contiguous int64,
        ``ascontiguousarray`` hands back the caller's own buffer; freezing
        a *view* of it left the source writable, so mutating the source
        after construction silently corrupted the CSR."""
        nodes = np.asarray([0, 1, 2, 2, 3], dtype=np.int64)
        offsets = np.asarray([0, 3, 5], dtype=np.int64)
        ps = PathSet.from_arrays(nodes, offsets)
        before = [p.tolist() for p in ps]
        nodes[0] = 99
        offsets[1] = 1
        assert [p.tolist() for p in ps] == before
        assert ps.nodes.tolist() == [0, 1, 2, 2, 3]
        assert ps.offsets.tolist() == [0, 3, 5]

    def test_from_arrays_does_not_alias_writable_view(self):
        """Same failure via a view: a slice of a writable buffer must be
        copied, not frozen in place."""
        backing = np.arange(10, dtype=np.int64)
        nodes = backing[2:5]  # contiguous int64 view of writable memory
        ps = PathSet.from_arrays(nodes, np.asarray([0, 3], dtype=np.int64))
        backing[:] = -1
        assert ps.nodes.tolist() == [2, 3, 4]

    def test_from_arrays_read_only_input_wraps_zero_copy(self):
        """The flip side of the aliasing fix: genuinely immutable inputs
        (the batch engine's frozen buffers) must still wrap without a copy."""
        nodes = np.asarray([4, 5, 6], dtype=np.int64)
        offsets = np.asarray([0, 3], dtype=np.int64)
        nodes.setflags(write=False)
        offsets.setflags(write=False)
        ps = PathSet.from_arrays(nodes, offsets)
        assert np.shares_memory(ps.nodes, nodes)
        assert np.shares_memory(ps.offsets, offsets)

    def test_arrays_frozen(self):
        ps = PathSet.from_paths([np.asarray([0, 1, 2])])
        with pytest.raises(ValueError):
            ps.nodes[0] = 9
        with pytest.raises(ValueError):
            ps[0][0] = 9


class TestSequenceProtocol:
    def test_len_getitem_iter(self):
        paths = [np.asarray([0, 1]), np.asarray([4, 5, 6])]
        ps = PathSet.from_paths(paths)
        assert len(ps) == 2
        np.testing.assert_array_equal(ps[0], paths[0])
        np.testing.assert_array_equal(ps[-1], paths[1])
        for a, b in zip(ps, paths):
            np.testing.assert_array_equal(a, b)
        assert ps[0].dtype == np.int64

    def test_index_out_of_range(self):
        ps = PathSet.from_paths([np.asarray([0])])
        with pytest.raises(IndexError):
            ps[1]
        with pytest.raises(IndexError):
            ps[-2]

    def test_slice_returns_pathset(self):
        ps = PathSet.from_paths([np.asarray([i, i + 1]) for i in range(4)])
        sliced = ps[1:3]
        assert isinstance(sliced, PathSet)
        assert len(sliced) == 2
        assert sliced[0].tolist() == [1, 2]

    def test_truthiness_and_equality(self):
        a = PathSet.from_paths([np.asarray([0, 1])])
        b = PathSet.from_paths([np.asarray([0, 1])])
        c = PathSet.from_paths([np.asarray([0, 2])])
        assert a == b
        assert a != c
        assert bool(a)
        assert not PathSet.from_paths([])


class TestDerivedViews:
    def test_edge_streams_skip_path_boundaries(self):
        ps = PathSet.from_paths(
            [np.asarray([0, 1, 2]), np.asarray([9]), np.asarray([4, 5])]
        )
        assert ps.edge_tails.tolist() == [0, 1, 4]
        assert ps.edge_heads.tolist() == [1, 2, 5]
        assert ps.lengths.tolist() == [2, 0, 1]
        assert ps.edge_offsets.tolist() == [0, 2, 2, 3]
        assert ps.edge_path_ids.tolist() == [0, 0, 2]
        assert ps.node_path_ids.tolist() == [0, 0, 0, 1, 2, 2]

    def test_edge_streams_with_empty_paths(self):
        ps = PathSet.from_lengths(
            np.asarray([3, 4, 8]), np.asarray([0, 2, 0, 1, 0])
        )
        assert ps.edge_tails.tolist() == [3]
        assert ps.edge_heads.tolist() == [4]
        assert ps.lengths.tolist() == [0, 1, 0, 0, 0]

    def test_edge_ids_cached_per_mesh(self):
        mesh = Mesh((4, 4))
        ps = PathSet.from_paths([np.asarray([0, 1, 2])])
        ids1 = ps.edge_ids(mesh)
        ids2 = ps.edge_ids(Mesh((4, 4)))
        assert ids1 is ids2
        np.testing.assert_array_equal(ids1, mesh.edge_ids(ps.edge_tails, ps.edge_heads))

    def test_edge_ids_rejects_non_links(self):
        mesh = Mesh((4, 4))
        ps = PathSet.from_paths([np.asarray([0, 5])])
        with pytest.raises(ValueError):
            ps.edge_ids(mesh)


class TestEngineIntegration:
    def test_batched_route_emits_pathset(self):
        mesh = Mesh((16, 16))
        res = HierarchicalRouter().route(random_pairs(mesh, 50, seed=0), seed=1)
        assert isinstance(res.paths, PathSet)

    def test_legacy_route_coerced_to_pathset(self):
        mesh = Mesh((8, 8), torus=True)  # torus forces the per-packet loop
        res = HierarchicalRouter().route(random_pairs(mesh, 10, seed=0), seed=1)
        assert isinstance(res.paths, PathSet)
        assert res.validate()


class TestMetricEquivalence:
    """Property test: columnar metrics == the pre-refactor loops on random
    workloads (including s == t packets and decycled Valiant paths)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "router", [HierarchicalRouter(), ValiantRouter()], ids=lambda r: r.name
    )
    def test_random_workloads(self, router, seed):
        mesh = Mesh((16, 16))
        rng = np.random.default_rng(seed)
        src = rng.integers(mesh.n, size=80)
        dst = rng.integers(mesh.n, size=80)
        dst[:5] = src[:5]  # force s == t (single-node) paths
        from repro.routing.base import RoutingProblem

        problem = RoutingProblem(mesh, src, dst)
        result = router.route(problem, seed=seed)
        ps = result.paths
        as_list = ps.to_list()

        np.testing.assert_array_equal(edge_loads(mesh, ps), edge_loads_ref(mesh, as_list))
        assert congestion(mesh, ps) == int(edge_loads_ref(mesh, as_list).max())
        np.testing.assert_array_equal(node_loads(mesh, ps), node_loads_ref(mesh, as_list))
        np.testing.assert_array_equal(
            directed_edge_loads(mesh, ps), directed_edge_loads_ref(mesh, as_list)
        )
        assert dilation(ps) == dilation_ref(as_list)
        np.testing.assert_allclose(
            stretches(mesh, src, dst, ps), stretches_ref(mesh, src, dst, as_list)
        )

    def test_list_input_still_accepted(self):
        mesh = Mesh((4, 4))
        paths = [np.asarray([0, 1, 2]), np.asarray([2, 1])]
        np.testing.assert_array_equal(
            edge_loads(mesh, paths), edge_loads_ref(mesh, paths)
        )
        assert dilation(paths) == 2
        assert stretch(mesh, np.asarray([0, 2]), np.asarray([2, 1]), paths) == 1.0


# ---------------------------------------------------------------------------
# Hypothesis fuzz layer: arbitrary path lists (empty collections, empty
# paths, single-node paths, duplicated node ids and duplicated whole paths
# all arise naturally from the strategy) round-trip through both
# constructors, and concatenation of any split equals the whole.
# ---------------------------------------------------------------------------

#: lists of paths over a small id space — duplicates of both kinds are common
path_lists = st.lists(
    st.lists(st.integers(0, 30), min_size=0, max_size=8),
    min_size=0,
    max_size=12,
)


class TestFuzzRoundTrips:
    @given(path_lists)
    def test_from_paths_round_trip(self, raw):
        paths = [np.asarray(p, dtype=np.int64) for p in raw]
        ps = PathSet.from_paths(paths)
        assert len(ps) == len(raw)
        assert ps.total_nodes == sum(len(p) for p in raw)
        for got, want in zip(ps.to_list(), raw):
            assert got.tolist() == want

    @given(path_lists)
    def test_from_arrays_round_trip(self, raw):
        nodes = np.asarray(
            [x for p in raw for x in p], dtype=np.int64
        )
        offsets = np.cumsum([0] + [len(p) for p in raw]).astype(np.int64)
        ps = PathSet.from_arrays(nodes, offsets)
        assert [p.tolist() for p in ps] == raw

    @given(path_lists)
    def test_constructors_agree(self, raw):
        a = PathSet.from_paths([np.asarray(p, dtype=np.int64) for p in raw])
        nodes = np.asarray([x for p in raw for x in p], dtype=np.int64)
        offsets = np.cumsum([0] + [len(p) for p in raw]).astype(np.int64)
        b = PathSet.from_arrays(nodes, offsets)
        assert a.nodes.tolist() == b.nodes.tolist()
        assert a.offsets.tolist() == b.offsets.tolist()

    @given(path_lists)
    def test_lengths_and_edge_counts(self, raw):
        ps = PathSet.from_paths([np.asarray(p, dtype=np.int64) for p in raw])
        assert ps.lengths.tolist() == [max(len(p) - 1, 0) for p in raw]
        assert ps.total_edges == sum(max(len(p) - 1, 0) for p in raw)

    def test_single_node_and_duplicate_paths_explicit(self):
        raw = [[3], [], [5, 5, 5], [3], [0, 1], [0, 1]]
        ps = PathSet.from_paths([np.asarray(p, dtype=np.int64) for p in raw])
        assert [p.tolist() for p in ps] == raw
        assert ps.lengths.tolist() == [0, 0, 2, 0, 1, 1]


class TestFuzzConcatenate:
    @given(path_lists, st.integers(0, 12))
    def test_split_then_concatenate_is_identity(self, raw, cut):
        paths = [np.asarray(p, dtype=np.int64) for p in raw]
        whole = PathSet.from_paths(paths)
        cut = min(cut, len(paths))
        parts = [PathSet.from_paths(paths[:cut]), PathSet.from_paths(paths[cut:])]
        merged = PathSet.concatenate(parts)
        assert merged.nodes.tobytes() == whole.nodes.tobytes()
        assert merged.offsets.tobytes() == whole.offsets.tobytes()

    @given(path_lists, st.integers(2, 5))
    def test_many_way_split(self, raw, k):
        paths = [np.asarray(p, dtype=np.int64) for p in raw]
        whole = PathSet.from_paths(paths)
        bounds = np.linspace(0, len(paths), k + 1).astype(int)
        parts = [
            PathSet.from_paths(paths[a:b]) for a, b in zip(bounds[:-1], bounds[1:])
        ]
        merged = PathSet.concatenate(parts)
        assert merged == whole
        assert merged.offsets[0] == 0

    def test_concatenate_empty_list(self):
        assert len(PathSet.concatenate([])) == 0

    def test_concatenate_single_part_passthrough(self):
        ps = PathSet.from_paths([np.asarray([0, 1])])
        assert PathSet.concatenate([ps]) is ps

    def test_concatenate_result_frozen(self):
        merged = PathSet.concatenate(
            [PathSet.from_paths([np.asarray([0, 1])]) for _ in range(2)]
        )
        with pytest.raises(ValueError):
            merged.nodes[0] = 9


class TestSharedMemory:
    """to_shared / from_shared: the ownership hand-off protocol."""

    @staticmethod
    def _sample() -> PathSet:
        return PathSet.from_paths(
            [np.asarray([0, 1, 2, 3]), np.asarray([7]), np.asarray([4, 5])]
        )

    def test_roundtrip_zero_copy_bytes(self):
        from repro.core import shm as core_shm

        ps = self._sample()
        desc = ps.to_shared()
        assert desc.name in core_shm.active_segments()
        assert desc.num_paths == 3 and desc.num_nodes == 7
        opened = PathSet.from_shared(desc)
        assert opened == ps
        # zero-copy: the arrays wrap the mapping read-only, no writable alias
        assert not opened.nodes.flags.writeable
        assert isinstance(opened.nodes.base.base, memoryview)
        assert opened.close_shared(unlink=True) is True
        assert desc.name not in core_shm.active_segments()

    def test_from_shared_copy_leaves_segment_linked(self):
        from repro.core import shm as core_shm

        ps = self._sample()
        desc = ps.to_shared()
        copied = PathSet.from_shared(desc, copy=True)
        assert copied == ps
        assert copied.close_shared() is False  # not shm-backed
        assert desc.name in core_shm.active_segments()  # other consumers may read
        assert desc.discard() is True
        assert desc.name not in core_shm.active_segments()

    def test_empty_pathset_roundtrip(self):
        empty = PathSet.from_paths([])
        desc = empty.to_shared()
        opened = PathSet.from_shared(desc)
        assert len(opened) == 0
        assert opened.offsets.tolist() == [0]
        assert opened.close_shared(unlink=True) is True

    def test_close_shared_is_terminal_and_idempotent(self):
        ps = self._sample()
        opened = PathSet.from_shared(ps.to_shared())
        assert opened.close_shared(unlink=True) is True
        assert opened.close_shared(unlink=True) is False  # second call: no-op
        assert len(opened) == 0  # reset to a valid empty CSR

    def test_close_shared_with_escaped_view_raises_guidance(self):
        import gc

        from repro.core import shm as core_shm

        ps = self._sample()
        desc = ps.to_shared()
        opened = PathSet.from_shared(desc)
        view = opened.nodes[1:]  # escapes the mapping
        with pytest.raises(BufferError, match="escaped") as excinfo:
            opened.close_shared(unlink=True)
        # release the view before the mapping object is collected, then
        # reclaim the name the failed close left behind
        del view, excinfo
        gc.collect()
        assert core_shm.discard(desc.name) is True

    def test_unlink_tolerates_external_sweep(self):
        """An orphan sweep may unlink the name while a consumer still maps
        it; close_shared must treat that as already-done, not an error."""
        from repro.core import shm as core_shm

        ps = self._sample()
        desc = ps.to_shared()
        opened = PathSet.from_shared(desc)
        assert core_shm.discard(desc.name) is True  # external sweep wins
        assert opened.close_shared(unlink=True) is True  # no FileNotFoundError

    def test_survives_producer_exit(self):
        """The hand-off: a segment created in a child process stays alive
        (resource tracker unregistered) for the parent to consume."""
        import multiprocessing as mp

        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        queue = ctx.Queue()
        proc = ctx.Process(target=_produce_shared_pathset, args=(queue,))
        proc.start()
        desc = queue.get(timeout=30)
        proc.join(timeout=30)
        assert proc.exitcode == 0  # producer exited before we consume
        opened = PathSet.from_shared(desc)
        assert opened.nodes.tolist() == [0, 1, 2, 3, 7, 4, 5]
        assert opened.close_shared(unlink=True) is True


def _produce_shared_pathset(queue) -> None:
    ps = PathSet.from_paths(
        [np.asarray([0, 1, 2, 3]), np.asarray([7]), np.asarray([4, 5])]
    )
    queue.put(ps.to_shared())
