"""Differential seed-matrix test against the committed golden hashes.

Every cell of ``tests/golden/path_hashes.json`` — oblivious registry
router x mesh family (square, rectangular, torus) x seed, plus
fault-aware hierarchical cells — is recomputed and compared.  The cell
definitions live in :func:`tests.golden.regenerate_goldens.golden_cases`,
shared with the regeneration script so the two can never drift apart.
The goldens pin the *byte-level* seed contract: a stored seed must keep
replaying the exact same paths across refactors, because results on disk
(``repro.io``) record only the seed, not the paths.

The loader checks are failing-by-design: a missing or truncated golden
file fails loudly instead of skipping, so the matrix can never silently
stop guarding anything.  After an intentional derivation change, rerun
``tests/golden/regenerate_goldens.py`` (it refuses to overwrite changed
cells without ``--force``) and commit the diff.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from tests.golden.regenerate_goldens import (
    GRAPH_LABEL,
    MESHES,
    SEEDS,
    cell_hash,
    golden_cases,
)
from repro.mesh.mesh import Mesh
from repro.routing.registry import make_router
from repro.workloads.permutations import transpose

GOLDEN_PATH = Path(__file__).parent / "golden" / "path_hashes.json"

CASES = dict(golden_cases())


def load_goldens() -> dict[str, str]:
    # Deliberately no skip / xfail: if the file vanished or won't parse,
    # every test in this module must fail, not silently pass as "skipped".
    assert GOLDEN_PATH.exists(), (
        f"golden file missing: {GOLDEN_PATH} — run tests/golden/regenerate_goldens.py"
    )
    return json.loads(GOLDEN_PATH.read_text())


def test_goldens_are_loaded_and_cover_the_matrix():
    goldens = load_goldens()
    assert set(goldens) == set(CASES), (
        "golden file and golden_cases() disagree — "
        "regenerate after adding a router/mesh/seed"
    )
    # the matrix must span all mesh families, the fixed general graph,
    # and every seed
    labels = {key.split("|")[1] for key in goldens}
    assert labels == {label for _sides, _torus, label in MESHES} | {GRAPH_LABEL}
    seeds = {key.rsplit("=", 1)[1] for key in goldens}
    assert seeds == {str(s) for s in SEEDS}
    assert any("+static-faults|" in key for key in goldens)
    for value in goldens.values():
        assert len(value) == 64 and int(value, 16) >= 0  # sha256 hex


@pytest.mark.parametrize("key", sorted(CASES), ids=lambda k: k.replace("|", " "))
def test_paths_match_goldens(key):
    goldens = load_goldens()
    assert key in goldens, f"no golden for {key} — regenerate the matrix"
    result = CASES[key]()
    assert cell_hash(result) == goldens[key], (
        f"{key}: routed bytes diverged from the committed golden — "
        "either a regression or an intentional derivation change "
        "(then regenerate_goldens.py --force and commit)"
    )


def test_sharded_route_matches_goldens_too():
    """The goldens bind the parallel engine as well: workers=3 must land on
    the same committed bytes."""
    goldens = load_goldens()
    problem = transpose(Mesh((8, 8)))
    result = make_router("hierarchical").route(problem, seed=0, workers=3)
    h = hashlib.sha256()
    h.update(result.paths.nodes.tobytes())
    h.update(result.paths.offsets.tobytes())
    assert h.hexdigest() == goldens["hierarchical|8x8|seed=0"]
