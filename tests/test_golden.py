"""Differential seed-matrix test against the committed golden hashes.

Every cell of ``tests/golden/path_hashes.json`` — oblivious registry
router x mesh x seed, transpose workload — is recomputed and compared.
The goldens pin the *byte-level* seed contract: a stored seed must keep
replaying the exact same paths across refactors, because results on disk
(``repro.io``) record only the seed, not the paths.

The loader checks are failing-by-design: a missing or truncated golden
file fails loudly instead of skipping, so the matrix can never silently
stop guarding anything.  After an intentional derivation change, rerun
``tests/golden/regenerate_goldens.py`` and commit the diff.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from tests.golden.regenerate_goldens import MESHES, SEEDS
from repro.mesh.mesh import Mesh
from repro.routing.registry import available_routers, make_router
from repro.workloads.permutations import transpose

GOLDEN_PATH = Path(__file__).parent / "golden" / "path_hashes.json"


def load_goldens() -> dict[str, str]:
    # Deliberately no skip / xfail: if the file vanished or won't parse,
    # every test in this module must fail, not silently pass as "skipped".
    assert GOLDEN_PATH.exists(), (
        f"golden file missing: {GOLDEN_PATH} — run tests/golden/regenerate_goldens.py"
    )
    return json.loads(GOLDEN_PATH.read_text())


OBLIVIOUS = [n for n in available_routers() if make_router(n).is_oblivious]


def test_goldens_are_loaded_and_cover_the_matrix():
    goldens = load_goldens()
    expected = len(OBLIVIOUS) * len(MESHES) * len(SEEDS)
    assert len(goldens) == expected, (
        f"golden matrix has {len(goldens)} entries, expected {expected} — "
        "regenerate after adding a router/mesh/seed"
    )
    for value in goldens.values():
        assert len(value) == 64 and int(value, 16) >= 0  # sha256 hex


@pytest.mark.parametrize("sides", MESHES, ids=lambda s: "x".join(map(str, s)))
@pytest.mark.parametrize("name", OBLIVIOUS)
def test_paths_match_goldens(name, sides):
    goldens = load_goldens()
    problem = transpose(Mesh(sides))
    for seed in SEEDS:
        result = make_router(name).route(problem, seed=seed)
        h = hashlib.sha256()
        h.update(result.paths.nodes.tobytes())
        h.update(result.paths.offsets.tobytes())
        key = f"{name}|{'x'.join(map(str, sides))}|seed={seed}"
        assert key in goldens, f"no golden for {key} — regenerate the matrix"
        assert h.hexdigest() == goldens[key], (
            f"{key}: routed bytes diverged from the committed golden — "
            "either a regression or an intentional derivation change "
            "(then regenerate_goldens.py and commit)"
        )


def test_sharded_route_matches_goldens_too():
    """The goldens bind the parallel engine as well: workers=3 must land on
    the same committed bytes."""
    goldens = load_goldens()
    problem = transpose(Mesh((8, 8)))
    result = make_router("hierarchical").route(problem, seed=0, workers=3)
    h = hashlib.sha256()
    h.update(result.paths.nodes.tobytes())
    h.update(result.paths.offsets.tobytes())
    assert h.hexdigest() == goldens["hierarchical|8x8|seed=0"]
