"""Property-based tests (hypothesis) for the mesh substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import mesh_and_node, mesh_and_pair, meshes

from repro.mesh.mesh import Mesh


@given(mesh_and_node())
def test_coordinate_roundtrip(case):
    mesh, node = case
    coords = mesh.flat_to_coords(node)
    assert int(mesh.coords_to_flat([coords])[0]) == node


@given(mesh_and_pair())
def test_distance_symmetry(case):
    mesh, s, t = case
    assert mesh.distance(s, t) == mesh.distance(t, s)


@given(mesh_and_pair())
def test_distance_identity(case):
    mesh, s, t = case
    assert mesh.distance(s, s) == 0
    assert (mesh.distance(s, t) == 0) == (s == t)


@given(mesh_and_pair(), st.integers(0, 10**9))
def test_triangle_inequality(case, wseed):
    mesh, s, t = case
    w = wseed % mesh.n
    assert mesh.distance(s, t) <= mesh.distance(s, w) + mesh.distance(w, t)


@given(mesh_and_pair(mesh_strategy=meshes(torus=None)))
def test_distance_bounded_by_diameter(case):
    mesh, s, t = case
    assert 0 <= mesh.distance(s, t) <= mesh.diameter


@given(mesh_and_node(mesh_strategy=meshes(torus=None)))
def test_neighbors_symmetric_and_adjacent(case):
    mesh, u = case
    for v in mesh.neighbors(u):
        assert u in mesh.neighbors(v)
        assert mesh.distance(u, v) == 1


@given(mesh_and_node(mesh_strategy=meshes(torus=None)))
def test_degree_bound(case):
    mesh, u = case
    assert 0 <= mesh.degree(u) <= 2 * mesh.d


@settings(max_examples=30)
@given(meshes(max_d=3, max_side=5, torus=None))
def test_edge_id_bijection(mesh):
    ids = set()
    for e in range(mesh.num_edges):
        u, v = mesh.edge_id_to_endpoints(e)
        back = int(mesh.edge_ids(np.asarray([u]), np.asarray([v]))[0])
        assert back == e
        ids.add(e)
    assert len(ids) == mesh.num_edges


@settings(max_examples=30)
@given(meshes(max_d=3, max_side=5, torus=None))
def test_handshake_lemma(mesh):
    total_degree = sum(mesh.degree(v) for v in range(mesh.n))
    assert total_degree == 2 * mesh.num_edges


@given(mesh_and_pair(mesh_strategy=meshes(max_d=2, min_side=2, max_side=6)))
def test_mesh_distance_equals_graph_distance(case):
    import networkx as nx

    mesh, s, t = case
    g = mesh.to_networkx()
    assert mesh.distance(s, t) == nx.shortest_path_length(g, s, t)
