"""Persistence round-trips verified through the oracle hashes.

A stored ``.npz`` is only useful if the seed it records can regenerate
the exact bytes it holds: load -> re-route from the stored seed -> the
:func:`~repro.verify.oracles.replay_hash` must equal the stored result's
:func:`~repro.verify.oracles.result_hash`.  Includes the unseeded case,
where the resolved 128-bit entropy travels as a decimal string.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.io import load_result, save_result
from repro.mesh.mesh import Mesh
from repro.routing.registry import make_router
from repro.verify.oracles import replay_hash, result_hash
from repro.workloads import random_pairs
from repro.workloads.permutations import transpose


@pytest.mark.parametrize("name", ["hierarchical", "valiant", "dim-order"])
def test_round_trip_replays_to_identical_bytes(tmp_path, mesh8, name):
    router = make_router(name)
    result = router.route(transpose(mesh8), seed=7)
    path = tmp_path / "result.npz"
    save_result(path, result)

    loaded = load_result(path)
    assert loaded.router_name == name
    assert loaded.seed == result.seed
    assert result_hash(loaded) == result_hash(result)
    # the acid test: the stored seed regenerates the stored bytes
    assert replay_hash(
        make_router(loaded.router_name), loaded.problem, loaded.seed
    ) == result_hash(loaded)


def test_round_trip_unseeded_128_bit_entropy(tmp_path, mesh8):
    router = make_router("valiant")
    result = router.route(random_pairs(mesh8, 16, seed=3), seed=None)
    # an unseeded route resolves fresh OS entropy and records it
    assert result.seed is not None
    assert result.seed > np.iinfo(np.int64).max  # 128-bit: needs the string path
    path = tmp_path / "unseeded.npz"
    save_result(path, result)

    loaded = load_result(path)
    assert loaded.seed == result.seed
    assert replay_hash(
        make_router(loaded.router_name), loaded.problem, loaded.seed
    ) == result_hash(result)


def test_round_trip_torus(tmp_path):
    mesh = Mesh((6, 6), torus=True)
    router = make_router("dim-order")
    result = router.route(random_pairs(mesh, 12, seed=1), seed=5)
    path = tmp_path / "torus.npz"
    save_result(path, result)
    loaded = load_result(path)
    assert loaded.problem.mesh.torus
    assert loaded.problem.mesh.sides == (6, 6)
    assert replay_hash(
        make_router(loaded.router_name), loaded.problem, loaded.seed
    ) == result_hash(loaded)


def test_legacy_int64_seed_files_still_load(tmp_path, mesh8):
    router = make_router("hierarchical")
    result = router.route(transpose(mesh8), seed=7)
    path = tmp_path / "legacy.npz"
    save_result(path, result)
    # rewrite the seed field as the pre-string int64 format
    with np.load(path, allow_pickle=False) as data:
        fields = {k: data[k] for k in data.files}
    fields["seed"] = np.asarray([int(result.seed)], dtype=np.int64)
    np.savez_compressed(path, **fields)

    loaded = load_result(path)
    assert loaded.seed == result.seed
    assert replay_hash(
        make_router(loaded.router_name), loaded.problem, loaded.seed
    ) == result_hash(loaded)


def test_sharded_route_replays_from_stored_seed(tmp_path, mesh8):
    # bytes stored from a serial run must replay under any worker count
    router = make_router("hierarchical")
    result = router.route(random_pairs(mesh8, 24, seed=2), seed=11)
    path = tmp_path / "sharded.npz"
    save_result(path, result)
    loaded = load_result(path)
    from repro.parallel import route_sharded
    from repro.parallel.executor import SerialExecutor

    sharded = route_sharded(
        make_router(loaded.router_name),
        loaded.problem,
        loaded.seed,
        workers=4,
        executor=SerialExecutor(),
    )
    assert result_hash(sharded) == result_hash(loaded)
