"""Smoke tests: every example script runs end to end on small inputs."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [script] + argv
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", ["8"], capsys)
    assert "congestion C" in out
    assert "Router comparison" in out
    assert "hierarchical" in out


def test_data_management_locality(capsys):
    out = _run("data_management_locality.py", ["16", "2"], capsys)
    assert "Locality-sensitive data management" in out
    assert "access-tree" in out


def test_online_adversary(capsys):
    out = _run("online_adversary.py", ["16"], capsys)
    assert "Online adversary" in out
    assert "forced_C(XY)" in out


def test_torus_and_dimensions(capsys):
    out = _run("torus_and_dimensions.py", [], capsys)
    assert "Stretch across dimensions" in out
    assert "torus" in out
    assert "Multishift decomposition" in out


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "data_management_locality.py", "online_adversary.py",
     "torus_and_dimensions.py", "online_saturation.py",
     "expected_congestion_map.py"],
)
def test_examples_exist_and_documented(script):
    path = EXAMPLES / script
    assert path.exists()
    text = path.read_text()
    assert text.startswith("#!/usr/bin/env python")
    assert '"""' in text  # module docstring


def test_online_saturation(capsys):
    out = _run("online_saturation.py", ["8"], capsys)
    assert "Uniform random destinations" in out
    assert "Nearest-neighbor destinations" in out
    assert "hierarchical" in out


def test_expected_congestion_map(capsys):
    out = _run("expected_congestion_map.py", ["8"], capsys)
    assert "Exact expected edge loads" in out
    assert "Lemma 3.8 ceiling" in out
    assert "agreement on loaded edges" in out
