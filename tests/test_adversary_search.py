"""Tests for the adversarial workload search."""

import numpy as np
import pytest

from repro.analysis.adversary_search import adversarial_ratio_search
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.baselines import DimensionOrderRouter


@pytest.fixture(scope="module")
def mesh():
    return Mesh((8, 8))


class TestSearch:
    def test_trajectory_monotone(self, mesh):
        res = adversarial_ratio_search(
            HierarchicalRouter(), mesh, iterations=15, seeds=(0,)
        )
        traj = res["trajectory"]
        assert all(a <= b + 1e-12 for a, b in zip(traj, traj[1:]))
        assert res["best_ratio"] == traj[-1]

    def test_permutation_mode_stays_permutation(self, mesh):
        res = adversarial_ratio_search(
            HierarchicalRouter(), mesh, iterations=10, seeds=(0,),
            mode="permutation",
        )
        prob = res["problem"]
        # permutations have all-distinct sources and destinations
        assert np.unique(prob.dests).size == prob.num_packets
        assert np.unique(prob.sources).size == prob.num_packets

    def test_invalid_args(self, mesh):
        with pytest.raises(ValueError):
            adversarial_ratio_search(HierarchicalRouter(), mesh, iterations=0)
        with pytest.raises(ValueError):
            adversarial_ratio_search(
                HierarchicalRouter(), mesh, iterations=5, mode="nope"
            )

    def test_hierarchical_resists_the_adversary(self, mesh):
        """After a real search budget the ratio stays a small multiple of
        log2 n — the router has no easily-findable bad workload."""
        res = adversarial_ratio_search(
            HierarchicalRouter(), mesh, iterations=60, seeds=(0, 1)
        )
        assert res["best_ratio"] <= 1.5 * res["log2n"]

    def test_search_has_teeth_against_deterministic(self, mesh):
        """The same adversary finds worse workloads for deterministic XY
        than for the randomized hierarchical router."""
        xy = adversarial_ratio_search(
            DimensionOrderRouter(), mesh, iterations=200, seeds=(0,),
            rng_seed=1,
        )
        hier = adversarial_ratio_search(
            HierarchicalRouter(), mesh, iterations=60, seeds=(0, 1), rng_seed=1
        )
        assert xy["best_ratio"] > hier["best_ratio"]
