"""Tests for result persistence and CSV export."""

import numpy as np
import pytest

from repro.core.path_selection import HierarchicalRouter
from repro.io import load_result, rows_from_csv, rows_to_csv, save_result
from repro.mesh.mesh import Mesh
from repro.workloads.generators import random_pairs


class TestResultRoundtrip:
    def test_roundtrip(self, tmp_path):
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, 20, seed=0)
        result = HierarchicalRouter().route(problem, seed=5)
        file = tmp_path / "result.npz"
        save_result(file, result)
        loaded = load_result(file)
        assert loaded.problem.mesh == mesh
        assert loaded.problem.name == problem.name
        assert loaded.router_name == result.router_name
        assert loaded.seed == 5
        np.testing.assert_array_equal(loaded.problem.sources, problem.sources)
        np.testing.assert_array_equal(loaded.problem.dests, problem.dests)
        for a, b in zip(loaded.paths, result.paths):
            np.testing.assert_array_equal(a, b)

    def test_metrics_preserved(self, tmp_path):
        mesh = Mesh((8, 8))
        result = HierarchicalRouter().route(random_pairs(mesh, 15, seed=1), seed=2)
        file = tmp_path / "r.npz"
        save_result(file, result)
        loaded = load_result(file)
        assert loaded.congestion == result.congestion
        assert loaded.dilation == result.dilation
        assert loaded.stretch == result.stretch
        assert loaded.validate()

    def test_torus_flag_roundtrip(self, tmp_path):
        mesh = Mesh((8, 8), torus=True)
        result = HierarchicalRouter().route(random_pairs(mesh, 5, seed=2), seed=0)
        file = tmp_path / "t.npz"
        save_result(file, result)
        assert load_result(file).problem.mesh.torus

    def test_none_seed_roundtrip(self, tmp_path):
        # route(seed=None) resolves fresh entropy and records it on the
        # result (a 128-bit int), so the run is replayable; a result whose
        # seed really is None still round-trips as None.
        mesh = Mesh((4, 4))
        result = HierarchicalRouter().route(random_pairs(mesh, 3, seed=3), seed=None)
        assert result.seed is not None
        file = tmp_path / "n.npz"
        save_result(file, result)
        assert load_result(file).seed == result.seed

        from repro.routing.base import RoutingResult

        bare = RoutingResult(result.problem, result.paths, "x", None)
        save_result(file, bare)
        assert load_result(file).seed is None

    def test_trivial_paths_roundtrip(self, tmp_path):
        from repro.routing.base import RoutingProblem, RoutingResult

        mesh = Mesh((4, 4))
        problem = RoutingProblem(mesh, np.asarray([7]), np.asarray([7]))
        result = RoutingResult(problem, [np.asarray([7])], "x")
        file = tmp_path / "triv.npz"
        save_result(file, result)
        loaded = load_result(file)
        assert loaded.paths[0].tolist() == [7]

    def test_zero_packet_roundtrip(self, tmp_path):
        from repro.routing.base import RoutingProblem, RoutingResult

        mesh = Mesh((4, 4))
        empty = np.asarray([], dtype=np.int64)
        problem = RoutingProblem(mesh, empty, empty, "nothing")
        result = RoutingResult(problem, [], "x", seed=3)
        file = tmp_path / "zero.npz"
        save_result(file, result)
        loaded = load_result(file)
        assert loaded.problem.num_packets == 0
        assert len(loaded.paths) == 0
        assert loaded.paths == result.paths
        assert loaded.seed == 3

    def test_self_pairs_roundtrip(self, tmp_path):
        # s == t packets mixed with real ones: single-node paths survive.
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, 12, seed=4)
        dests = problem.dests.copy()
        dests[:4] = problem.sources[:4]
        from repro.routing.base import RoutingProblem

        problem = RoutingProblem(mesh, problem.sources, dests, "self-pairs")
        result = HierarchicalRouter().route(problem, seed=0)
        file = tmp_path / "self.npz"
        save_result(file, result)
        loaded = load_result(file)
        assert loaded.paths == result.paths
        for i in range(4):
            assert loaded.paths[i].tolist() == [int(problem.sources[i])]

    def test_torus_pathset_roundtrip(self, tmp_path):
        mesh = Mesh((8, 8), torus=True)
        result = HierarchicalRouter().route(random_pairs(mesh, 10, seed=6), seed=1)
        file = tmp_path / "torus.npz"
        save_result(file, result)
        loaded = load_result(file)
        assert loaded.problem.mesh == mesh
        # array-for-array CSR equality, not just per-path value equality
        assert loaded.paths == result.paths
        np.testing.assert_array_equal(loaded.paths.nodes, result.paths.nodes)
        np.testing.assert_array_equal(loaded.paths.offsets, result.paths.offsets)
        assert loaded.validate()


class TestCsv:
    def test_roundtrip(self, tmp_path):
        rows = [
            {"router": "a", "C": 3, "stretch": 1.5},
            {"router": "b", "C": 7, "stretch": 2.0},
        ]
        file = tmp_path / "rows.csv"
        rows_to_csv(file, rows)
        back = rows_from_csv(file)
        assert back == rows

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            rows_to_csv(tmp_path / "x.csv", [])

    def test_extra_fields_ignored(self, tmp_path):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4, "c": 5}]
        file = tmp_path / "rows.csv"
        rows_to_csv(file, rows)
        back = rows_from_csv(file)
        assert all("c" not in r for r in back)
