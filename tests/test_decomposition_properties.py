"""Property-based tests for the decomposition and bridge arithmetic.

The arithmetic (cell-index) implementations are certified against geometry:
whatever hypothesis draws, the O(1)-per-level queries must agree with brute
force over the explicit enumeration.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bridges import common_ancestor_2d, common_ancestor_brute
from repro.core.decomposition import Decomposition
from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh


@st.composite
def dec_and_box(draw, max_d: int = 3, torus=False):
    d = draw(st.integers(1, max_d))
    k = draw(st.integers(1, 3))
    scheme = draw(st.sampled_from(["paper2d", "multishift"]))
    mesh = Mesh(((1 << k),) * d, torus=torus)
    dec = Decomposition(mesh, scheme=scheme)
    lo, hi = [], []
    for m_i in mesh.sides:
        a = draw(st.integers(0, m_i - 1))
        b = draw(st.integers(a, m_i - 1))
        lo.append(a)
        hi.append(b)
    return dec, Submesh(mesh, lo, hi)


@settings(max_examples=60, deadline=None)
@given(dec_and_box())
def test_containing_regulars_matches_brute_force(case):
    dec, box = case
    for level in range(dec.k + 1):
        fast = {r.box for r in dec.containing_regulars(box, level)}
        brute = {
            r.box for r in dec.at_level(level) if r.box.contains_submesh(box)
        }
        assert fast == brute


@settings(max_examples=60, deadline=None)
@given(dec_and_box(torus=True))
def test_containing_regulars_torus_results_contain(case):
    dec, box = case
    for level in range(dec.k + 1):
        for reg in dec.containing_regulars(box, level):
            nodes = set(box.nodes().tolist())
            reg_nodes = set(reg.box.nodes().tolist())
            assert nodes <= reg_nodes


@settings(max_examples=50, deadline=None)
@given(dec_and_box())
def test_type1_ancestors_nested(case):
    dec, box = case
    node = int(box.nodes()[0])
    prev = dec.type1_ancestor(node, 0)
    for h in range(1, dec.k + 1):
        cur = dec.type1_ancestor(node, h)
        assert cur.contains_submesh(prev)
        prev = cur


@settings(max_examples=50, deadline=None)
@given(dec_and_box())
def test_type1_partition_per_level(case):
    dec, _ = case
    n = dec.mesh.n
    for level in range(dec.k + 1):
        covered = np.zeros(n, dtype=int)
        for reg in dec.type1_at_level(level):
            covered[reg.box.nodes()] += 1
        assert np.all(covered == 1)


@settings(max_examples=50, deadline=None)
@given(dec_and_box())
def test_shifted_types_tile_within_type(case):
    """Each shifted type covers every node exactly once per level (with
    paper2d corner discards, mesh corners may be uncovered)."""
    dec, _ = case
    n = dec.mesh.n
    for level in range(1, dec.k + 1):
        for j in range(2, dec.num_types(level) + 1):
            covered = np.zeros(n, dtype=int)
            for reg in dec.shifted_at_level(level, j):
                covered[reg.box.nodes()] += 1
            assert covered.max() <= 1
            if dec.scheme == "multishift" or dec.mesh.torus:
                assert covered.min() == 1


@settings(max_examples=40, deadline=None)
@given(dec_and_box(max_d=2), st.integers(0, 10**6))
def test_common_ancestor_matches_brute(case, pairseed):
    dec, _ = case
    mesh = dec.mesh
    rng = np.random.default_rng(pairseed)
    s, t = (int(x) for x in rng.integers(mesh.n, size=2))
    if s == t:
        t = (t + 1) % mesh.n
    h_fast, fast = common_ancestor_2d(dec, s, t)
    h_brute, _ = common_ancestor_brute(dec, s, t)
    assert h_fast == h_brute
    assert fast.box.contains_submesh(dec.type1_ancestor(s, h_fast - 1))
    assert fast.box.contains_submesh(dec.type1_ancestor(t, h_fast - 1))
