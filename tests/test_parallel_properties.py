"""Property-based suite for the sharded routing engine.

The central claim — ``Router.route(workers=N)`` is byte-identical to the
serial engine for every ``N`` — is exactly the paper's obliviousness
property made operational: packet *i*'s path depends only on ``(seed, i,
s_i, t_i)``, so where the packet was routed cannot matter.  The suite
checks it three ways:

* hypothesis sweeps over workloads/seeds/shard counts on the in-process
  :class:`~repro.parallel.executor.SerialExecutor` (sharding math without
  process-spawn cost);
* a full registry x mesh matrix on a *real* fork process pool;
* the seed-derivation layer is pinned bit-for-bit against numpy's
  ``SeedSequence`` — the contract that makes per-packet streams
  shard-position-free in the first place.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import BudgetParams
from repro.core.path_selection import HierarchicalRouter
from repro.core.randomness import (
    packet_seed_sequence,
    packet_stream,
    packet_uniforms,
    resolve_entropy,
    spawn_state,
)
from repro.faults.model import FaultModel
from repro.faults.router import FaultAwareRouter
from repro.mesh.mesh import Mesh
from repro.parallel import (
    SerialExecutor,
    make_executor,
    resolve_workers,
    route_sharded,
    shard_bounds,
)
from repro.parallel.worker import prepare_router
from repro.routing.base import RoutingProblem
from repro.routing.registry import available_routers, make_router
from repro.workloads.generators import random_pairs
from repro.workloads.permutations import transpose


def digest(paths) -> str:
    h = hashlib.sha256()
    h.update(paths.nodes.tobytes())
    h.update(paths.offsets.tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Seed derivation: the vectorised SeedSequence replica is bit-exact.
# ---------------------------------------------------------------------------

entropies = st.one_of(
    st.integers(0, 2**32 - 1),
    st.integers(0, 2**128 - 1),
)


class TestSeedDerivation:
    @given(entropies, st.integers(0, 2**32 - 1))
    def test_spawn_state_matches_numpy(self, entropy, index):
        got = spawn_state(entropy, np.asarray([index], dtype=np.uint64), 4)[0]
        want = np.random.SeedSequence(entropy, spawn_key=(index,)).generate_state(4)
        np.testing.assert_array_equal(got, want)

    @given(entropies, st.integers(0, 2**20), st.integers(0, 2**32 - 1))
    def test_spawn_state_with_prefix_matches_numpy(self, entropy, index, pfx):
        got = spawn_state(
            entropy, np.asarray([index], dtype=np.uint64), 4, prefix=(pfx,)
        )[0]
        want = np.random.SeedSequence(
            entropy, spawn_key=(pfx, index)
        ).generate_state(4)
        np.testing.assert_array_equal(got, want)

    @given(entropies, st.integers(0, 1000))
    def test_two_element_prefix(self, entropy, index):
        got = spawn_state(
            entropy, np.asarray([index], dtype=np.uint64), 8, prefix=(4, 9)
        )[0]
        want = np.random.SeedSequence(
            entropy, spawn_key=(4, 9, index)
        ).generate_state(8)
        np.testing.assert_array_equal(got, want)

    @given(entropies, st.integers(0, 2**16), st.integers(1, 6))
    def test_packet_uniforms_match_spawned_generate_state(self, entropy, start, n):
        indices = np.arange(start, start + 3, dtype=np.int64)
        got = packet_uniforms(entropy, indices, n)
        for row, i in zip(got, indices.tolist()):
            ss = np.random.SeedSequence(entropy, spawn_key=(i,))
            want = (ss.generate_state(n, dtype=np.uint64) >> 11) * 2.0**-53
            np.testing.assert_array_equal(row, want)

    @given(st.integers(0, 2**64))
    def test_uniforms_are_position_free(self, entropy):
        """The shard-invariance kernel: uniforms for global index i do not
        depend on which slice of indices they were computed in."""
        whole = packet_uniforms(entropy, np.arange(20), 3)
        part = packet_uniforms(entropy, np.arange(13, 20), 3)
        np.testing.assert_array_equal(whole[13:], part)

    def test_packet_stream_matches_spawn(self):
        a = packet_stream(42, 7).random(5)
        b = np.random.default_rng(
            np.random.SeedSequence(42, spawn_key=(7,))
        ).random(5)
        np.testing.assert_array_equal(a, b)

    def test_resolve_entropy(self):
        assert resolve_entropy(17) == 17
        assert resolve_entropy(None) != resolve_entropy(None)  # fresh entropy
        with pytest.raises(ValueError):
            resolve_entropy(-1)
        with pytest.raises(TypeError):
            resolve_entropy(1.5)

    def test_index_guards_agree_between_scalar_and_vectorised(self):
        """Spawn keys are 32-bit words: both derivation paths reject out-of-
        range packet indices with the same message instead of silently
        wrapping (which would alias two packets onto one stream)."""
        for bad in (2**32, -1):
            with pytest.raises(ValueError, match="fit in 32 bits"):
                packet_seed_sequence(0, bad)
            with pytest.raises(ValueError, match="fit in 32 bits"):
                spawn_state(0, np.asarray([bad], dtype=np.int64), 4)
        with pytest.raises(ValueError, match="fit in 32 bits"):
            spawn_state(0, np.asarray([2**40], dtype=np.uint64), 4)

    def test_boundary_index_matches_numpy(self):
        """The largest legal index, 2^32 - 1, still derives identically on
        the scalar and vectorised paths."""
        top = 2**32 - 1
        got = spawn_state(5, np.asarray([top], dtype=np.uint64), 4)[0]
        want = packet_seed_sequence(5, top).generate_state(4)
        np.testing.assert_array_equal(got, want)


# ---------------------------------------------------------------------------
# Sharding units.
# ---------------------------------------------------------------------------

class TestShardBounds:
    @given(st.integers(0, 500), st.integers(1, 40))
    def test_partition_properties(self, n, workers):
        bounds = shard_bounds(n, workers)
        # covers [0, n) contiguously, in order
        cursor = 0
        for a, b in bounds:
            assert a == cursor and b > a
            cursor = b
        assert cursor == n
        if n:
            sizes = [b - a for a, b in bounds]
            assert len(bounds) == min(workers, n)
            assert max(sizes) - min(sizes) <= 1

    def test_zero_packets(self):
        assert shard_bounds(0, 4) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)
        with pytest.raises(ValueError):
            shard_bounds(5, 0)


class TestExecutors:
    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_serial_executor_maps_in_order(self):
        with SerialExecutor() as ex:
            assert ex.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_make_executor_one_worker_is_serial(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_prepare_router_strips_parent_state(self):
        from repro.obs import Profiler

        router = HierarchicalRouter(profiler=Profiler())
        payload = prepare_router(router)
        assert payload.profiler is None
        assert router.profiler is not None  # the original is untouched

    def test_non_oblivious_router_rejected(self):
        router = make_router("greedy-offline")
        problem = transpose(Mesh((4, 4)))
        with pytest.raises(ValueError, match="non-oblivious"):
            route_sharded(router, problem, seed=0, workers=2)


# ---------------------------------------------------------------------------
# Shard invariance: the tentpole property.
# ---------------------------------------------------------------------------

class TestShardInvariance:
    @given(
        side=st.sampled_from([4, 8, 16]),
        seed=st.integers(0, 2**63),
        packets=st.integers(1, 60),
        workers=st.sampled_from([2, 3, 7]),
    )
    @settings(max_examples=25, deadline=None)
    def test_hierarchical_any_shard_count(self, side, seed, packets, workers):
        mesh = Mesh((side, side))
        problem = random_pairs(mesh, packets, seed=seed % 2**32)
        router = HierarchicalRouter()
        serial = router.route(problem, seed=seed, workers=1)
        sharded = route_sharded(
            router, problem, seed=seed, workers=workers, executor=SerialExecutor()
        )
        assert digest(sharded.paths) == digest(serial.paths)
        assert sharded.congestion == serial.congestion
        assert sharded.stretch == serial.stretch

    @pytest.mark.parametrize(
        "name", [n for n in available_routers() if n != "greedy-offline"]
    )
    @pytest.mark.parametrize("workers", [2, 3, 7])
    def test_every_registry_router_serial_executor(self, name, workers):
        mesh = Mesh((8, 8))
        problem = transpose(mesh)
        router = make_router(name)
        serial = router.route(problem, seed=11, workers=1)
        sharded = route_sharded(
            router, problem, seed=11, workers=workers, executor=SerialExecutor()
        )
        assert digest(sharded.paths) == digest(serial.paths)

    @pytest.mark.parametrize(
        "name", [n for n in available_routers() if n != "greedy-offline"]
    )
    @pytest.mark.parametrize("m", [8, 16])
    def test_every_registry_router_process_pool(self, name, m):
        """The acceptance matrix: real fork pool, workers=4, 8x8 and 16x16."""
        mesh = Mesh((m, m))
        problem = transpose(mesh)
        router = make_router(name)
        serial = router.route(problem, seed=3, workers=1)
        pooled = router.route(problem, seed=3, workers=4)
        assert digest(pooled.paths) == digest(serial.paths)
        assert pooled.seed == serial.seed

    def test_workers_beyond_packets(self):
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, 3, seed=0)
        router = HierarchicalRouter()
        serial = router.route(problem, seed=5, workers=1)
        sharded = route_sharded(
            router, problem, seed=5, workers=64, executor=SerialExecutor()
        )
        assert digest(sharded.paths) == digest(serial.paths)

    def test_seed_none_is_internally_consistent(self):
        """seed=None resolves once in the parent: every shard sees the same
        entropy, and the result records it for replay."""
        mesh = Mesh((8, 8))
        problem = transpose(mesh)
        router = HierarchicalRouter()
        sharded = route_sharded(
            router, problem, seed=None, workers=3, executor=SerialExecutor()
        )
        replay = router.route(problem, seed=sharded.seed, workers=1)
        assert digest(sharded.paths) == digest(replay.paths)

    def test_packet_offset_shifts_streams(self):
        """A shard routed standalone with its global offset reproduces the
        corresponding rows of the full batch."""
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, 40, seed=1)
        router = HierarchicalRouter()
        whole = router.route(problem, seed=9)
        tail = problem.subproblem(range(25, 40), name=problem.name)
        part = router.route(tail, seed=9, packet_offset=25)
        for i in range(15):
            assert part.paths[i].tolist() == whole.paths[25 + i].tolist()


class TestFaultSharding:
    @pytest.mark.parametrize("workers", [2, 3, 7])
    def test_fault_drops_merge_identically(self, workers):
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, 80, seed=2)
        faults = FaultModel(mesh, p=0.25, seed=4)
        serial = FaultAwareRouter(HierarchicalRouter(), faults)
        sharded = FaultAwareRouter(HierarchicalRouter(), faults)
        a = serial.route(problem, seed=6, workers=1)
        b = route_sharded(
            sharded, problem, seed=6, workers=workers, executor=SerialExecutor()
        )
        assert digest(a.paths) == digest(b.paths)
        assert a.problem.num_packets == b.problem.num_packets
        np.testing.assert_array_equal(a.problem.sources, b.problem.sources)
        np.testing.assert_array_equal(a.problem.dests, b.problem.dests)
        assert (serial.resamples, serial.detours, serial.unroutable) == (
            sharded.resamples,
            sharded.detours,
            sharded.unroutable,
        )

    def test_fault_drops_process_pool(self):
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, 80, seed=2)
        faults = FaultModel(mesh, p=0.25, seed=4)
        a = FaultAwareRouter(HierarchicalRouter(), faults).route(
            problem, seed=6, workers=1
        )
        b = FaultAwareRouter(HierarchicalRouter(), faults).route(
            problem, seed=6, workers=4
        )
        assert digest(a.paths) == digest(b.paths)
        np.testing.assert_array_equal(a.problem.sources, b.problem.sources)


class TestBudgetSharding:
    """Satellite property: the bit ledger is shard-invariant.

    Planned costs are per-packet deterministic, so the merged shard
    ledgers must equal the serial ledger field-for-field — packets,
    metered counts, total and max bits, fallback tallies — for every
    worker count, budget mode and cap."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        packets=st.integers(1, 60),
        workers=st.sampled_from([2, 3, 5, 9]),
        mode=st.sampled_from(["measure", "enforce"]),
        bits=st.one_of(st.none(), st.integers(0, 48)),
    )
    @settings(max_examples=30, deadline=None)
    def test_ledger_shard_invariant(self, seed, packets, workers, mode, bits):
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, packets, seed=seed)
        budget = BudgetParams(mode=mode, bits=bits)
        router = HierarchicalRouter()
        serial = router.route(problem, seed=seed, workers=1, budget=budget)
        sharded = route_sharded(
            router, problem, seed=seed, workers=workers,
            executor=SerialExecutor(), budget=budget,
        )
        assert digest(sharded.paths) == digest(serial.paths)
        assert sharded.budget.to_dict() == serial.budget.to_dict()

    @pytest.mark.parametrize("workers", [2, 3, 7])
    def test_faulty_ledger_shard_invariant(self, workers):
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, 60, seed=2)
        faults = FaultModel(mesh, p=0.15, seed=4)
        budget = BudgetParams(mode="enforce", bits=20)
        a = FaultAwareRouter(HierarchicalRouter(), faults).route(
            problem, seed=6, workers=1, budget=budget
        )
        b = route_sharded(
            FaultAwareRouter(HierarchicalRouter(), faults), problem, seed=6,
            workers=workers, executor=SerialExecutor(), budget=budget,
        )
        assert digest(a.paths) == digest(b.paths)
        assert a.budget.to_dict() == b.budget.to_dict()
        assert a.budget.fallbacks > 0  # the cap actually exercised the ladder

    def test_ledger_survives_process_pool(self):
        mesh = Mesh((8, 8))
        problem = transpose(mesh)
        router = HierarchicalRouter()
        serial = router.route(problem, seed=3, workers=1, budget=16)
        pooled = router.route(problem, seed=3, workers=4, budget=16)
        assert digest(pooled.paths) == digest(serial.paths)
        assert pooled.budget.to_dict() == serial.budget.to_dict()


class TestOnlineSharding:
    @staticmethod
    def _key(s):
        return (
            s.steps, s.injected, s.delivered, s.mean_latency, s.p95_latency,
            s.max_latency, s.mean_distance, s.max_queue, s.throughput,
            s.latencies.tobytes(), s.distances.tobytes(), s.dropped,
            s.reroutes, s.blocked_steps, s.resamples, s.detours,
        )

    @pytest.mark.parametrize("workers", [2, 3])
    def test_online_stats_shard_invariant(self, workers):
        from repro.simulation.online import simulate_online

        mesh = Mesh((8, 8))
        base = self._key(
            simulate_online(
                HierarchicalRouter(), mesh, rate=0.15, steps=30, seed=7, workers=1
            )
        )
        got = self._key(
            simulate_online(
                HierarchicalRouter(), mesh, rate=0.15, steps=30, seed=7,
                workers=workers,
            )
        )
        assert got == base

    def test_online_faulty_shard_invariant(self):
        from repro.simulation.online import simulate_online

        mesh = Mesh((8, 8))
        faults = FaultModel(mesh, "dynamic", p=0.15, seed=3)
        runs = [
            self._key(
                simulate_online(
                    HierarchicalRouter(), mesh, rate=0.15, steps=30, seed=7,
                    faults=faults, workers=w,
                )
            )
            for w in (1, 2)
        ]
        assert runs[0] == runs[1]
        assert runs[0][11] > 0  # drops actually exercised


class TestTelemetryMerge:
    def test_profiler_snapshots_fold_into_parent(self):
        from repro.obs import Profiler

        mesh = Mesh((16, 16))
        problem = transpose(mesh)
        prof = Profiler()
        router = HierarchicalRouter(profiler=prof)
        route_sharded(
            router, problem, seed=0, workers=3, executor=SerialExecutor()
        )
        assert prof.counters["parallel.shards"] == 3
        assert prof.counters["engine.edges"] > 0
        assert "parallel.route" in prof.stages

    def test_bits_log_merges_in_shard_order(self):
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, 30, seed=1)
        serial = HierarchicalRouter(bit_mode="fresh")
        serial.route(problem, seed=4, workers=1)
        sharded = HierarchicalRouter(bit_mode="fresh")
        route_sharded(
            sharded, problem, seed=4, workers=3, executor=SerialExecutor()
        )
        assert serial.bits_log == sharded.bits_log


# ---------------------------------------------------------------------------
# Nightly-only exhaustive sweeps (the `deep` marker)
# ---------------------------------------------------------------------------

@pytest.mark.deep
class TestShardInvarianceDeep:
    """Hypothesis with a nightly-sized budget plus wide real-pool sweeps.

    Tier-1 proves the property on small samples; these runs chase the
    tail: every router x several genuine fork-pool widths, and hundreds
    of randomized (mesh, seed, packets, workers) draws.
    """

    @given(
        side=st.sampled_from([4, 8, 16]),
        seed=st.integers(0, 2**63),
        packets=st.integers(1, 120),
        workers=st.integers(2, 12),
    )
    @settings(max_examples=200, deadline=None)
    def test_hierarchical_shard_sweep(self, side, seed, packets, workers):
        mesh = Mesh((side, side))
        problem = random_pairs(mesh, packets, seed=seed % 2**32)
        router = HierarchicalRouter()
        serial = router.route(problem, seed=seed, workers=1)
        sharded = route_sharded(
            router, problem, seed=seed, workers=workers, executor=SerialExecutor()
        )
        assert digest(sharded.paths) == digest(serial.paths)

    @pytest.mark.parametrize(
        "name", [n for n in available_routers() if n != "greedy-offline"]
    )
    @pytest.mark.parametrize("workers", [2, 3, 5, 8])
    def test_every_registry_router_wide_process_pools(self, name, workers):
        mesh = Mesh((8, 8))
        problem = transpose(mesh)
        router = make_router(name)
        serial = router.route(problem, seed=17, workers=1)
        pooled = router.route(problem, seed=17, workers=workers)
        assert digest(pooled.paths) == digest(serial.paths)
