"""Tests for the synchronous store-and-forward scheduler."""

import numpy as np
import pytest

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.mesh.paths import dimension_order_path
from repro.routing.baselines import DimensionOrderRouter
from repro.simulation.scheduler import simulate
from repro.workloads.generators import random_pairs
from repro.workloads.permutations import transpose


@pytest.fixture
def mesh():
    return Mesh((8, 8))


class TestBasics:
    def test_single_packet_takes_its_length(self, mesh):
        p = dimension_order_path(mesh, 0, 63)
        res = simulate(mesh, [p])
        assert res.makespan == len(p) - 1
        assert res.delivery_times[0] == res.makespan

    def test_no_packets(self, mesh):
        res = simulate(mesh, [])
        assert res.makespan == 0

    def test_stationary_packet(self, mesh):
        res = simulate(mesh, [np.asarray([5])])
        assert res.makespan == 0
        assert res.delivery_times[0] == 0

    def test_two_packets_share_edge(self, mesh):
        p = np.asarray([0, 1])
        res = simulate(mesh, [p, p])
        assert res.makespan == 2  # one per step over the shared edge

    def test_disjoint_packets_parallel(self, mesh):
        a = np.asarray([0, 1])
        b = np.asarray([62, 63])
        res = simulate(mesh, [a, b])
        assert res.makespan == 1

    def test_invalid_policy(self, mesh):
        with pytest.raises(ValueError):
            simulate(mesh, [np.asarray([0, 1])], policy="nope")

    def test_max_steps_guard(self, mesh):
        p = dimension_order_path(mesh, 0, 63)
        with pytest.raises(RuntimeError):
            simulate(mesh, [p], max_steps=3)


class TestBounds:
    @pytest.mark.parametrize("policy", ["farthest-first", "fifo", "random"])
    def test_makespan_bounds(self, mesh, policy):
        problem = random_pairs(mesh, 60, seed=0)
        result = HierarchicalRouter().route(problem, seed=1)
        sim = simulate(mesh, result, policy=policy, seed=2)
        assert sim.makespan >= max(sim.congestion, sim.dilation)
        assert sim.makespan <= sim.congestion * sim.dilation + sim.dilation
        assert np.all(sim.delivery_times <= sim.makespan)

    def test_every_packet_delivered_once(self, mesh):
        problem = random_pairs(mesh, 40, seed=3)
        result = DimensionOrderRouter().route(problem, seed=0)
        sim = simulate(mesh, result)
        lengths = np.asarray([len(p) - 1 for p in result.paths])
        assert np.all(sim.delivery_times >= lengths)

    def test_cd_metrics_match_routing_result(self, mesh):
        problem = transpose(mesh)
        result = HierarchicalRouter().route(problem, seed=4)
        sim = simulate(mesh, result)
        assert sim.congestion == result.congestion
        assert sim.dilation == result.dilation
        assert sim.cd_bound == result.congestion + result.dilation

    def test_efficiency_range(self, mesh):
        problem = random_pairs(mesh, 30, seed=5)
        result = HierarchicalRouter().route(problem, seed=6)
        sim = simulate(mesh, result)
        assert 0.4 <= sim.efficiency  # >= 0.5 up to rounding of tiny cases

    def test_summary(self, mesh):
        sim = simulate(mesh, [np.asarray([0, 1])])
        assert "makespan=1" in sim.summary()


class TestPolicies:
    def test_fifo_priority_order(self, mesh):
        """Under FIFO (by index), the lower-index packet wins the edge."""
        p = np.asarray([0, 1])
        res = simulate(mesh, [p, p], policy="fifo")
        assert res.delivery_times[0] == 1
        assert res.delivery_times[1] == 2

    def test_farthest_first_prefers_long_paths(self, mesh):
        long = dimension_order_path(mesh, 0, 63)
        short = long[:2].copy()
        res = simulate(mesh, [short, long], policy="farthest-first")
        # The long packet wins the first shared edge.
        assert res.delivery_times[1] == len(long) - 1

    def test_random_policy_seeded(self, mesh):
        problem = random_pairs(mesh, 30, seed=7)
        result = HierarchicalRouter().route(problem, seed=8)
        a = simulate(mesh, result, policy="random", seed=1)
        b = simulate(mesh, result, policy="random", seed=1)
        assert a.makespan == b.makespan
        np.testing.assert_array_equal(a.delivery_times, b.delivery_times)


class TestRandomDelayPolicy:
    def test_delivers_everything(self, mesh):
        problem = random_pairs(mesh, 50, seed=9)
        result = HierarchicalRouter().route(problem, seed=10)
        sim = simulate(mesh, result, policy="random-delay", seed=11)
        assert np.all(sim.delivery_times >= 0)
        assert sim.makespan >= max(sim.congestion, sim.dilation)
        # delays are bounded by C, so makespan <= 2C + schedule length
        assert sim.makespan <= 3 * sim.cd_bound + 8

    def test_reproducible(self, mesh):
        problem = random_pairs(mesh, 30, seed=12)
        result = HierarchicalRouter().route(problem, seed=13)
        a = simulate(mesh, result, policy="random-delay", seed=1)
        b = simulate(mesh, result, policy="random-delay", seed=1)
        assert a.makespan == b.makespan


class TestTorusSimulation:
    def test_wrap_edges_schedule(self):
        torus = Mesh((8, 8), torus=True)
        problem = random_pairs(torus, 40, seed=14)
        result = HierarchicalRouter().route(problem, seed=15)
        sim = simulate(torus, result)
        assert sim.makespan >= max(sim.congestion, sim.dilation)
        assert np.all(sim.delivery_times <= sim.makespan)
