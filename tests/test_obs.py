"""The observability layer: stage timers, counters, JSONL trace schema."""

import io
import json

import numpy as np
import pytest

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.obs import Profiler, StageStats
from repro.simulation.online import simulate_online
from repro.workloads.permutations import transpose


class TestProfiler:
    def test_stage_accumulates(self):
        prof = Profiler()
        for _ in range(3):
            with prof.stage("work"):
                pass
        assert prof.stages["work"].calls == 3
        assert prof.stages["work"].wall_s >= 0.0

    def test_counters(self):
        prof = Profiler()
        prof.count("packets", 10)
        prof.count("packets", 5)
        prof.count("edges")
        assert prof.counters == {"packets": 15, "edges": 1}

    def test_stage_records_on_exception(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof.stage("boom"):
                raise RuntimeError("x")
        assert prof.stages["boom"].calls == 1

    def test_merge(self):
        a, b = Profiler(), Profiler()
        with a.stage("s"):
            pass
        with b.stage("s"):
            pass
        b.count("c", 2)
        a.merge(b)
        assert a.stages["s"].calls == 2
        assert a.counters["c"] == 2

    def test_snapshot_and_rows(self):
        prof = Profiler()
        with prof.stage("s"):
            pass
        prof.count("c", 1)
        snap = prof.snapshot()
        assert snap["stages"]["s"]["calls"] == 1
        assert snap["counters"]["c"] == 1
        rows = prof.stage_rows()
        assert rows[0]["stage"] == "s" and 0.0 <= rows[0]["share"] <= 1.0

    def test_format_mentions_stages_and_counters(self):
        prof = Profiler()
        with prof.stage("assemble"):
            pass
        prof.count("packets", 7)
        text = prof.format()
        assert "assemble" in text and "packets=7" in text

    def test_reset(self):
        prof = Profiler()
        with prof.stage("s"):
            pass
        prof.reset()
        assert prof.stages == {} and prof.counters == {}


class TestConcurrency:
    """The counter/stage lock: concurrent updates must never lose a tick.

    Before the lock, ``count`` was a racy read-modify-write on a plain
    dict entry, so a hammer like this dropped increments.  The assertions
    are exact — any lost update fails the test.
    """

    def test_counter_hammer_exact_total(self):
        import threading

        prof = Profiler()
        n_threads, n_iter = 8, 2_000
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(n_iter):
                prof.count("hits")
                prof.count("weighted", 3)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert prof.counters["hits"] == n_threads * n_iter
        assert prof.counters["weighted"] == 3 * n_threads * n_iter

    def test_stage_hammer_exact_calls(self):
        import threading

        prof = Profiler()
        n_threads, n_iter = 8, 500
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(n_iter):
                with prof.stage("shared"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert prof.stages["shared"].calls == n_threads * n_iter
        assert prof.stages["shared"].wall_s >= 0.0

    def test_merge_snapshot_hammer(self):
        import threading

        prof = Profiler()
        donor = Profiler()
        with donor.stage("s"):
            pass
        donor.count("c", 2)
        snap = donor.snapshot()
        n_threads, n_iter = 6, 300
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(n_iter):
                prof.merge_snapshot(snap)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * n_iter
        assert prof.stages["s"].calls == total
        assert prof.counters["c"] == 2 * total


class TestTraceSchema:
    """The documented JSONL contract (docs/PERFORMANCE.md)."""

    def _events(self, sink: io.StringIO) -> list[dict]:
        return [json.loads(line) for line in sink.getvalue().splitlines()]

    def test_stage_and_counter_events(self):
        sink = io.StringIO()
        prof = Profiler(trace=sink)
        with prof.stage("s"):
            pass
        prof.count("c", 3)
        events = self._events(sink)
        assert events[0]["event"] == "stage"
        assert events[0]["name"] == "s"
        assert isinstance(events[0]["wall_s"], float)
        assert events[1] == {"event": "counter", "name": "c", "delta": 3, "seq": 1}
        # seq strictly increases
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_summary_event(self):
        sink = io.StringIO()
        prof = Profiler(trace=sink)
        with prof.stage("s"):
            pass
        prof.count("c", 1)
        prof.write_summary()
        summary = self._events(sink)[-1]
        assert summary["event"] == "summary"
        assert summary["stages"]["s"]["calls"] == 1
        assert summary["counters"] == {"c": 1}

    def test_write_trace_file(self, tmp_path):
        prof = Profiler()
        with prof.stage("s"):
            pass
        path = tmp_path / "trace.jsonl"
        prof.write_trace(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "summary"

    def test_path_sink_opens_and_closes(self, tmp_path):
        path = tmp_path / "live.jsonl"
        prof = Profiler(trace=str(path))
        with prof.stage("s"):
            pass
        prof.close()
        assert json.loads(path.read_text().splitlines()[0])["name"] == "s"


class TestThreading:
    """Profilers attached to the router and simulator surfaces."""

    def test_router_batch_stages_and_counters(self):
        prof = Profiler()
        router = HierarchicalRouter(profiler=prof)
        mesh = Mesh((8, 8))
        problem = transpose(mesh)
        result = router.route(problem, seed=0)
        for name in ("engine.sequence", "engine.draw", "engine.assemble"):
            assert prof.stages[name].calls == 1
        assert prof.counters["engine.packets"] == problem.num_packets
        assert prof.counters["engine.rng_values"] > 0
        assert prof.counters["engine.edges"] == sum(
            len(p) - 1 for p in result.paths
        )

    def test_router_legacy_loop_stage(self):
        prof = Profiler()
        router = HierarchicalRouter(profiler=prof)
        mesh = Mesh((8, 8))
        problem = transpose(mesh)
        router.route(problem, seed=0, batch=False)
        assert prof.stages["route.select_loop"].calls == 1
        assert prof.counters["route.packets"] == problem.num_packets

    def test_simulate_online_stages(self):
        prof = Profiler()
        stats = simulate_online(
            HierarchicalRouter(),
            Mesh((4, 4)),
            rate=0.2,
            steps=10,
            seed=0,
            profiler=prof,
        )
        assert prof.stages["online.arrivals"].calls == 1
        assert prof.stages["online.inject"].calls == 1
        assert prof.stages["online.advance"].calls >= 1
        assert prof.counters["online.injected"] == stats.injected
        assert prof.counters["online.delivered"] == stats.delivered

    def test_no_profiler_is_default(self):
        router = HierarchicalRouter()
        assert router.profiler is None
        assert router.route(transpose(Mesh((4, 4))), seed=0).validate()
