"""The batched engine: byte-identity, faithfulness of the vectorised
sequence tables, fallback behaviour, and obliviousness of the protocol."""

import numpy as np
import pytest

from repro.core.path_selection import HierarchicalRouter
from repro.core.tables import SequenceTables, bit_length
from repro.mesh.mesh import Mesh
from repro.mesh.paths import is_valid_path
from repro.routing.base import RoutingProblem
from repro.routing.baselines import (
    AccessTreeRouter,
    DimensionOrderRouter,
    RandomDimOrderRouter,
    ValiantRouter,
)
from repro.workloads.generators import nearest_neighbor, random_pairs
from repro.workloads.permutations import random_permutation, transpose

HIER_CONFIGS = [
    {},
    {"dim_order": "shared"},
    {"dim_order": "fixed"},
    {"use_bridges": False},
    {"variant": "general"},
    {"variant": "general", "use_bridges": False},
    {"drop_cycles": False},
    {"scheme": "multishift"},
]


def _assert_identical(result_a, result_b, mesh, problem):
    assert len(result_a.paths) == len(result_b.paths)
    for pa, pb, s, t in zip(
        result_a.paths, result_b.paths, problem.sources, problem.dests
    ):
        assert pa.dtype == np.int64 and pb.dtype == np.int64
        assert pa.tobytes() == pb.tobytes()
        assert is_valid_path(mesh, pa, int(s), int(t))


class TestByteIdentity:
    """The acceptance contract: array assembly == scalar loop assembly,
    byte for byte, from the same random plan."""

    @pytest.mark.parametrize("config", HIER_CONFIGS, ids=lambda c: str(c) or "default")
    def test_hierarchical(self, config):
        mesh = Mesh((16, 16))
        problem = transpose(mesh)
        router = HierarchicalRouter(**config)
        _assert_identical(
            router.route(problem, seed=7),
            router.route(problem, seed=7, batch="loop"),
            mesh,
            problem,
        )

    @pytest.mark.parametrize("sides", [(8, 8), (4, 4, 4), (2, 2, 2, 2, 2)])
    def test_dimensions(self, sides):
        mesh = Mesh(sides)
        problem = random_pairs(mesh, 64, seed=5)
        router = HierarchicalRouter()
        _assert_identical(
            router.route(problem, seed=2),
            router.route(problem, seed=2, batch="loop"),
            mesh,
            problem,
        )

    @pytest.mark.parametrize(
        "router",
        [
            DimensionOrderRouter(),
            DimensionOrderRouter(order=(1, 0)),
            RandomDimOrderRouter(),
            ValiantRouter(),
            ValiantRouter(drop_cycles=False),
            AccessTreeRouter(),
        ],
        ids=lambda r: r.name + ("" if getattr(r, "drop_cycles", True) else "-keepcycles"),
    )
    def test_baselines(self, router):
        mesh = Mesh((16, 16))
        problem = nearest_neighbor(mesh, seed=9)
        _assert_identical(
            router.route(problem, seed=3),
            router.route(problem, seed=3, batch="loop"),
            mesh,
            problem,
        )

    def test_self_loops_and_duplicates(self):
        mesh = Mesh((8, 8))
        problem = RoutingProblem(
            mesh,
            np.array([5, 9, 9, 0]),
            np.array([5, 41, 41, 63]),
        )
        router = HierarchicalRouter()
        res = router.route(problem, seed=1)
        _assert_identical(res, router.route(problem, seed=1, batch="loop"), mesh, problem)
        assert res.paths[0].tolist() == [5]

    def test_deterministic_router_matches_legacy_exactly(self):
        # dim-order has no randomness, so even the legacy loop must agree.
        mesh = Mesh((16, 16))
        problem = transpose(mesh)
        router = DimensionOrderRouter()
        _assert_identical(
            router.route(problem, seed=0),
            router.route(problem, seed=0, batch=False),
            mesh,
            problem,
        )


class TestSequenceTables:
    """The vectorised tables must reproduce the scalar submesh sequences."""

    @pytest.mark.parametrize("sides,scheme", [((16, 16), "paper2d"), ((16, 16), "multishift"), ((8, 8, 8), "multishift")])
    @pytest.mark.parametrize("variant", ["bitonic2d", "general"])
    @pytest.mark.parametrize("use_bridges", [True, False])
    def test_boxes_match_scalar(self, sides, scheme, variant, use_bridges):
        mesh = Mesh(sides)
        rng = np.random.default_rng(0)
        src = rng.integers(mesh.n, size=100)
        dst = rng.integers(mesh.n, size=100)
        dst[:3] = src[:3]  # include s == t packets
        router = HierarchicalRouter(scheme=scheme, variant=variant, use_bridges=use_bridges)
        tables = SequenceTables.for_mesh(mesh, scheme)
        box_lo, box_len, n_inner = tables.batch_boxes(
            src, dst, variant=variant, use_bridges=use_bridges
        )
        for i in range(src.size):
            seq, _ = router.submesh_sequence(mesh, int(src[i]), int(dst[i]))
            inner = seq[1:-1]
            assert n_inner[i] == len(inner)
            for j, box in enumerate(inner):
                assert box_lo[i, j].tolist() == list(box.lo)
                assert box_len[i, j].tolist() == [
                    hi - lo + 1 for lo, hi in zip(box.lo, box.hi)
                ]
            # padded slots: the destination's single-node box
            ct = mesh.flat_to_coords(int(dst[i]))
            assert (box_lo[i, len(inner):] == ct).all()
            assert (box_len[i, len(inner):] == 1).all()

    def test_tables_are_cached_per_shape(self):
        t1 = SequenceTables.for_mesh(Mesh((8, 8)))
        t2 = SequenceTables.for_mesh(Mesh((8, 8)))
        assert t1 is t2

    def test_torus_rejected(self):
        from repro.core.decomposition import Decomposition

        with pytest.raises(ValueError, match="[Tt]orus|power"):
            SequenceTables(Decomposition(Mesh((8, 8), torus=True)))

    def test_bit_length(self):
        xs = np.array([0, 1, 2, 3, 4, 7, 8, 1023, 1024])
        assert bit_length(xs).tolist() == [int(x).bit_length() for x in xs]


class TestFallbacks:
    def test_torus_uses_legacy_loop(self):
        mesh = Mesh((8, 8), torus=True)
        for router in (HierarchicalRouter(), ValiantRouter(), DimensionOrderRouter()):
            assert router.batch_spec(transpose(mesh)) is None
            assert router.route(transpose(mesh), seed=0).validate()

    def test_bit_mode_uses_legacy_loop(self):
        mesh = Mesh((8, 8))
        router = HierarchicalRouter(bit_mode="fresh")
        problem = transpose(mesh)
        assert router.batch_spec(problem) is None
        router.route(problem, seed=0)
        assert len(router.bits_log) == problem.num_packets

    def test_non_power_of_two_uses_legacy_loop(self):
        mesh = Mesh((6, 6))
        assert HierarchicalRouter().batch_spec(transpose(mesh)) is None

    def test_batch_false_forces_legacy(self):
        mesh = Mesh((8, 8))
        problem = transpose(mesh)
        res = HierarchicalRouter().route(problem, seed=0, batch=False)
        assert res.validate()

    def test_unknown_batch_mode_rejected(self):
        mesh = Mesh((8, 8))
        with pytest.raises(ValueError, match="batch mode"):
            HierarchicalRouter().route(transpose(mesh), seed=0, batch="nonsense")


class TestEmptyProblems:
    """Regression: a zero-packet problem must route in every mode.  The
    array assembler's ``counts.reshape(N, -1)`` raised on N == 0, and
    ``Router.route`` papered over it by skipping the engine entirely when
    ``num_packets`` was zero — which silently changed the code path under
    test and still left ``run_batch`` broken for direct callers."""

    @pytest.fixture()
    def empty_problem(self):
        mesh = Mesh((8, 8))
        empty = np.empty(0, dtype=np.int64)
        return RoutingProblem(mesh, empty, empty, name="empty")

    @pytest.mark.parametrize("batch", [True, "loop", False], ids=str)
    def test_every_registered_router(self, empty_problem, batch):
        from repro.routing.registry import available_routers, make_router

        for name in available_routers():
            router = make_router(name)
            try:
                result = router.route(empty_problem, seed=0, batch=batch)
            except TypeError:
                # non-oblivious routers (greedy-offline) override route()
                # without the batch kwarg; the empty case must still work
                result = router.route(empty_problem, seed=0)
            assert len(result.paths) == 0, name
            assert result.validate(), name
            assert result.congestion == 0 and result.dilation == 0

    def test_run_batch_directly_on_empty_spec(self, empty_problem):
        from repro.routing.engine import run_batch

        router = HierarchicalRouter()
        spec = router.batch_spec(empty_problem)
        assert spec is not None and spec.num_packets == 0
        for mode in ("array", "loop"):
            result = run_batch(router, spec, empty_problem, seed=0, assemble=mode)
            assert len(result.paths) == 0
            assert result.paths.nodes.size == 0

    def test_empty_goes_through_the_engine(self, empty_problem):
        """The num_packets guard is gone: batch=True on an empty problem
        exercises the engine, not the legacy loop."""
        called = []
        router = HierarchicalRouter()
        orig = router.batch_spec

        def spy(problem):
            spec = orig(problem)
            called.append(spec)
            return spec

        router.batch_spec = spy
        router.route(empty_problem, seed=0)
        assert called and called[0] is not None


class TestObliviousness:
    """The batched protocol must keep paths per-packet independent: packet
    i's path is a function of (seed, i, s_i, t_i) only."""

    def test_other_packets_unchanged_when_one_changes(self):
        mesh = Mesh((16, 16))
        base = random_permutation(mesh, seed=4)
        dests = base.dests.copy()
        dests[0] = (dests[0] + 17) % mesh.n
        changed = RoutingProblem(mesh, base.sources, dests)
        router = HierarchicalRouter()
        r1 = router.route(base, seed=11)
        r2 = router.route(changed, seed=11)
        for i in range(1, base.num_packets):
            assert r1.paths[i].tobytes() == r2.paths[i].tobytes()

    def test_same_seed_reproducible(self):
        mesh = Mesh((16, 16))
        problem = transpose(mesh)
        router = HierarchicalRouter()
        a = router.route(problem, seed=5)
        b = router.route(problem, seed=5)
        assert all(x.tobytes() == y.tobytes() for x, y in zip(a.paths, b.paths))

    def test_different_seeds_differ(self):
        mesh = Mesh((16, 16))
        problem = transpose(mesh)
        router = HierarchicalRouter()
        a = router.route(problem, seed=5)
        b = router.route(problem, seed=6)
        assert any(x.tobytes() != y.tobytes() for x, y in zip(a.paths, b.paths))
