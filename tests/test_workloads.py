"""Tests for workload generators."""

import numpy as np
import pytest

from repro.mesh.mesh import Mesh
from repro.routing.baselines import DimensionOrderRouter
from repro.workloads.adversarial import adversarial_for_router, block_exchange
from repro.workloads.generators import (
    all_to_one,
    local_traffic,
    nearest_neighbor,
    random_pairs,
)
from repro.workloads.permutations import (
    bit_complement,
    bit_reversal,
    random_permutation,
    tornado,
    transpose,
)


@pytest.fixture
def mesh():
    return Mesh((8, 8))


def _is_permutation_with_fixed(problem, mesh):
    assert np.unique(problem.sources).size == problem.num_packets
    assert np.unique(problem.dests).size == problem.num_packets


class TestPermutations:
    def test_transpose_mapping(self, mesh):
        prob = transpose(mesh, keep_fixed_points=True)
        src_coords = mesh.flat_to_coords(prob.sources)
        dst_coords = mesh.flat_to_coords(prob.dests)
        np.testing.assert_array_equal(dst_coords[:, 0], src_coords[:, 1])
        np.testing.assert_array_equal(dst_coords[:, 1], src_coords[:, 0])

    def test_transpose_drops_diagonal(self, mesh):
        prob = transpose(mesh)
        assert prob.num_packets == mesh.n - 8  # 8 diagonal fixed points
        assert np.all(prob.sources != prob.dests)

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            transpose(Mesh((8, 4)))

    def test_transpose_3d_rolls(self):
        mesh = Mesh((4, 4, 4))
        prob = transpose(mesh, keep_fixed_points=True)
        src = mesh.flat_to_coords(prob.sources)
        dst = mesh.flat_to_coords(prob.dests)
        np.testing.assert_array_equal(dst, np.roll(src, 1, axis=1))

    def test_bit_reversal(self, mesh):
        prob = bit_reversal(mesh, keep_fixed_points=True)
        _is_permutation_with_fixed(prob, mesh)
        # (1,0,0) -> (0,0,1) per coordinate: coord 1 -> 4 on side 8
        idx = int(np.where(prob.sources == mesh.node(1, 0))[0][0])
        assert prob.dests[idx] == mesh.node(4, 0)

    def test_bit_reversal_needs_pow2(self):
        with pytest.raises(ValueError):
            bit_reversal(Mesh((6, 6)))

    def test_bit_complement(self, mesh):
        prob = bit_complement(mesh, keep_fixed_points=True)
        idx = int(np.where(prob.sources == mesh.node(0, 0))[0][0])
        assert prob.dests[idx] == mesh.node(7, 7)
        assert prob.num_packets == mesh.n

    def test_tornado_shift(self, mesh):
        prob = tornado(mesh, keep_fixed_points=True)
        src = mesh.flat_to_coords(prob.sources)
        dst = mesh.flat_to_coords(prob.dests)
        np.testing.assert_array_equal(dst[:, 0], (src[:, 0] + 3) % 8)
        np.testing.assert_array_equal(dst[:, 1], src[:, 1])

    def test_tornado_invalid_dim(self, mesh):
        with pytest.raises(ValueError):
            tornado(mesh, dim=5)

    def test_random_permutation_reproducible(self, mesh):
        a = random_permutation(mesh, seed=1)
        b = random_permutation(mesh, seed=1)
        np.testing.assert_array_equal(a.dests, b.dests)
        _is_permutation_with_fixed(random_permutation(mesh, seed=2, keep_fixed_points=True), mesh)

    def test_all_nontrivial_by_default(self, mesh):
        for prob in (bit_reversal(mesh), bit_complement(mesh), tornado(mesh)):
            assert np.all(prob.sources != prob.dests)


class TestGenerators:
    def test_random_pairs_count_and_distinct(self, mesh):
        prob = random_pairs(mesh, 33, seed=0)
        assert prob.num_packets == 33
        assert np.all(prob.sources != prob.dests)

    def test_random_pairs_tiny_mesh_rejected(self):
        with pytest.raises(ValueError):
            random_pairs(Mesh((1,)), 2)

    def test_all_to_one_default_center(self, mesh):
        prob = all_to_one(mesh)
        assert prob.num_packets == mesh.n - 1
        assert np.all(prob.dests == mesh.node(4, 4))

    def test_all_to_one_custom_target(self, mesh):
        prob = all_to_one(mesh, target=0)
        assert np.all(prob.dests == 0)
        assert 0 not in prob.sources

    def test_nearest_neighbor_distance_one(self, mesh):
        prob = nearest_neighbor(mesh, seed=1)
        assert prob.num_packets == mesh.n
        assert np.all(prob.distances == 1)

    def test_local_traffic_radius(self, mesh):
        for r in (1, 2, 4):
            prob = local_traffic(mesh, radius=r, seed=2)
            assert np.all(prob.distances >= 1)
            assert np.all(prob.distances <= r)

    def test_local_traffic_invalid_radius(self, mesh):
        with pytest.raises(ValueError):
            local_traffic(mesh, radius=0)


class TestAdversarial:
    def test_block_exchange_distances(self, mesh):
        for l in (1, 2, 4):
            prob = block_exchange(mesh, l)
            assert prob.num_packets == mesh.n
            assert np.all(prob.distances == l)

    def test_block_exchange_is_permutation(self, mesh):
        prob = block_exchange(mesh, 2)
        assert np.unique(prob.dests).size == mesh.n

    def test_block_exchange_involution(self, mesh):
        """Paired blocks exchange: applying the map twice is the identity."""
        prob = block_exchange(mesh, 2)
        mapping = dict(prob.pairs())
        assert all(mapping[mapping[s]] == s for s in mapping)

    def test_block_exchange_divisibility(self, mesh):
        with pytest.raises(ValueError):
            block_exchange(mesh, 3)
        with pytest.raises(ValueError):
            block_exchange(mesh, 8)
        with pytest.raises(ValueError):
            block_exchange(mesh, 0)

    def test_adversarial_forces_deterministic_congestion(self):
        """Section 5.1: re-routing Pi_A with the same deterministic router
        pushes all |Pi_A| packets over one edge."""
        mesh = Mesh((16, 16))
        router = DimensionOrderRouter()
        sub, hot_edge = adversarial_for_router(router, mesh, l=4)
        assert sub.num_packets >= 4 // mesh.d  # paper: >= l / d
        rerouted = router.route(sub, seed=0)
        assert rerouted.congestion == sub.num_packets
        assert rerouted.edge_loads[hot_edge] == sub.num_packets

    def test_adversarial_all_same_distance(self):
        mesh = Mesh((16, 16))
        sub, _ = adversarial_for_router(DimensionOrderRouter(), mesh, l=4)
        assert np.all(sub.distances == 4)

    def test_adversarial_named(self):
        mesh = Mesh((8, 8))
        sub, _ = adversarial_for_router(DimensionOrderRouter(), mesh, l=2)
        assert "adversarial" in sub.name


class TestSchemeSeparatingPairs:
    def test_valid_and_distance_one(self):
        from repro.workloads.adversarial import scheme_separating_pairs
        from repro.mesh.mesh import Mesh

        mesh = Mesh((32, 32, 32))
        prob = scheme_separating_pairs(mesh)
        assert prob.num_packets > 0
        import numpy as np

        assert np.all(prob.distances >= 1)
        assert np.all(prob.distances <= mesh.d)

    def test_separates_the_schemes(self):
        """The half-shift scheme's stretch exceeds multishift's (Section 4's
        O(2^d) motivation)."""
        from repro.core.path_selection import HierarchicalRouter
        from repro.mesh.mesh import Mesh
        from repro.workloads.adversarial import scheme_separating_pairs

        mesh = Mesh((32, 32, 32))
        prob = scheme_separating_pairs(mesh)
        # Average over a few seeds: the separation is distributional, and a
        # single unlucky draw (6 packets) can land under the margin.
        seeds = range(4)
        half = sum(
            HierarchicalRouter(scheme="paper2d", variant="general")
            .route(prob, seed=s)
            .stretch
            for s in seeds
        )
        multi = sum(
            HierarchicalRouter(scheme="multishift", variant="general")
            .route(prob, seed=s)
            .stretch
            for s in seeds
        )
        assert half > 1.5 * multi

    def test_requirements(self):
        from repro.mesh.mesh import Mesh
        from repro.workloads.adversarial import scheme_separating_pairs
        import pytest as _pytest

        with _pytest.raises(ValueError):
            scheme_separating_pairs(Mesh((6, 6)))
        with _pytest.raises(ValueError):
            scheme_separating_pairs(Mesh((16,)))
        with _pytest.raises(ValueError):
            scheme_separating_pairs(Mesh((4, 4, 4)))  # side < 2^d


class TestRRelation:
    def test_counts(self, mesh):
        from repro.workloads.generators import r_relation

        prob = r_relation(mesh, 3, seed=0)
        # each node sends at most 3 (fixed points dropped) and exactly 3
        # minus its fixed-point count
        sends = np.bincount(prob.sources, minlength=mesh.n)
        recvs = np.bincount(prob.dests, minlength=mesh.n)
        assert sends.max() <= 3 and recvs.max() <= 3
        assert np.all(prob.sources != prob.dests)

    def test_r1_is_permutation_sized(self, mesh):
        from repro.workloads.generators import r_relation

        prob = r_relation(mesh, 1, seed=1)
        assert prob.num_packets <= mesh.n

    def test_congestion_scales_with_r(self, mesh):
        from repro.core.path_selection import HierarchicalRouter
        from repro.workloads.generators import r_relation

        router = HierarchicalRouter()
        c1 = router.route(r_relation(mesh, 1, seed=2), seed=0).congestion
        c4 = router.route(r_relation(mesh, 4, seed=2), seed=0).congestion
        assert c4 > c1

    def test_invalid_r(self, mesh):
        from repro.workloads.generators import r_relation

        with pytest.raises(ValueError):
            r_relation(mesh, 0)
